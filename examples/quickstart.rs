//! Quickstart: compute a Euclidean minimum spanning tree.
//!
//! ```text
//! cargo run --release --example quickstart [n]
//! ```

use emst::core::{EmstConfig, SingleTreeBoruvka};
use emst::datasets::{generate_2d, DatasetSpec};
use emst::exec::Threads;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(100_000);

    // 1. Get some points (any `&[Point<D>]` works; here: a seeded uniform
    //    cloud in the unit square).
    let points = generate_2d(&DatasetSpec::uniform(n, 42));

    // 2. Run the single-tree Borůvka EMST. Pick an execution space:
    //    `Serial`, `Threads` (rayon) or `GpuSim` (instrumented).
    let result = SingleTreeBoruvka::new(&points).run(&Threads, &EmstConfig::default());

    // 3. Use the tree.
    println!("points:          {n}");
    println!("edges:           {}", result.edges.len());
    println!("total weight:    {:.6}", result.total_weight);
    println!("iterations:      {}", result.iterations);
    println!(
        "build/solve:     {:.1} ms / {:.1} ms",
        result.timings.get("tree") * 1e3,
        result.timings.get("mst") * 1e3
    );
    let longest =
        result.edges.iter().max_by(|a, b| a.weight_sq.total_cmp(&b.weight_sq)).expect("n >= 2");
    println!(
        "longest edge:    {:.6} (between points {} and {})",
        longest.weight(),
        longest.u,
        longest.v
    );

    // Sanity: the result is a spanning tree.
    emst::core::verify_spanning_tree(n, &result.edges).expect("valid spanning tree");
}
