//! Serving: warm-cache repeated queries against a resident cloud.
//!
//! ```text
//! cargo run --release --example serving [n] [shards]
//! ```
//!
//! Ingests a cosmology-like cloud into a [`emst::serve::ServeEngine`] and
//! answers the same full-EMST query twice: cold (plan + per-shard local
//! solves + BVH builds + cross-shard merge) and warm (merge only — the
//! resident artifacts make the local phase free). Then it shows the other
//! query shapes riding the same resident state: a subset EMST, k-NN, and
//! an HDBSCAN* parameter sweep on the warm scratch pool.

use std::time::Instant;

use emst::exec::Threads;
use emst::geometry::Point;
use emst::hdbscan::Hdbscan;
use emst::serve::{CacheOutcome, ServeConfig, ServeEngine};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(100_000);
    let shards: usize = std::env::args().nth(2).and_then(|v| v.parse().ok()).unwrap_or(4);

    let points = emst::datasets::generate_2d(&emst::datasets::DatasetSpec::hacc_like(n, 7));
    let engine = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(shards, 2));

    // Cold: the first query pays the full build (what every request would
    // cost without the cache).
    let t = Instant::now();
    let cold = engine.emst(&points);
    let cold_s = t.elapsed().as_secs_f64();
    assert_eq!(cold.outcome, CacheOutcome::Miss);
    println!(
        "cold  query: {cold_s:.4} s  (plan {:.4} s + local {:.4} s + merge {:.4} s), \
         weight {:.6}",
        cold.timings.get("plan"),
        cold.timings.get("local"),
        cold.timings.get("merge"),
        cold.total_weight,
    );

    // Warm: the cloud is resident, so the repeat query is merge-only and
    // the answer is bit-identical.
    let t = Instant::now();
    let warm = engine.emst(&points);
    let warm_s = t.elapsed().as_secs_f64();
    assert_eq!(warm.outcome, CacheOutcome::Hit);
    assert!(warm.build_work.is_zero(), "warm query must skip the local phase");
    assert_eq!(warm.edges, cold.edges, "warm answer must be bit-identical");
    println!(
        "warm  query: {warm_s:.4} s  (merge only, zero build work)   speedup {:.1}x",
        cold_s / warm_s
    );

    // Subset EMST over the middle half: fully-covered shards reuse their
    // resident BVH + local MST, only the boundary shards re-solve.
    let subset: Vec<u32> = (n as u32 / 4..3 * n as u32 / 4).collect();
    let t = Instant::now();
    let sub = engine.emst_subset(&points, &subset);
    println!(
        "subset query: {:.4} s  ({} of {n} points; boundary re-solves {:.4} s, merge {:.4} s)",
        t.elapsed().as_secs_f64(),
        subset.len(),
        sub.timings.get("local"),
        sub.timings.get("merge"),
    );

    // k-NN from the resident per-shard BVHs.
    let q = Point::new([0.5f32, 0.5]);
    let knn = engine.k_nearest(&points, &q, 5);
    let ids: Vec<u32> = knn.neighbors.iter().map(|(i, _)| *i).collect();
    println!(
        "knn   query: nearest 5 to {q:?} -> {ids:?} ({} node visits)",
        knn.query_work.node_visits
    );

    // HDBSCAN* sweeps reuse the cloud's warm Borůvka scratch pool.
    for min_cluster_size in [20, 50] {
        let t = Instant::now();
        let r = engine.hdbscan(&points, Hdbscan { k_pts: 5, min_cluster_size });
        println!(
            "hdbscan(mcs={min_cluster_size}): {:.4} s, {} clusters",
            t.elapsed().as_secs_f64(),
            r.result.num_clusters
        );
    }

    let stats = engine.stats();
    println!(
        "engine stats: {} hits, {} misses, {} resident cloud(s), {:.1} MiB resident",
        stats.hits,
        stats.misses,
        engine.num_resident(),
        engine.resident_bytes() as f64 / (1024.0 * 1024.0),
    );
}
