//! Runs all three EMST algorithms of the paper's evaluation on the same
//! input and verifies they agree — then prints their times and work counts.
//!
//! ```text
//! cargo run --release --example compare_algorithms [n]
//! ```

use emst::core::edge::weight_multiset;
use emst::core::{EmstConfig, SingleTreeBoruvka};
use emst::datasets::normal;
use emst::exec::{Serial, Threads};
use emst::geometry::Point;
use emst::kdtree::dual_tree_emst;
use emst::wspd::wspd_emst;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(100_000);
    let points: Vec<Point<2>> = normal(n, 3);
    println!("n = {n} 2D normal points\n");

    let t0 = std::time::Instant::now();
    let single = SingleTreeBoruvka::new(&points).run(&Threads, &EmstConfig::default());
    let t_single = t0.elapsed().as_secs_f64();
    println!(
        "single-tree Borůvka (this paper):  {:8.3} s   weight {:.4}   {} iterations, {} distance computations",
        t_single, single.total_weight, single.iterations, single.work.distance_computations
    );

    let t0 = std::time::Instant::now();
    let wspd = wspd_emst(&points, true);
    let t_wspd = t0.elapsed().as_secs_f64();
    println!(
        "WSPD GeoFilterKruskal (MemoGFK):   {:8.3} s   weight {:.4}   {}/{} BCPs computed, {} distance computations",
        t_wspd, wspd.total_weight, wspd.bcps_computed, wspd.num_pairs, wspd.distance_computations
    );

    let t0 = std::time::Instant::now();
    let dual = dual_tree_emst(&points);
    let t_dual = t0.elapsed().as_secs_f64();
    println!(
        "dual-tree Borůvka (MLPACK):        {:8.3} s   weight {:.4}   {} iterations, {} distance computations",
        t_dual, dual.total_weight, dual.iterations, dual.distance_computations
    );

    // All three must produce minimum spanning trees: identical weight
    // multisets (tie-breaking may pick different edges of equal weight).
    assert_eq!(weight_multiset(&single.edges), weight_multiset(&wspd.edges));
    assert_eq!(weight_multiset(&single.edges), weight_multiset(&dual.edges));
    println!("\nall three trees agree (identical weight multisets)");

    // Bonus: the 1978 Bentley–Friedman reference on a subsample.
    let m = n.min(20_000);
    let sub = &points[..m];
    let t0 = std::time::Instant::now();
    let bf = emst::kdtree::bentley_friedman_emst(sub);
    let ref_run = SingleTreeBoruvka::new(sub).run(&Serial, &EmstConfig::default());
    assert_eq!(weight_multiset(&bf), weight_multiset(&ref_run.edges));
    println!(
        "Bentley-Friedman 1978 (n = {m}):    {:8.3} s   (agrees too)",
        t0.elapsed().as_secs_f64()
    );
}
