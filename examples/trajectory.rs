//! Trajectory connectivity: EMST of NGSIM-like highway GPS points.
//!
//! Vehicle-trajectory datasets are a core workload in the paper's
//! evaluation (NGSIM, PortoTaxi). The EMST of such data reveals road
//! connectivity: within-corridor edges are short, and the handful of long
//! edges are exactly the gaps between distinct corridors.
//!
//! ```text
//! cargo run --release --example trajectory [n]
//! ```

use emst::core::{EmstConfig, SingleTreeBoruvka};
use emst::datasets::ngsim_like;
use emst::exec::Threads;
use emst::geometry::Point;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(150_000);
    let points: Vec<Point<2>> = ngsim_like(n, 2024);
    println!("{n} NGSIM-like trajectory points across 3 highway corridors");

    let result = SingleTreeBoruvka::new(&points).run(&Threads, &EmstConfig::default());
    println!(
        "EMST: {:.2} s, {:.2} MFeatures/s",
        result.timings.total(),
        (2 * n) as f64 / result.timings.total() / 1e6
    );

    // The corridors are separated by >1 unit; intra-corridor point spacing
    // is orders of magnitude smaller. Count the bridge edges.
    let mut lengths: Vec<f32> = result.edges.iter().map(|e| e.weight()).collect();
    lengths.sort_by(f32::total_cmp);
    let median = lengths[lengths.len() / 2];
    let bridges: Vec<&emst::core::Edge> =
        result.edges.iter().filter(|e| e.weight() > 0.5).collect();
    println!("median edge length: {median:.5}");
    println!("corridor-bridging edges (length > 0.5): {}", bridges.len());
    for b in &bridges {
        println!("  bridge: {:.3} units between points {} and {}", b.weight(), b.u, b.v);
    }
    // Three corridors need exactly two bridges.
    assert_eq!(bridges.len(), 2, "three corridors must be joined by two long edges");
    println!("=> the EMST recovered the 3-corridor structure (2 bridges)");
}
