//! HDBSCAN* clustering on variable-density data (the paper's §4.5 workload,
//! taken all the way to cluster labels).
//!
//! ```text
//! cargo run --release --example clustering_hdbscan [n] [k_pts] [min_cluster_size]
//! ```

use emst::datasets::visualvar;
use emst::exec::Threads;
use emst::geometry::Point;
use emst::hdbscan::{Hdbscan, NOISE};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(50_000);
    let k_pts: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(8);
    let min_cluster_size: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(50);

    let points: Vec<Point<2>> = visualvar(n, 99);
    println!("clustering {n} variable-density points (k_pts={k_pts}, mcs={min_cluster_size})");

    let result = Hdbscan { k_pts, min_cluster_size }.fit(&Threads, &points);

    println!("phases:");
    for (name, secs) in result.timings.iter() {
        println!("  {name:<18} {:8.1} ms", secs * 1e3);
    }

    let noise = result.labels.iter().filter(|&&l| l == NOISE).count();
    println!(
        "found {} clusters; {noise} noise points ({:.1}%)",
        result.num_clusters,
        100.0 * noise as f64 / n as f64
    );

    // Cluster census.
    let mut sizes = vec![0usize; result.num_clusters];
    for &l in &result.labels {
        if l != NOISE {
            sizes[l as usize] += 1;
        }
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!("largest clusters: {:?}", &sizes[..sizes.len().min(10)]);

    // The mutual-reachability MST is available too (e.g. for plotting).
    println!(
        "MRD-MST: {} edges, total weight {:.4}",
        result.mst.len(),
        emst::core::edge::total_weight(&result.mst)
    );
}
