//! Cosmology workload: MST statistics of a HACC-like particle snapshot.
//!
//! The paper's motivating application (§1) is analysing cosmological
//! simulation output; MST statistics are an established probe of the cosmic
//! web (Naidoo et al. 2020). This example computes the EMST of a halo-rich
//! synthetic snapshot and reports the classic MST summary statistics:
//! edge-length distribution and the long-edge "filament" fraction.
//!
//! ```text
//! cargo run --release --example cosmology [n]
//! ```

use emst::core::{EmstConfig, SingleTreeBoruvka};
use emst::datasets::hacc_like;
use emst::exec::Threads;
use emst::geometry::Point;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(200_000);
    let points: Vec<Point<3>> = hacc_like(n, 7);
    println!("generated {n} HACC-like particles");

    let result = SingleTreeBoruvka::new(&points).run(&Threads, &EmstConfig::default());
    println!(
        "EMST computed in {:.2} s ({:.2} MFeatures/s), {} iterations",
        result.timings.total(),
        (n * 3) as f64 / result.timings.total() / 1e6,
        result.iterations
    );

    // Edge-length distribution (the cosmology statistic).
    let mut lengths: Vec<f32> = result.edges.iter().map(|e| e.weight()).collect();
    lengths.sort_by(f32::total_cmp);
    let pct = |p: f64| lengths[((lengths.len() - 1) as f64 * p) as usize];
    println!("edge length percentiles:");
    for (label, p) in
        [("5%", 0.05), ("25%", 0.25), ("50%", 0.50), ("75%", 0.75), ("95%", 0.95), ("99%", 0.99)]
    {
        println!("  {label:>4}: {:.6}", pct(p));
    }
    let mean: f64 = lengths.iter().map(|&l| l as f64).sum::<f64>() / lengths.len() as f64;
    println!("  mean: {mean:.6}");

    // Long edges connect halos (inter-cluster "filaments"); short edges live
    // inside halos. The knee of the distribution separates the two regimes.
    let threshold = 4.0 * pct(0.5);
    let long_edges = lengths.iter().filter(|&&l| l > threshold).count();
    println!(
        "{long_edges} edges ({:.2}%) longer than 4x the median — inter-halo connections",
        100.0 * long_edges as f64 / lengths.len() as f64
    );

    // Halo proxy count: cutting the long edges decomposes the MST into
    // clusters (exactly how MST-based cluster finders work).
    println!("cutting them decomposes the snapshot into {} groups", long_edges + 1);
}
