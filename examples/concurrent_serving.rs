//! Concurrent serving: N threads sharing one engine by reference.
//!
//! ```text
//! cargo run --release --example concurrent_serving [n] [threads]
//! ```
//!
//! Every query method of [`emst::serve::ServeEngine`] takes `&self`, so a
//! warm engine can be hammered from plain scoped threads — no channels, no
//! per-thread engines, no external executor. This example pre-warms one
//! cloud, then drives mixed traffic (full EMST, subset, k-NN) from
//! `threads` workers at once and checks three things:
//!
//! - every concurrent answer is bit-identical to the single-threaded one
//!   (the shared merge accelerator changes the *work*, never the answer);
//! - exactly one build ran, no matter how many threads raced the first
//!   miss (single-flight coalescing);
//! - aggregate warm throughput, which scales with physical cores — on a
//!   single-CPU host the threads interleave and ~1x is expected.

use std::time::Instant;

use emst::exec::Serial;
use emst::geometry::Point;
use emst::serve::{ServeConfig, ServeEngine};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(50_000);
    let threads: usize = std::env::args().nth(2).and_then(|v| v.parse().ok()).unwrap_or(4);
    let queries_per_thread = 4;

    let points = emst::datasets::generate_2d(&emst::datasets::DatasetSpec::hacc_like(n, 7));
    // Serial backend per query: the worker threads are the parallelism.
    let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 2));
    let subset: Vec<u32> = (n as u32 / 4..3 * n as u32 / 4).collect();
    let probe = Point::new([0.5f32, 0.5]);

    // Single-threaded reference answers (also warms the cache, so the
    // timed section below measures pure warm traffic).
    let reference = engine.emst(&points);
    let reference_sub = engine.emst_subset(&points, &subset);
    let reference_knn = engine.k_nearest(&points, &probe, 5);

    let t = Instant::now();
    std::thread::scope(|s| {
        for worker in 0..threads {
            let (engine, points, subset, reference, reference_sub, reference_knn) =
                (&engine, &points, &subset, &reference, &reference_sub, &reference_knn);
            s.spawn(move || {
                for round in 0..queries_per_thread {
                    match (worker + round) % 3 {
                        0 => {
                            let q = engine.emst(points);
                            assert_eq!(q.edges, reference.edges, "concurrent EMST must be exact");
                        }
                        1 => {
                            let q = engine.emst_subset(points, subset);
                            assert_eq!(q.edges, reference_sub.edges);
                        }
                        _ => {
                            let q = engine.k_nearest(points, &probe, 5);
                            assert_eq!(q.neighbors, reference_knn.neighbors);
                        }
                    }
                }
            });
        }
    });
    let secs = t.elapsed().as_secs_f64();
    let total = threads * queries_per_thread;

    let stats = engine.stats();
    let cpus = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    println!(
        "{total} warm queries from {threads} threads in {secs:.3} s \
         ({:.1} queries/s on {cpus} CPU core(s))",
        total as f64 / secs,
    );
    println!(
        "engine stats: {} hits, {} misses (exactly one build), {} coalesced, \
         {} digest collisions, {} spill failures",
        stats.hits, stats.misses, stats.coalesced, stats.digest_collisions, stats.spill_failures,
    );
    assert_eq!(stats.misses, 1, "single-flight: only the first miss builds");
    println!("every concurrent answer was bit-identical to the single-threaded reference");
}
