//! Renders the EMST and the HDBSCAN* clustering of a 2D dataset as an SVG —
//! the classic "minimum spanning tree of the data" picture (e.g. the
//! paper's Fig. 2, at scale).
//!
//! ```text
//! cargo run --release --example visualize [n] [output.svg]
//! ```

use std::fmt::Write as _;

use emst::core::{EmstConfig, SingleTreeBoruvka};
use emst::datasets::visualvar;
use emst::exec::Threads;
use emst::geometry::{Aabb, Point};
use emst::hdbscan::{Hdbscan, NOISE};

const PALETTE: [&str; 10] = [
    "#e6194b", "#3cb44b", "#4363d8", "#f58231", "#911eb4", "#46f0f0", "#f032e6", "#bcf60c",
    "#fabebe", "#008080",
];

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(4_000);
    let output = args.next().unwrap_or_else(|| "emst.svg".to_string());

    let points: Vec<Point<2>> = visualvar(n, 7);
    let emst = SingleTreeBoruvka::new(&points).run(&Threads, &EmstConfig::default());
    let clusters = Hdbscan { k_pts: 6, min_cluster_size: (n / 100).max(8) }.fit(&Threads, &points);
    eprintln!("n = {n}: EMST weight {:.4}, {} clusters", emst.total_weight, clusters.num_clusters);

    // Map the scene into a 1000x1000 canvas with a margin.
    let bb = Aabb::from_points(&points);
    let span = bb.longest_extent().max(f32::MIN_POSITIVE);
    let sx = |p: &Point<2>| 20.0 + (p[0] - bb.min[0]) / span * 960.0;
    let sy = |p: &Point<2>| 20.0 + (p[1] - bb.min[1]) / span * 960.0;

    let mut svg = String::new();
    let height = 40.0 + (bb.max[1] - bb.min[1]) / span * 960.0;
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="1000" height="{height:.0}" viewBox="0 0 1000 {height:.0}">"#
    );
    let _ = writeln!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);

    // Edges first (under the points). Long inter-cluster edges get dashed.
    let mut lengths: Vec<f32> = emst.edges.iter().map(|e| e.weight()).collect();
    lengths.sort_by(f32::total_cmp);
    let long = lengths[(lengths.len() as f32 * 0.98) as usize % lengths.len()];
    for e in &emst.edges {
        let (a, b) = (&points[e.u as usize], &points[e.v as usize]);
        let dashed = if e.weight() > long { r#" stroke-dasharray="4 3""# } else { "" };
        let _ = writeln!(
            svg,
            r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#bbb" stroke-width="0.6"{dashed}/>"##,
            sx(a),
            sy(a),
            sx(b),
            sy(b)
        );
    }
    // Points, colored by cluster.
    for (i, p) in points.iter().enumerate() {
        let label = clusters.labels[i];
        let (color, r) = if label == NOISE {
            ("#999999", 0.8)
        } else {
            (PALETTE[label as usize % PALETTE.len()], 1.4)
        };
        let _ = writeln!(
            svg,
            r#"<circle cx="{:.1}" cy="{:.1}" r="{r}" fill="{color}"/>"#,
            sx(p),
            sy(p)
        );
    }
    let _ = writeln!(svg, "</svg>");

    std::fs::write(&output, svg).expect("write SVG");
    eprintln!("wrote {output}");
}
