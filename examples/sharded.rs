//! Scaling out: the Morton-range sharded EMST and its out-of-core path.
//!
//! ```text
//! cargo run --release --example sharded [n] [shards]
//! ```
//!
//! Runs the monolithic single-tree solve and the sharded solver on the same
//! cosmology-like cloud, shows they agree exactly, and then re-solves the
//! same points by streaming them from a CSV file with a residency cap —
//! demonstrating that the input never needs to be fully in memory.

use emst::core::{EmstConfig, SingleTreeBoruvka};
use emst::datasets::{generate_3d, save_csv, DatasetSpec};
use emst::exec::Threads;
use emst::shard::{emst_sharded, emst_sharded_csv, StreamConfig};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(50_000);
    let shards: usize = std::env::args().nth(2).and_then(|v| v.parse().ok()).unwrap_or(8);

    let points = generate_3d(&DatasetSpec::hacc_like(n, 7));

    // Baseline: the paper's monolithic single-tree solve.
    let mono = SingleTreeBoruvka::new(&points).run(&Threads, &EmstConfig::default());
    println!("monolithic:   weight {:.6} ({} edges)", mono.total_weight, mono.edges.len());

    // Sharded: K local solves in parallel + cross-shard Borůvka merge.
    let sharded = emst_sharded(&points, shards);
    println!(
        "sharded K={shards}: weight {:.6} ({} edges)",
        sharded.total_weight,
        sharded.edges.len()
    );
    assert_weights_match(sharded.total_weight, mono.total_weight);
    let s = &sharded.stats;
    println!(
        "  shard sizes {:?}\n  merge rounds {}, boundary candidates {} ({:.2}% of cross queries)",
        s.shard_sizes,
        s.merge_rounds,
        s.boundary_candidates,
        100.0 * s.boundary_candidates as f64 / s.work.queries.max(1) as f64,
    );
    println!(
        "  plan {:.1} ms, local {:.1} ms, merge {:.1} ms",
        s.timings.get("plan") * 1e3,
        s.timings.get("local") * 1e3,
        s.timings.get("merge") * 1e3,
    );

    // Out-of-core: stream the same cloud from CSV with a residency cap of
    // a quarter of the input; shards are derived from the cap.
    let mut path = std::env::temp_dir();
    path.push(format!("emst-sharded-example-{}.csv", std::process::id()));
    save_csv(&path, &points).expect("write CSV");
    let cap = (n / 4).max(2);
    let streamed = emst_sharded_csv::<_, 3>(&Threads, &path, &StreamConfig::new(0, cap))
        .expect("streamed solve");
    std::fs::remove_file(&path).ok();
    println!(
        "out-of-core:  weight {:.6} via {} shards, peak resident {} of {n} points (cap {cap})",
        streamed.total_weight,
        streamed.stats.shard_sizes.len(),
        streamed.stats.peak_resident,
    );
    assert_weights_match(streamed.total_weight, mono.total_weight);
    println!("all three solves agree.");
}

/// The edge-weight multisets are identical, but `total_weight` sums them in
/// edge order, so the f64 accumulations may differ in the last few ulps.
fn assert_weights_match(a: f64, b: f64) {
    assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "weights diverged: {a} vs {b}");
}
