//! Cache-correctness tests of the serving layer: a warm answer must be
//! *bit-identical* to the cold one on every backend and both traversals,
//! eviction/reload must not change a single bit, a mutated input must
//! never be served from a stale entry, and the PR 10 incremental
//! `insert`/`delete` path must match from-scratch oracles under
//! proptested mutation chains, concurrency, and deadline pressure.

use std::sync::Arc;
use std::time::Duration;

use emst::core::brute::brute_force_emst;
use emst::core::edge::{verify_spanning_tree, weight_multiset};
use emst::core::{Edge, EmstConfig, Traversal};
use emst::datasets::{generate_2d, DatasetSpec, Kind};
use emst::exec::{ExecSpace, GpuSim, Serial, Threads};
use emst::geometry::Point;
use emst::hdbscan::Hdbscan;
use emst::serve::{CacheOutcome, FaultPlan, ServeConfig, ServeEngine, ServeError};
use emst::shard::{emst_sharded_with, ShardConfig};
use proptest::prelude::*;

fn cloud(n: usize, seed: u64) -> Vec<Point<2>> {
    generate_2d(&DatasetSpec::hacc_like(n, seed))
}

fn config_with(traversal: Traversal, shards: usize, max_resident: usize) -> ServeConfig {
    let mut cfg = ServeConfig::new(shards, max_resident);
    cfg.emst = EmstConfig { traversal, ..EmstConfig::default() };
    cfg
}

fn check_warm_equals_cold<S: ExecSpace>(engine_space: S, anchor_space: &S, traversal: Traversal) {
    let pts = cloud(600, 11);
    let engine = ServeEngine::<_, 2>::new(engine_space, config_with(traversal, 5, 2));

    let cold = engine.emst(&pts);
    assert_eq!(cold.outcome, CacheOutcome::Miss);
    assert!(cold.build_work.iterations > 0, "cold solve must run local Borůvka");
    verify_spanning_tree(pts.len(), &cold.edges).unwrap();

    // Exactness anchor: the one-shot sharded solve takes the identical
    // build + merge path, and the brute-force oracle pins the weights.
    let oneshot = emst_sharded_with(
        anchor_space,
        &pts,
        &ShardConfig { emst: engine_emst_config(traversal), ..ShardConfig::new(5) },
    );
    assert_eq!(cold.edges, oneshot.edges);
    assert_eq!(weight_multiset(&cold.edges), weight_multiset(&brute_force_emst(&pts)));

    for _ in 0..2 {
        let warm = engine.emst(&pts);
        assert_eq!(warm.outcome, CacheOutcome::Hit);
        // The local phase did not run: zero build work, no plan/local
        // wall-clock, and the query work is merge-only traversal stats
        // (cross-shard queries but zero Borůvka solve iterations).
        assert!(warm.build_work.is_zero());
        assert_eq!(warm.timings.get("plan"), 0.0);
        assert_eq!(warm.timings.get("local"), 0.0);
        assert!(warm.timings.get("merge") > 0.0);
        assert!(warm.query_work.queries > 0);
        assert_eq!(warm.query_work.iterations, 0);
        // Bit-identical edges: same endpoints, same weight bits, same order.
        assert_eq!(warm.edges, cold.edges);
    }
}

fn engine_emst_config(traversal: Traversal) -> EmstConfig {
    EmstConfig { traversal, ..EmstConfig::default() }
}

#[test]
fn warm_solve_is_bit_identical_on_every_backend_and_both_traversals() {
    for traversal in [Traversal::Stack, Traversal::Stackless] {
        check_warm_equals_cold(Serial, &Serial, traversal);
        check_warm_equals_cold(Threads, &Threads, traversal);
    }
    check_warm_equals_cold(GpuSim::new(), &GpuSim::new(), Traversal::Stackless);
}

#[test]
fn eviction_then_requery_is_still_exact() {
    let clouds: Vec<Vec<Point<2>>> = (0..3).map(|s| cloud(400, 20 + s)).collect();
    let engine = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(4, 2));
    let first: Vec<_> = clouds.iter().map(|c| engine.emst(c)).collect();
    assert_eq!(engine.num_resident(), 2, "budget must hold");
    assert_eq!(engine.stats().evictions, 1);

    // Cloud 0 was evicted: by key it reloads from its spill file; by
    // points it re-ingests. Both must reproduce the original bits.
    let by_key = engine.emst_by_key(first[0].key).unwrap();
    assert_eq!(by_key.outcome, CacheOutcome::Reloaded);
    assert_eq!(by_key.edges, first[0].edges);

    // That reload evicted the then-LRU cloud 1; re-querying it with points
    // also stays exact.
    let again = engine.emst(&clouds[1]);
    assert_eq!(again.edges, first[1].edges);
    verify_spanning_tree(clouds[1].len(), &again.edges).unwrap();
}

#[test]
fn mutated_input_changes_the_digest_and_invalidates() {
    let pts = cloud(500, 33);
    let engine = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(4, 4));
    let original = engine.emst(&pts);

    // Flip one coordinate by one ULP: the digest must differ and the
    // engine must miss (re-solve), never serve the stale tree.
    let mut mutated = pts.clone();
    mutated[123] = Point::new([f32::from_bits(pts[123][0].to_bits() ^ 1), pts[123][1]]);
    assert_ne!(engine.key(&pts), engine.key(&mutated));
    let fresh = engine.emst(&mutated);
    assert_eq!(fresh.outcome, CacheOutcome::Miss);
    assert_eq!(weight_multiset(&fresh.edges), weight_multiset(&brute_force_emst(&mutated)));
    assert_eq!(engine.num_resident(), 2);

    // The original cloud is still resident and still exact.
    let warm = engine.emst(&pts);
    assert_eq!(warm.outcome, CacheOutcome::Hit);
    assert_eq!(warm.edges, original.edges);
}

#[test]
fn shard_count_is_part_of_the_key() {
    let pts = cloud(300, 41);
    let e4 = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 2));
    let e7 = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(7, 2));
    assert_ne!(e4.key(&pts), e7.key(&pts));
    // Different partitions, same tree weights.
    let a = e4.emst(&pts);
    let b = e7.emst(&pts);
    assert_eq!(weight_multiset(&a.edges), weight_multiset(&b.edges));
}

#[test]
fn subset_queries_reuse_the_cache_and_match_brute_force() {
    let pts = cloud(500, 55);
    let engine = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(6, 2));
    engine.ingest(&pts);

    for (lo, hi) in [(0u32, 500u32), (100, 400), (7, 9)] {
        let subset: Vec<u32> = (lo..hi).collect();
        let r = engine.emst_subset(&pts, &subset);
        assert_eq!(r.outcome, CacheOutcome::Hit);
        assert!(r.build_work.is_zero());
        assert_eq!(r.edges.len(), subset.len() - 1);
        let sub_pts: Vec<Point<2>> = subset.iter().map(|&i| pts[i as usize]).collect();
        let brute = brute_force_emst(&sub_pts);
        assert_eq!(weight_multiset(&r.edges), weight_multiset(&brute), "{lo}..{hi}");
        // Edges are reported in original indices within the subset.
        assert!(r.edges.iter().all(|e| subset.contains(&e.u) && subset.contains(&e.v)));
    }

    // The full-range "subset" equals the full solve edge-for-edge.
    let full = engine.emst(&pts);
    let full_subset = engine.emst_subset(&pts, &(0..500).collect::<Vec<_>>());
    assert_eq!(sorted(full_subset.edges), sorted(full.edges));
}

fn sorted(mut edges: Vec<Edge>) -> Vec<Edge> {
    edges.sort_by_key(Edge::key);
    edges
}

#[test]
fn knn_and_hdbscan_ride_the_resident_cloud() {
    let pts = cloud(400, 71);
    let engine = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(4, 2));
    engine.ingest(&pts);

    // k-NN against the resident shards equals the brute-force answer.
    let q = Point::new([0.25f32, -0.125]);
    let r = engine.k_nearest(&pts, &q, 5);
    assert_eq!(r.outcome, CacheOutcome::Hit);
    assert!(r.query_work.node_visits > 0);
    let mut brute: Vec<(u32, f32)> =
        pts.iter().enumerate().map(|(i, p)| (i as u32, q.squared_distance(p))).collect();
    brute.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    brute.truncate(5);
    assert_eq!(r.neighbors, brute);

    // HDBSCAN through the engine (warm scratch) equals the direct fit.
    let params = Hdbscan { k_pts: 5, min_cluster_size: 10 };
    let served = engine.hdbscan(&pts, params);
    assert_eq!(served.outcome, CacheOutcome::Hit);
    let direct = params.fit(&Threads, &pts);
    assert_eq!(served.result.labels, direct.labels);
    assert_eq!(served.result.num_clusters, direct.num_clusters);
    let repeat = engine.hdbscan(&pts, params);
    assert_eq!(repeat.result.labels, direct.labels);
}

/// Tentpole property: N threads hammering one shared engine — mixed query
/// types, overlapping clouds, evictions forced by a tiny residency budget
/// — must produce answers bit-identical to a single-threaded engine,
/// including after the shared merge accelerator has absorbed floors and
/// candidates from many interleaved queries.
#[test]
fn concurrent_mixed_queries_are_bit_identical_to_single_threaded() {
    let clouds: Vec<Vec<Point<2>>> = (0..3).map(|s| cloud(350, 80 + s)).collect();
    let subset: Vec<u32> = (50..300).collect();
    let probe = Point::new([0.1f32, 0.2]);
    let params = Hdbscan { k_pts: 4, min_cluster_size: 8 };

    // Reference answers from a single-threaded engine with the same tiny
    // budget (so its cache churns the same way), each cloud queried twice
    // so the accel merge-back path is exercised there too.
    let single = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 2));
    let reference: Vec<_> = clouds
        .iter()
        .map(|c| {
            let full = single.emst(c);
            assert_eq!(single.emst(c).edges, full.edges, "single-thread warm must be stable");
            let sub = single.emst_subset(c, &subset);
            let knn = single.k_nearest(c, &probe, 7);
            let hdb = single.hdbscan(c, params);
            (full.edges, full.total_weight, sub.edges, knn.neighbors, hdb.result.labels)
        })
        .collect();

    let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 2));
    let (threads, rounds) = (8usize, 6usize);
    std::thread::scope(|s| {
        for t in 0..threads {
            let (engine, clouds, reference, subset, probe) =
                (&engine, &clouds, &reference, &subset, &probe);
            s.spawn(move || {
                for r in 0..rounds {
                    let ci = (t + r) % clouds.len();
                    let c = &clouds[ci];
                    let (edges, weight, sub, knn, labels) = &reference[ci];
                    match (t + r) % 4 {
                        0 => {
                            let q = engine.emst(c);
                            assert_eq!(&q.edges, edges, "thread {t} round {r} cloud {ci}");
                            assert_eq!(q.total_weight, *weight);
                        }
                        1 => assert_eq!(&engine.emst_subset(c, subset).edges, sub),
                        2 => assert_eq!(&engine.k_nearest(c, probe, 7).neighbors, knn),
                        _ => assert_eq!(&engine.hdbscan(c, params).result.labels, labels),
                    }
                }
            });
        }
    });

    // Every request terminated with exactly one cache outcome, the budget
    // held, and churn actually happened (3 clouds over 2 slots).
    let stats = engine.stats();
    assert_eq!(stats.hits + stats.misses + stats.reloads, (threads * rounds) as u64);
    assert!(engine.num_resident() <= 2);
    assert!(stats.evictions > 0, "tiny budget must force evictions");
    assert_eq!(stats.spill_failures, 0);

    // After all the churn, fresh queries still reproduce the exact bits —
    // the merged-back accelerator state changed the work, never the answer.
    for (ci, c) in clouds.iter().enumerate() {
        assert_eq!(engine.emst(c).edges, reference[ci].0);
    }

    // The whole hammering ran with instrumentation live (observability
    // defaults on): the per-op histograms saw every request and the trace
    // ring holds the most recent queries — proving the metrics path is
    // concurrency-safe without perturbing a single answered bit.
    assert!(engine.observability_enabled());
    let prom = engine.metrics_prometheus();
    let count_of = |op: &str| -> u64 {
        let needle = format!("emst_serve_op_seconds_count{{op=\"{op}\"}} ");
        let at = prom.find(&needle).unwrap_or_else(|| panic!("missing {needle} in {prom}"));
        prom[at + needle.len()..].split_whitespace().next().unwrap().parse().unwrap()
    };
    // 3 extra emst queries came from the re-check loop above.
    let total = count_of("emst") + count_of("subset") + count_of("knn") + count_of("hdbscan");
    assert_eq!(total, (threads * rounds) as u64 + 3);
    assert!(prom.contains("emst_serve_cache_events_total{event=\"eviction\"}"));
    let traces = engine.recent_traces(16);
    assert_eq!(traces.len(), 16, "ring must retain the most recent queries");
    assert!(traces.windows(2).all(|w| w[0].seq > w[1].seq), "traces must be newest-first");
}

/// Warm queries carry a full span breakdown: digest, per-round merge
/// deltas from the shard layer's `MergeRoundDetail`, and the accel
/// absorb — the per-query flight recorder the tentpole promises.
#[test]
fn warm_query_traces_expose_merge_round_spans() {
    let pts = cloud(500, 97);
    let engine = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(4, 2));
    engine.ingest(&pts);
    engine.emst(&pts);
    let trace = engine.recent_traces(1).pop().expect("trace recorded");
    assert_eq!(trace.op, "emst");
    assert_eq!(trace.outcome, "hit");
    assert!(trace.total_s > 0.0);
    let span = |name: &str| {
        trace
            .spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing span {name:?} in {:?}", trace.spans))
    };
    assert!(span("digest").fields.iter().any(|&(k, v)| k == "points" && v == 500));
    let round = span("merge.round");
    for key in ["round", "queries", "nodes", "distances"] {
        assert!(round.fields.iter().any(|&(k, _)| k == key), "merge.round misses {key}");
    }
    assert!(round.fields.iter().any(|&(k, v)| k == "round" && v == 1));
    span("absorb");
    // A cold query on a fresh engine additionally records the build span.
    let fresh = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(4, 2));
    fresh.emst(&pts);
    let cold = fresh.recent_traces(1).pop().unwrap();
    assert_eq!(cold.outcome, "miss");
    assert!(cold.spans.iter().any(|s| s.name == "build"));
}

/// One insert-then-delete mutation chain through the incremental engine,
/// checked against from-scratch oracles at every step: the delta-solved
/// tree's weight multiset must equal the brute-force EMST of the mutated
/// cloud, and deleting exactly the inserted points must round-trip to the
/// parent's own key and tree.
fn check_mutation_chain<S: ExecSpace>(
    space: S,
    traversal: Traversal,
    kind: Kind,
    n: usize,
    seed: u64,
) {
    let base: Vec<Point<2>> = kind.generate(n, seed);
    let engine = ServeEngine::<_, 2>::new(space, config_with(traversal, 4, 8));
    let key = engine.ingest(&base);
    let base_tree = weight_multiset(&engine.emst_by_key(key).unwrap().edges);

    // Jittered copies of existing members land in occupied shards; the
    // offset point may extend the Morton range of the last shard.
    let mut added: Vec<Point<2>> = base
        .iter()
        .step_by(n / 4)
        .take(3)
        .map(|p| Point::new([p[0] + 3e-4, p[1] - 2e-4]))
        .collect();
    added.push(Point::new([base[0][0] + 0.37, base[0][1] + 0.11]));
    let ins = engine.insert(key, &added).unwrap();
    assert_eq!(ins.n, n + added.len());
    verify_spanning_tree(ins.n, &ins.update.edges).unwrap();
    assert_eq!(
        weight_multiset(&ins.update.edges),
        weight_multiset(&brute_force_emst(&ins.points)),
        "insert diverged (kind {kind:?}, n {n}, seed {seed}, {traversal:?})"
    );

    // Delete a spread of ids from the mutated cloud.
    let ids = [0u32, (ins.n / 2) as u32, (ins.n - 1) as u32];
    let del = engine.delete(ins.key, &ids).unwrap();
    assert_eq!(del.n, ins.n - ids.len());
    verify_spanning_tree(del.n, &del.update.edges).unwrap();
    assert_eq!(
        weight_multiset(&del.update.edges),
        weight_multiset(&brute_force_emst(&del.points)),
        "delete diverged (kind {kind:?}, n {n}, seed {seed}, {traversal:?})"
    );

    // Round trip: deleting exactly the appended ids restores the parent
    // cloud bit-for-bit, so the content digest resolves straight back to
    // the original resident and the tree is the original tree.
    let appended: Vec<u32> = (n as u32..ins.n as u32).collect();
    let back = engine.delete(ins.key, &appended).unwrap();
    assert_eq!(back.key, key, "insert-then-delete must round-trip to the parent key");
    assert_eq!(weight_multiset(&back.update.edges), base_tree);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Random mutation chains across dataset generators, both traversals
    /// and the Serial/Threads backends all match from-scratch oracles.
    #[test]
    fn mutation_chains_match_from_scratch_oracles(
        seed in 0u64..512,
        kind_idx in 0usize..4,
        n in 60usize..140,
    ) {
        let kind = [Kind::Uniform, Kind::Normal, Kind::HaccLike, Kind::VisualVar][kind_idx];
        for traversal in [Traversal::Stackless, Traversal::Stack] {
            check_mutation_chain(Serial, traversal, kind, n, seed);
            check_mutation_chain(Threads, traversal, kind, n, seed);
        }
    }
}

/// Satellite: 8 threads concurrently mutating and querying one shared
/// engine, each on its own cloud lineage. Mutations of disjoint lineages
/// commute, so every thread's replies must be bit-identical to the same
/// chain replayed on a private single-threaded engine — that replay is a
/// legal serialization of any interleaving.
#[test]
fn concurrent_mutations_and_queries_are_bit_identical_to_serial_replays() {
    const THREADS: usize = 8;
    fn chain<S: ExecSpace>(
        engine: &ServeEngine<S, 2>,
        base: &[Point<2>],
    ) -> (Vec<Edge>, Vec<Edge>, Vec<Edge>) {
        let key = engine.ingest(base);
        let added: Vec<Point<2>> =
            base[..5].iter().map(|p| Point::new([p[0] + 1e-3, p[1] + 2e-3])).collect();
        let ins = engine.insert(key, &added).unwrap();
        let warm = engine.emst(&ins.points);
        let appended: Vec<u32> = (base.len() as u32..ins.n as u32).collect();
        let back = engine.delete(ins.key, &appended).unwrap();
        assert_eq!(back.key, key, "delete of the inserted ids must round-trip");
        (ins.update.edges, warm.edges, back.update.edges)
    }

    let bases: Vec<Vec<Point<2>>> = (0..THREADS).map(|t| cloud(260, 900 + t as u64)).collect();
    let expected: Vec<_> = bases
        .iter()
        .map(|b| chain(&ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 32)), b))
        .collect();

    let shared = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 32));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (shared, bases, expected) = (&shared, &bases, &expected);
            s.spawn(move || {
                let got = chain(shared, &bases[t]);
                assert_eq!(got, expected[t], "thread {t} diverged from its serial replay");
            });
        }
    });
    let stats = shared.stats();
    assert_eq!(stats.inserts, THREADS as u64);
    assert_eq!(stats.deletes, THREADS as u64);
    assert_eq!(stats.query_panics, 0);
    assert_eq!(stats.deadline_exceeded, 0);
}

/// Satellite: deadline propagation into the incremental local-solve. A
/// fault-plan stall on spill reads makes reloading the evicted parent
/// consume the whole deadline budget, so the dirty-shard re-solve must
/// give up at its deadline seam with the honest typed error instead of a
/// late answer — and count it.
#[test]
fn stalled_incremental_update_honors_the_deadline() {
    let dir = std::env::temp_dir().join(format!("emst_pr10_stall_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut cfg = ServeConfig::new(4, 1);
    cfg.spill_dir = Some(dir.clone());
    cfg.deadline = Some(Duration::from_millis(40));
    cfg.fault_plan = Some(Arc::new(FaultPlan::parse("seed=7;read=stall:120@1.0").unwrap()));
    let engine = ServeEngine::<_, 2>::new(Serial, cfg);
    let a = cloud(300, 1);
    let b = cloud(300, 2);
    let key = engine.ingest(&a);
    engine.ingest(&b); // capacity 1: evicts cloud A to its spill file
    assert_eq!(engine.num_resident(), 1);

    let before = engine.stats().deadline_exceeded;
    match engine.insert(key, &[Point::new([0.5f32, 0.5])]) {
        Err(ServeError::DeadlineExceeded(k)) => assert_eq!(k, key),
        other => panic!("stalled update must exceed its deadline, got {other:?}"),
    }
    assert!(engine.stats().deadline_exceeded > before, "the miss must be counted");
    std::fs::remove_dir_all(&dir).ok();
}
