//! Cross-crate integration: every EMST implementation in the workspace must
//! produce a minimum spanning tree with the same weight multiset on every
//! dataset archetype, every backend, and both metrics.

use emst::core::brute::brute_force_emst;
use emst::core::edge::{verify_spanning_tree, weight_multiset};
use emst::core::{EdgeSelection, EmstConfig, SingleTreeBoruvka};
use emst::datasets::Kind;
use emst::exec::{GpuSim, Serial, Threads};
use emst::geometry::Point;
use emst::kdtree::{bentley_friedman_emst, dual_tree_emst};
use emst::wspd::wspd_emst;

const ALL_KINDS: [Kind; 8] = [
    Kind::Uniform,
    Kind::Normal,
    Kind::VisualVar,
    Kind::HaccLike,
    Kind::GeoLifeLike,
    Kind::NgsimLike,
    Kind::PortoTaxiLike,
    Kind::RoadNetworkLike,
];

fn check_all_impls<const D: usize>(points: &[Point<D>], label: &str) {
    let n = points.len();
    let reference = SingleTreeBoruvka::new(points).run(&Serial, &EmstConfig::default());
    verify_spanning_tree(n, &reference.edges).unwrap_or_else(|e| panic!("{label}: {e}"));
    let ref_multiset = weight_multiset(&reference.edges);

    // Single-tree on every backend and both edge-selection strategies.
    for selection in [EdgeSelection::Locked, EdgeSelection::Atomic64] {
        let cfg = EmstConfig { edge_selection: selection, ..Default::default() };
        let threads = SingleTreeBoruvka::new(points).run(&Threads, &cfg);
        assert_eq!(weight_multiset(&threads.edges), ref_multiset, "{label} threads {selection:?}");
        let gpu = SingleTreeBoruvka::new(points).run(&GpuSim::new(), &cfg);
        assert_eq!(weight_multiset(&gpu.edges), ref_multiset, "{label} gpusim {selection:?}");
    }

    // Both baselines.
    let dual = dual_tree_emst(points);
    verify_spanning_tree(n, &dual.edges).unwrap();
    assert_eq!(weight_multiset(&dual.edges), ref_multiset, "{label} dual-tree");
    for parallel in [false, true] {
        let wspd = wspd_emst(points, parallel);
        verify_spanning_tree(n, &wspd.edges).unwrap();
        assert_eq!(weight_multiset(&wspd.edges), ref_multiset, "{label} wspd({parallel})");
    }
}

#[test]
fn all_archetypes_2d_agree_across_implementations() {
    for kind in ALL_KINDS {
        let points: Vec<Point<2>> = kind.generate(700, 0x2D);
        check_all_impls(&points, &format!("{kind:?}/2D"));
    }
}

#[test]
fn all_archetypes_3d_agree_across_implementations() {
    for kind in ALL_KINDS {
        let points: Vec<Point<3>> = kind.generate(500, 0x3D);
        check_all_impls(&points, &format!("{kind:?}/3D"));
    }
}

#[test]
fn small_inputs_match_brute_force_everywhere() {
    for kind in [Kind::Uniform, Kind::HaccLike, Kind::GeoLifeLike] {
        for n in [2usize, 3, 5, 17, 64] {
            let points: Vec<Point<2>> = kind.generate(n, n as u64);
            let brute = weight_multiset(&brute_force_emst(&points));
            let single = SingleTreeBoruvka::new(&points).run(&Serial, &EmstConfig::default());
            assert_eq!(weight_multiset(&single.edges), brute, "{kind:?} n={n} single");
            assert_eq!(
                weight_multiset(&dual_tree_emst(&points).edges),
                brute,
                "{kind:?} n={n} dual"
            );
            assert_eq!(
                weight_multiset(&wspd_emst(&points, false).edges),
                brute,
                "{kind:?} n={n} wspd"
            );
            assert_eq!(
                weight_multiset(&bentley_friedman_emst(&points)),
                brute,
                "{kind:?} n={n} bf"
            );
        }
    }
}

#[test]
fn subsampled_dataset_remains_consistent() {
    // The Fig. 7 methodology: subsample, then solve.
    let parent: Vec<Point<3>> = Kind::HaccLike.generate(5_000, 77);
    for m in [50usize, 500, 2_000] {
        let sub = emst::datasets::sample_preserving_distribution(&parent, m, 9);
        check_all_impls(&sub, &format!("hacc-subsample-{m}"));
    }
}

#[test]
fn total_weights_match_in_f64_too() {
    let points: Vec<Point<2>> = Kind::Normal.generate(3_000, 5);
    let a = SingleTreeBoruvka::new(&points).run(&Threads, &EmstConfig::default()).total_weight;
    let b = wspd_emst(&points, true).total_weight;
    let c = dual_tree_emst(&points).total_weight;
    assert!((a - b).abs() < 1e-6 * a);
    assert!((a - c).abs() < 1e-6 * a);
}
