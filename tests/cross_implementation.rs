//! Cross-crate integration: every EMST implementation in the workspace must
//! produce a minimum spanning tree with the same weight multiset on every
//! dataset archetype, every backend, and both metrics.

use emst::core::brute::brute_force_emst;
use emst::core::edge::{verify_spanning_tree, weight_multiset};
use emst::core::{Edge, EdgeSelection, EmstConfig, SingleTreeBoruvka, Traversal};
use emst::datasets::Kind;
use emst::exec::{ChaosSerial, GpuSim, Serial, Threads};
use emst::geometry::Point;
use emst::kdtree::{bentley_friedman_emst, dual_tree_emst};
use emst::shard::emst_sharded;
use emst::wspd::wspd_emst;
use proptest::prelude::*;

/// The shard counts the sharded solver is cross-checked at everywhere.
const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 16];

const ALL_KINDS: [Kind; 8] = [
    Kind::Uniform,
    Kind::Normal,
    Kind::VisualVar,
    Kind::HaccLike,
    Kind::GeoLifeLike,
    Kind::NgsimLike,
    Kind::PortoTaxiLike,
    Kind::RoadNetworkLike,
];

fn check_all_impls<const D: usize>(points: &[Point<D>], label: &str) {
    let n = points.len();
    let reference = SingleTreeBoruvka::new(points).run(&Serial, &EmstConfig::default());
    verify_spanning_tree(n, &reference.edges).unwrap_or_else(|e| panic!("{label}: {e}"));
    let ref_multiset = weight_multiset(&reference.edges);

    // Single-tree on every backend, both edge-selection strategies and
    // both traversal settings.
    for selection in [EdgeSelection::Locked, EdgeSelection::Atomic64] {
        for traversal in [Traversal::Stack, Traversal::Stackless] {
            let cfg = EmstConfig { edge_selection: selection, traversal, ..Default::default() };
            let threads = SingleTreeBoruvka::new(points).run(&Threads, &cfg);
            assert_eq!(
                weight_multiset(&threads.edges),
                ref_multiset,
                "{label} threads {selection:?} {traversal:?}"
            );
            let gpu = SingleTreeBoruvka::new(points).run(&GpuSim::new(), &cfg);
            assert_eq!(
                weight_multiset(&gpu.edges),
                ref_multiset,
                "{label} gpusim {selection:?} {traversal:?}"
            );
        }
    }

    // Both baselines.
    let dual = dual_tree_emst(points);
    verify_spanning_tree(n, &dual.edges).unwrap();
    assert_eq!(weight_multiset(&dual.edges), ref_multiset, "{label} dual-tree");
    for parallel in [false, true] {
        let wspd = wspd_emst(points, parallel);
        verify_spanning_tree(n, &wspd.edges).unwrap();
        assert_eq!(weight_multiset(&wspd.edges), ref_multiset, "{label} wspd({parallel})");
    }
}

#[test]
fn all_archetypes_2d_agree_across_implementations() {
    for kind in ALL_KINDS {
        let points: Vec<Point<2>> = kind.generate(700, 0x2D);
        check_all_impls(&points, &format!("{kind:?}/2D"));
    }
}

#[test]
fn all_archetypes_3d_agree_across_implementations() {
    for kind in ALL_KINDS {
        let points: Vec<Point<3>> = kind.generate(500, 0x3D);
        check_all_impls(&points, &format!("{kind:?}/3D"));
    }
}

#[test]
fn small_inputs_match_brute_force_everywhere() {
    for kind in [Kind::Uniform, Kind::HaccLike, Kind::GeoLifeLike] {
        for n in [2usize, 3, 5, 17, 64] {
            let points: Vec<Point<2>> = kind.generate(n, n as u64);
            let brute = weight_multiset(&brute_force_emst(&points));
            let single = SingleTreeBoruvka::new(&points).run(&Serial, &EmstConfig::default());
            assert_eq!(weight_multiset(&single.edges), brute, "{kind:?} n={n} single");
            assert_eq!(
                weight_multiset(&dual_tree_emst(&points).edges),
                brute,
                "{kind:?} n={n} dual"
            );
            assert_eq!(
                weight_multiset(&wspd_emst(&points, false).edges),
                brute,
                "{kind:?} n={n} wspd"
            );
            assert_eq!(
                weight_multiset(&bentley_friedman_emst(&points)),
                brute,
                "{kind:?} n={n} bf"
            );
        }
    }
}

#[test]
fn subsampled_dataset_remains_consistent() {
    // The Fig. 7 methodology: subsample, then solve.
    let parent: Vec<Point<3>> = Kind::HaccLike.generate(5_000, 77);
    for m in [50usize, 500, 2_000] {
        let sub = emst::datasets::sample_preserving_distribution(&parent, m, 9);
        check_all_impls(&sub, &format!("hacc-subsample-{m}"));
    }
}

/// Acceptance: for every generator at n = 2000 in 2D and 3D, the sharded
/// solver's weight multiset equals the monolithic single-tree solve for
/// K ∈ {1, 2, 7, 16}.
fn check_sharded_matches_monolithic<const D: usize>(points: &[Point<D>], label: &str) {
    let mono = SingleTreeBoruvka::new(points).run(&Threads, &EmstConfig::default());
    let reference = weight_multiset(&mono.edges);
    for k in SHARD_COUNTS {
        let sharded = emst_sharded(points, k);
        verify_spanning_tree(points.len(), &sharded.edges)
            .unwrap_or_else(|e| panic!("{label} K={k}: {e}"));
        assert_eq!(weight_multiset(&sharded.edges), reference, "{label} K={k}");
        assert_eq!(sharded.stats.shard_sizes.iter().sum::<usize>(), points.len());
    }
}

#[test]
fn sharded_matches_monolithic_on_all_generators_2d() {
    for kind in ALL_KINDS {
        let points: Vec<Point<2>> = kind.generate(2000, 0x5A);
        check_sharded_matches_monolithic(&points, &format!("{kind:?}/2D"));
    }
}

#[test]
fn sharded_matches_monolithic_on_all_generators_3d() {
    for kind in ALL_KINDS {
        let points: Vec<Point<3>> = kind.generate(2000, 0x5B);
        check_sharded_matches_monolithic(&points, &format!("{kind:?}/3D"));
    }
}

#[test]
fn sharded_handles_shards_smaller_than_the_leaf_size() {
    // More shards than points: most shards are empty, the rest hold a
    // single point, and every local solve degenerates to "no edges".
    for n in [2usize, 3, 5, 9] {
        let points: Vec<Point<2>> = Kind::Uniform.generate(n, n as u64);
        let brute = weight_multiset(&brute_force_emst(&points));
        for k in SHARD_COUNTS {
            let sharded = emst_sharded(&points, k);
            verify_spanning_tree(n, &sharded.edges).unwrap();
            assert_eq!(weight_multiset(&sharded.edges), brute, "n={n} K={k}");
        }
    }
}

#[test]
fn sharded_handles_all_duplicate_points_in_one_shard() {
    let points = vec![Point::new([0.125f32, -0.25]); 50];
    for k in SHARD_COUNTS {
        let sharded = emst_sharded(&points, k);
        verify_spanning_tree(50, &sharded.edges).unwrap();
        assert_eq!(sharded.total_weight, 0.0, "K={k}");
        if k > 1 {
            // Identical Morton codes cannot straddle a shard cut.
            assert_eq!(sharded.stats.shard_sizes.iter().filter(|&&s| s > 0).count(), 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn sharded_emst_equals_single_tree_and_brute_force(
        n in 2usize..120,
        seed in 0u64..10_000,
        k in prop::sample::select(SHARD_COUNTS.to_vec()),
    ) {
        let points: Vec<Point<2>> = Kind::Uniform.generate(n, seed);
        let sharded = emst_sharded(&points, k);
        prop_assert!(verify_spanning_tree(n, &sharded.edges).is_ok());
        let multiset = weight_multiset(&sharded.edges);
        let mono = SingleTreeBoruvka::new(&points).run(&Serial, &EmstConfig::default());
        prop_assert_eq!(&multiset, &weight_multiset(&mono.edges));
        prop_assert_eq!(&multiset, &weight_multiset(&brute_force_emst(&points)));
    }

    #[test]
    fn sharded_emst_on_clustered_integer_points(
        n in 2usize..80,
        seed in 0u64..1000,
        k in prop::sample::select(SHARD_COUNTS.to_vec()),
    ) {
        // Tiny integer range: heavy duplicate and tie pressure, including
        // shards below the leaf size and duplicate runs pinned to a single
        // shard by the Morton-range cut snapping.
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<Point<2>> = (0..n)
            .map(|_| Point::new([
                rng.random_range(0i32..4) as f32,
                rng.random_range(0i32..4) as f32,
            ]))
            .collect();
        let sharded = emst_sharded(&points, k);
        prop_assert!(verify_spanning_tree(n, &sharded.edges).is_ok());
        prop_assert_eq!(
            weight_multiset(&sharded.edges),
            weight_multiset(&brute_force_emst(&points))
        );
    }
}

#[test]
fn total_weights_match_in_f64_too() {
    let points: Vec<Point<2>> = Kind::Normal.generate(3_000, 5);
    let a = SingleTreeBoruvka::new(&points).run(&Threads, &EmstConfig::default()).total_weight;
    let b = wspd_emst(&points, true).total_weight;
    let c = dual_tree_emst(&points).total_weight;
    assert!((a - b).abs() < 1e-6 * a);
    assert!((a - c).abs() < 1e-6 * a);
}

/// Runs one configuration and returns the edge list in canonical order.
fn sorted_edges(points: &[Point<2>], traversal: Traversal, chaos_seed: Option<u64>) -> Vec<Edge> {
    let cfg = EmstConfig { traversal, ..Default::default() };
    let mut edges = match chaos_seed {
        Some(seed) => SingleTreeBoruvka::new(points).run(&ChaosSerial::new(seed), &cfg).edges,
        None => SingleTreeBoruvka::new(points).run(&Threads, &cfg).edges,
    };
    edges.sort_by_key(Edge::key);
    edges
}

/// The stack and stackless walkers must produce *bit-identical* trees (not
/// just equal weight multisets): both are minima over the same candidate
/// set under the same `(distance, rank)` order, so every chosen edge —
/// endpoints and weight bits — must coincide, on every backend including
/// the order-shuffling `ChaosSerial`.
#[test]
fn stack_and_stackless_trees_are_bit_identical_on_all_backends() {
    for kind in [Kind::Uniform, Kind::VisualVar, Kind::GeoLifeLike] {
        let points: Vec<Point<2>> = kind.generate(800, 0x5B);
        let reference = sorted_edges(&points, Traversal::Stack, None);
        assert_eq!(sorted_edges(&points, Traversal::Stackless, None), reference, "{kind:?}");
        for space_edges in [
            sorted_edges(&points, Traversal::Stackless, Some(3)),
            {
                let cfg = EmstConfig { traversal: Traversal::Stackless, ..Default::default() };
                let mut e = SingleTreeBoruvka::new(&points).run(&Serial, &cfg).edges;
                e.sort_by_key(Edge::key);
                e
            },
            {
                let cfg = EmstConfig { traversal: Traversal::Stackless, ..Default::default() };
                let mut e = SingleTreeBoruvka::new(&points).run(&GpuSim::new(), &cfg).edges;
                e.sort_by_key(Edge::key);
                e
            },
        ] {
            assert_eq!(space_edges, reference, "{kind:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite of the traversal refactor: under duplicate/tie pressure
    /// (integer grids plus repeated blocks) and with the component-skip
    /// predicate active (default config), the stack and stackless walkers
    /// must agree bit-for-bit across Serial, Threads, GpuSim and the
    /// order-shuffling ChaosSerial backends.
    #[test]
    fn traversals_bit_identical_under_tie_pressure_on_every_backend(
        n in 2usize..120,
        seed in 0u64..400,
        duplicates in 0usize..3,
        chaos_seed in 0u64..8,
    ) {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut points: Vec<Point<2>> = (0..n)
            .map(|_| Point::new([
                rng.random_range(0i32..7) as f32,
                rng.random_range(0i32..7) as f32,
            ]))
            .collect();
        for _ in 0..duplicates {
            let p = points[0];
            points.extend(std::iter::repeat_n(p, 5));
        }
        let stack = sorted_edges(&points, Traversal::Stack, None);
        prop_assert_eq!(&sorted_edges(&points, Traversal::Stackless, None), &stack);
        prop_assert_eq!(&sorted_edges(&points, Traversal::Stack, Some(chaos_seed)), &stack);
        prop_assert_eq!(&sorted_edges(&points, Traversal::Stackless, Some(chaos_seed)), &stack);
    }
}
