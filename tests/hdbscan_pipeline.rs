//! End-to-end HDBSCAN* integration (the paper's §4.5 application).

use emst::core::brute::brute_force_mst;
use emst::core::edge::{verify_spanning_tree, weight_multiset};
use emst::core::{EmstConfig, SingleTreeBoruvka};
use emst::datasets::Kind;
use emst::exec::{GpuSim, Serial, Threads};
use emst::geometry::{brute_force_core_distances_sq, MutualReachability, Point};
use emst::hdbscan::{core_distances_sq, Hdbscan, NOISE};
use emst::wspd::wspd_emst_with_metric;

#[test]
fn mrd_mst_agrees_between_single_tree_and_wspd_on_archetypes() {
    for kind in [Kind::Uniform, Kind::VisualVar, Kind::HaccLike, Kind::NgsimLike] {
        for k_pts in [2usize, 5, 16] {
            let points: Vec<Point<2>> = kind.generate(400, k_pts as u64);
            let core = core_distances_sq(&Threads, &points, k_pts);
            assert_eq!(core, brute_force_core_distances_sq(&points, k_pts), "{kind:?} core");
            let metric = MutualReachability::new(&core);

            let single = SingleTreeBoruvka::new(&points).run_with_metric(
                &Serial,
                &EmstConfig::default(),
                &metric,
            );
            verify_spanning_tree(points.len(), &single.edges).unwrap();
            let wspd = wspd_emst_with_metric(&points, false, &metric);
            let brute = brute_force_mst(&points, &metric);
            assert_eq!(
                weight_multiset(&single.edges),
                weight_multiset(&brute),
                "{kind:?} k={k_pts} single"
            );
            assert_eq!(
                weight_multiset(&wspd.edges),
                weight_multiset(&brute),
                "{kind:?} k={k_pts} wspd"
            );
        }
    }
}

#[test]
fn mrd_total_weight_dominates_euclidean() {
    // d_mreach >= d_euclid pointwise, so the MRD MST cannot be lighter.
    let points: Vec<Point<2>> = Kind::VisualVar.generate(800, 11);
    let euc = SingleTreeBoruvka::new(&points).run(&Threads, &EmstConfig::default());
    let core = core_distances_sq(&Threads, &points, 8);
    let metric = MutualReachability::new(&core);
    let mrd =
        SingleTreeBoruvka::new(&points).run_with_metric(&Threads, &EmstConfig::default(), &metric);
    assert!(mrd.total_weight >= euc.total_weight);
}

#[test]
fn clustering_is_backend_independent() {
    let points: Vec<Point<2>> = Kind::VisualVar.generate(2_000, 21);
    let params = Hdbscan { k_pts: 6, min_cluster_size: 20 };
    let a = params.fit(&Serial, &points);
    let b = params.fit(&Threads, &points);
    let c = params.fit(&GpuSim::new(), &points);
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.labels, c.labels);
    assert_eq!(a.num_clusters, c.num_clusters);
}

#[test]
fn hdbscan_separates_well_separated_blobs_with_noise() {
    // Deterministic geometry: two dense grids far apart + uniform scatter.
    let mut points: Vec<Point<2>> = vec![];
    for x in 0..12 {
        for y in 0..12 {
            points.push(Point::new([x as f32 * 0.01, y as f32 * 0.01]));
            points.push(Point::new([100.0 + x as f32 * 0.01, y as f32 * 0.01]));
        }
    }
    // scatter far from both
    for i in 0..20 {
        points.push(Point::new([45.0 + i as f32 * 0.5, 300.0 + (i % 7) as f32 * 31.0]));
    }
    let r = Hdbscan { k_pts: 4, min_cluster_size: 30 }.fit(&Threads, &points);
    assert_eq!(r.num_clusters, 2, "labels tail: {:?}", &r.labels[288..]);
    // the scatter is noise
    assert!(r.labels[288..].iter().all(|&l| l == NOISE));
    // blob memberships are coherent
    assert_eq!(r.labels[0], r.labels[2]);
    assert_ne!(r.labels[0], r.labels[1]);
}

#[test]
fn k_pts_one_reduces_to_euclidean_mst() {
    let points: Vec<Point<3>> = Kind::HaccLike.generate(600, 31);
    let euc = SingleTreeBoruvka::new(&points).run(&Serial, &EmstConfig::default());
    let core = core_distances_sq(&Serial, &points, 1);
    assert!(core.iter().all(|&c| c == 0.0));
    let metric = MutualReachability::new(&core);
    let mrd =
        SingleTreeBoruvka::new(&points).run_with_metric(&Serial, &EmstConfig::default(), &metric);
    assert_eq!(weight_multiset(&euc.edges), weight_multiset(&mrd.edges));
}
