//! Seeded chaos stress: many threads hammer one serving engine while a
//! deterministic [`FaultPlan`] injects storage failures (EIO, short
//! writes, bit flips, stalls) into every spill write and reload read.
//!
//! The robustness contract under test: **every answer is either
//! bit-identical to the fault-free reference or an honest typed error** —
//! never silently wrong edges, never a panic, never a wedged engine.
//!
//! The seed comes from `EMST_CHAOS_SEED` (default 42) so CI can sweep a
//! matrix and a failure reproduces from the seed alone.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

use emst::datasets::{generate_2d, DatasetSpec};
use emst::exec::Serial;
use emst::geometry::Point;
use emst::hdbscan::Hdbscan;
use emst::serve::{FaultKind, FaultPlan, FaultSite, ServeConfig, ServeEngine, ServeError};

fn chaos_seed() -> u64 {
    std::env::var("EMST_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

fn cloud(n: usize, seed: u64) -> Vec<Point<2>> {
    generate_2d(&DatasetSpec::hacc_like(n, seed))
}

/// An error is "honest" when it names a detected failure; anything else
/// (or a wrong answer) is a contract violation.
fn is_honest(e: &ServeError) -> bool {
    matches!(
        e,
        ServeError::UnknownKey(_)
            | ServeError::Spill(_)
            | ServeError::DigestMismatch(_)
            | ServeError::DeadlineExceeded(_)
            | ServeError::Overloaded
            | ServeError::QueryPanic(_)
    )
}

/// Storage chaos: injected write/read faults while 8 threads run mixed
/// positional and by-key queries over more clouds than the residency
/// budget holds, so eviction→spill→reload churn passes through the fault
/// plan constantly.
#[test]
fn storage_faults_never_produce_wrong_bits() {
    let seed = chaos_seed();
    let clouds: Vec<Vec<Point<2>>> = (0..3).map(|s| cloud(350, 100 + s)).collect();
    let subset: Vec<u32> = (40..310).collect();
    let probe = Point::new([0.3f32, -0.2]);
    let params = Hdbscan { k_pts: 4, min_cluster_size: 8 };

    // Fault-free reference bits, from an engine with the same shard count.
    let clean = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 3));
    let reference: Vec<_> = clouds
        .iter()
        .map(|c| {
            (
                clean.emst(c).edges,
                clean.emst_subset(c, &subset).edges,
                clean.k_nearest(c, &probe, 7).neighbors,
                clean.hdbscan(c, params).result.labels,
            )
        })
        .collect();

    let plan = Arc::new(
        FaultPlan::new(seed)
            .with_rule(FaultSite::Write, FaultKind::Eio, 0.10)
            .with_rule(FaultSite::Write, FaultKind::ShortWrite, 0.10)
            .with_rule(FaultSite::Write, FaultKind::BitFlip, 0.10)
            .with_rule(FaultSite::Write, FaultKind::Stall(1), 0.05)
            .with_rule(FaultSite::Read, FaultKind::BitFlip, 0.20)
            .with_rule(FaultSite::Read, FaultKind::Eio, 0.10),
    );
    let mut cfg = ServeConfig::new(4, 2); // 3 clouds over 2 slots: constant churn
    cfg.fault_plan = Some(Arc::clone(&plan));
    cfg.spill_retries = 1;
    let engine = ServeEngine::<_, 2>::new(Serial, cfg);
    let keys: Vec<_> = clouds.iter().map(|c| engine.key(c)).collect();

    let honest_errors = AtomicU64::new(0);
    let answers = AtomicU64::new(0);
    let (threads, rounds) = (8usize, 8usize);
    std::thread::scope(|s| {
        for t in 0..threads {
            let (engine, clouds, keys, reference, subset, probe) =
                (&engine, &clouds, &keys, &reference, &subset, &probe);
            let (honest_errors, answers) = (&honest_errors, &answers);
            s.spawn(move || {
                for r in 0..rounds {
                    let ci = (t + r) % clouds.len();
                    let c = &clouds[ci];
                    let (edges, sub, knn, labels) = &reference[ci];
                    // Positional queries rebuild from the presented points
                    // on any storage failure, so they must *always* answer
                    // with the reference bits; by-key queries may hit a
                    // poisoned spill and are allowed an honest error.
                    let outcome: Result<(), ServeError> = match (t + r) % 5 {
                        0 => {
                            assert_eq!(&engine.emst(c).edges, edges, "t{t} r{r} cloud {ci}");
                            Ok(())
                        }
                        1 => engine.emst_by_key(keys[ci]).map(|resp| {
                            assert_eq!(&resp.edges, edges, "t{t} r{r} cloud {ci} by key");
                        }),
                        2 => engine.emst_subset_by_key(keys[ci], subset).map(|resp| {
                            assert_eq!(&resp.edges, sub, "t{t} r{r} cloud {ci} subset");
                        }),
                        3 => engine.k_nearest_by_key(keys[ci], probe, 7).map(|resp| {
                            assert_eq!(&resp.neighbors, knn, "t{t} r{r} cloud {ci} knn");
                        }),
                        _ => engine.hdbscan_by_key(keys[ci], params).map(|resp| {
                            assert_eq!(&resp.result.labels, labels, "t{t} r{r} cloud {ci} hdbscan");
                        }),
                    };
                    match outcome {
                        Ok(()) => {
                            answers.fetch_add(1, Relaxed);
                        }
                        Err(e) => {
                            assert!(is_honest(&e), "dishonest error at t{t} r{r}: {e}");
                            honest_errors.fetch_add(1, Relaxed);
                        }
                    }
                }
            });
        }
    });

    // Every request terminated, one way or the other.
    assert_eq!(
        answers.load(Relaxed) + honest_errors.load(Relaxed),
        (threads * rounds) as u64,
        "no request may vanish"
    );
    assert!(plan.injected() > 0, "the chaos plan never fired — the test is vacuous");
    let stats = engine.stats();
    assert_eq!(
        stats.artifact_restores + stats.artifact_rebuilds,
        stats.reloads,
        "every reload is exactly one restore or one rebuild: {stats:?}"
    );
    assert!(stats.evictions > 0, "3 clouds over 2 slots must churn");

    // The engine is not wedged: with faults still active, positional
    // queries keep reproducing the exact reference bits.
    for (ci, c) in clouds.iter().enumerate() {
        assert_eq!(engine.emst(c).edges, reference[ci].0, "post-chaos cloud {ci}");
    }
}

/// Pressure chaos: admission control and zero deadlines on top of storage
/// faults. Guarded queries must split cleanly into exact answers and
/// honest `DeadlineExceeded`/`Overloaded`/storage errors, the in-flight
/// gate must drain back to zero, and unguarded positional queries must
/// stay exact throughout.
#[test]
fn pressure_and_deadlines_shed_honestly() {
    let seed = chaos_seed().wrapping_add(1);
    let pts = cloud(400, 200);
    let reference = {
        let clean = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 2));
        clean.emst(&pts).edges
    };

    let plan =
        Arc::new(FaultPlan::new(seed).with_rule(FaultSite::Write, FaultKind::Eio, 0.15).with_rule(
            FaultSite::Read,
            FaultKind::BitFlip,
            0.15,
        ));
    let mut cfg = ServeConfig::new(4, 2);
    cfg.fault_plan = Some(plan);
    cfg.max_in_flight = 4; // half the hammering threads
    cfg.deadline = Some(Duration::ZERO); // every guarded merge is late
    let engine = ServeEngine::<_, 2>::new(Serial, cfg);
    let key = engine.ingest(&pts);

    let exact = AtomicU64::new(0);
    let honest = AtomicU64::new(0);
    let threads = 8usize;
    let rounds = 6usize;
    std::thread::scope(|s| {
        for t in 0..threads {
            let (engine, pts, reference) = (&engine, &pts, &reference);
            let (exact, honest) = (&exact, &honest);
            s.spawn(move || {
                for r in 0..rounds {
                    if (t + r) % 2 == 0 {
                        // Unguarded positional query: no deadline, no gate —
                        // must answer exactly even under storage faults.
                        assert_eq!(&engine.emst(pts).edges, reference, "t{t} r{r}");
                        exact.fetch_add(1, Relaxed);
                    } else {
                        match engine.emst_by_key(key) {
                            Ok(resp) => {
                                assert_eq!(&resp.edges, reference, "t{t} r{r} guarded");
                                exact.fetch_add(1, Relaxed);
                            }
                            Err(e) => {
                                assert!(is_honest(&e), "dishonest error at t{t} r{r}: {e}");
                                honest.fetch_add(1, Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });

    assert_eq!(exact.load(Relaxed) + honest.load(Relaxed), (threads * rounds) as u64);
    let stats = engine.stats();
    // A zero deadline means a guarded query that reaches its merge always
    // errs, so every guarded request landed in an honest bucket (either
    // shed at the gate, failed reload, or the deadline itself).
    assert_eq!(honest.load(Relaxed), (threads * rounds / 2) as u64);
    assert!(stats.deadline_exceeded > 0, "the deadline must actually fire: {stats:?}");
    // The gate drained: a fresh guarded query is admitted (and then honest).
    match engine.emst_by_key(key) {
        Err(ServeError::Overloaded) => panic!("in-flight tokens leaked"),
        Err(e) => assert!(is_honest(&e), "{e}"),
        Ok(resp) => assert_eq!(resp.edges, reference),
    }
}
