//! Seeded chaos stress: many threads hammer one serving engine while a
//! deterministic [`FaultPlan`] injects storage failures (EIO, short
//! writes, bit flips, stalls) into every spill write and reload read.
//!
//! The robustness contract under test: **every answer is either
//! bit-identical to the fault-free reference or an honest typed error** —
//! never silently wrong edges, never a panic, never a wedged engine.
//!
//! The seed comes from `EMST_CHAOS_SEED` (default 42) so CI can sweep a
//! matrix and a failure reproduces from the seed alone.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

use emst::datasets::{generate_2d, DatasetSpec};
use emst::exec::Serial;
use emst::geometry::Point;
use emst::hdbscan::Hdbscan;
use emst::serve::{FaultKind, FaultPlan, FaultSite, ServeConfig, ServeEngine, ServeError};

fn chaos_seed() -> u64 {
    std::env::var("EMST_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

fn cloud(n: usize, seed: u64) -> Vec<Point<2>> {
    generate_2d(&DatasetSpec::hacc_like(n, seed))
}

/// An error is "honest" when it names a detected failure; anything else
/// (or a wrong answer) is a contract violation.
fn is_honest(e: &ServeError) -> bool {
    matches!(
        e,
        ServeError::UnknownKey(_)
            | ServeError::Spill(_)
            | ServeError::DigestMismatch(_)
            | ServeError::DeadlineExceeded(_)
            | ServeError::Overloaded
            | ServeError::QueryPanic(_)
    )
}

/// Storage chaos: injected write/read faults while 8 threads run mixed
/// positional and by-key queries over more clouds than the residency
/// budget holds, so eviction→spill→reload churn passes through the fault
/// plan constantly.
#[test]
fn storage_faults_never_produce_wrong_bits() {
    let seed = chaos_seed();
    let clouds: Vec<Vec<Point<2>>> = (0..3).map(|s| cloud(350, 100 + s)).collect();
    let subset: Vec<u32> = (40..310).collect();
    let probe = Point::new([0.3f32, -0.2]);
    let params = Hdbscan { k_pts: 4, min_cluster_size: 8 };

    // Fault-free reference bits, from an engine with the same shard count.
    let clean = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 3));
    let reference: Vec<_> = clouds
        .iter()
        .map(|c| {
            (
                clean.emst(c).edges,
                clean.emst_subset(c, &subset).edges,
                clean.k_nearest(c, &probe, 7).neighbors,
                clean.hdbscan(c, params).result.labels,
            )
        })
        .collect();

    let plan = Arc::new(
        FaultPlan::new(seed)
            .with_rule(FaultSite::Write, FaultKind::Eio, 0.10)
            .with_rule(FaultSite::Write, FaultKind::ShortWrite, 0.10)
            .with_rule(FaultSite::Write, FaultKind::BitFlip, 0.10)
            .with_rule(FaultSite::Write, FaultKind::Stall(1), 0.05)
            .with_rule(FaultSite::Read, FaultKind::BitFlip, 0.20)
            .with_rule(FaultSite::Read, FaultKind::Eio, 0.10),
    );
    let mut cfg = ServeConfig::new(4, 2); // 3 clouds over 2 slots: constant churn
    cfg.fault_plan = Some(Arc::clone(&plan));
    cfg.spill_retries = 1;
    let engine = ServeEngine::<_, 2>::new(Serial, cfg);
    let keys: Vec<_> = clouds.iter().map(|c| engine.key(c)).collect();

    let honest_errors = AtomicU64::new(0);
    let answers = AtomicU64::new(0);
    let (threads, rounds) = (8usize, 8usize);
    std::thread::scope(|s| {
        for t in 0..threads {
            let (engine, clouds, keys, reference, subset, probe) =
                (&engine, &clouds, &keys, &reference, &subset, &probe);
            let (honest_errors, answers) = (&honest_errors, &answers);
            s.spawn(move || {
                for r in 0..rounds {
                    let ci = (t + r) % clouds.len();
                    let c = &clouds[ci];
                    let (edges, sub, knn, labels) = &reference[ci];
                    // Positional queries rebuild from the presented points
                    // on any storage failure, so they must *always* answer
                    // with the reference bits; by-key queries may hit a
                    // poisoned spill and are allowed an honest error.
                    let outcome: Result<(), ServeError> = match (t + r) % 5 {
                        0 => {
                            assert_eq!(&engine.emst(c).edges, edges, "t{t} r{r} cloud {ci}");
                            Ok(())
                        }
                        1 => engine.emst_by_key(keys[ci]).map(|resp| {
                            assert_eq!(&resp.edges, edges, "t{t} r{r} cloud {ci} by key");
                        }),
                        2 => engine.emst_subset_by_key(keys[ci], subset).map(|resp| {
                            assert_eq!(&resp.edges, sub, "t{t} r{r} cloud {ci} subset");
                        }),
                        3 => engine.k_nearest_by_key(keys[ci], probe, 7).map(|resp| {
                            assert_eq!(&resp.neighbors, knn, "t{t} r{r} cloud {ci} knn");
                        }),
                        _ => engine.hdbscan_by_key(keys[ci], params).map(|resp| {
                            assert_eq!(&resp.result.labels, labels, "t{t} r{r} cloud {ci} hdbscan");
                        }),
                    };
                    match outcome {
                        Ok(()) => {
                            answers.fetch_add(1, Relaxed);
                        }
                        Err(e) => {
                            assert!(is_honest(&e), "dishonest error at t{t} r{r}: {e}");
                            honest_errors.fetch_add(1, Relaxed);
                        }
                    }
                }
            });
        }
    });

    // Every request terminated, one way or the other.
    assert_eq!(
        answers.load(Relaxed) + honest_errors.load(Relaxed),
        (threads * rounds) as u64,
        "no request may vanish"
    );
    assert!(plan.injected() > 0, "the chaos plan never fired — the test is vacuous");
    let stats = engine.stats();
    assert_eq!(
        stats.artifact_restores + stats.artifact_rebuilds,
        stats.reloads,
        "every reload is exactly one restore or one rebuild: {stats:?}"
    );
    assert!(stats.evictions > 0, "3 clouds over 2 slots must churn");

    // The engine is not wedged: with faults still active, positional
    // queries keep reproducing the exact reference bits.
    for (ci, c) in clouds.iter().enumerate() {
        assert_eq!(engine.emst(c).edges, reference[ci].0, "post-chaos cloud {ci}");
    }
}

/// Pressure chaos: admission control and zero deadlines on top of storage
/// faults. Guarded queries must split cleanly into exact answers and
/// honest `DeadlineExceeded`/`Overloaded`/storage errors, the in-flight
/// gate must drain back to zero, and unguarded positional queries must
/// stay exact throughout.
#[test]
fn pressure_and_deadlines_shed_honestly() {
    let seed = chaos_seed().wrapping_add(1);
    let pts = cloud(400, 200);
    let reference = {
        let clean = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 2));
        clean.emst(&pts).edges
    };

    let plan =
        Arc::new(FaultPlan::new(seed).with_rule(FaultSite::Write, FaultKind::Eio, 0.15).with_rule(
            FaultSite::Read,
            FaultKind::BitFlip,
            0.15,
        ));
    let mut cfg = ServeConfig::new(4, 2);
    cfg.fault_plan = Some(plan);
    cfg.max_in_flight = 4; // half the hammering threads
    cfg.deadline = Some(Duration::ZERO); // every guarded merge is late
    let engine = ServeEngine::<_, 2>::new(Serial, cfg);
    let key = engine.ingest(&pts);

    let exact = AtomicU64::new(0);
    let honest = AtomicU64::new(0);
    let threads = 8usize;
    let rounds = 6usize;
    std::thread::scope(|s| {
        for t in 0..threads {
            let (engine, pts, reference) = (&engine, &pts, &reference);
            let (exact, honest) = (&exact, &honest);
            s.spawn(move || {
                for r in 0..rounds {
                    if (t + r) % 2 == 0 {
                        // Unguarded positional query: no deadline, no gate —
                        // must answer exactly even under storage faults.
                        assert_eq!(&engine.emst(pts).edges, reference, "t{t} r{r}");
                        exact.fetch_add(1, Relaxed);
                    } else {
                        match engine.emst_by_key(key) {
                            Ok(resp) => {
                                assert_eq!(&resp.edges, reference, "t{t} r{r} guarded");
                                exact.fetch_add(1, Relaxed);
                            }
                            Err(e) => {
                                assert!(is_honest(&e), "dishonest error at t{t} r{r}: {e}");
                                honest.fetch_add(1, Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });

    assert_eq!(exact.load(Relaxed) + honest.load(Relaxed), (threads * rounds) as u64);
    let stats = engine.stats();
    // A zero deadline means a guarded query that reaches its merge always
    // errs, so every guarded request landed in an honest bucket (either
    // shed at the gate, failed reload, or the deadline itself).
    assert_eq!(honest.load(Relaxed), (threads * rounds / 2) as u64);
    assert!(stats.deadline_exceeded > 0, "the deadline must actually fire: {stats:?}");
    // The gate drained: a fresh guarded query is admitted (and then honest).
    match engine.emst_by_key(key) {
        Err(ServeError::Overloaded) => panic!("in-flight tokens leaked"),
        Err(e) => assert!(is_honest(&e), "{e}"),
        Ok(resp) => assert_eq!(resp.edges, reference),
    }
}

/// Network chaos: the same contract holds over the wire. Storage faults
/// on spill write/read and ingest EIO/stalls, plus clients that write
/// byte-by-byte or vanish mid-response — every reply line is either
/// byte-identical to the fault-free in-process oracle (modulo the
/// legitimate `cache=` outcome) or one honest `err …` line, and the
/// server is never wedged for the clients that stay.
#[test]
fn network_chaos_keeps_replies_exact_or_honest() {
    use emst::serve::net::respond;
    use emst::serve::{NetConfig, NetSession, ServeServer};
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::net::TcpStream;

    let seed = chaos_seed().wrapping_add(2);
    let dir = std::env::temp_dir().join(format!("emst_net_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let clouds: Vec<Vec<Point<2>>> = (0..3u64).map(|s| cloud(300, 400 + s)).collect();
    // `save_csv` round-trips bits exactly, so the CSV a client `load`s is
    // the same cloud the oracle answers for.
    let paths: Vec<String> = clouds
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let p = dir.join(format!("cloud{i}.csv"));
            emst::datasets::save_csv(&p, c).unwrap();
            p.display().to_string()
        })
        .collect();

    // Fault-free oracle replies per cloud: the `load` line plus every
    // query, with the `cache=` token stripped (a reply may legitimately
    // be a hit on one engine and a miss/reload on the other).
    let queries = ["emst", "subset 20..200", "knn 5 0.25 -0.1", "hdbscan 4 8"];
    let strip_cache = |reply: &str| -> String {
        reply.split_whitespace().filter(|t| !t.starts_with("cache=")).collect::<Vec<_>>().join(" ")
    };
    let clean = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(4, 3));
    let reference: Vec<Vec<String>> = paths
        .iter()
        .map(|p| {
            let mut s = NetSession::new(Arc::new(clouds[0].clone()));
            let mut replies = vec![respond(&clean, &mut s, &format!("load {p}")).text];
            replies.extend(queries.iter().map(|q| respond(&clean, &mut s, q).text));
            replies.iter().map(|r| strip_cache(r.trim_end())).collect()
        })
        .collect();

    // The chaos server: 3 clouds over 2 residency slots (spill churn) with
    // faults on spill storage and on ingest reads. No ingest BitFlip: a
    // flipped CSV digit would be a *different valid cloud*, which the
    // digest in the `load` reply exposes but this exact-bytes harness
    // does not model.
    let plan = Arc::new(
        FaultPlan::new(seed)
            .with_rule(FaultSite::Write, FaultKind::Eio, 0.12)
            .with_rule(FaultSite::Write, FaultKind::ShortWrite, 0.10)
            .with_rule(FaultSite::Read, FaultKind::BitFlip, 0.15)
            .with_rule(FaultSite::IngestRead, FaultKind::Eio, 0.25)
            .with_rule(FaultSite::IngestRead, FaultKind::Stall(1), 0.10),
    );
    let mut cfg = ServeConfig::new(4, 2);
    cfg.fault_plan = Some(Arc::clone(&plan));
    cfg.spill_retries = 1;
    let engine = Arc::new(ServeEngine::<_, 2>::new(Serial, cfg));
    let initial = Arc::new(clouds[0].clone());
    engine.ingest(&initial);
    let server = ServeServer::bind(
        Arc::clone(&engine),
        Arc::clone(&initial),
        "127.0.0.1:0",
        NetConfig { workers: 6, max_pending: 32 },
    )
    .unwrap();
    let addr = server.local_addr();

    let connect = || {
        let s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(std::time::Duration::from_secs(30))).unwrap();
        s
    };
    // Writes a line either in one shot or byte-by-byte (a slow client).
    let send = |stream: &mut TcpStream, line: &str, slow: bool| {
        let bytes = format!("{line}\n");
        if slow {
            for b in bytes.as_bytes() {
                stream.write_all(std::slice::from_ref(b)).unwrap();
            }
        } else {
            stream.write_all(bytes.as_bytes()).unwrap();
        }
    };

    let answered = AtomicU64::new(0);
    let honest_errs = AtomicU64::new(0);
    let (threads, rounds) = (6usize, 6usize);
    std::thread::scope(|s| {
        for t in 0..threads {
            let (paths, reference, engine) = (&paths, &reference, &engine);
            let (answered, honest_errs, connect, send) = (&answered, &honest_errs, &connect, &send);
            s.spawn(move || {
                // Deterministic per-thread LCG driving slow/drop behavior.
                let mut rng = seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(t as u64 + 1));
                let mut next = move || {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    rng >> 33
                };
                let mut conn = BufReader::new(connect());
                let mut current = 0usize; // sessions start on clouds[0]
                let read_reply = |conn: &mut BufReader<TcpStream>| -> String {
                    let mut line = String::new();
                    conn.read_line(&mut line).unwrap();
                    assert!(!line.is_empty(), "t{t}: server closed unexpectedly");
                    line.trim_end().to_string()
                };
                for r in 0..rounds {
                    let ci = (t + r) % paths.len();
                    send(conn.get_mut(), &format!("load {}", paths[ci]), next() % 4 == 0);
                    let reply = read_reply(&mut conn);
                    if strip_cache(&reply) == reference[ci][0] {
                        current = ci;
                        answered.fetch_add(1, Relaxed);
                    } else {
                        assert!(
                            reply.starts_with("err ") && !reply.contains("internal error"),
                            "t{t} r{r}: load answered wrong bits: {reply:?}"
                        );
                        honest_errs.fetch_add(1, Relaxed);
                    }
                    for qi in 0..2 {
                        let q = queries[(t + r + qi) % queries.len()];
                        if next() % 5 == 0 {
                            // Vanish mid-response: ask, drop without
                            // reading, reconnect. The fresh session is
                            // back on the initial cloud.
                            send(conn.get_mut(), q, false);
                            conn = BufReader::new(connect());
                            current = 0;
                            continue;
                        }
                        send(conn.get_mut(), q, next() % 4 == 0);
                        let reply = read_reply(&mut conn);
                        if strip_cache(&reply)
                            == reference[current][1 + (t + r + qi) % queries.len()]
                        {
                            answered.fetch_add(1, Relaxed);
                        } else {
                            assert!(
                                reply.starts_with("err ") && !reply.contains("internal error"),
                                "t{t} r{r}: query {q:?} answered wrong bits: {reply:?}"
                            );
                            honest_errs.fetch_add(1, Relaxed);
                        }
                    }
                }
                let _ = engine; // keep the borrow shape uniform
            });
        }
    });

    assert!(plan.injected() > 0, "the chaos plan never fired — the test is vacuous");
    assert!(answered.load(Relaxed) > 0, "some requests must answer exactly");
    // The server is not wedged: a fresh client still gets exact bytes for
    // every cloud, with faults still active (retrying past injected EIOs).
    let mut conn = BufReader::new(connect());
    for (ci, p) in paths.iter().enumerate() {
        for attempt in 0..20 {
            send(conn.get_mut(), &format!("load {p}"), false);
            let mut reply = String::new();
            conn.read_line(&mut reply).unwrap();
            if strip_cache(reply.trim_end()) == reference[ci][0] {
                break;
            }
            assert!(reply.starts_with("err "), "cloud {ci}: {reply:?}");
            assert!(attempt < 19, "cloud {ci}: ingest never succeeded post-chaos");
        }
        send(conn.get_mut(), "emst", false);
        let mut reply = String::new();
        conn.read_line(&mut reply).unwrap();
        assert_eq!(strip_cache(reply.trim_end()), reference[ci][1], "post-chaos cloud {ci}");
    }
    send(conn.get_mut(), "quit", false);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
