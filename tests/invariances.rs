//! Cross-crate metamorphic tests: transformations of the input with a known
//! exact effect on the EMST. These catch classes of bugs the
//! oracle-comparison tests can miss (they would need the oracle to be wrong
//! the same way).

use emst::core::edge::weight_multiset;
use emst::core::{EmstConfig, SingleTreeBoruvka};
use emst::datasets::Kind;
use emst::exec::Threads;
use emst::geometry::{brute_force_core_distances_sq, MutualReachability, Point};
use emst::hdbscan::core_distances_sq;

fn emst_multiset(points: &[Point<2>]) -> Vec<u32> {
    let r = SingleTreeBoruvka::new(points).run(&Threads, &EmstConfig::default());
    weight_multiset(&r.edges)
}

#[test]
fn permutation_invariance() {
    // Shuffling the input order must not change the tree's weights.
    let points: Vec<Point<2>> = Kind::VisualVar.generate(900, 5);
    let base = emst_multiset(&points);
    for seed in 1..4u64 {
        let mut shuffled = points.clone();
        // Deterministic Fisher–Yates.
        let mut state = seed;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        assert_eq!(emst_multiset(&shuffled), base, "seed {seed}");
    }
}

#[test]
fn power_of_two_scaling_scales_weights_exactly() {
    // Scaling coordinates by 2 multiplies every squared weight by exactly 4
    // in IEEE-754 (power-of-two scaling commutes with rounding).
    let points: Vec<Point<2>> = Kind::Normal.generate(700, 9);
    let scaled: Vec<Point<2>> =
        points.iter().map(|p| Point::new([p[0] * 2.0, p[1] * 2.0])).collect();
    let base = SingleTreeBoruvka::new(&points).run(&Threads, &EmstConfig::default());
    let big = SingleTreeBoruvka::new(&scaled).run(&Threads, &EmstConfig::default());
    let mut base_w: Vec<f32> = base.edges.iter().map(|e| e.weight_sq * 4.0).collect();
    let mut big_w: Vec<f32> = big.edges.iter().map(|e| e.weight_sq).collect();
    base_w.sort_by(f32::total_cmp);
    big_w.sort_by(f32::total_cmp);
    assert_eq!(base_w, big_w);
    assert!((big.total_weight - 2.0 * base.total_weight).abs() < 1e-9 * big.total_weight);
}

#[test]
fn duplicating_a_point_adds_exactly_one_zero_edge() {
    let mut points: Vec<Point<2>> = Kind::Uniform.generate(500, 13);
    let base = SingleTreeBoruvka::new(&points).run(&Threads, &EmstConfig::default());
    points.push(points[123]);
    let aug = SingleTreeBoruvka::new(&points).run(&Threads, &EmstConfig::default());
    assert_eq!(aug.edges.len(), base.edges.len() + 1);
    assert_eq!(aug.total_weight, base.total_weight);
    let zeros = aug.edges.iter().filter(|e| e.weight_sq == 0.0).count();
    assert_eq!(zeros, 1);
}

#[test]
fn mrd_total_weight_is_monotone_in_k_pts() {
    // Core distances grow with k, so d_mreach grows pointwise, so the MST
    // weight cannot decrease.
    let points: Vec<Point<2>> = Kind::HaccLike.generate(600, 17);
    let mut last = 0.0f64;
    for k in [1usize, 2, 4, 8, 16, 32] {
        let core = core_distances_sq(&Threads, &points, k);
        let metric = MutualReachability::new(&core);
        let r = SingleTreeBoruvka::new(&points).run_with_metric(
            &Threads,
            &EmstConfig::default(),
            &metric,
        );
        assert!(
            r.total_weight >= last - 1e-9 * r.total_weight,
            "k={k}: {} < {last}",
            r.total_weight
        );
        last = r.total_weight;
    }
}

#[test]
fn mrd_weights_are_pointwise_at_least_core_distances() {
    // Every MRD MST edge weight is >= both endpoints' core distances.
    let points: Vec<Point<2>> = Kind::VisualVar.generate(300, 21);
    let core = brute_force_core_distances_sq(&points, 6);
    let metric = MutualReachability::new(&core);
    let r =
        SingleTreeBoruvka::new(&points).run_with_metric(&Threads, &EmstConfig::default(), &metric);
    for e in &r.edges {
        assert!(e.weight_sq >= core[e.u as usize]);
        assert!(e.weight_sq >= core[e.v as usize]);
        // And >= the actual Euclidean distance.
        let euclid = points[e.u as usize].squared_distance(&points[e.v as usize]);
        assert!(e.weight_sq >= euclid);
        // And equal to the max of the three.
        let expect = euclid.max(core[e.u as usize]).max(core[e.v as usize]);
        assert_eq!(e.weight_sq, expect);
    }
}

#[test]
fn adding_a_far_point_extends_the_tree_by_its_nearest_distance() {
    // A point far outside the hull connects via its nearest neighbour.
    let points: Vec<Point<2>> = Kind::Uniform.generate(400, 25);
    let base = SingleTreeBoruvka::new(&points).run(&Threads, &EmstConfig::default());
    let far = Point::new([100.0, 100.0]);
    let nearest = points.iter().map(|p| p.distance(&far) as f64).fold(f64::INFINITY, f64::min);
    let mut aug_points = points.clone();
    aug_points.push(far);
    let aug = SingleTreeBoruvka::new(&aug_points).run(&Threads, &EmstConfig::default());
    let delta = aug.total_weight - base.total_weight;
    assert!((delta - nearest).abs() < 1e-4 * nearest, "delta {delta} vs nearest {nearest}");
}
