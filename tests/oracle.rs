//! The brute-force oracle property: on any small point cloud, the paper's
//! single-tree Borůvka EMST must produce exactly the same multiset of edge
//! weights as the O(n²) reference in `emst::core::brute` — plus the
//! degenerate inputs (empty, singleton, pair, all-duplicate, collinear)
//! where the right answer is known in closed form.
//!
//! Weight multisets (not edge sets) are compared because the EMST is only
//! unique up to ties; the `(weight, min, max)` tie-breaking makes the edge
//! set deterministic per implementation but not across implementations.

use emst::core::brute::brute_force_emst;
use emst::core::edge::{verify_spanning_tree, weight_multiset};
use emst::core::{EmstConfig, SingleTreeBoruvka};
use emst::datasets::{generate_2d, generate_3d, DatasetSpec, Kind};
use emst::exec::{Serial, Threads};
use emst::geometry::Point;
use proptest::prelude::*;

fn single_tree_multiset<const D: usize>(points: &[Point<D>]) -> Vec<u32> {
    let r = SingleTreeBoruvka::new(points).run(&Threads, &EmstConfig::default());
    verify_spanning_tree(points.len(), &r.edges).expect("result must be a spanning tree");
    weight_multiset(&r.edges)
}

fn oracle_multiset<const D: usize>(points: &[Point<D>]) -> Vec<u32> {
    weight_multiset(&brute_force_emst(points))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matches_brute_force_on_random_2d_clouds(
        n in 2usize..=256,
        seed in 0u64..10_000,
        kind in prop::sample::select(vec![Kind::Uniform, Kind::Normal, Kind::VisualVar]),
    ) {
        let pts = generate_2d(&DatasetSpec { kind, n, seed });
        prop_assert_eq!(single_tree_multiset(&pts), oracle_multiset(&pts));
    }

    #[test]
    fn matches_brute_force_on_random_3d_clouds(
        n in 2usize..=256,
        seed in 0u64..10_000,
        kind in prop::sample::select(vec![Kind::Uniform, Kind::HaccLike, Kind::NgsimLike]),
    ) {
        let pts = generate_3d(&DatasetSpec { kind, n, seed });
        prop_assert_eq!(single_tree_multiset(&pts), oracle_multiset(&pts));
    }
}

#[test]
fn empty_and_singleton_inputs_yield_empty_trees() {
    for n in [0usize, 1] {
        let pts: Vec<Point<2>> = generate_2d(&DatasetSpec::uniform(n, 1));
        assert_eq!(pts.len(), n);
        let r = SingleTreeBoruvka::new(&pts).run(&Serial, &EmstConfig::default());
        assert!(r.edges.is_empty());
        assert_eq!(r.total_weight, 0.0);
        assert!(brute_force_emst(&pts).is_empty());
    }
}

#[test]
fn two_points_yield_the_connecting_edge() {
    let pts = [Point::new([0.0f32, 0.0]), Point::new([3.0, 4.0])];
    let r = SingleTreeBoruvka::new(&pts).run(&Serial, &EmstConfig::default());
    assert_eq!(r.edges.len(), 1);
    let e = r.edges[0];
    assert_eq!((e.u, e.v), (0, 1));
    assert_eq!(e.weight_sq, 25.0);
    assert_eq!(r.total_weight, 5.0);
}

#[test]
fn all_duplicate_points_yield_a_zero_weight_tree() {
    let pts = vec![Point::new([0.25f32, -1.5, 7.0]); 9];
    let r = SingleTreeBoruvka::new(&pts).run(&Threads, &EmstConfig::default());
    assert_eq!(r.edges.len(), 8);
    assert!(r.edges.iter().all(|e| e.weight_sq == 0.0));
    assert_eq!(r.total_weight, 0.0);
    assert_eq!(weight_multiset(&r.edges), oracle_multiset(&pts));
}

#[test]
fn collinear_points_chain_along_the_line() {
    // Points on a line: the EMST is the sorted chain, so the total weight is
    // exactly the span. Use power-of-two coordinates to keep f32 exact.
    let xs = [8.0f32, 0.5, 4.0, 1.0, 2.0, 0.25];
    let pts: Vec<Point<2>> = xs.iter().map(|&x| Point::new([x, 0.0])).collect();
    let r = SingleTreeBoruvka::new(&pts).run(&Serial, &EmstConfig::default());
    assert_eq!(r.edges.len(), pts.len() - 1);
    assert_eq!(r.total_weight, 8.0 - 0.25);
    assert_eq!(weight_multiset(&r.edges), oracle_multiset(&pts));
}
