//! Integration of the instrumented backend and the device model — the
//! machinery behind every modeled GPU figure.

use emst::core::{EmstConfig, SingleTreeBoruvka};
use emst::datasets::Kind;
use emst::exec::{DeviceModel, GpuSim};
use emst::geometry::Point;

fn modeled_total(n: usize, model: &DeviceModel) -> f64 {
    let points: Vec<Point<3>> = Kind::HaccLike.generate(n, 0xDE);
    let gpu = GpuSim::new();
    let r = SingleTreeBoruvka::new(&points).run(&gpu, &EmstConfig::default());
    let tree = model.time(r.launches_tree.0, r.launches_tree.1, &r.work_tree);
    let mst = model.time(r.launches_mst.0, r.launches_mst.1, &r.work_mst());
    tree.total_s() + mst.total_s()
}

#[test]
fn modeled_rate_rises_with_problem_size_then_flattens() {
    // The Fig. 7 saturation shape: small problems are launch-bound.
    let model = DeviceModel::a100_like();
    let rate = |n: usize| n as f64 / modeled_total(n, &model);
    let r1 = rate(1_000);
    let r2 = rate(10_000);
    let r3 = rate(100_000);
    assert!(r2 > 2.0 * r1, "rate must climb steeply from launch-bound sizes: {r1} {r2}");
    assert!(r3 > r2, "still climbing at 100k: {r2} {r3}");
    assert!(r3 < 40.0 * r2, "but sub-linearly (saturating)");
}

#[test]
fn mi250x_gcd_models_slower_than_a100() {
    // The paper's cross-vendor observation (Fig. 1/6).
    let a = modeled_total(20_000, &DeviceModel::a100_like());
    let m = modeled_total(20_000, &DeviceModel::mi250x_gcd_like());
    let ratio = a / m;
    assert!(ratio > 0.45 && ratio < 0.95, "A100/MI250X = {ratio}");
}

#[test]
fn optimizations_speed_up_the_modeled_device_too() {
    // The device model prices counted work, so the paper's optimizations
    // must translate into modeled speedups as they did on real hardware.
    let points: Vec<Point<2>> = Kind::Normal.generate(20_000, 3);
    let model = DeviceModel::a100_like();
    let run = |cfg: &EmstConfig| {
        let gpu = GpuSim::new();
        let r = SingleTreeBoruvka::new(&points).run(&gpu, cfg);
        model.time(r.launches_mst.0, r.launches_mst.1, &r.work_mst()).total_s()
    };
    let naive =
        run(&EmstConfig { subtree_skipping: false, upper_bounds: false, ..Default::default() });
    let full = run(&EmstConfig::default());
    assert!(
        naive > 3.0 * full,
        "optimizations must cut modeled device time: naive {naive} vs full {full}"
    );
}

#[test]
fn gpusim_results_are_identical_to_serial() {
    let points: Vec<Point<2>> = Kind::GeoLifeLike.generate(2_000, 9);
    let gpu = SingleTreeBoruvka::new(&points).run(&GpuSim::new(), &EmstConfig::default());
    let serial = SingleTreeBoruvka::new(&points).run(&emst::exec::Serial, &EmstConfig::default());
    assert_eq!(gpu.total_weight, serial.total_weight);
    assert_eq!(gpu.edges.len(), serial.edges.len());
}

#[test]
fn launch_counts_scale_with_iterations_not_points() {
    // Borůvka launches O(iterations) kernels; iterations are O(log n).
    let count = |n: usize| {
        let points: Vec<Point<2>> = Kind::Uniform.generate(n, 1);
        let gpu = GpuSim::new();
        let r = SingleTreeBoruvka::new(&points).run(&gpu, &EmstConfig::default());
        (r.launches_mst.0, r.iterations)
    };
    let (l1, i1) = count(1_000);
    let (l2, i2) = count(64_000);
    // 64x the points, but launches grow only with the iteration count.
    assert!(l2 < l1 * 4, "launches: {l1} -> {l2}");
    assert!(i2 <= i1 + 6);
}
