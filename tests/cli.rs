//! End-to-end tests of the `emst-cli` binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_emst-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("emst-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn generate_then_emst_pipeline() {
    let pts = tmp("pipeline-points.csv");
    let mst = tmp("pipeline-mst.csv");
    let status = bin()
        .args(["generate", "--kind", "hacc", "--n", "500", "--dim", "3"])
        .args(["--seed", "7", "--output", pts.to_str().unwrap()])
        .status()
        .unwrap();
    assert!(status.success());

    let out = bin()
        .args(["emst", "--input", pts.to_str().unwrap(), "--dim", "3"])
        .args(["--output", mst.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let edges = std::fs::read_to_string(&mst).unwrap();
    assert_eq!(edges.lines().count(), 499);
    // each line is u,v,weight
    let first = edges.lines().next().unwrap();
    assert_eq!(first.split(',').count(), 3);

    std::fs::remove_file(&pts).ok();
    std::fs::remove_file(&mst).ok();
}

#[test]
fn all_algorithms_report_the_same_weight() {
    let pts = tmp("algos-points.csv");
    assert!(bin()
        .args(["generate", "--kind", "normal", "--n", "400", "--dim", "2"])
        .args(["--seed", "3", "--output", pts.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    let weight_of = |algo: &str| -> String {
        let out = bin()
            .args(["emst", "--input", pts.to_str().unwrap(), "--algorithm", algo])
            .output()
            .unwrap();
        assert!(out.status.success(), "{algo}: {}", String::from_utf8_lossy(&out.stderr));
        let stderr = String::from_utf8_lossy(&out.stderr).to_string();
        let needle = "weight ";
        let at = stderr.find(needle).unwrap() + needle.len();
        stderr[at..].split(',').next().unwrap().trim().to_string()
    };
    let w = weight_of("single-tree");
    assert_eq!(w, weight_of("dual-tree"));
    assert_eq!(w, weight_of("wspd"));
    assert_eq!(w, weight_of("kd-single-tree"));
    std::fs::remove_file(&pts).ok();
}

#[test]
fn hdbscan_writes_one_label_per_point() {
    let pts = tmp("hdb-points.csv");
    let labels = tmp("hdb-labels.csv");
    assert!(bin()
        .args(["generate", "--kind", "visualvar", "--n", "600", "--dim", "2"])
        .args(["--seed", "5", "--output", pts.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["hdbscan", "--input", pts.to_str().unwrap(), "--k", "6"])
        .args(["--min-cluster-size", "20", "--output", labels.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let content = std::fs::read_to_string(&labels).unwrap();
    assert_eq!(content.lines().count(), 600);
    assert!(content.lines().all(|l| l.parse::<i32>().is_ok()));
    std::fs::remove_file(&pts).ok();
    std::fs::remove_file(&labels).ok();
}

#[test]
fn bad_invocations_fail_cleanly() {
    assert!(!bin().status().unwrap().success());
    assert!(!bin().args(["frobnicate"]).status().unwrap().success());
    assert!(!bin().args(["emst", "--input", "/no/such/file.csv"]).status().unwrap().success());
    assert!(!bin()
        .args(["generate", "--kind", "nonsense", "--n", "10", "--output", "/dev/null"])
        .status()
        .unwrap()
        .success());
}
