//! End-to-end tests of the `emst-cli` binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_emst-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("emst-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn generate_then_emst_pipeline() {
    let pts = tmp("pipeline-points.csv");
    let mst = tmp("pipeline-mst.csv");
    let status = bin()
        .args(["generate", "--kind", "hacc", "--n", "500", "--dim", "3"])
        .args(["--seed", "7", "--output", pts.to_str().unwrap()])
        .status()
        .unwrap();
    assert!(status.success());

    let out = bin()
        .args(["emst", "--input", pts.to_str().unwrap(), "--dim", "3"])
        .args(["--output", mst.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let edges = std::fs::read_to_string(&mst).unwrap();
    assert_eq!(edges.lines().count(), 499);
    // each line is u,v,weight
    let first = edges.lines().next().unwrap();
    assert_eq!(first.split(',').count(), 3);

    std::fs::remove_file(&pts).ok();
    std::fs::remove_file(&mst).ok();
}

#[test]
fn all_algorithms_report_the_same_weight() {
    let pts = tmp("algos-points.csv");
    assert!(bin()
        .args(["generate", "--kind", "normal", "--n", "400", "--dim", "2"])
        .args(["--seed", "3", "--output", pts.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    let weight_of = |algo: &str| -> String {
        let out = bin()
            .args(["emst", "--input", pts.to_str().unwrap(), "--algorithm", algo])
            .output()
            .unwrap();
        assert!(out.status.success(), "{algo}: {}", String::from_utf8_lossy(&out.stderr));
        let stderr = String::from_utf8_lossy(&out.stderr).to_string();
        let needle = "weight ";
        let at = stderr.find(needle).unwrap() + needle.len();
        stderr[at..].split(',').next().unwrap().trim().to_string()
    };
    let w = weight_of("single-tree");
    assert_eq!(w, weight_of("dual-tree"));
    assert_eq!(w, weight_of("wspd"));
    assert_eq!(w, weight_of("kd-single-tree"));
    std::fs::remove_file(&pts).ok();
}

#[test]
fn hdbscan_writes_one_label_per_point() {
    let pts = tmp("hdb-points.csv");
    let labels = tmp("hdb-labels.csv");
    assert!(bin()
        .args(["generate", "--kind", "visualvar", "--n", "600", "--dim", "2"])
        .args(["--seed", "5", "--output", pts.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["hdbscan", "--input", pts.to_str().unwrap(), "--k", "6"])
        .args(["--min-cluster-size", "20", "--output", labels.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let content = std::fs::read_to_string(&labels).unwrap();
    assert_eq!(content.lines().count(), 600);
    assert!(content.lines().all(|l| l.parse::<i32>().is_ok()));
    std::fs::remove_file(&pts).ok();
    std::fs::remove_file(&labels).ok();
}

#[test]
fn bad_invocations_fail_cleanly() {
    assert!(!bin().status().unwrap().success());
    assert!(!bin().args(["frobnicate"]).status().unwrap().success());
    assert!(!bin().args(["emst", "--input", "/no/such/file.csv"]).status().unwrap().success());
    assert!(!bin()
        .args(["generate", "--kind", "nonsense", "--n", "10", "--output", "/dev/null"])
        .status()
        .unwrap()
        .success());
}

/// Runs the binary expecting failure; returns stderr for message checks.
fn expect_error(args: &[&str]) -> String {
    let out = bin().args(args).output().unwrap();
    assert!(!out.status.success(), "{args:?} unexpectedly succeeded");
    String::from_utf8_lossy(&out.stderr).to_string()
}

#[test]
fn malformed_numeric_arguments_error_instead_of_defaulting() {
    let stderr = expect_error(&["emst", "--input", "x.csv", "--dim", "banana"]);
    assert!(stderr.contains("invalid --dim"), "stderr: {stderr}");
    let stderr = expect_error(&["generate", "--kind", "uniform", "--n", "ten", "--output", "x"]);
    assert!(stderr.contains("invalid --n"), "stderr: {stderr}");
    let stderr = expect_error(&[
        "generate", "--kind", "uniform", "--n", "5", "--seed", "x", "--output", "x",
    ]);
    assert!(stderr.contains("invalid --seed"), "stderr: {stderr}");
    let stderr = expect_error(&["emst", "--input", "x.csv", "--shards", "-3"]);
    assert!(stderr.contains("invalid --shards"), "stderr: {stderr}");
    let stderr = expect_error(&["hdbscan", "--input", "x.csv", "--k", "2.5"]);
    assert!(stderr.contains("invalid --k"), "stderr: {stderr}");
}

#[test]
fn unreadable_input_reports_path_and_fails() {
    // A directory is unreadable as a point file and must produce a clean
    // error naming the path, not a panic.
    let dir = tmp("unreadable-dir");
    std::fs::create_dir_all(&dir).unwrap();
    let out = bin().args(["emst", "--input", dir.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "stderr: {stderr}");
    assert!(stderr.contains(dir.to_str().unwrap()), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
    std::fs::remove_dir(&dir).ok();
}

#[test]
fn sharded_and_streamed_runs_match_the_monolithic_weight() {
    let pts = tmp("shard-points.csv");
    assert!(bin()
        .args(["generate", "--kind", "hacc", "--n", "800", "--dim", "2"])
        .args(["--seed", "11", "--output", pts.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    let weight_of = |extra: &[&str]| -> String {
        let out =
            bin().args(["emst", "--input", pts.to_str().unwrap()]).args(extra).output().unwrap();
        assert!(out.status.success(), "{extra:?}: {}", String::from_utf8_lossy(&out.stderr));
        let stderr = String::from_utf8_lossy(&out.stderr).to_string();
        let needle = "weight ";
        let at = stderr.find(needle).unwrap() + needle.len();
        stderr[at..].split(',').next().unwrap().trim().to_string()
    };
    let mono = weight_of(&[]);
    assert_eq!(mono, weight_of(&["--shards", "4"]));
    assert_eq!(mono, weight_of(&["--shards", "7", "--backend", "serial"]));
    assert_eq!(mono, weight_of(&["--shards", "3", "--max-resident", "400"]));
    std::fs::remove_file(&pts).ok();
}

#[test]
fn streamed_run_rejects_empty_input_like_the_in_memory_path() {
    let pts = tmp("stream-empty.csv");
    std::fs::write(&pts, "x,y\n").unwrap(); // header only: zero points
    let out = bin()
        .args(["emst", "--input", pts.to_str().unwrap(), "--shards", "2"])
        .args(["--max-resident", "100"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no points"), "stderr: {stderr}");
    std::fs::remove_file(&pts).ok();
}

#[test]
fn sharded_run_reports_shard_stats() {
    let pts = tmp("shard-stats-points.csv");
    assert!(bin()
        .args(["generate", "--kind", "uniform", "--n", "500", "--dim", "2"])
        .args(["--seed", "2", "--output", pts.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out =
        bin().args(["emst", "--input", pts.to_str().unwrap(), "--shards", "4"]).output().unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("shards: 4"), "stderr: {stderr}");
    assert!(stderr.contains("merge rounds"), "stderr: {stderr}");
    std::fs::remove_file(&pts).ok();
}

#[test]
fn usage_mentions_every_command_and_flag() {
    // The usage text is the CLI's contract; a flag that exists but is not
    // documented here (or vice versa) is a bug this test pins down.
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    let usage = String::from_utf8_lossy(&out.stderr).to_string();
    for command in ["generate", "emst", "hdbscan", "serve"] {
        assert!(usage.contains(command), "usage misses command {command}: {usage}");
    }
    for flag in [
        "--kind",
        "--n",
        "--dim",
        "--seed",
        "--output",
        "--input",
        "--algorithm",
        "--backend",
        "--traversal",
        "--shards",
        "--max-resident",
        "--k",
        "--min-cluster-size",
        "--workers",
        "--log-format",
        "--metrics-file",
        "--spill-dir",
        "--fallback-spill-dir",
        "--spill-retries",
        "--deadline-ms",
        "--max-in-flight",
        "--fault-plan",
        "--listen",
        "--net-workers",
        "--max-pending",
    ] {
        assert!(usage.contains(flag), "usage misses flag {flag}: {usage}");
    }
    // And the serve REPL's command vocabulary is spelled out.
    for repl in ["subset", "knn", "stats", "metrics", "trace", "insert", "delete", "quit"] {
        assert!(usage.contains(repl), "usage misses serve command {repl}: {usage}");
    }
}

/// Pipes `commands` into `emst-cli serve` over `input` and returns stdout.
fn serve_session(input: &std::path::Path, extra: &[&str], commands: &str) -> String {
    use std::io::Write as _;
    use std::process::Stdio;
    let mut child = bin()
        .args(["serve", "--input", input.to_str().unwrap()])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(commands.as_bytes()).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8_lossy(&out.stdout).to_string()
}

#[test]
fn serve_answers_repeated_queries_from_the_cache() {
    let pts = tmp("serve-points.csv");
    let mst = tmp("serve-mst.csv");
    assert!(bin()
        .args(["generate", "--kind", "uniform", "--n", "700", "--dim", "2"])
        .args(["--seed", "9", "--output", pts.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    let commands = format!(
        "emst\nemst {}\nsubset 100..600\nknn 2 0.5 0.5\nhdbscan 5 20\nstats\nquit\n",
        mst.to_str().unwrap()
    );
    let stdout = serve_session(&pts, &["--shards", "4", "--max-resident", "2"], &commands);

    // Both full queries hit the resident artifacts (ingest ran at startup)
    // and report the identical weight.
    let emst_lines: Vec<&str> =
        stdout.lines().filter(|l| l.starts_with("emst cache=hit")).collect();
    assert_eq!(emst_lines.len(), 2, "stdout: {stdout}");
    let weight_of = |line: &str| {
        line.split("weight=").nth(1).unwrap().split_whitespace().next().unwrap().to_string()
    };
    assert_eq!(weight_of(emst_lines[0]), weight_of(emst_lines[1]));
    assert!(emst_lines.iter().all(|l| l.contains("build=0.000s")), "stdout: {stdout}");
    assert!(stdout.contains("subset cache=hit m=500 edges=499"), "stdout: {stdout}");
    assert!(stdout.contains("knn cache=hit"), "stdout: {stdout}");
    assert!(stdout.contains("hdbscan cache=hit"), "stdout: {stdout}");
    assert!(stdout.contains("stats resident=1"), "stdout: {stdout}");
    assert!(stdout.contains("misses=1"), "stdout: {stdout}");

    // The written MST file matches the reported edge count.
    let edges = std::fs::read_to_string(&mst).unwrap();
    assert_eq!(edges.lines().count(), 699);
    std::fs::remove_file(&pts).ok();
    std::fs::remove_file(&mst).ok();
}

#[test]
fn serve_worker_pool_answers_every_request_with_its_id() {
    let pts = tmp("serve-workers-points.csv");
    assert!(bin()
        .args(["generate", "--kind", "uniform", "--n", "600", "--dim", "2"])
        .args(["--seed", "17", "--output", pts.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    // 8 requests over 3 workers; responses may interleave in any order but
    // every request id must be answered exactly once, and `quit` must
    // drain the queue rather than dropping accepted requests.
    let commands =
        "emst\nemst\nsubset 50..550\nknn 4 0.5 0.5\nemst\nhdbscan 5 20\nstats\nemst\nquit\n";
    let stdout =
        serve_session(&pts, &["--shards", "4", "--max-resident", "2", "--workers", "3"], commands);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 8, "stdout: {stdout}");
    for id in 0..8 {
        let tag = format!("[{id}] ");
        assert_eq!(
            lines.iter().filter(|l| l.starts_with(&tag)).count(),
            1,
            "request {id} answered != once: {stdout}"
        );
    }
    // The four emst answers (ids 0, 1, 4, 7) report the identical weight —
    // concurrency must not perturb a single bit of the tree.
    let weights: Vec<&str> = lines
        .iter()
        .filter(|l| l.contains("emst cache="))
        .map(|l| l.split("weight=").nth(1).unwrap().split_whitespace().next().unwrap())
        .collect();
    assert_eq!(weights.len(), 4, "stdout: {stdout}");
    assert!(weights.iter().all(|w| w == &weights[0]), "stdout: {stdout}");
    assert!(!stdout.contains("error:"), "stdout: {stdout}");
    std::fs::remove_file(&pts).ok();
}

#[test]
fn serve_rejects_bad_commands_without_dying() {
    let pts = tmp("serve-robust-points.csv");
    assert!(bin()
        .args(["generate", "--kind", "uniform", "--n", "100", "--dim", "2"])
        .args(["--seed", "4", "--output", pts.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let stdout = serve_session(
        &pts,
        &[],
        "frobnicate\nsubset 90..300\nknn five 0 0\nhdbscan 0 1\nemst\nquit\n",
    );
    assert!(stdout.contains("error: unknown command \"frobnicate\""), "stdout: {stdout}");
    assert!(stdout.contains("error: subset 90..300 out of range"), "stdout: {stdout}");
    assert!(stdout.contains("error: invalid <k>"), "stdout: {stdout}");
    assert!(stdout.contains("error: hdbscan needs"), "stdout: {stdout}");
    // The engine survived all of it and still answered.
    assert!(stdout.contains("emst cache=hit n=100 edges=99"), "stdout: {stdout}");
    std::fs::remove_file(&pts).ok();
}

#[test]
fn serve_mutates_the_session_cloud_in_place() {
    let pts = tmp("serve-mutate-points.csv");
    assert!(bin()
        .args(["generate", "--kind", "uniform", "--n", "200", "--dim", "2"])
        .args(["--seed", "31", "--output", pts.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    // insert two points, query the mutated cloud, delete three ids, then
    // exercise the error taxonomy: engine-layer rejection (duplicate id)
    // and parse-layer rejection (odd coordinate count) both leave the
    // session alive and the cloud untouched.
    let stdout = serve_session(
        &pts,
        &["--shards", "4"],
        "insert 0.31 0.64 0.22 0.18\nemst\ndelete 0 7 150\ndelete 0 0\ninsert 0.5\nemst\nquit\n",
    );
    let insert_line = stdout
        .lines()
        .find(|l| l.starts_with("insert key="))
        .unwrap_or_else(|| panic!("no insert reply: {stdout}"));
    assert!(insert_line.contains(" n=202 "), "stdout: {stdout}");
    assert!(insert_line.contains(" dirty="), "stdout: {stdout}");
    assert!(insert_line.contains(" reused="), "stdout: {stdout}");
    assert!(insert_line.contains(" edges=201 "), "stdout: {stdout}");
    // The session now serves the mutated cloud: the emst between the
    // mutations sees 202 points, the one after the failed mutations 199.
    assert!(stdout.contains("emst cache=hit n=202 edges=201"), "stdout: {stdout}");
    let delete_line = stdout
        .lines()
        .find(|l| l.starts_with("delete key="))
        .unwrap_or_else(|| panic!("no delete reply: {stdout}"));
    assert!(delete_line.contains(" n=199 "), "stdout: {stdout}");
    assert!(delete_line.contains(" edges=198 "), "stdout: {stdout}");
    assert!(stdout.contains("error: invalid request: duplicate delete id 0"), "stdout: {stdout}");
    assert!(stdout.contains("error: insert needs coordinates in groups of 2"), "stdout: {stdout}");
    assert!(stdout.contains("emst cache=hit n=199 edges=198"), "stdout: {stdout}");
    std::fs::remove_file(&pts).ok();
}

#[test]
fn serve_strict_argument_errors() {
    // Flag validation precedes input loading, so the path need not exist.
    let stderr = expect_error(&["serve", "--input", "x.csv", "--shards", "banana"]);
    assert!(stderr.contains("invalid --shards"), "stderr: {stderr}");
    let stderr = expect_error(&["serve", "--input", "x.csv", "--shards", "0"]);
    assert!(stderr.contains("--shards must be at least 1"), "stderr: {stderr}");
    let stderr = expect_error(&["serve", "--input", "x.csv", "--max-resident", "0"]);
    assert!(stderr.contains("--max-resident must be at least 1"), "stderr: {stderr}");
    let stderr = expect_error(&["serve", "--input", "x.csv", "--max-resident", "-2"]);
    assert!(stderr.contains("invalid --max-resident"), "stderr: {stderr}");
    let stderr = expect_error(&["serve", "--input", "x.csv", "--workers", "0"]);
    assert!(stderr.contains("--workers must be at least 1"), "stderr: {stderr}");
    let stderr = expect_error(&["serve", "--input", "x.csv", "--workers", "many"]);
    assert!(stderr.contains("invalid --workers"), "stderr: {stderr}");
    let stderr = expect_error(&["serve", "--input", "x.csv", "--traversal", "recursive"]);
    assert!(stderr.contains("invalid --traversal"), "stderr: {stderr}");
    let stderr = expect_error(&["serve", "--input", "x.csv", "--log-format", "yaml"]);
    assert!(stderr.contains("invalid --log-format"), "stderr: {stderr}");
    let stderr = expect_error(&["serve", "--shards", "2"]);
    assert!(stderr.contains("--input is required"), "stderr: {stderr}");
    let stderr = expect_error(&["serve", "--input", "/no/such/file.csv"]);
    assert!(stderr.contains("/no/such/file.csv"), "stderr: {stderr}");
}

#[test]
fn serve_validates_spill_dirs_at_startup() {
    // An unwritable spill destination must fail the *launch* with a clear
    // message naming the flag — not the first eviction mid-serve. A file
    // in the way makes the path impossible to create as a directory.
    let blocker = tmp("serve-spilldir-blocker");
    std::fs::write(&blocker, b"in the way").unwrap();
    let under_file = blocker.join("spills");
    let stderr =
        expect_error(&["serve", "--input", "x.csv", "--spill-dir", under_file.to_str().unwrap()]);
    assert!(stderr.contains("--spill-dir"), "stderr: {stderr}");
    assert!(stderr.contains("cannot create directory"), "stderr: {stderr}");
    let stderr = expect_error(&[
        "serve",
        "--input",
        "x.csv",
        "--fallback-spill-dir",
        under_file.to_str().unwrap(),
    ]);
    assert!(stderr.contains("--fallback-spill-dir"), "stderr: {stderr}");
    std::fs::remove_file(&blocker).ok();

    // Flag validation still precedes input loading for the new flags.
    let stderr = expect_error(&["serve", "--input", "x.csv", "--deadline-ms", "soon"]);
    assert!(stderr.contains("invalid --deadline-ms"), "stderr: {stderr}");
    let stderr = expect_error(&["serve", "--input", "x.csv", "--max-in-flight", "-1"]);
    assert!(stderr.contains("invalid --max-in-flight"), "stderr: {stderr}");
    let stderr = expect_error(&["serve", "--input", "x.csv", "--spill-retries", "lots"]);
    assert!(stderr.contains("invalid --spill-retries"), "stderr: {stderr}");
    let stderr = expect_error(&["serve", "--input", "x.csv", "--fault-plan", "write=eio@0.5"]);
    assert!(stderr.contains("invalid --fault-plan"), "stderr: {stderr}");
    assert!(stderr.contains("missing `seed=N`"), "stderr: {stderr}");
}

#[test]
fn serve_deadline_returns_honest_errors_and_keeps_serving() {
    let pts = tmp("serve-deadline-points.csv");
    assert!(bin()
        .args(["generate", "--kind", "uniform", "--n", "500", "--dim", "2"])
        .args(["--seed", "31", "--output", pts.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    // A 0... ms budget is floored at "no deadline"; 1 ns is not expressible,
    // so use 1 ms with a cloud large enough that the merge spans rounds —
    // but to make the outcome deterministic the test drives the *zero*
    // budget through the engine API instead. Here the CLI contract under
    // test is: a deadline error is a command error line, not a dead server.
    let stdout =
        serve_session(&pts, &["--shards", "4", "--deadline-ms", "1"], "emst\nemst\nstats\nquit\n");
    // Whatever the machine's speed, every emst line is either a served
    // answer or an honest deadline error — and stats still answers, so the
    // server survived.
    for line in stdout.lines().filter(|l| !l.starts_with("stats")) {
        assert!(
            line.starts_with("emst cache=") || line.contains("deadline exceeded"),
            "unexpected line: {line}"
        );
    }
    assert!(stdout.contains("stats resident=1"), "stdout: {stdout}");
    assert!(stdout.contains("deadline_exceeded="), "stdout: {stdout}");
    std::fs::remove_file(&pts).ok();
}

#[test]
fn serve_fault_plan_injects_and_stats_report_it() {
    let a = tmp("serve-chaos-a.csv");
    let b = tmp("serve-chaos-b.csv");
    for (path, seed) in [(&a, "41"), (&b, "43")] {
        assert!(bin()
            .args(["generate", "--kind", "uniform", "--n", "300", "--dim", "2"])
            .args(["--seed", seed, "--output", path.to_str().unwrap()])
            .status()
            .unwrap()
            .success());
    }
    // Every spill write fails with EIO: loading a second cloud over a
    // one-slot budget forces an eviction whose spill write is injected to
    // fail (all retries included) — counted, logged, and survivable.
    let commands = format!("emst\nload {}\nemst\nstats\nquit\n", b.to_str().unwrap());
    let stdout = serve_session(
        &a,
        &["--max-resident", "1", "--fault-plan", "seed=5;write=eio@1.0"],
        &commands,
    );
    assert!(stdout.contains("loaded n=300"), "stdout: {stdout}");
    // Both clouds answered despite the storage chaos.
    assert_eq!(stdout.lines().filter(|l| l.starts_with("emst cache=")).count(), 2, "{stdout}");
    let stats_line = stdout.lines().find(|l| l.starts_with("stats ")).unwrap().to_string();
    let field = |name: &str| -> u64 {
        let needle = format!(" {name}=");
        let at = stats_line.find(&needle).unwrap() + needle.len();
        stats_line[at..].split_whitespace().next().unwrap().parse().unwrap()
    };
    assert_eq!(field("evictions"), 1, "stats: {stats_line}");
    assert_eq!(field("spill_failures"), 1, "stats: {stats_line}");
    assert!(field("spill_retries") >= 1, "retries must have run: {stats_line}");
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn metrics_file_writes_go_through_the_fault_plan() {
    // Regression for the ROADMAP fault-site gap: `--metrics-file` writes
    // route through the injector's `metrics` site. Every write fails with
    // EIO here — counted and logged, the serving loop survives, and no
    // snapshot file appears.
    let pts = tmp("serve-metricsfault-points.csv");
    let metrics = tmp("serve-metricsfault.prom");
    std::fs::remove_file(&metrics).ok();
    assert!(bin()
        .args(["generate", "--kind", "uniform", "--n", "200", "--dim", "2"])
        .args(["--seed", "31", "--output", pts.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    use std::io::Write as _;
    use std::process::Stdio;
    let mut child = bin()
        .args(["serve", "--input", pts.to_str().unwrap()])
        .args(["--metrics-file", metrics.to_str().unwrap()])
        .args(["--fault-plan", "seed=7;metrics=eio@1.0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(b"emst\nstats\nquit\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("emst cache="), "server must keep serving: {stdout}");
    assert!(!metrics.exists(), "every metrics write was injected to fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("metrics file write failed"), "stderr: {stderr}");
    std::fs::remove_file(&pts).ok();
}

#[test]
fn dataset_ingest_reads_go_through_the_fault_plan() {
    // Regression for the other fault-site gap: serve-mode dataset ingest
    // reads route through the injector's `ingest` site. An EIO on the
    // initial `--input` read is an honest launch failure naming the file.
    let pts = tmp("serve-ingestfault-points.csv");
    assert!(bin()
        .args(["generate", "--kind", "uniform", "--n", "200", "--dim", "2"])
        .args(["--seed", "33", "--output", pts.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let stderr = expect_error(&[
        "serve",
        "--input",
        pts.to_str().unwrap(),
        "--fault-plan",
        "seed=7;ingest=eio@1.0",
    ]);
    assert!(stderr.contains(pts.to_str().unwrap()), "stderr: {stderr}");
    assert!(stderr.contains("os error 5"), "stderr: {stderr}");

    // The REPL `load` path is covered too: a clean first read (the plan's
    // rule fires on ingest ordinal 1, not 0) followed by an injected one.
    let stdout = serve_session(
        &pts,
        &["--fault-plan", "seed=7;ingest=bitflip@1.0"],
        &format!("load {}\nquit\n", pts.to_str().unwrap()),
    );
    // A flipped bit in CSV text either still parses (digit changed -> new
    // cloud) or is a clean parse error; both are honest line outcomes.
    assert!(
        stdout.contains("loaded n=") || stdout.contains("error: "),
        "load must answer honestly: {stdout}"
    );
    std::fs::remove_file(&pts).ok();
}

#[test]
fn serve_listen_flags_validate_and_serve_over_tcp() {
    let pts = tmp("serve-listen-points.csv");
    assert!(bin()
        .args(["generate", "--kind", "uniform", "--n", "250", "--dim", "2"])
        .args(["--seed", "35", "--output", pts.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    // Flag validation precedes serving.
    let stderr = expect_error(&["serve", "--input", pts.to_str().unwrap(), "--net-workers", "0"]);
    assert!(stderr.contains("--net-workers"), "stderr: {stderr}");
    let stderr = expect_error(&["serve", "--input", pts.to_str().unwrap(), "--max-pending", "0"]);
    assert!(stderr.contains("--max-pending"), "stderr: {stderr}");
    let stderr =
        expect_error(&["serve", "--input", pts.to_str().unwrap(), "--listen", "256.0.0.1:0"]);
    assert!(stderr.contains("--listen"), "stderr: {stderr}");

    // End to end over a real socket: the CLI prints the ephemeral address,
    // a raw TCP client gets protocol replies, and closing stdin shuts the
    // listener down gracefully.
    use std::io::{BufRead as _, BufReader, Read as _, Write as _};
    use std::process::Stdio;
    let mut child = bin()
        .args(["serve", "--input", pts.to_str().unwrap(), "--listen", "127.0.0.1:0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).unwrap();
    let addr = banner.trim().strip_prefix("listening ").unwrap_or_else(|| panic!("{banner}"));

    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    conn.write_all(b"ping\nemst\nquit\n").unwrap();
    let mut replies = String::new();
    conn.read_to_string(&mut replies).unwrap();
    assert_eq!(replies.lines().count(), 3, "replies: {replies}");
    assert!(replies.starts_with("ok pong\n"), "replies: {replies}");
    assert!(replies.contains("\nok emst cache=hit n=250 "), "replies: {replies}");
    assert!(replies.ends_with("ok bye\n"), "replies: {replies}");

    drop(child.stdin.take()); // EOF -> graceful shutdown
    let status = child.wait().unwrap();
    assert!(status.success());
    std::fs::remove_file(&pts).ok();
}

#[test]
fn serve_stats_line_covers_every_serve_stats_field() {
    // Driven by `ServeStats::named_fields()` so that adding a field to
    // `ServeStats` without printing it in the CLI `stats` line fails this
    // test (the exhaustive destructure inside `named_fields` already makes
    // forgetting to *export* the field a compile error).
    let pts = tmp("serve-statsline-points.csv");
    assert!(bin()
        .args(["generate", "--kind", "uniform", "--n", "200", "--dim", "2"])
        .args(["--seed", "21", "--output", pts.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let stdout = serve_session(&pts, &[], "emst\nstats\nquit\n");
    let line = stdout
        .lines()
        .find(|l| l.starts_with("stats "))
        .unwrap_or_else(|| panic!("no stats line in: {stdout}"));
    assert!(line.contains("resident=1"), "stats line: {line}");
    assert!(line.contains("bytes="), "stats line: {line}");
    for (name, _) in emst::serve::ServeStats::default().named_fields() {
        assert!(line.contains(&format!(" {name}=")), "stats line misses {name}: {line}");
    }
    // The two fields PR 6 added must be among them — a regression guard on
    // `named_fields` itself going stale.
    assert!(line.contains("digest_collisions="), "stats line: {line}");
    assert!(line.contains("coalesced="), "stats line: {line}");
    std::fs::remove_file(&pts).ok();
}

#[test]
fn serve_metrics_and_trace_commands_report_populated_observability() {
    let pts = tmp("serve-metrics-points.csv");
    assert!(bin()
        .args(["generate", "--kind", "uniform", "--n", "300", "--dim", "2"])
        .args(["--seed", "23", "--output", pts.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let stdout = serve_session(
        &pts,
        &["--shards", "2"],
        "emst\nemst\nknn 2 0.5 0.5\nmetrics\ntrace\nmetrics json\nmetrics yaml\nquit\n",
    );

    // Prometheus exposition: per-op latency histograms with quantiles.
    assert!(stdout.contains("# TYPE emst_serve_op_seconds histogram"), "stdout: {stdout}");
    assert!(stdout.contains("emst_serve_op_seconds_count{op=\"emst\"} 2"), "stdout: {stdout}");
    assert!(stdout.contains("emst_serve_op_seconds_count{op=\"knn\"} 1"), "stdout: {stdout}");
    for q in ["p50", "p95", "p99"] {
        assert!(
            stdout.contains(&format!("emst_serve_op_seconds_{q}{{op=\"emst\"}}")),
            "missing {q}: {stdout}"
        );
    }
    assert!(stdout.contains("emst_serve_cache_events_total{event=\"hit\"}"), "stdout: {stdout}");
    assert!(stdout.contains("emst_serve_resident_clouds 1"), "stdout: {stdout}");

    // Traces: newest-first, so the knn query renders before the emst ones,
    // and the span breakdown is attached.
    let knn_at = stdout.find("op=knn").unwrap_or_else(|| panic!("no knn trace: {stdout}"));
    let emst_at = stdout.find("op=emst").unwrap_or_else(|| panic!("no emst trace: {stdout}"));
    assert!(knn_at < emst_at, "traces not newest-first: {stdout}");
    assert!(stdout.contains("query #"), "stdout: {stdout}");
    assert!(stdout.contains("digest"), "stdout: {stdout}");

    // JSON exporter answers too, and a bad format is a clean error.
    assert!(stdout.contains("\"emst_serve_op_seconds{op=\\\"emst\\\"}\""), "stdout: {stdout}");
    assert!(stdout.contains("error: invalid metrics format \"yaml\""), "stdout: {stdout}");
    std::fs::remove_file(&pts).ok();
}

#[test]
fn serve_metrics_file_and_json_log_format() {
    let pts = tmp("serve-metricsfile-points.csv");
    let metrics = tmp("serve-metricsfile.prom");
    assert!(bin()
        .args(["generate", "--kind", "uniform", "--n", "200", "--dim", "2"])
        .args(["--seed", "27", "--output", pts.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    use std::io::Write as _;
    use std::process::Stdio;
    let mut child = bin()
        .args(["serve", "--input", pts.to_str().unwrap()])
        .args(["--log-format", "json", "--metrics-file", metrics.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(b"emst\nknn 3 0.1 0.9\nquit\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));

    // The metrics file holds a full exposition snapshot from after the last
    // command.
    let exposition = std::fs::read_to_string(&metrics).unwrap();
    assert!(exposition.contains("# TYPE emst_serve_op_seconds histogram"), "{exposition}");
    assert!(exposition.contains("emst_serve_op_seconds_count{op=\"knn\"} 1"), "{exposition}");
    assert!(exposition.contains("emst_serve_cache_events_total"), "{exposition}");

    // --log-format json turns the serve banner into a JSON line on stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    let banner = stderr
        .lines()
        .find(|l| l.contains("\"msg\""))
        .unwrap_or_else(|| panic!("no JSON log line in: {stderr}"));
    assert!(banner.starts_with("{\"ts\":"), "banner: {banner}");
    assert!(banner.contains("\"level\":\"info\""), "banner: {banner}");
    assert!(banner.contains("\"target\":\"emst-cli\""), "banner: {banner}");
    std::fs::remove_file(&pts).ok();
    std::fs::remove_file(&metrics).ok();
}

#[test]
fn traversal_flag_selects_a_walker_and_matches_the_default() {
    let pts = tmp("traversal-points.csv");
    assert!(bin()
        .args(["generate", "--kind", "uniform", "--n", "600", "--dim", "2"])
        .args(["--seed", "11", "--output", pts.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    let weight_of = |traversal: &str| -> String {
        let out = bin()
            .args(["emst", "--input", pts.to_str().unwrap(), "--traversal", traversal])
            .output()
            .unwrap();
        assert!(out.status.success(), "{traversal}: {}", String::from_utf8_lossy(&out.stderr));
        let stderr = String::from_utf8_lossy(&out.stderr).to_string();
        let line = stderr.lines().find(|l| l.contains("weight")).unwrap().to_string();
        line.split("weight ").nth(1).unwrap().split(',').next().unwrap().to_string()
    };
    // Both walkers report the identical tree weight.
    assert_eq!(weight_of("stack"), weight_of("stackless"));

    // Bad values are a hard error, never a silent default.
    let stderr =
        expect_error(&["emst", "--input", pts.to_str().unwrap(), "--traversal", "recursive"]);
    assert!(stderr.contains("invalid --traversal"), "stderr: {stderr}");
    // And the flag is single-tree only.
    let stderr = expect_error(&[
        "emst",
        "--input",
        pts.to_str().unwrap(),
        "--traversal",
        "stack",
        "--algorithm",
        "wspd",
    ]);
    assert!(stderr.contains("--traversal requires"), "stderr: {stderr}");

    std::fs::remove_file(&pts).ok();
}
