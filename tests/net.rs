//! Network serving integration: raw TCP clients against [`ServeServer`],
//! with every reply proven bit-identical to the in-process
//! [`respond`] oracle — the same function the socket path runs, executed
//! directly against a [`ServeEngine`] with the same configuration.
//!
//! Covers the PR 9 acceptance criteria: ≥ 8 concurrent clients with
//! byte-exact replies, a same-key coalescing storm with
//! `query_coalesced > 0`, deterministic overload shedding, graceful
//! shutdown draining in-flight requests, and protocol robustness under
//! junk bytes, split writes, oversized lines and mid-response
//! disconnects (property-tested with proptest).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use emst::datasets::{generate_2d, DatasetSpec};
use emst::exec::Serial;
use emst::geometry::Point;
use emst::serve::net::{respond, MAX_LINE_BYTES};
use emst::serve::{NetConfig, NetSession, ServeConfig, ServeEngine, ServeServer};
use proptest::prelude::*;

type Engine = ServeEngine<Serial, 2>;
type Server = ServeServer<Serial, 2>;

fn cloud(n: usize, seed: u64) -> Arc<Vec<Point<2>>> {
    Arc::new(generate_2d(&DatasetSpec::uniform(n, seed)))
}

/// A fresh engine with the cloud ingested — the same construction for the
/// served engine and the in-process oracle, so their bits must agree.
fn engine(pts: &Arc<Vec<Point<2>>>) -> Arc<Engine> {
    let engine = Arc::new(Engine::new(Serial, ServeConfig::new(4, 2)));
    engine.ingest(pts);
    engine
}

fn server(pts: &Arc<Vec<Point<2>>>, net: NetConfig) -> Server {
    ServeServer::bind(engine(pts), Arc::clone(pts), "127.0.0.1:0", net).unwrap()
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    // A wedged server fails the test with a timeout error, not a hang.
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream
}

/// Runs `lines` through the in-process protocol function and returns the
/// concatenated wire bytes a TCP client must receive for the same lines.
fn oracle_replies(engine: &Engine, pts: &Arc<Vec<Point<2>>>, lines: &[&str]) -> String {
    let mut session = NetSession::new(Arc::clone(pts));
    lines.iter().map(|l| respond(engine, &mut session, l).text).collect()
}

/// The one field coalescing legitimately shares: a follower may see the
/// leader's `cache=miss`. Everything else must be byte-identical.
fn strip_cache_token(reply: &str) -> String {
    reply.split_whitespace().filter(|t| !t.starts_with("cache=")).collect::<Vec<_>>().join(" ")
}

/// ≥ 8 concurrent raw-TCP clients each run the full verb script and every
/// byte on the wire matches a *separate* in-process engine with the same
/// configuration — the bit-identity proof for the network layer.
#[test]
fn concurrent_clients_match_the_in_process_oracle_bit_for_bit() {
    let pts = cloud(400, 11);
    let server = server(&pts, NetConfig { workers: 8, max_pending: 64 });
    const SCRIPT: [&str; 6] =
        ["ping", "emst", "subset 10..50", "knn 3 0.5 0.5", "hdbscan 4 8", "quit"];

    // Warm both engines with one in-process pass so every concurrent
    // request is a `cache=hit` with stable bytes, then take the expected
    // bytes from the oracle engine.
    let _ = oracle_replies(server.engine(), &pts, &SCRIPT[..5]);
    let oracle = engine(&pts);
    let _ = oracle_replies(&oracle, &pts, &SCRIPT[..5]);
    let expected = oracle_replies(&oracle, &pts, &SCRIPT);
    assert!(expected.contains("ok emst cache=hit "), "warm-up failed: {expected}");

    let request = SCRIPT.join("\n") + "\n";
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..10)
            .map(|_| {
                let (server, request) = (&server, request.as_str());
                s.spawn(move || {
                    let mut c = connect(server);
                    c.write_all(request.as_bytes()).unwrap();
                    let mut got = String::new();
                    c.read_to_string(&mut got).unwrap(); // `quit` closes
                    got
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), expected, "client {i} diverged from the oracle");
        }
    });
}

/// A storm of identical cold requests: one execution serves the flight,
/// the rest coalesce (`query_coalesced > 0`) and receive identical bytes
/// which also match the in-process oracle (modulo the `cache=` outcome a
/// straggler that missed the flight window may see differently).
#[test]
fn same_key_storm_coalesces_and_all_clients_get_identical_bytes() {
    let pts = Arc::new(generate_2d(&DatasetSpec::hacc_like(4000, 3)));
    let server = server(&pts, NetConfig { workers: 12, max_pending: 64 });
    assert_eq!(server.engine().stats().query_coalesced, 0);

    let replies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..12)
            .map(|_| {
                let server = &server;
                s.spawn(move || {
                    let mut c = connect(server);
                    c.write_all(b"hdbscan 4 8\nquit\n").unwrap();
                    let mut got = String::new();
                    c.read_to_string(&mut got).unwrap();
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let canon: Vec<String> = replies.iter().map(|r| strip_cache_token(r)).collect();
    for (i, c) in canon.iter().enumerate() {
        assert_eq!(c, &canon[0], "client {i} got different payload bytes: {:?}", replies[i]);
        assert!(replies[i].starts_with("ok hdbscan cache="), "{:?}", replies[i]);
    }
    let oracle = engine(&pts);
    let expected = oracle_replies(&oracle, &pts, &["hdbscan 4 8", "quit"]);
    assert_eq!(canon[0], strip_cache_token(&expected), "wire diverged from the oracle");

    let coalesced = server.engine().stats().query_coalesced;
    assert!(coalesced > 0, "a 12-client same-key storm must coalesce");
}

/// Admission control is deterministic: with one busy worker and one queue
/// slot taken, the next connection gets exactly one honest line and is
/// closed — never a hang.
#[test]
fn over_capacity_connections_get_an_honest_overloaded_line() {
    let pts = cloud(300, 5);
    let server = server(&pts, NetConfig { workers: 1, max_pending: 1 });

    // c0: a full ping round-trip proves the single worker now owns it.
    let mut c0 = connect(&server);
    c0.write_all(b"ping\n").unwrap();
    let mut r0 = BufReader::new(c0.try_clone().unwrap());
    let mut line = String::new();
    r0.read_line(&mut line).unwrap();
    assert_eq!(line, "ok pong\n");

    // c1: accepted and queued (the worker is still busy with c0).
    let _c1 = connect(&server);
    std::thread::sleep(Duration::from_millis(100));

    // c2: over capacity — one honest line, then EOF.
    let mut c2 = connect(&server);
    let mut shed = String::new();
    c2.read_to_string(&mut shed).unwrap();
    assert_eq!(shed, "err overloaded: 1 connections already pending\n");

    // The connection that was admitted is still perfectly healthy.
    c0.write_all(b"ping\nquit\n").unwrap();
    let mut rest = String::new();
    r0.read_to_string(&mut rest).unwrap();
    assert_eq!(rest, "ok pong\nok bye\n");
}

/// Graceful shutdown: the in-flight request finishes and flushes its full
/// reply, the served connection then learns about the shutdown, and a
/// queued-but-unstarted connection gets the honest line instead of a hang.
#[test]
fn graceful_shutdown_drains_in_flight_and_answers_queued_connections() {
    let pts = Arc::new(generate_2d(&DatasetSpec::hacc_like(3000, 9)));
    let server = server(&pts, NetConfig { workers: 1, max_pending: 4 });

    let mut c0 = connect(&server);
    c0.write_all(b"ping\n").unwrap();
    let mut r0 = BufReader::new(c0.try_clone().unwrap());
    let mut line = String::new();
    r0.read_line(&mut line).unwrap();
    assert_eq!(line, "ok pong\n");
    let mut c1 = connect(&server); // queued behind c0

    // Kick off a cold (slow) query, then shut down while it runs.
    c0.write_all(b"emst\n").unwrap();
    std::thread::sleep(Duration::from_millis(50));
    server.shutdown(); // joins every thread: replies are flushed on return

    let mut rest = String::new();
    r0.read_to_string(&mut rest).unwrap();
    let mut lines = rest.lines();
    let first = lines.next().unwrap();
    assert!(first.starts_with("ok emst cache="), "in-flight request must drain: {rest:?}");
    assert!(first.contains(" check="), "{first}");
    assert_eq!(lines.next(), Some("err shutting down"));
    assert_eq!(lines.next(), None);

    let mut queued = String::new();
    c1.read_to_string(&mut queued).unwrap();
    assert_eq!(queued, "err shutting down\n");
}

/// Every well-formed line gets exactly one reply and every malformed line
/// gets exactly one `err …` reply, in request order.
#[test]
fn every_line_gets_exactly_one_reply_in_order() {
    let pts = cloud(250, 13);
    let server = server(&pts, NetConfig::default());
    let mut c = connect(&server);
    c.write_all(b"ping\n\nbogus\nsubset\nknn 3 0.5 0.5\n   \nquit\n").unwrap();
    let mut out = String::new();
    c.read_to_string(&mut out).unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 7, "seven lines in, seven replies out: {out:?}");
    assert_eq!(lines[0], "ok pong");
    assert_eq!(lines[1], "err empty command");
    assert!(lines[2].starts_with("err unknown command \"bogus\""), "{}", lines[2]);
    assert_eq!(lines[3], "err subset needs <lo>..<hi>");
    assert!(lines[4].starts_with("ok knn cache="), "{}", lines[4]);
    assert_eq!(lines[5], "err empty command");
    assert_eq!(lines[6], "ok bye");
}

/// An oversized unterminated line is rejected with one honest line — not
/// buffered without bound, and not a wedge for anyone else.
#[test]
fn oversized_lines_are_rejected_with_one_honest_line() {
    let pts = cloud(250, 17);
    let server = server(&pts, NetConfig::default());
    let mut c = connect(&server);
    c.write_all(&vec![b'a'; MAX_LINE_BYTES + 100]).unwrap();
    let mut out = String::new();
    c.read_to_string(&mut out).unwrap();
    assert_eq!(out, format!("err line too long (max {MAX_LINE_BYTES} bytes)\n"));

    let mut fresh = connect(&server);
    fresh.write_all(b"ping\nquit\n").unwrap();
    let mut out = String::new();
    fresh.read_to_string(&mut out).unwrap();
    assert_eq!(out, "ok pong\nok bye\n");
}

/// Clients that vanish mid-request or mid-response only lose their own
/// connection; the engine keeps serving everyone else exactly.
#[test]
fn client_drops_leave_the_engine_serving_others() {
    let pts = cloud(300, 19);
    let server = server(&pts, NetConfig { workers: 2, max_pending: 8 });

    // Drop mid-request: an unterminated partial line, then EOF.
    {
        let mut c = connect(&server);
        c.write_all(b"em").unwrap();
    }
    // Drop mid-response: request a multi-line body plus a query, vanish
    // before reading a byte of either.
    {
        let mut c = connect(&server);
        c.write_all(b"metrics\nemst\n").unwrap();
        c.shutdown(std::net::Shutdown::Both).unwrap();
    }

    let oracle = engine(&pts);
    let _ = oracle_replies(&oracle, &pts, &["emst"]);
    let _ = oracle_replies(server.engine(), &pts, &["emst"]);
    let expected = oracle_replies(&oracle, &pts, &["ping", "emst", "quit"]);
    for _ in 0..2 {
        let mut c = connect(&server);
        c.write_all(b"ping\nemst\nquit\n").unwrap();
        let mut out = String::new();
        c.read_to_string(&mut out).unwrap();
        assert_eq!(out, expected, "survivors must still get oracle bytes");
    }
}

/// The PR 10 mutation verbs over TCP: a client running an
/// insert/query/delete script receives bytes identical to the in-process
/// [`respond`] oracle run against a separately constructed engine — the
/// same bit-identity proof the read-only verbs get, now covering the
/// incremental delta-solve path and the session-cloud swap.
#[test]
fn mutation_verbs_on_the_wire_match_the_oracle_bit_for_bit() {
    let pts = cloud(300, 31);
    let server = server(&pts, NetConfig { workers: 2, max_pending: 8 });
    const SCRIPT: [&str; 8] = [
        "insert 0.31 0.64 0.22 0.18",
        "emst",
        "delete 0 7 150",
        "emst",
        "insert 0.31 0.64",
        "subset 10..60",
        "delete 0",
        "quit",
    ];
    let oracle = engine(&pts);
    let expected = oracle_replies(&oracle, &pts, &SCRIPT);
    assert!(expected.contains("ok insert key="), "{expected}");
    assert!(expected.contains("ok delete key="), "{expected}");

    let mut c = connect(&server);
    c.write_all((SCRIPT.join("\n") + "\n").as_bytes()).unwrap();
    let mut got = String::new();
    c.read_to_string(&mut got).unwrap();
    assert_eq!(got, expected, "wire mutation bytes diverged from the oracle");

    // A second client starts from the server's *initial* cloud — the
    // first client's mutations were session-scoped, not global.
    let expected_fresh = oracle_replies(&oracle, &pts, &["delete 0 7 150", "quit"]);
    let mut c2 = connect(&server);
    c2.write_all(b"delete 0 7 150\nquit\n").unwrap();
    let mut got2 = String::new();
    c2.read_to_string(&mut got2).unwrap();
    assert_eq!(got2, expected_fresh, "sessions must not leak mutations across connections");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary junk bytes never panic or wedge the server: the
    /// connection always reaches EOF (our trailing `quit`, or whatever
    /// the junk itself triggered), at least one reply line was sent, and
    /// a fresh client still gets exact service afterwards.
    #[test]
    fn junk_bytes_never_wedge_the_server(junk in proptest::collection::vec(any::<u8>(), 0..1500)) {
        let pts = cloud(150, 29);
        let server = server(&pts, NetConfig { workers: 2, max_pending: 8 });
        let mut c = connect(&server);
        // Junk may legitimately close the connection early (e.g. if it
        // happens to spell `quit`), so later writes are best-effort.
        let _ = c.write_all(&junk);
        let _ = c.write_all(b"\nping\nquit\n");
        let mut out = Vec::new();
        let mut chunk = [0u8; 4096];
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match c.read(&mut chunk) {
                Ok(0) => break, // EOF: the server closed cleanly
                Ok(n) => out.extend_from_slice(&chunk[..n]),
                Err(e) => prop_assert!(false, "read failed (wedged?): {e}"),
            }
            prop_assert!(Instant::now() < deadline, "server wedged on junk input");
        }
        prop_assert!(!out.is_empty(), "at least one reply line is owed");
        prop_assert!(out.ends_with(b"\n"), "replies are newline-terminated");

        let mut fresh = connect(&server);
        fresh.write_all(b"ping\nquit\n").unwrap();
        let mut rest = String::new();
        fresh.read_to_string(&mut rest).unwrap();
        prop_assert_eq!(rest, "ok pong\nok bye\n");
    }

    /// Split and partial writes reassemble into exactly the oracle bytes:
    /// the reply stream is a pure function of the line stream, however
    /// the bytes were segmented.
    #[test]
    fn split_writes_reassemble_into_exact_replies(cuts in proptest::collection::vec(1usize..40, 0..6)) {
        let pts = cloud(200, 23);
        let server = server(&pts, NetConfig { workers: 2, max_pending: 8 });
        const SCRIPT: [&str; 4] = ["ping", "knn 3 0.5 0.5", "subset 5..25", "quit"];
        let _ = oracle_replies(server.engine(), &pts, &SCRIPT[..3]);
        let expected = oracle_replies(server.engine(), &pts, &SCRIPT);

        let request = SCRIPT.join("\n") + "\n";
        let bytes = request.as_bytes();
        let mut c = connect(&server);
        let mut sent = 0;
        for cut in cuts {
            let upto = (sent + cut).min(bytes.len());
            c.write_all(&bytes[sent..upto]).unwrap();
            sent = upto;
            std::thread::sleep(Duration::from_millis(2));
        }
        c.write_all(&bytes[sent..]).unwrap();
        let mut got = String::new();
        c.read_to_string(&mut got).unwrap();
        prop_assert_eq!(got, expected);
    }
}
