//! Offline stand-in for the `parking_lot` crate.
//!
//! The container builds without network access, so the workspace vendors the
//! tiny API slice it actually uses: a [`Mutex`] whose `lock()` returns the
//! guard directly (no poisoning in the type). Backed by `std::sync::Mutex`;
//! poisoning is swallowed like `parking_lot` would (a panicked critical
//! section does not wedge every later locker).

use std::sync::{MutexGuard as StdGuard, PoisonError};

/// A mutual-exclusion primitive with `parking_lot`'s poison-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`]. Derefs to the protected data.
pub struct MutexGuard<'a, T: ?Sized>(StdGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
