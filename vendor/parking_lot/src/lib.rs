//! Offline stand-in for the `parking_lot` crate.
//!
//! The container builds without network access, so the workspace vendors the
//! tiny API slice it actually uses: a [`Mutex`], an [`RwLock`], and a
//! [`Condvar`] whose lock methods return guards directly (no poisoning in the
//! type). Backed by `std::sync` primitives; poisoning is swallowed like
//! `parking_lot` would (a panicked critical section does not wedge every
//! later locker).

use std::sync::{
    MutexGuard as StdGuard, PoisonError, RwLockReadGuard as StdReadGuard,
    RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion primitive with `parking_lot`'s poison-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`]. Derefs to the protected data.
///
/// The inner `Option` is `Some` for the guard's whole life except inside
/// [`Condvar::wait`], which must briefly move the std guard out to re-park.
pub struct MutexGuard<'a, T: ?Sized>(Option<StdGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard present outside Condvar::wait")
    }
}

/// A reader-writer lock with `parking_lot`'s poison-free `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(StdReadGuard<'a, T>);

/// Exclusive-access RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking while a writer holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access, blocking out all other guards.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable usable with [`Mutex`]/[`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing `guard`'s lock while parked and
    /// reacquiring it before returning (spurious wakeups possible, as with
    /// any condvar — callers loop on their predicate).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside Condvar::wait");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wakes one thread parked in [`Condvar::wait`].
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every thread parked in [`Condvar::wait`].
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::{Condvar, Mutex, RwLock};

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_allows_concurrent_readers_and_exclusive_writers() {
        let l = RwLock::new(vec![1u32, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_a_parked_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock();
                while !*ready {
                    cv.wait(&mut ready);
                }
            })
        };
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    }
}
