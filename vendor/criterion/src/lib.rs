//! Offline stand-in for the `criterion` crate.
//!
//! The container builds without network access, so this vendors the slice
//! of the criterion API the `micro` bench uses: [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size`/`measurement_time`/`throughput`,
//! `bench_function`/`bench_with_input`, [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are deliberately simple — warm-up, then `sample_size` timed
//! samples; the median, min and max go to stdout. No HTML reports, no
//! regression baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to every `criterion_group!` function.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mirror criterion's CLI shape loosely: a bare positional argument
        // filters benchmark names. Flags are ignored — including the value
        // of a `--flag value` pair, so e.g. `--measurement-time 10` does
        // not turn "10" into a filter.
        let mut filter = None;
        let mut after_flag = false;
        for a in std::env::args().skip(1) {
            if a.starts_with('-') {
                // Value-taking flags use a following token unless spelled
                // `--flag=value`; treat the next bare token as that value.
                after_flag = !a.contains('=');
            } else if after_flag {
                after_flag = false;
            } else {
                filter = Some(a);
                break;
            }
        }
        Self { filter }
    }
}

impl Criterion {
    /// Accepts CLI configuration (no-op here; kept for API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            throughput: None,
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// Units of work per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to record per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget the samples should roughly fill.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares the per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        if !self._criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher { samples: vec![] };
        let deadline = Instant::now() + self.measurement_time;
        // Warm-up sample, then measure until the sample budget or deadline.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
            if Instant::now() > deadline {
                break;
            }
        }
        report(&full, &b.samples, self.throughput);
        self
    }

    /// Benchmarks `f` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (stdout reporting happens per-benchmark already).
    pub fn finish(&mut self) {}
}

fn report(id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let rate = throughput.map(|t| {
        let per_iter = match t {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        };
        per_iter as f64 / median.as_secs_f64()
    });
    match rate {
        Some(r) => println!(
            "{id:<48} median {median:>12?}  min {:>12?}  max {:>12?}  ({r:.3e}/s)",
            sorted[0],
            sorted[sorted.len() - 1]
        ),
        None => println!(
            "{id:<48} median {median:>12?}  min {:>12?}  max {:>12?}",
            sorted[0],
            sorted[sorted.len() - 1]
        ),
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`, criterion's conventional display form.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Timer handed to benchmark closures; each `iter` call records one sample.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` (criterion would time a batch; one
    /// execution keeps the stub honest for the millisecond-scale routines
    /// this workspace benches).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        black_box(out);
    }
}

/// Declares a group function that runs each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_plumbing_runs() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3).measurement_time(Duration::from_millis(50));
        g.throughput(Throughput::Elements(64));
        g.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 2), &2u64, |b, &k| {
            b.iter(|| (0..64u64).map(|x| x * k).sum::<u64>())
        });
        g.finish();
    }
}
