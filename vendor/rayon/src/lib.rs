//! Offline stand-in for the `rayon` crate.
//!
//! The container builds without network access, so this vendors the API
//! slice the workspace actually uses — genuinely parallel, built on
//! `std::thread::scope` instead of a work-stealing pool:
//!
//! - [`join`] and [`current_num_threads`];
//! - `into_par_iter()` on integer ranges;
//! - `par_iter()`, `par_chunks()`, `par_chunks_mut()`, `par_sort_unstable*()`
//!   on slices;
//! - the [`ParallelIterator`] adaptors `map`, `zip`, `for_each`, `reduce`,
//!   `collect`.
//!
//! Items are materialized into a `Vec` and dealt to one scoped thread per
//! contiguous block, so `map`/`collect` preserve order exactly like rayon's
//! indexed iterators. Sorting is an in-place parallel quicksort that falls
//! back to `sort_unstable_by` on small runs.

use std::cmp::Ordering;
use std::ops::Range;

/// Number of worker threads a data-parallel call will fan out to.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        (ra, rb)
    })
}

/// Runs `make_part(part_index)` on one scoped thread per part and returns
/// the per-part outputs in part order. The common engine under both the
/// materialized-`Vec` and arithmetic-range sources.
fn scatter<P, O>(parts: usize, make_part: P) -> Vec<O>
where
    P: Fn(usize) -> O + Sync,
    O: Send,
{
    let make_part = &make_part;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..parts).map(|i| s.spawn(move || make_part(i))).collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// Applies `f` to every item of `items` across scoped threads, preserving
/// input order in the output.
fn run_parallel<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // One pass distributing ownership into per-thread parts (O(n) moves).
    let chunk = n.div_ceil(threads);
    let mut parts: Vec<Vec<T>> = (0..threads).map(|_| Vec::with_capacity(chunk)).collect();
    for (i, item) in items.into_iter().enumerate() {
        parts[i / chunk].push(item);
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| s.spawn(move || part.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
        }
        out
    })
}

/// A parallel iterator: anything that can deal its items out to threads.
///
/// Unlike rayon's lazy splitting machinery, sources materialize their items
/// up front ([`Self::into_items`]); adaptors stay cheap because items are
/// ranges, references, or sub-slices.
pub trait ParallelIterator: Sized + Send {
    /// The item type handed to worker threads.
    type Item: Send;

    /// Materializes the items, in order.
    fn into_items(self) -> Vec<Self::Item>;

    /// Maps every item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Pairs this iterator with another, truncating to the shorter.
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Consumes every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        drop(self.drive(&|item| f(item)));
    }

    /// Reduces the items with `op`, seeding the fold with `identity()`.
    /// (`into_items` already ran any mapping stage in parallel; the final
    /// combine is sequential, which rayon does not guarantee against.)
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        self.into_items().into_iter().fold(identity(), op)
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        self.into_items().into_iter().sum()
    }

    /// Collects the items, preserving order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.into_items().into_iter().collect()
    }

    /// Runs `f` over all items in parallel and returns the ordered results.
    fn drive<R, F>(self, f: &F) -> Vec<R>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        run_parallel(self.into_items(), f)
    }
}

/// Conversion into a [`ParallelIterator`] by value.
pub trait IntoParallelIterator {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The iterated item type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a borrowing [`ParallelIterator`].
pub trait IntoParallelRefIterator<'a> {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The iterated item type.
    type Item: Send + 'a;
    /// Iterates `&self` in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

/// A materialized sequence acting as a parallel iterator.
pub struct VecIter<T>(Vec<T>);

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn into_items(self) -> Vec<T> {
        self.0
    }
}

/// Lazily mapped parallel iterator (see [`ParallelIterator::map`]).
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;

    fn into_items(self) -> Vec<R> {
        // Run the mapping fan-out here so `map(...).collect()` executes `f`
        // on the worker threads, not on the caller.
        let f = self.f;
        self.base.drive(&f)
    }
}

/// Zipped pair of parallel iterators (see [`ParallelIterator::zip`]).
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn into_items(self) -> Vec<Self::Item> {
        self.a.into_items().into_iter().zip(self.b.into_items()).collect()
    }
}

/// Index arithmetic for [`RangeIter`]'s zero-materialization dispatch.
pub trait RangeItem: Copy + Send + Sync {
    /// Number of items in `start..end` (0 for empty/inverted ranges).
    fn span(start: Self, end: Self) -> usize;
    /// The `i`-th item of a range beginning at `start`.
    fn offset(start: Self, i: usize) -> Self;
}

/// Parallel iterator over an integer range. Unlike [`VecIter`], worker
/// threads receive arithmetic sub-ranges — nothing is materialized, so
/// `Threads::parallel_for(n, ..)`-style hot loops pay no per-launch O(n)
/// allocation.
pub struct RangeIter<T> {
    start: T,
    end: T,
}

impl<T: RangeItem> ParallelIterator for RangeIter<T> {
    type Item = T;

    fn into_items(self) -> Vec<T> {
        let n = T::span(self.start, self.end);
        (0..n).map(|i| T::offset(self.start, i)).collect()
    }

    fn drive<R, F>(self, f: &F) -> Vec<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = T::span(self.start, self.end);
        let threads = current_num_threads().min(n);
        let start = self.start;
        if threads <= 1 {
            return (0..n).map(|i| f(T::offset(start, i))).collect();
        }
        let chunk = n.div_ceil(threads);
        let outs = scatter(n.div_ceil(chunk), |p| {
            (p * chunk..((p + 1) * chunk).min(n))
                .map(|i| f(T::offset(start, i)))
                .collect::<Vec<R>>()
        });
        let mut out = Vec::with_capacity(n);
        for o in outs {
            out.extend(o);
        }
        out
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl RangeItem for $t {
            fn span(start: Self, end: Self) -> usize {
                if end <= start {
                    0
                } else {
                    (end as i128 - start as i128) as usize
                }
            }
            fn offset(start: Self, i: usize) -> Self {
                start.wrapping_add(i as $t)
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Iter = RangeIter<$t>;
            type Item = $t;
            fn into_par_iter(self) -> RangeIter<$t> {
                RangeIter { start: self.start, end: self.end }
            }
        }
    )*};
}

impl_range_par_iter!(i32, i64, u32, u64, usize);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter(self)
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = VecIter<&'a T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> VecIter<&'a T> {
        VecIter(self.iter().collect())
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = VecIter<&'a T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> VecIter<&'a T> {
        VecIter(self.iter().collect())
    }
}

/// Parallel operations on slices: chunking and sorting.
pub trait ParallelSliceOps<T: Send> {
    /// Immutable chunks of at most `size` items, as a parallel iterator.
    fn par_chunks(&self, size: usize) -> VecIter<&[T]>;
    /// Sorts in place (unstable) by `Ord`, in parallel.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// Sorts in place (unstable) by a comparator, in parallel.
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync;
    /// Sorts in place (unstable) by a key, in parallel.
    fn par_sort_unstable_by_key<K: Ord, F>(&mut self, key: F)
    where
        F: Fn(&T) -> K + Sync;
}

/// Parallel mutable chunking of slices.
pub trait ParallelSliceMutOps<T: Send> {
    /// Mutable chunks of at most `size` items, as a parallel iterator.
    fn par_chunks_mut(&mut self, size: usize) -> VecIter<&mut [T]>;
}

impl<T: Send + Sync> ParallelSliceOps<T> for [T] {
    fn par_chunks(&self, size: usize) -> VecIter<&[T]> {
        VecIter(self.chunks(size).collect())
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.par_sort_unstable_by(T::cmp);
    }

    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        let depth = current_num_threads().next_power_of_two().trailing_zeros() + 1;
        par_quicksort(self, &cmp, depth);
    }

    fn par_sort_unstable_by_key<K: Ord, F>(&mut self, key: F)
    where
        F: Fn(&T) -> K + Sync,
    {
        self.par_sort_unstable_by(|a, b| key(a).cmp(&key(b)));
    }
}

impl<T: Send> ParallelSliceMutOps<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> VecIter<&mut [T]> {
        VecIter(self.chunks_mut(size).collect())
    }
}

const SORT_SEQUENTIAL_CUTOFF: usize = 4096;

fn par_quicksort<T, F>(v: &mut [T], cmp: &F, depth: u32)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    if depth == 0 || v.len() <= SORT_SEQUENTIAL_CUTOFF {
        v.sort_unstable_by(cmp);
        return;
    }
    let pivot = partition(v, cmp);
    let (lo, rest) = v.split_at_mut(pivot);
    let hi = &mut rest[1..];
    join(|| par_quicksort(lo, cmp, depth - 1), || par_quicksort(hi, cmp, depth - 1));
}

/// Lomuto partition with a median-of-three pivot; returns the pivot's final
/// index.
fn partition<T, F>(v: &mut [T], cmp: &F) -> usize
where
    F: Fn(&T, &T) -> Ordering,
{
    let len = v.len();
    let mid = len / 2;
    // Order v[0], v[mid], v[len-1]; the median ends up at len-1 as pivot.
    if cmp(&v[mid], &v[0]) == Ordering::Less {
        v.swap(mid, 0);
    }
    if cmp(&v[len - 1], &v[0]) == Ordering::Less {
        v.swap(len - 1, 0);
    }
    if cmp(&v[mid], &v[len - 1]) == Ordering::Less {
        v.swap(mid, len - 1);
    }
    let mut store = 0;
    for i in 0..len - 1 {
        if cmp(&v[i], &v[len - 1]) == Ordering::Less {
            v.swap(i, store);
            store += 1;
        }
    }
    v.swap(store, len - 1);
    store
}

/// The traits a `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSliceMutOps,
        ParallelSliceOps,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn for_each_visits_every_index_once() {
        let sum = AtomicU64::new(0);
        (0..10_000u64).into_par_iter().for_each(|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 10_000 * 9_999 / 2);
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..5_000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..5_000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_matches_sequential_fold() {
        let total = (0..1_000u64).into_par_iter().map(|i| i * i).reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0..1_000u64).map(|i| i * i).sum::<u64>());
    }

    #[test]
    fn par_sort_matches_std_sort() {
        let mut a: Vec<u64> = (0..100_000u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        let mut b = a.clone();
        a.par_sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn chunks_zip_for_each_mutates_in_place() {
        let mut data = vec![1usize; 100];
        let offsets: Vec<usize> = (0..10).collect();
        data.par_chunks_mut(10).zip(offsets.par_iter()).for_each(|(chunk, &off)| {
            for x in chunk.iter_mut() {
                *x += off;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, 1 + i / 10);
        }
    }

    #[test]
    fn range_dispatch_covers_bounds_and_empty_ranges() {
        let v: Vec<u64> = (10u64..100_010).into_par_iter().map(|i| i).collect();
        assert_eq!(v.len(), 100_000);
        assert_eq!((v[0], v[99_999]), (10, 100_009));
        assert!(v.windows(2).all(|w| w[1] == w[0] + 1));
        let empty: Vec<i32> = (5i32..5).into_par_iter().map(|i| i).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn join_returns_both_results() {
        let (a, (b, c)) = super::join(|| 1, || super::join(|| 2, || 3));
        assert_eq!((a, b, c), (1, 2, 3));
    }
}
