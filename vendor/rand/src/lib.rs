//! Offline stand-in for the `rand` crate.
//!
//! The container builds without network access, so this vendors exactly the
//! slice of the `rand` 0.9 API the workspace uses:
//!
//! - [`rngs::StdRng`] — here a xoshiro256** generator seeded through
//!   SplitMix64 (deterministic across platforms and runs, which the
//!   reproduction's seeded datasets rely on);
//! - [`SeedableRng::seed_from_u64`];
//! - [`RngExt::random_range`] over half-open and inclusive integer and
//!   float ranges.
//!
//! Statistical quality matches the upstream generators closely enough for
//! dataset synthesis and property tests; nothing here is cryptographic.

use std::ops::{Range, RangeInclusive};

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 key expansion,
    /// the same scheme `rand` uses for small seeds).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The core source-of-randomness interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Range sampling, mirroring `rand::Rng::random_range`.
pub trait RngExt: RngCore {
    /// Samples uniformly from `range`. Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Samples a uniform value over the type's full domain
    /// (for floats: `[0, 1)`).
    fn random<T: SampleUniform>(&mut self) -> T {
        T::sample_any(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<G: RngCore + ?Sized> RngExt for G {}

/// Legacy alias so `use rand::Rng` keeps working.
pub use RngExt as Rng;

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;
    /// Uniform sample over the whole domain (floats: `[0, 1)`).
    fn sample_any<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

/// Ranges accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample out of `self`.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform `u64` in `[0, span)` without modulo bias (Lemire's method with a
/// rejection fallback on the boundary).
fn uniform_below<G: RngCore + ?Sized>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
        // Rejected sample in the biased boundary region; redraw.
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 as u64;
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128 as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
            fn sample_any<G: RngCore + ?Sized>(rng: &mut G) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f32 {
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
        let unit = Self::sample_any(rng);
        // lo + unit * span keeps the result in [lo, hi) for finite spans.
        let v = lo + unit * (hi - lo);
        if v < hi {
            v
        } else {
            lo
        }
    }
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
        // Unit draw over [0, 1] *inclusive* so `hi` is reachable, clamped
        // against rounding of `lo + (hi - lo)` overshooting `hi`.
        let unit = ((rng.next_u64() >> 40) as f32) * (1.0 / ((1u64 << 24) - 1) as f32);
        let v = lo + unit * (hi - lo);
        if v > hi {
            hi
        } else {
            v
        }
    }
    fn sample_any<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
        let unit = Self::sample_any(rng);
        let v = lo + unit * (hi - lo);
        if v < hi {
            v
        } else {
            lo
        }
    }
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / ((1u64 << 53) - 1) as f64);
        let v = lo + unit * (hi - lo);
        if v > hi {
            hi
        } else {
            v
        }
    }
    fn sample_any<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for bool {
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
        if lo == hi {
            lo
        } else {
            Self::sample_any(rng)
        }
    }
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
        if lo == hi {
            lo
        } else {
            Self::sample_any(rng)
        }
    }
    fn sample_any<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    ///
    /// Unlike the upstream `StdRng` (which explicitly reserves the right to
    /// change algorithms), this one is stable forever — the reproduction's
    /// seeded datasets and golden numbers depend on that.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix64(&mut sm);
            }
            // All-zero state is the one invalid xoshiro state; SplitMix64
            // cannot produce four zeros from any seed, but keep the guard.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1_000_000), b.random_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(-3i32..17);
            assert!((-3..17).contains(&x));
            let f = rng.random_range(-0.5f32..0.25);
            assert!((-0.5..0.25).contains(&f));
            let u = rng.random_range(5usize..6);
            assert_eq!(u, 5);
            let inc = rng.random_range(2u32..=4);
            assert!((2..=4).contains(&inc));
        }
    }

    #[test]
    fn inclusive_float_ranges_reach_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(rng.random_range(1.0f32..=1.0), 1.0);
        assert_eq!(rng.random_range(-2.5f64..=-2.5), -2.5);
        // Over a coarse 2^24-resolution draw, 200k samples of a unit range
        // stay inside [0, 1] and get within one quantum of each endpoint.
        let (mut lo_best, mut hi_best) = (1.0f32, 0.0f32);
        for _ in 0..200_000 {
            let v = rng.random_range(0.0f32..=1.0);
            assert!((0.0..=1.0).contains(&v));
            lo_best = lo_best.min(v);
            hi_best = hi_best.max(v);
        }
        assert!(lo_best < 1e-4 && hi_best > 1.0 - 1e-4, "{lo_best} {hi_best}");
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            lo_seen |= f < 0.1;
            hi_seen |= f > 0.9;
        }
        assert!(lo_seen && hi_seen);
    }
}
