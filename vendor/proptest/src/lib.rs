//! Offline stand-in for the `proptest` crate.
//!
//! The container builds without network access, so this vendors the slice of
//! proptest the workspace's property tests use:
//!
//! - the [`proptest!`] macro (with the optional
//!   `#![proptest_config(...)]` inner attribute) and the
//!   [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`] macros;
//! - [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, implemented
//!   for integer and float ranges and for strategy tuples;
//! - `prop::collection::vec`, `prop::array::uniform2`/`uniform3`,
//!   `prop::sample::select`, and [`arbitrary::any`].
//!
//! Differences from upstream, deliberately accepted: no shrinking (a failing
//! case reports the case index and is bit-reproducible because the RNG is
//! seeded from the test's module path and name), and no persisted failure
//! regressions.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Test-runner plumbing: configuration, RNG, and the case error type.
pub mod test_runner {
    use super::*;

    /// Subset of proptest's `Config` that the tests actually set.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream default; PROPTEST_CASES overrides like upstream.
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
            Self { cases }
        }
    }

    /// Failure raised by the `prop_assert*` macros inside a test body.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The deterministic RNG driving value generation.
    #[derive(Clone, Debug)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Seeds the RNG from a test identifier (FNV-1a of the name), so
        /// every run of a given test replays the same case sequence.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(StdRng::seed_from_u64(h))
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and its combinators.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::{RngExt, SampleUniform};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of type `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Feeds generated values into `f` to produce a dependent strategy,
        /// then draws from that.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// Strategy yielding exactly one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.0.random_range(self.clone())
        }
    }

    impl<T: SampleUniform> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.0.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

/// `any::<T>()` — full-domain generation for primitive types.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::{RngExt, SampleUniform};

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: SampleUniform {}
    impl<T: SampleUniform> Arbitrary for T {}

    /// Strategy over the whole domain of `T` (floats: `[0, 1)`).
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.0.random()
        }
    }

    /// Creates the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// `prop::collection` — strategies for variable-size collections.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::Range;

    /// Sizes accepted by [`vec()`](crate::collection::vec).
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.0.random_range(self.clone())
        }
    }

    /// See [`vec()`](crate::collection::vec).
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// `prop::array` — fixed-size arrays of one element strategy.
pub mod array {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// See [`uniform2`] / [`uniform3`].
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// `[T; 2]` with both elements drawn from `element`.
    pub fn uniform2<S: Strategy>(element: S) -> UniformArray<S, 2> {
        UniformArray(element)
    }

    /// `[T; 3]` with all elements drawn from `element`.
    pub fn uniform3<S: Strategy>(element: S) -> UniformArray<S, 3> {
        UniformArray(element)
    }

    /// `[T; 4]` with all elements drawn from `element`.
    pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
        UniformArray(element)
    }
}

/// `prop::sample` — choosing among explicit alternatives.
pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngExt;

    /// See [`select`].
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "select() needs at least one option");
            let i = rng.0.random_range(0..self.0.len());
            self.0[i].clone()
        }
    }

    /// Uniformly selects one of `options` per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select(options)
    }
}

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::{array, collection, sample};
    }
}

/// Runs `cases` iterations of a property. Used by [`proptest!`]; not public
/// API upstream, so keep it out of doc examples.
#[doc(hidden)]
pub fn __run_cases(
    name: &str,
    config: &test_runner::Config,
    mut case: impl FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
) {
    let mut rng = test_runner::TestRng::deterministic(name);
    for i in 0..config.cases {
        if let Err(e) = case(&mut rng) {
            panic!("proptest `{name}` failed at case {i}/{}: {e}", config.cases);
        }
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = <$crate::test_runner::Config as ::core::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let __name = concat!(module_path!(), "::", stringify!($name));
                $crate::__run_cases(__name, &__config, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) so the runner can report which case broke.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both operands on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `prop_assert!` for inequality, printing the operand on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_generation() {
        let s = prop::collection::vec((0u32..10, 0u32..10), 0..20);
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -5i32..5, f in 0.0f32..1.0, b in any::<bool>()) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
            let _ = b;
        }

        #[test]
        fn combinators_compose(v in (1usize..8).prop_flat_map(|n| {
            prop::collection::vec(0usize..n, 1..10).prop_map(move |xs| (n, xs))
        })) {
            let (n, xs) = v;
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|&x| x < n));
        }

        #[test]
        fn arrays_and_select(a in prop::array::uniform3(-1.0f32..1.0),
                             pick in prop::sample::select(vec![2u32, 4, 8])) {
            prop_assert!(a.iter().all(|x| (-1.0..1.0).contains(x)));
            prop_assert!([2u32, 4, 8].contains(&pick));
        }
    }
}
