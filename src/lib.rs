//! # emst — single-tree Euclidean minimum spanning trees
//!
//! A from-scratch Rust reproduction of *"A single-tree algorithm to compute
//! the Euclidean minimum spanning tree on GPUs"* (Prokopenko, Sao,
//! Lebrun-Grandié — ICPP 2022, arXiv:2207.00514).
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`geometry`] — points, bounding boxes, metrics;
//! - [`morton`] — Z-order curve encodings;
//! - [`exec`] — Kokkos-like execution spaces (`Serial`, `Threads`, `GpuSim`);
//! - [`bvh`] — the linear bounding volume hierarchy;
//! - [`core`] — ★ the paper's single-tree Borůvka EMST;
//! - [`kdtree`] — the dual-tree Borůvka baseline (MLPACK-like);
//! - [`wspd`] — the WSPD / GeoFilterKruskal baseline (MemoGFK-like);
//! - [`hdbscan`] — mutual-reachability clustering on top of the EMST;
//! - [`shard`] — Morton-range sharded EMST (parallel per-shard solves +
//!   cross-shard Borůvka merge), with an out-of-core CSV path;
//! - [`serve`] — the long-lived serving engine: resident shard artifacts
//!   behind a `(content digest, K)`-keyed cache with LRU spill eviction,
//!   answering repeated EMST/subset/HDBSCAN/k-NN queries without
//!   re-running the local phase; every query takes `&self`, so N threads
//!   share one engine by reference with bit-identical answers;
//! - [`obs`] — the observability layer behind the serving engine:
//!   lock-free metrics (counters, gauges, log₂-bucketed latency
//!   histograms with p50/p95/p99), a bounded ring of per-query phase
//!   traces, a leveled text/JSON logger, and Prometheus-style + JSON
//!   exporters;
//! - [`datasets`] — the synthetic evaluation datasets;
//! - [`graph`] — the classical explicit-graph MST algorithms of the paper's
//!   Background section (Borůvka, Kruskal, Prim).
//!
//! ## Quickstart
//!
//! ```
//! use emst::core::{EmstConfig, SingleTreeBoruvka};
//! use emst::datasets::{self, DatasetSpec};
//! use emst::exec::Threads;
//!
//! let points = datasets::generate_2d(&DatasetSpec::uniform(1_000, 42));
//! let result = SingleTreeBoruvka::new(&points)
//!     .run(&Threads, &EmstConfig::default());
//! assert_eq!(result.edges.len(), points.len() - 1);
//! println!("EMST total weight: {}", result.total_weight);
//! ```

pub use emst_bvh as bvh;
pub use emst_core as core;
pub use emst_datasets as datasets;
pub use emst_exec as exec;
pub use emst_geometry as geometry;
pub use emst_graph as graph;
pub use emst_hdbscan as hdbscan;
pub use emst_kdtree as kdtree;
pub use emst_morton as morton;
pub use emst_obs as obs;
pub use emst_serve as serve;
pub use emst_shard as shard;
pub use emst_wspd as wspd;
