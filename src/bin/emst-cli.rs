//! `emst-cli` — command-line access to the library.
//!
//! ```text
//! emst-cli generate --kind hacc --n 10000 --dim 3 --seed 1 --output pts.csv
//! emst-cli emst     --input pts.csv --dim 3 --output mst.csv [--algorithm single-tree]
//! emst-cli emst     --input pts.csv --shards 8 [--max-resident 1000000]
//! emst-cli hdbscan  --input pts.csv --dim 3 --k 5 --min-cluster-size 20 --output labels.csv
//! emst-cli serve    --input pts.csv --shards 8 --max-resident 4   # then commands on stdin
//! ```
//!
//! Arguments are `--key value` pairs; unknown keys abort with usage help and
//! malformed values (e.g. a non-numeric `--n`) abort with an error message
//! and a non-zero exit code. The MST output is CSV rows `u,v,weight`;
//! HDBSCAN output is one label per line (`-1` = noise).
//!
//! `serve` starts the long-lived engine (`emst::serve`): the cloud's shard
//! artifacts stay resident between queries, so repeated `emst` commands are
//! answered by the cross-shard merge alone. Commands, one per line on
//! stdin: `emst [out.csv]`, `subset <lo>..<hi>`, `knn <k> <x> <y> [<z>]`,
//! `hdbscan <k_pts> <min_cluster_size>`, `insert <x> <y> [<z>] …`,
//! `delete <id> …`, `load <points.csv>`, `stats`, `metrics [json]`,
//! `trace [n]`, `quit`. Responses go to stdout
//! (`cache=hit|miss|reloaded` tells whether the local phase ran);
//! malformed commands print an error and continue. `insert`/`delete`
//! mutate the session's cloud through the engine's incremental
//! delta-solve (only dirty shards re-solve) and swap the session onto
//! the new cloud, exactly like `load`.
//!
//! Serve diagnostics go through the `emst::obs` structured logger —
//! `--log-format json` turns them into machine-parseable JSON lines — and
//! `--metrics-file <path>` keeps a Prometheus-style exposition of the
//! engine's metrics current on disk (rewritten after each sequential
//! command and at exit; write failures are logged and counted, never
//! fatal).
//!
//! Fault tolerance: `--spill-dir`/`--fallback-spill-dir` choose where
//! evicted clouds are persisted (both are probed for writability at
//! startup, so a dead disk fails the launch, not the first eviction),
//! `--spill-retries` bounds the write retry-with-backoff, `--deadline-ms`
//! gives every query a wall-clock budget (late queries return an error at
//! a merge-round boundary instead of a late answer), `--max-in-flight`
//! sheds excess concurrent queries instead of queueing them, and
//! `--fault-plan "seed=42;write=eio@0.5;read=bitflip@0.25"` injects
//! deterministic storage faults for chaos drills.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::str::FromStr;

use emst::core::{EmstConfig, SingleTreeBoruvka, Traversal};
use emst::datasets::{self, Kind};
use emst::exec::{ExecSpace, GpuSim, Serial, Threads};
use emst::geometry::Point;
use emst::hdbscan::Hdbscan;
use emst::serve::fault::{faulted_read, faulted_write};
use emst::serve::{
    CacheOutcome, CloudRef, FaultPlan, FaultSite, MutateResponse, NetConfig, ServeConfig,
    ServeEngine, ServeRequest, ServeResponse, ServeServer,
};
use emst::shard::{emst_sharded_csv, emst_sharded_with, ShardConfig, ShardStats, StreamConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  emst-cli generate --kind <uniform|normal|visualvar|hacc|geolife|ngsim|porto|road>
                    --n <count> [--dim 2|3] [--seed <u64>] --output <points.csv>
  emst-cli emst     --input <points.csv> [--dim 2|3] [--output <mst.csv>]
                    [--algorithm single-tree|kd-single-tree|dual-tree|wspd]
                    [--backend serial|threads|gpusim]
                    [--traversal stackless|stack]
                    [--shards <K>] [--max-resident <points>]
  emst-cli hdbscan  --input <points.csv> [--dim 2|3] [--k <k_pts>]
                    [--min-cluster-size <m>] [--output <labels.csv>]
  emst-cli serve    --input <points.csv> [--dim 2|3] [--shards <K>]
                    [--max-resident <clouds>] [--backend serial|threads|gpusim]
                    [--traversal stackless|stack] [--workers <N>]
                    [--log-format text|json] [--metrics-file <metrics.prom>]
                    [--spill-dir <dir>] [--fallback-spill-dir <dir>]
                    [--spill-retries <N>] [--deadline-ms <ms>]
                    [--max-in-flight <N>] [--fault-plan <spec>]
                    [--listen <addr>] [--net-workers <N>] [--max-pending <M>]
                    stdin commands: emst [out.csv] | subset <lo>..<hi> |
                    knn <k> <x> <y> [<z>] | hdbscan <k_pts> <min_cluster_size> |
                    insert <x> <y> [<z>] … | delete <id> … |
                    load <points.csv> | stats | metrics [json] | trace [n] | quit
                    --listen serves the same verbs over TCP (one line per
                    request/reply; see docs/serving-protocol.md); stdin still
                    works and `quit`/EOF shuts the listener down gracefully"
    );
    ExitCode::FAILURE
}

fn parse_args(args: &[String]) -> Option<HashMap<String, String>> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let key = key.strip_prefix("--")?;
        let value = it.next()?;
        map.insert(key.to_string(), value.clone());
    }
    Some(map)
}

/// Parses an optional `--key value` argument strictly: a present but
/// malformed value is an error, never a silent default.
fn parse_opt<T: FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid --{key} value {v:?}")),
    }
}

/// Parses a required `--key value` argument strictly.
fn parse_req<T: FromStr>(opts: &HashMap<String, String>, key: &str) -> Result<T, String> {
    let v = opts.get(key).ok_or(format!("--{key} is required"))?;
    v.parse().map_err(|_| format!("invalid --{key} value {v:?}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return usage();
    };
    let Some(opts) = parse_args(rest) else {
        return usage();
    };
    let result = run(command, &opts);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(command: &str, opts: &HashMap<String, String>) -> Result<(), String> {
    let dim: usize = parse_opt(opts, "dim", 2)?;
    if dim != 2 && dim != 3 {
        return Err("--dim must be 2 or 3".into());
    }
    match (command, dim) {
        ("generate", 2) => generate::<2>(opts),
        ("generate", 3) => generate::<3>(opts),
        ("emst", 2) => run_emst::<2>(opts),
        ("emst", 3) => run_emst::<3>(opts),
        ("hdbscan", 2) => run_hdbscan::<2>(opts),
        ("hdbscan", 3) => run_hdbscan::<3>(opts),
        ("serve", 2) => run_serve::<2>(opts),
        ("serve", 3) => run_serve::<3>(opts),
        _ => Err(format!(
            "unknown command {command:?} (expected generate, emst, hdbscan or serve; run with \
             no arguments for usage)"
        )),
    }
}

fn generate<const D: usize>(opts: &HashMap<String, String>) -> Result<(), String> {
    let kind = match opts.get("kind").map(String::as_str) {
        Some("uniform") => Kind::Uniform,
        Some("normal") => Kind::Normal,
        Some("visualvar") => Kind::VisualVar,
        Some("hacc") => Kind::HaccLike,
        Some("geolife") => Kind::GeoLifeLike,
        Some("ngsim") => Kind::NgsimLike,
        Some("porto") => Kind::PortoTaxiLike,
        Some("road") => Kind::RoadNetworkLike,
        other => return Err(format!("unknown --kind {other:?}")),
    };
    let n: usize = parse_req(opts, "n")?;
    let seed: u64 = parse_opt(opts, "seed", 0)?;
    let output = opts.get("output").ok_or("--output is required")?;
    let points: Vec<Point<D>> = kind.generate(n, seed);
    datasets::save_csv(Path::new(output), &points).map_err(|e| e.to_string())?;
    eprintln!("wrote {n} points to {output}");
    Ok(())
}

fn load_points<const D: usize>(opts: &HashMap<String, String>) -> Result<Vec<Point<D>>, String> {
    let input = opts.get("input").ok_or("--input is required")?;
    load_points_from::<D>(input, None)
}

/// Loads a point file, routing the read itself through the fault plan's
/// ingest site (serve mode passes its `--fault-plan`, so chaos drills
/// cover dataset ingest with the same injector as spill storage).
fn load_points_from<const D: usize>(
    input: &str,
    plan: Option<&FaultPlan>,
) -> Result<Vec<Point<D>>, String> {
    let bytes = faulted_read(plan, FaultSite::IngestRead, Path::new(input))
        .map_err(|e| format!("{input}: {e}"))?;
    let points = if input.ends_with(".xyz") {
        datasets::parse_xyz::<D>(&bytes, input)
    } else {
        datasets::parse_csv::<D>(&bytes, input)
    }
    .map_err(|e| format!("{input}: {e}"))?;
    if points.is_empty() {
        return Err(format!("{input}: no points"));
    }
    Ok(points)
}

fn print_shard_stats(stats: &ShardStats) {
    let nonempty = stats.shard_sizes.iter().filter(|&&s| s > 0).count();
    let largest = stats.shard_sizes.iter().max().copied().unwrap_or(0);
    eprintln!(
        "shards: {} ({nonempty} non-empty, largest {largest}), merge rounds {}, boundary \
         candidates {}, peak resident {}",
        stats.shard_sizes.len(),
        stats.merge_rounds,
        stats.boundary_candidates,
        stats.peak_resident,
    );
    // Top-level phases only: the in-memory path records plan/local/merge,
    // the streamed path scan/histogram/route/local/pairs/assemble; the
    // merge engine's `merge.*` sub-phases stay out of the summary line.
    let phases: Vec<String> = stats
        .timings
        .iter()
        .filter(|(name, _)| !name.contains('.'))
        .map(|(name, secs)| format!("{name} {secs:.3} s"))
        .collect();
    if !phases.is_empty() {
        eprintln!("phases: {}", phases.join(", "));
    }
}

fn run_emst<const D: usize>(opts: &HashMap<String, String>) -> Result<(), String> {
    let algorithm = opts.get("algorithm").map(String::as_str).unwrap_or("single-tree");
    let backend = opts.get("backend").map(String::as_str).unwrap_or("threads");
    let shards: usize = parse_opt(opts, "shards", 0)?;
    let max_resident: usize = parse_opt(opts, "max-resident", 0)?;
    let traversal = match opts.get("traversal") {
        None => Traversal::default(),
        Some(v) => Traversal::parse(v)
            .ok_or(format!("invalid --traversal value {v:?} (expected stackless or stack)"))?,
    };
    let emst_cfg = EmstConfig { traversal, ..EmstConfig::default() };
    if (shards > 0 || max_resident > 0) && algorithm != "single-tree" {
        return Err(format!("--shards requires --algorithm single-tree, got {algorithm}"));
    }
    if opts.contains_key("traversal") && algorithm != "single-tree" {
        return Err(format!("--traversal requires --algorithm single-tree, got {algorithm}"));
    }

    // The out-of-core path streams the CSV directly instead of loading it.
    if max_resident > 0 {
        let input = opts.get("input").ok_or("--input is required")?;
        if input.ends_with(".xyz") {
            return Err("--max-resident streams CSV input only".into());
        }
        let cfg = StreamConfig { emst: emst_cfg, ..StreamConfig::new(shards, max_resident) };
        let start = std::time::Instant::now();
        let result = match backend {
            "serial" => emst_sharded_csv::<_, D>(&Serial, Path::new(input), &cfg),
            "threads" => emst_sharded_csv::<_, D>(&Threads, Path::new(input), &cfg),
            "gpusim" => emst_sharded_csv::<_, D>(&GpuSim::new(), Path::new(input), &cfg),
            other => return Err(format!("unknown --backend {other}")),
        }
        .map_err(|e| format!("{input}: {e}"))?;
        let n = result.stats.shard_sizes.iter().sum::<usize>();
        if n == 0 {
            return Err(format!("{input}: no points"));
        }
        print_shard_stats(&result.stats);
        return report_and_write(opts, n, D, result.edges, start.elapsed().as_secs_f64());
    }

    let points = load_points::<D>(opts)?;
    let n = points.len();
    let start = std::time::Instant::now();
    let edges = match algorithm {
        "single-tree" if shards > 0 => {
            let run_sharded =
                |space: &dyn ObjectSafeRun<D>| space.sharded(&points, shards, emst_cfg);
            let result = match backend {
                "serial" => run_sharded(&Serial),
                "threads" => run_sharded(&Threads),
                "gpusim" => run_sharded(&GpuSim::new()),
                other => return Err(format!("unknown --backend {other}")),
            };
            print_shard_stats(&result.stats);
            result.edges
        }
        "single-tree" => match backend {
            "serial" => SingleTreeBoruvka::new(&points).run(&Serial, &emst_cfg).edges,
            "threads" => SingleTreeBoruvka::new(&points).run(&Threads, &emst_cfg).edges,
            "gpusim" => SingleTreeBoruvka::new(&points).run(&GpuSim::new(), &emst_cfg).edges,
            other => return Err(format!("unknown --backend {other}")),
        },
        "kd-single-tree" => emst::kdtree::kd_single_tree_emst(&points).edges,
        "dual-tree" => emst::kdtree::dual_tree_emst(&points).edges,
        "wspd" => emst::wspd::wspd_emst(&points, backend != "serial").edges,
        other => return Err(format!("unknown --algorithm {other}")),
    };
    let secs = start.elapsed().as_secs_f64();
    emst::core::verify_spanning_tree(n, &edges).map_err(|e| e.to_string())?;
    report_and_write(opts, n, D, edges, secs)
}

/// Object-safe shim so the sharded run can dispatch over backends chosen at
/// runtime without monomorphizing the match arms three times.
trait ObjectSafeRun<const D: usize> {
    fn sharded(
        &self,
        points: &[Point<D>],
        shards: usize,
        emst: EmstConfig,
    ) -> emst::shard::ShardedResult;
}

impl<S: ExecSpace, const D: usize> ObjectSafeRun<D> for S {
    fn sharded(
        &self,
        points: &[Point<D>],
        shards: usize,
        emst: EmstConfig,
    ) -> emst::shard::ShardedResult {
        emst_sharded_with(self, points, &ShardConfig { emst, ..ShardConfig::new(shards) })
    }
}

fn report_and_write(
    opts: &HashMap<String, String>,
    n: usize,
    dim: usize,
    edges: Vec<emst::core::Edge>,
    secs: f64,
) -> Result<(), String> {
    let weight = emst::core::edge::total_weight(&edges);
    eprintln!(
        "{n} points -> {} edges, weight {weight:.6}, {secs:.3} s ({:.2} MFeatures/s)",
        edges.len(),
        (n * dim) as f64 / secs / 1e6
    );
    if let Some(output) = opts.get("output") {
        write_edges(Path::new(output), &edges)?;
        eprintln!("wrote MST to {output}");
    }
    Ok(())
}

/// The `serve` subcommand: start a [`ServeEngine`], ingest `--input`, then
/// answer stdin commands until EOF/`quit`. Flag errors abort; command
/// errors print and continue (a server should not die on one bad query).
fn run_serve<const D: usize>(opts: &HashMap<String, String>) -> Result<(), String> {
    let shards: usize = parse_opt(opts, "shards", 4)?;
    let max_resident: usize = parse_opt(opts, "max-resident", 4)?;
    let workers: usize = parse_opt(opts, "workers", 1)?;
    let backend = opts.get("backend").map(String::as_str).unwrap_or("threads");
    let traversal = match opts.get("traversal") {
        None => Traversal::default(),
        Some(v) => Traversal::parse(v)
            .ok_or(format!("invalid --traversal value {v:?} (expected stackless or stack)"))?,
    };
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if max_resident == 0 {
        return Err("--max-resident must be at least 1".into());
    }
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let log_format = opts.get("log-format").map(String::as_str).unwrap_or("text");
    let log_format = emst::obs::log::Format::parse(log_format)
        .ok_or(format!("invalid --log-format value {log_format:?} (expected text or json)"))?;
    emst::obs::log::set_format(log_format);
    let metrics_file = opts.get("metrics-file").map(PathBuf::from);
    let spill_dir = opts.get("spill-dir").map(PathBuf::from);
    let fallback_spill_dir = opts.get("fallback-spill-dir").map(PathBuf::from);
    let spill_retries: u32 = parse_opt(opts, "spill-retries", 3)?;
    let deadline_ms: u64 = parse_opt(opts, "deadline-ms", 0)?;
    let max_in_flight: usize = parse_opt(opts, "max-in-flight", 0)?;
    let fault_plan = match opts.get("fault-plan") {
        None => None,
        Some(spec) => Some(std::sync::Arc::new(
            FaultPlan::parse(spec).map_err(|e| format!("invalid --fault-plan: {e}"))?,
        )),
    };
    let listen = opts.get("listen").cloned();
    let net_workers: usize = parse_opt(opts, "net-workers", 4)?;
    let max_pending: usize = parse_opt(opts, "max-pending", 64)?;
    if net_workers == 0 {
        return Err("--net-workers must be at least 1".into());
    }
    if max_pending == 0 {
        return Err("--max-pending must be at least 1".into());
    }
    // Probe every spill destination now: an unwritable disk must fail the
    // launch with a clear message, not the first eviction mid-serve.
    if let Some(dir) = &spill_dir {
        validate_spill_dir("spill-dir", dir)?;
    }
    if let Some(dir) = &fallback_spill_dir {
        validate_spill_dir("fallback-spill-dir", dir)?;
    }
    let input = opts.get("input").ok_or("--input is required")?;
    let points = load_points_from::<D>(input, fault_plan.as_deref())?;
    let mut config = ServeConfig::new(shards, max_resident);
    config.emst = EmstConfig { traversal, ..EmstConfig::default() };
    config.spill_dir = spill_dir;
    config.fallback_spill_dir = fallback_spill_dir;
    config.spill_retries = spill_retries;
    config.deadline = (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms));
    config.max_in_flight = max_in_flight;
    config.fault_plan = fault_plan.clone();
    let session = ServeSession {
        workers,
        metrics: metrics_file.as_deref(),
        plan: fault_plan.as_deref(),
        listen: listen.as_deref(),
        net: NetConfig { workers: net_workers, max_pending },
    };
    match backend {
        "serial" => serve_entry(Serial, config, points, &session),
        "threads" => serve_entry(Threads, config, points, &session),
        "gpusim" => serve_entry(GpuSim::new(), config, points, &session),
        other => Err(format!("unknown --backend {other}")),
    }
}

/// Everything `serve` needs besides the engine itself: REPL sizing, the
/// metrics sink, the fault plan (for metrics writes and ingest reads) and
/// the optional network front-end.
struct ServeSession<'a> {
    workers: usize,
    metrics: Option<&'a Path>,
    plan: Option<&'a FaultPlan>,
    listen: Option<&'a str>,
    net: NetConfig,
}

/// Starts the engine and serves: stdin REPL always, plus the TCP
/// front-end when `--listen` is set. In listen mode the engine lives in
/// an `Arc` shared with the server's worker threads; stdin `quit`/EOF
/// triggers the server's graceful shutdown (in-flight requests drain).
fn serve_entry<S: ExecSpace + Send + Sync + 'static, const D: usize>(
    space: S,
    config: ServeConfig,
    points: Vec<Point<D>>,
    session: &ServeSession<'_>,
) -> Result<(), String> {
    let Some(addr) = session.listen else {
        return serve_repl(
            &ServeEngine::<_, D>::new(space, config),
            points,
            session.workers,
            session.metrics,
            session.plan,
        );
    };
    let engine = std::sync::Arc::new(ServeEngine::<S, D>::new(space, config));
    let cloud = std::sync::Arc::new(points);
    let key = engine.ingest(&cloud);
    let server = ServeServer::bind(
        std::sync::Arc::clone(&engine),
        std::sync::Arc::clone(&cloud),
        addr,
        session.net,
    )
    .map_err(|e| format!("--listen {addr}: {e}"))?;
    // The bound address goes to stdout so scripts driving `--listen
    // 127.0.0.1:0` can discover the ephemeral port.
    println!("listening {}", server.local_addr());
    emst::obs::log::info(
        "emst-cli",
        "serving over TCP (stdin commands still work; `quit` to exit)",
        &[
            ("addr", &server.local_addr().to_string()),
            ("points", &cloud.len().to_string()),
            ("key", &key.to_string()),
            ("net_workers", &session.net.workers.to_string()),
            ("max_pending", &session.net.max_pending.to_string()),
        ],
    );
    let result = serve_sequential(&engine, cloud.as_ref().clone(), session.metrics, session.plan);
    server.shutdown();
    if let Some(path) = session.metrics {
        write_metrics_file(&engine, path, session.plan);
    }
    result
}

/// Checks that `dir` exists (creating it if needed) and takes writes, so
/// spill durability is established before the engine starts serving.
fn validate_spill_dir(flag: &str, dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("--{flag} {}: cannot create directory: {e}", dir.display()))?;
    let probe = dir.join(format!(".emst-writable-probe-{}", std::process::id()));
    std::fs::write(&probe, b"probe")
        .map_err(|e| format!("--{flag} {} is not writable: {e}", dir.display()))?;
    let _ = std::fs::remove_file(&probe);
    Ok(())
}

/// Rewrites the `--metrics-file` exposition; failures are logged and
/// counted, never fatal (a full disk must not take the serving loop
/// down). The write goes through the fault plan's metrics site, so chaos
/// drills cover this path too.
fn write_metrics_file<S: ExecSpace, const D: usize>(
    engine: &ServeEngine<S, D>,
    path: &Path,
    plan: Option<&FaultPlan>,
) {
    let payload = engine.metrics_prometheus();
    if let Err(e) = faulted_write(plan, FaultSite::MetricsWrite, path, payload.as_bytes()) {
        if let Some(registry) = engine.obs_registry() {
            registry.counter("emst_cli_metrics_file_write_failures_total").inc();
        }
        emst::obs::log::warn(
            "emst-cli",
            "metrics file write failed",
            &[("path", &path.display().to_string()), ("error", &e.to_string())],
        );
    }
}

fn serve_repl<S: ExecSpace, const D: usize>(
    engine: &ServeEngine<S, D>,
    points: Vec<Point<D>>,
    workers: usize,
    metrics_file: Option<&Path>,
    plan: Option<&FaultPlan>,
) -> Result<(), String> {
    let key = engine.ingest(&points);
    emst::obs::log::info(
        "emst-cli",
        "serving (commands on stdin; `quit` to exit)",
        &[
            ("points", &points.len().to_string()),
            ("key", &key.to_string()),
            ("workers", &workers.to_string()),
        ],
    );
    let result = if workers == 1 {
        serve_sequential(engine, points, metrics_file, plan)
    } else {
        serve_pool(engine, points, workers, plan)
    };
    if let Some(path) = metrics_file {
        write_metrics_file(engine, path, plan);
    }
    result
}

/// Loads a new cloud for the REPL's `load` command; returns the response
/// line and the points the session serves from now on.
fn load_cloud<S: ExecSpace, const D: usize>(
    engine: &ServeEngine<S, D>,
    rest: &[&str],
    plan: Option<&FaultPlan>,
) -> Result<(String, Vec<Point<D>>), String> {
    let path = rest.first().ok_or("load needs a path")?;
    let points = load_points_from::<D>(path, plan)?;
    let key = match engine.execute(ServeRequest::Load { points: &points }) {
        Ok(ServeResponse::Loaded { key }) => key,
        Ok(other) => unreachable!("load request answered with {other:?}"),
        Err(e) => return Err(e.to_string()),
    };
    Ok((format!("loaded n={} key={key}", points.len()), points))
}

/// Executes the REPL's `insert`/`delete` commands: parses the arguments,
/// runs the engine's incremental delta-solve through
/// [`ServeEngine::execute`], and returns the response line plus the
/// mutated cloud the session serves from now on. Like `load`, the
/// dispatching loops swap the session cloud on success.
fn mutate_cloud<S: ExecSpace, const D: usize>(
    engine: &ServeEngine<S, D>,
    points: &[Point<D>],
    cmd: &str,
    rest: &[&str],
) -> Result<(String, Vec<Point<D>>), String> {
    let m: MutateResponse<D> = if cmd == "insert" {
        if rest.is_empty() || !rest.len().is_multiple_of(D) {
            return Err(format!("insert needs coordinates in groups of {D}"));
        }
        let mut added = Vec::with_capacity(rest.len() / D);
        for chunk in rest.chunks(D) {
            let mut coords = [0.0f32; D];
            for (c, v) in coords.iter_mut().zip(chunk) {
                *c = v.parse().map_err(|_| format!("invalid coordinate {v:?}"))?;
            }
            added.push(Point::new(coords));
        }
        let req = ServeRequest::Insert { cloud: CloudRef::Points(points), points: &added };
        match engine.execute(req).map_err(|e| e.to_string())? {
            ServeResponse::Mutated(m) => m,
            other => unreachable!("insert request answered with {other:?}"),
        }
    } else {
        if rest.is_empty() {
            return Err("delete needs at least one <id>".to_string());
        }
        let mut ids = Vec::with_capacity(rest.len());
        for v in rest {
            ids.push(v.parse::<u32>().map_err(|_| format!("invalid id {v:?}"))?);
        }
        let req = ServeRequest::Delete { cloud: CloudRef::Points(points), ids: &ids };
        match engine.execute(req).map_err(|e| e.to_string())? {
            ServeResponse::Mutated(m) => m,
            other => unreachable!("delete request answered with {other:?}"),
        }
    };
    let line = format!(
        "{cmd} key={} n={} dirty={} reused={} edges={} weight={:.6} merge={:.3}s",
        m.key,
        m.n,
        m.dirty_shards.len(),
        m.reused_shards,
        m.update.edges.len(),
        m.update.total_weight,
        m.update.timings.get("merge"),
    );
    Ok((line, m.points))
}

/// The historical single-threaded REPL: one command, one response, in
/// order, with no request-id prefix (`--workers 1`, the default).
fn serve_sequential<S: ExecSpace, const D: usize>(
    engine: &ServeEngine<S, D>,
    mut points: Vec<Point<D>>,
    metrics_file: Option<&Path>,
    plan: Option<&FaultPlan>,
) -> Result<(), String> {
    use std::io::BufRead;
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let mut tok = line.split_whitespace();
        let cmd = match tok.next() {
            None => continue,
            Some("quit") | Some("exit") => break,
            Some(c) => c,
        };
        let rest: Vec<&str> = tok.collect();
        let response = if cmd == "load" {
            load_cloud(engine, &rest, plan).map(|(response, new_points)| {
                points = new_points;
                response
            })
        } else if cmd == "insert" || cmd == "delete" {
            mutate_cloud(engine, &points, cmd, &rest).map(|(response, new_points)| {
                points = new_points;
                response
            })
        } else {
            serve_command(engine, &points, cmd, &rest)
        };
        match response {
            Ok(r) => println!("{r}"),
            Err(e) => println!("error: {e}"),
        }
        if let Some(path) = metrics_file {
            write_metrics_file(engine, path, plan);
        }
    }
    Ok(())
}

/// The `--workers N` REPL: commands are numbered as read and dispatched to
/// a pool of worker threads sharing one engine, so independent queries run
/// concurrently. Responses carry their request id (`[3] emst cache=…`) and
/// may interleave out of order; `quit`/EOF drains every outstanding
/// request before exiting. `load`, `insert` and `delete` are barriers:
/// the queue drains first, so earlier requests answer against the cloud
/// they were issued under, then the session swaps onto the new cloud.
fn serve_pool<S: ExecSpace, const D: usize>(
    engine: &ServeEngine<S, D>,
    points: Vec<Point<D>>,
    workers: usize,
    plan: Option<&FaultPlan>,
) -> Result<(), String> {
    use std::collections::VecDeque;
    use std::io::BufRead;
    use std::sync::{Arc, Condvar, Mutex, RwLock};

    struct PoolState {
        queue: VecDeque<(u64, String, Vec<String>)>,
        closed: bool,
        in_flight: usize,
    }
    struct Pool {
        state: Mutex<PoolState>,
        /// Wakes workers when a job lands (or the pool closes).
        work_cv: Condvar,
        /// Wakes the dispatcher when a job completes (drain barrier).
        idle_cv: Condvar,
    }
    impl Pool {
        fn drain(&self) {
            let mut st = self.state.lock().unwrap();
            while !st.queue.is_empty() || st.in_flight > 0 {
                st = self.idle_cv.wait(st).unwrap();
            }
        }
    }

    let cloud = RwLock::new(Arc::new(points));
    let pool = Pool {
        state: Mutex::new(PoolState { queue: VecDeque::new(), closed: false, in_flight: 0 }),
        work_cv: Condvar::new(),
        idle_cv: Condvar::new(),
    };

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let (pool, cloud) = (&pool, &cloud);
            scope.spawn(move || loop {
                let job = {
                    let mut st = pool.state.lock().unwrap();
                    loop {
                        if let Some(job) = st.queue.pop_front() {
                            st.in_flight += 1;
                            break Some(job);
                        }
                        if st.closed {
                            break None;
                        }
                        st = pool.work_cv.wait(st).unwrap();
                    }
                };
                let Some((id, cmd, rest)) = job else { return };
                // Snapshot the cloud the request was queued under; a later
                // `load` swaps the Arc without touching this query.
                let pts = Arc::clone(&cloud.read().unwrap());
                let rest: Vec<&str> = rest.iter().map(String::as_str).collect();
                match serve_command(engine, &pts, &cmd, &rest) {
                    Ok(r) => println!("[{id}] {r}"),
                    Err(e) => println!("[{id}] error: {e}"),
                }
                let mut st = pool.state.lock().unwrap();
                st.in_flight -= 1;
                drop(st);
                pool.idle_cv.notify_all();
            });
        }

        let mut io_error = None;
        let mut next_id = 0u64;
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    io_error = Some(e.to_string());
                    break;
                }
            };
            let mut tok = line.split_whitespace();
            let cmd = match tok.next() {
                None => continue,
                Some("quit") | Some("exit") => break,
                Some(c) => c,
            };
            let id = next_id;
            next_id += 1;
            if cmd == "load" || cmd == "insert" || cmd == "delete" {
                pool.drain();
                let rest: Vec<&str> = tok.collect();
                let result = if cmd == "load" {
                    load_cloud(engine, &rest, plan)
                } else {
                    let pts = Arc::clone(&cloud.read().unwrap());
                    mutate_cloud(engine, &pts, cmd, &rest)
                };
                match result {
                    Ok((r, new_points)) => {
                        *cloud.write().unwrap() = Arc::new(new_points);
                        println!("[{id}] {r}");
                    }
                    Err(e) => println!("[{id}] error: {e}"),
                }
            } else {
                let rest: Vec<String> = tok.map(str::to_string).collect();
                pool.state.lock().unwrap().queue.push_back((id, cmd.to_string(), rest));
                pool.work_cv.notify_one();
            }
        }
        // Close the queue; workers finish what is pending, then exit (the
        // scope joins them), so `quit` never drops an accepted request.
        pool.state.lock().unwrap().closed = true;
        pool.work_cv.notify_all();
        match io_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })
}

fn outcome_name(o: CacheOutcome) -> &'static str {
    match o {
        CacheOutcome::Hit => "hit",
        CacheOutcome::Miss => "miss",
        CacheOutcome::Reloaded => "reloaded",
    }
}

/// Executes one REPL command (everything except `load`/`insert`/`delete`,
/// which swap the session cloud and are handled by the dispatching loop),
/// returning the response line. Takes the engine by shared reference: any
/// number of workers may execute commands concurrently. Every verb
/// dispatches through the one typed [`ServeEngine::execute`] entry point,
/// so `--deadline-ms`, `--max-in-flight` and panic isolation all apply: a
/// late, shed or panicking query prints an error line and the server
/// keeps going.
fn serve_command<S: ExecSpace, const D: usize>(
    engine: &ServeEngine<S, D>,
    points: &[Point<D>],
    cmd: &str,
    rest: &[&str],
) -> Result<String, String> {
    let parse = |what: &str, v: Option<&&str>| -> Result<usize, String> {
        let v = v.ok_or(format!("{what} is required"))?;
        v.parse().map_err(|_| format!("invalid {what} {v:?}"))
    };
    match cmd {
        "emst" => {
            let req = ServeRequest::Emst { cloud: CloudRef::Points(points) };
            let r = match engine.execute(req).map_err(|e| e.to_string())? {
                ServeResponse::Emst(r) => r,
                other => unreachable!("emst request answered with {other:?}"),
            };
            if let Some(path) = rest.first() {
                write_edges(Path::new(path), &r.edges)?;
            }
            Ok(format!(
                "emst cache={} n={} edges={} weight={:.6} build={:.3}s merge={:.3}s queries={}",
                outcome_name(r.outcome),
                points.len(),
                r.edges.len(),
                r.total_weight,
                r.timings.get("plan") + r.timings.get("local"),
                r.timings.get("merge"),
                r.query_work.queries,
            ))
        }
        "subset" => {
            let range = rest.first().ok_or("subset needs <lo>..<hi>")?;
            let (lo, hi) = range
                .split_once("..")
                .and_then(|(a, b)| Some((a.parse::<u32>().ok()?, b.parse::<u32>().ok()?)))
                .ok_or(format!("invalid subset range {range:?} (expected <lo>..<hi>)"))?;
            if lo >= hi || hi as usize > points.len() {
                return Err(format!("subset {lo}..{hi} out of range for {} points", points.len()));
            }
            let subset: Vec<u32> = (lo..hi).collect();
            let req = ServeRequest::Subset { cloud: CloudRef::Points(points), subset: &subset };
            let r = match engine.execute(req).map_err(|e| e.to_string())? {
                ServeResponse::Subset(r) => r,
                other => unreachable!("subset request answered with {other:?}"),
            };
            Ok(format!(
                "subset cache={} m={} edges={} weight={:.6} local={:.3}s merge={:.3}s",
                outcome_name(r.outcome),
                subset.len(),
                r.edges.len(),
                r.total_weight,
                r.timings.get("local"),
                r.timings.get("merge"),
            ))
        }
        "knn" => {
            let k = parse("<k>", rest.first())?;
            if rest.len() != 1 + D {
                return Err(format!("knn needs <k> and {D} coordinates"));
            }
            let mut coords = [0.0f32; D];
            for (c, v) in coords.iter_mut().zip(&rest[1..]) {
                *c = v.parse().map_err(|_| format!("invalid coordinate {v:?}"))?;
            }
            let req = ServeRequest::KNearest {
                cloud: CloudRef::Points(points),
                query: Point::new(coords),
                k,
            };
            let r = match engine.execute(req).map_err(|e| e.to_string())? {
                ServeResponse::KNearest(r) => r,
                other => unreachable!("knn request answered with {other:?}"),
            };
            let hits: Vec<String> =
                r.neighbors.iter().map(|(i, d)| format!("{i}:{:.6}", d.sqrt())).collect();
            Ok(format!("knn cache={} {}", outcome_name(r.outcome), hits.join(" ")))
        }
        "hdbscan" => {
            let k_pts = parse("<k_pts>", rest.first())?;
            let min_cluster_size = parse("<min_cluster_size>", rest.get(1))?;
            if k_pts < 1 || min_cluster_size < 2 {
                return Err("hdbscan needs k_pts >= 1 and min_cluster_size >= 2".into());
            }
            let req = ServeRequest::Hdbscan {
                cloud: CloudRef::Points(points),
                params: Hdbscan { k_pts, min_cluster_size },
            };
            let r = match engine.execute(req).map_err(|e| e.to_string())? {
                ServeResponse::Hdbscan(r) => r,
                other => unreachable!("hdbscan request answered with {other:?}"),
            };
            let noise = r.result.labels.iter().filter(|&&l| l == emst::hdbscan::NOISE).count();
            Ok(format!(
                "hdbscan cache={} clusters={} noise={}",
                outcome_name(r.outcome),
                r.result.num_clusters,
                noise,
            ))
        }
        "stats" => {
            // Iterate `named_fields` instead of naming fields by hand:
            // `ServeStats::named_fields` destructures exhaustively, so adding
            // a field to `ServeStats` without surfacing it here is a compile
            // error in the library and a test failure in tests/cli.rs.
            let s = match engine.execute(ServeRequest::Stats).map_err(|e| e.to_string())? {
                ServeResponse::Stats(s) => s,
                other => unreachable!("stats request answered with {other:?}"),
            };
            let mut line = format!("stats resident={} bytes={}", s.resident, s.resident_bytes);
            for (name, value) in s.stats.named_fields() {
                line.push_str(&format!(" {name}={value}"));
            }
            Ok(line)
        }
        "metrics" => match rest.first() {
            None => Ok(engine.metrics_prometheus().trim_end().to_string()),
            Some(&"json") => Ok(engine.metrics_json().trim_end().to_string()),
            Some(other) => Err(format!("invalid metrics format {other:?} (expected json)")),
        },
        "trace" => {
            let n = match rest.first() {
                None => 5,
                Some(v) => v.parse().map_err(|_| format!("invalid trace count {v:?}"))?,
            };
            let traces = engine.recent_traces(n);
            if traces.is_empty() {
                return Ok("no traces recorded".into());
            }
            let rendered: Vec<String> = traces.iter().map(|t| t.render_text()).collect();
            Ok(rendered.join("\n").trim_end().to_string())
        }
        other => Err(format!(
            "unknown command {other:?} (emst [out.csv] | subset <lo>..<hi> | knn <k> <x> <y> \
             [<z>] | hdbscan <k_pts> <min_cluster_size> | insert <x> <y> [<z>] … | \
             delete <id> … | load <points.csv> | stats | metrics [json] | trace [n] | quit)"
        )),
    }
}

fn write_edges(path: &Path, edges: &[emst::core::Edge]) -> Result<(), String> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path).map_err(|e| e.to_string())?);
    for e in edges {
        writeln!(out, "{},{},{:?}", e.u, e.v, e.weight()).map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn run_hdbscan<const D: usize>(opts: &HashMap<String, String>) -> Result<(), String> {
    let k_pts: usize = parse_opt(opts, "k", 5)?;
    let min_cluster_size: usize = parse_opt(opts, "min-cluster-size", 5)?;
    let points = load_points::<D>(opts)?;
    let result = Hdbscan { k_pts, min_cluster_size }.fit(&Threads, &points);
    let noise = result.labels.iter().filter(|&&l| l == emst::hdbscan::NOISE).count();
    eprintln!("{} points -> {} clusters, {noise} noise", points.len(), result.num_clusters);
    if let Some(output) = opts.get("output") {
        let mut out =
            std::io::BufWriter::new(std::fs::File::create(output).map_err(|e| e.to_string())?);
        for &l in &result.labels {
            writeln!(out, "{l}").map_err(|e| e.to_string())?;
        }
        eprintln!("wrote labels to {output}");
    }
    Ok(())
}
