//! `emst-cli` — command-line access to the library.
//!
//! ```text
//! emst-cli generate --kind hacc --n 10000 --dim 3 --seed 1 --output pts.csv
//! emst-cli emst     --input pts.csv --dim 3 --output mst.csv [--algorithm single-tree]
//! emst-cli hdbscan  --input pts.csv --dim 3 --k 5 --min-cluster-size 20 --output labels.csv
//! ```
//!
//! Arguments are `--key value` pairs; unknown keys abort with usage help.
//! The MST output is CSV rows `u,v,weight`; HDBSCAN output is one label per
//! line (`-1` = noise).

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use emst::core::{EmstConfig, SingleTreeBoruvka};
use emst::datasets::{self, Kind};
use emst::exec::{GpuSim, Serial, Threads};
use emst::geometry::Point;
use emst::hdbscan::Hdbscan;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  emst-cli generate --kind <uniform|normal|visualvar|hacc|geolife|ngsim|porto|road>
                    --n <count> [--dim 2|3] [--seed <u64>] --output <points.csv>
  emst-cli emst     --input <points.csv> [--dim 2|3] [--output <mst.csv>]
                    [--algorithm single-tree|kd-single-tree|dual-tree|wspd]
                    [--backend serial|threads|gpusim]
  emst-cli hdbscan  --input <points.csv> [--dim 2|3] [--k <k_pts>]
                    [--min-cluster-size <m>] [--output <labels.csv>]"
    );
    ExitCode::FAILURE
}

fn parse_args(args: &[String]) -> Option<HashMap<String, String>> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let key = key.strip_prefix("--")?;
        let value = it.next()?;
        map.insert(key.to_string(), value.clone());
    }
    Some(map)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return usage();
    };
    let Some(opts) = parse_args(rest) else {
        return usage();
    };
    let dim: usize = opts.get("dim").and_then(|v| v.parse().ok()).unwrap_or(2);
    if dim != 2 && dim != 3 {
        eprintln!("error: --dim must be 2 or 3");
        return ExitCode::FAILURE;
    }
    let result = match (command.as_str(), dim) {
        ("generate", 2) => generate::<2>(&opts),
        ("generate", 3) => generate::<3>(&opts),
        ("emst", 2) => run_emst::<2>(&opts),
        ("emst", 3) => run_emst::<3>(&opts),
        ("hdbscan", 2) => run_hdbscan::<2>(&opts),
        ("hdbscan", 3) => run_hdbscan::<3>(&opts),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn generate<const D: usize>(opts: &HashMap<String, String>) -> Result<(), String> {
    let kind = match opts.get("kind").map(String::as_str) {
        Some("uniform") => Kind::Uniform,
        Some("normal") => Kind::Normal,
        Some("visualvar") => Kind::VisualVar,
        Some("hacc") => Kind::HaccLike,
        Some("geolife") => Kind::GeoLifeLike,
        Some("ngsim") => Kind::NgsimLike,
        Some("porto") => Kind::PortoTaxiLike,
        Some("road") => Kind::RoadNetworkLike,
        other => return Err(format!("unknown --kind {other:?}")),
    };
    let n: usize =
        opts.get("n").ok_or("--n is required")?.parse().map_err(|_| "--n must be an integer")?;
    let seed: u64 = opts.get("seed").and_then(|v| v.parse().ok()).unwrap_or(0);
    let output = opts.get("output").ok_or("--output is required")?;
    let points: Vec<Point<D>> = kind.generate(n, seed);
    datasets::save_csv(Path::new(output), &points).map_err(|e| e.to_string())?;
    eprintln!("wrote {n} points to {output}");
    Ok(())
}

fn load_points<const D: usize>(opts: &HashMap<String, String>) -> Result<Vec<Point<D>>, String> {
    let input = opts.get("input").ok_or("--input is required")?;
    let path = PathBuf::from(input);
    let points = if input.ends_with(".xyz") {
        datasets::load_xyz::<D>(&path)
    } else {
        datasets::load_csv::<D>(&path)
    }
    .map_err(|e| e.to_string())?;
    if points.is_empty() {
        return Err(format!("{input}: no points"));
    }
    Ok(points)
}

fn run_emst<const D: usize>(opts: &HashMap<String, String>) -> Result<(), String> {
    let points = load_points::<D>(opts)?;
    let n = points.len();
    let algorithm = opts.get("algorithm").map(String::as_str).unwrap_or("single-tree");
    let backend = opts.get("backend").map(String::as_str).unwrap_or("threads");
    let start = std::time::Instant::now();
    let edges = match algorithm {
        "single-tree" => {
            let cfg = EmstConfig::default();
            match backend {
                "serial" => SingleTreeBoruvka::new(&points).run(&Serial, &cfg).edges,
                "threads" => SingleTreeBoruvka::new(&points).run(&Threads, &cfg).edges,
                "gpusim" => SingleTreeBoruvka::new(&points).run(&GpuSim::new(), &cfg).edges,
                other => return Err(format!("unknown --backend {other}")),
            }
        }
        "kd-single-tree" => emst::kdtree::kd_single_tree_emst(&points).edges,
        "dual-tree" => emst::kdtree::dual_tree_emst(&points).edges,
        "wspd" => emst::wspd::wspd_emst(&points, backend != "serial").edges,
        other => return Err(format!("unknown --algorithm {other}")),
    };
    let secs = start.elapsed().as_secs_f64();
    emst::core::verify_spanning_tree(n, &edges).map_err(|e| e.to_string())?;
    let weight = emst::core::edge::total_weight(&edges);
    eprintln!(
        "{n} points -> {} edges, weight {weight:.6}, {secs:.3} s ({:.2} MFeatures/s)",
        edges.len(),
        (n * D) as f64 / secs / 1e6
    );
    if let Some(output) = opts.get("output") {
        let mut out =
            std::io::BufWriter::new(std::fs::File::create(output).map_err(|e| e.to_string())?);
        for e in &edges {
            writeln!(out, "{},{},{:?}", e.u, e.v, e.weight()).map_err(|e| e.to_string())?;
        }
        eprintln!("wrote MST to {output}");
    }
    Ok(())
}

fn run_hdbscan<const D: usize>(opts: &HashMap<String, String>) -> Result<(), String> {
    let points = load_points::<D>(opts)?;
    let k_pts: usize = opts.get("k").and_then(|v| v.parse().ok()).unwrap_or(5);
    let min_cluster_size: usize =
        opts.get("min-cluster-size").and_then(|v| v.parse().ok()).unwrap_or(5);
    let result = Hdbscan { k_pts, min_cluster_size }.fit(&Threads, &points);
    let noise = result.labels.iter().filter(|&&l| l == emst::hdbscan::NOISE).count();
    eprintln!("{} points -> {} clusters, {noise} noise", points.len(), result.num_clusters);
    if let Some(output) = opts.get("output") {
        let mut out =
            std::io::BufWriter::new(std::fs::File::create(output).map_err(|e| e.to_string())?);
        for &l in &result.labels {
            writeln!(out, "{l}").map_err(|e| e.to_string())?;
        }
        eprintln!("wrote labels to {output}");
    }
    Ok(())
}
