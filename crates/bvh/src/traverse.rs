//! Per-query nearest-neighbour traversals (Algorithm 2 of the paper).
//!
//! Each query is executed by a single thread, in the bulk-synchronous style
//! of ArborX: the caller launches one `parallel_for` over queries and each
//! work item calls into these routines. Two walkers share one contract:
//!
//! - [`Bvh::nearest_with`] — the explicit-stack top-down walk over the
//!   binary radix tree, kept as the ablation baseline (the seed form);
//! - [`Bvh::nearest_stackless`] — the default: rope/escape-pointer chasing
//!   over the 4-wide collapsed [`crate::WideBvh`], no per-thread stack —
//!   the GPU-faithful form, selected by [`Traversal::Stackless`].
//!
//! Both take the same hooks the single-tree Borůvka algorithm uses: a
//! `skip` predicate implementing the paper's Optimization 1 (bypassing
//! subtrees whose leaves all share the query's component, keyed by *binary*
//! node id in both walkers) and a `leaf` callback applying the metric
//! (Euclidean or mutual-reachability). They return **bit-identical**
//! [`NearestHit`]s: the result is the minimum over the same candidate set
//! under the same `(distance, rank)` order, pruning is strictly-greater in
//! both, and the wide tree's vectorized leaf-lane distances reproduce
//! [`Point::squared_distance`] exactly (see `wide.rs`).

use emst_geometry::{Point, Scalar};

use crate::build::Bvh;
use crate::node::{NodeId, INVALID_NODE};

/// Maximum traversal stack depth.
///
/// The radix hierarchy's depth is bounded by the key length (64 Morton bits
/// plus 32 tie-break bits), so 128 slots never overflow.
const STACK_CAPACITY: usize = 128;

/// Hints the cache to pull `p` in: the stackless walker issues this for the
/// rope target while lane arithmetic is still in flight, hiding the latency
/// of the dependent index chase. Prefetches never fault, so a sentinel
/// (out-of-range) address is fine.
#[inline(always)]
#[allow(unused_variables)]
fn prefetch<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it performs no memory access.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0)
    };
    #[cfg(target_arch = "aarch64")]
    // SAFETY: as above — a hint, not an access.
    unsafe {
        core::arch::asm!("prfm pldl1keep, [{0}]", in(reg) p, options(nostack, preserves_flags))
    };
}

/// Which nearest-neighbour walker the hot path uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Traversal {
    /// Explicit 128-entry per-query stack over the binary radix tree — the
    /// seed implementation, kept for the ablation study.
    Stack,
    /// Stackless rope traversal over the 4-wide SoA collapse: pure index
    /// chasing, no per-thread stack (the GPU-faithful default).
    #[default]
    Stackless,
}

impl Traversal {
    /// Parses the CLI/bench spelling (`"stack"` / `"stackless"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "stack" => Some(Self::Stack),
            "stackless" => Some(Self::Stackless),
            _ => None,
        }
    }

    /// The CLI/bench spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Stack => "stack",
            Self::Stackless => "stackless",
        }
    }
}

/// Per-query work statistics, accumulated locally (no atomics on the hot
/// path) and flushed to [`emst_exec::Counters`] by the caller.
///
/// All counters are `u64`: a single query over a large adversarial cloud
/// (and the per-run aggregates the ablation tests assert on) can exceed
/// 32 bits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraversalStats {
    /// Internal (binary) or collapsed (wide) nodes examined.
    pub nodes: u64,
    /// Leaves tested as candidates.
    pub leaves: u64,
    /// Point-to-point distance computations.
    pub distances: u64,
    /// Subtrees skipped by the caller's predicate (Optimization 1).
    pub skipped: u64,
    /// Escape-pointer follows (stackless walker only).
    pub rope_hops: u64,
    /// Minimum squared distance among subtrees/leaves pruned **by the
    /// radius** (predicate-skipped subtrees do not contribute). After a
    /// query that accepted nothing, every candidate the predicate would
    /// ever admit lies at least this far away — a durable lower bound the
    /// sharded merge uses to never repeat a provably-empty query
    /// (`+inf` when nothing was radius-pruned).
    pub pruned_min_sq: Scalar,
}

impl Default for TraversalStats {
    fn default() -> Self {
        Self {
            nodes: 0,
            leaves: 0,
            distances: 0,
            skipped: 0,
            rope_hops: 0,
            pruned_min_sq: Scalar::INFINITY,
        }
    }
}

impl TraversalStats {
    /// Component-wise sum (min for the pruning floor) — the reduction the
    /// bulk launches use.
    #[inline]
    pub fn merged(self, other: Self) -> Self {
        Self {
            nodes: self.nodes + other.nodes,
            leaves: self.leaves + other.leaves,
            distances: self.distances + other.distances,
            skipped: self.skipped + other.skipped,
            rope_hops: self.rope_hops + other.rope_hops,
            pruned_min_sq: self.pruned_min_sq.min(other.pruned_min_sq),
        }
    }
}

/// Result of a nearest-neighbour query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NearestHit {
    /// Morton rank of the winning leaf.
    pub rank: u32,
    /// Squared metric distance to it.
    pub dist_sq: Scalar,
}

impl<const D: usize> Bvh<D> {
    /// Generic single-threaded nearest-neighbour traversal.
    ///
    /// - `query`: the query point;
    /// - `radius_sq`: initial squared cutoff radius (candidates at or beyond
    ///   it are ignored) — the component upper bound of Optimization 2, or
    ///   `f32::INFINITY` for an unconstrained search;
    /// - `skip`: called with a node id before it is examined; returning
    ///   `true` prunes the whole subtree (Optimization 1);
    /// - `leaf`: called with `(morton rank, squared Euclidean distance)` of
    ///   a candidate leaf; returns the squared *metric* distance, or `None`
    ///   to reject the candidate (e.g. "same point" or "same component").
    ///
    /// Returns the best accepted hit at distance **at most** `radius_sq`.
    /// Ties between equidistant leaves resolve to the smallest Morton rank.
    /// Both properties are load-bearing for the EMST: Borůvka's algorithm
    /// only converges under a strict total order on edges (§2 of the paper,
    /// "tie-breaking resolution"), which the caller derives from
    /// `(distance, min rank, max rank)` — so the traversal must neither drop
    /// an equidistant smaller-rank candidate nor miss a candidate that
    /// exactly attains the component upper bound. Node pruning is therefore
    /// strictly-greater-than.
    pub fn nearest_with<FSkip, FLeaf>(
        &self,
        query: &Point<D>,
        radius_sq: Scalar,
        skip: FSkip,
        leaf: FLeaf,
        stats: &mut TraversalStats,
    ) -> Option<NearestHit>
    where
        FSkip: FnMut(NodeId) -> bool,
        FLeaf: FnMut(u32, Scalar) -> Option<Scalar>,
    {
        self.nearest_with_impl::<false, FSkip, FLeaf>(query, radius_sq, skip, leaf, stats)
    }

    /// [`Bvh::nearest_with`] with `TRACK` compiled in or out: tracking the
    /// radius-pruned frontier minimum costs a `min` on the pruning paths,
    /// which the monolithic hot path must not pay — only the sharded merge
    /// (via [`Bvh::nearest_floor`]) asks for it.
    fn nearest_with_impl<const TRACK: bool, FSkip, FLeaf>(
        &self,
        query: &Point<D>,
        mut radius_sq: Scalar,
        mut skip: FSkip,
        mut leaf: FLeaf,
        stats: &mut TraversalStats,
    ) -> Option<NearestHit>
    where
        FSkip: FnMut(NodeId) -> bool,
        FLeaf: FnMut(u32, Scalar) -> Option<Scalar>,
    {
        let mut best: Option<NearestHit> = None;
        let root = self.root();
        if self.is_leaf(root) {
            // Single-point tree: test the one leaf directly.
            if !skip(root) {
                let rank = self.leaf_rank(root);
                stats.leaves += 1;
                stats.distances += 1;
                let e = query.squared_distance(self.leaf_point(rank));
                if e <= radius_sq {
                    if let Some(m) = leaf(rank, e) {
                        if m <= radius_sq {
                            best = Some(NearestHit { rank, dist_sq: m });
                        }
                    }
                } else if TRACK {
                    stats.pruned_min_sq = stats.pruned_min_sq.min(e);
                }
            }
            return best;
        }

        // Stack entries carry the distance computed at push time, so a
        // popped node whose subtree got pruned by a shrunken radius skips
        // the AABB arithmetic entirely.
        let mut stack = [(0.0 as Scalar, 0 as NodeId); STACK_CAPACITY];
        let mut sp = 0usize;
        stack[sp] = (0.0, root);
        sp += 1;
        if skip(root) {
            stats.skipped += 1;
            return None;
        }

        while sp > 0 {
            sp -= 1;
            let (node_dist, node) = stack[sp];
            stats.nodes += 1;
            // The node was within the radius when pushed, but the radius may
            // have shrunk since. Strict inequality: a node exactly at the
            // radius can still hold an equidistant smaller-rank tie
            // candidate.
            if node_dist > radius_sq {
                if TRACK {
                    stats.pruned_min_sq = stats.pruned_min_sq.min(node_dist);
                }
                continue;
            }
            // Examine both children; descend nearer-first for pruning.
            let children = [self.left_child(node), self.right_child(node)];
            let mut push: [(Scalar, NodeId); 2] = [(Scalar::INFINITY, 0); 2];
            let mut pushes = 0usize;
            for child in children {
                if skip(child) {
                    stats.skipped += 1;
                    continue;
                }
                if self.is_leaf(child) {
                    let rank = self.leaf_rank(child);
                    stats.leaves += 1;
                    stats.distances += 1;
                    let e = query.squared_distance(self.leaf_point(rank));
                    // Cheap Euclidean reject first: metric >= Euclidean.
                    if e > radius_sq {
                        if TRACK {
                            stats.pruned_min_sq = stats.pruned_min_sq.min(e);
                        }
                        continue;
                    }
                    if let Some(m) = leaf(rank, e) {
                        if m < radius_sq {
                            radius_sq = m;
                            best = Some(NearestHit { rank, dist_sq: m });
                        } else if m == radius_sq {
                            // Tie: keep the smallest rank for determinism.
                            match best {
                                Some(b) if rank >= b.rank => {}
                                _ => best = Some(NearestHit { rank, dist_sq: m }),
                            }
                        }
                    }
                } else {
                    let d = self.node_distance_sq(child, query);
                    if d <= radius_sq {
                        push[pushes] = (d, child);
                        pushes += 1;
                    } else if TRACK {
                        stats.pruned_min_sq = stats.pruned_min_sq.min(d);
                    }
                }
            }
            match pushes {
                0 => {}
                1 => {
                    stack[sp] = push[0];
                    sp += 1;
                }
                _ => {
                    // Push the farther child first so the nearer pops first.
                    let (near, far) = if push[0].0 <= push[1].0 {
                        (push[0], push[1])
                    } else {
                        (push[1], push[0])
                    };
                    stack[sp] = far;
                    stack[sp + 1] = near;
                    sp += 2;
                }
            }
            debug_assert!(sp <= STACK_CAPACITY);
        }
        best
    }

    /// Dispatches to the walker selected by `traversal` — same contract and
    /// same result as both [`Bvh::nearest_with`] and
    /// [`Bvh::nearest_stackless`].
    #[inline]
    pub fn nearest<FSkip, FLeaf>(
        &self,
        traversal: Traversal,
        query: &Point<D>,
        radius_sq: Scalar,
        skip: FSkip,
        leaf: FLeaf,
        stats: &mut TraversalStats,
    ) -> Option<NearestHit>
    where
        FSkip: FnMut(NodeId) -> bool,
        FLeaf: FnMut(u32, Scalar) -> Option<Scalar>,
    {
        match traversal {
            Traversal::Stack => self.nearest_with(query, radius_sq, skip, leaf, stats),
            Traversal::Stackless => self.nearest_stackless(query, radius_sq, skip, leaf, stats),
        }
    }

    /// [`Bvh::nearest`] that additionally reports the radius-pruned
    /// frontier minimum in [`TraversalStats::pruned_min_sq`]. Identical
    /// results; the tracking `min`s are monomorphized out of the plain
    /// [`Bvh::nearest`] path, so only callers that want the floor (the
    /// sharded merge) pay for it.
    #[inline]
    pub fn nearest_floor<FSkip, FLeaf>(
        &self,
        traversal: Traversal,
        query: &Point<D>,
        radius_sq: Scalar,
        skip: FSkip,
        leaf: FLeaf,
        stats: &mut TraversalStats,
    ) -> Option<NearestHit>
    where
        FSkip: FnMut(NodeId) -> bool,
        FLeaf: FnMut(u32, Scalar) -> Option<Scalar>,
    {
        match traversal {
            Traversal::Stack => {
                self.nearest_with_impl::<true, FSkip, FLeaf>(query, radius_sq, skip, leaf, stats)
            }
            Traversal::Stackless => self
                .nearest_stackless_impl::<true, FSkip, FLeaf>(query, radius_sq, skip, leaf, stats),
        }
    }

    /// Stackless nearest-neighbour traversal over the 4-wide rope-linked
    /// collapse ([`crate::WideBvh`]). Same parameters, same guarantees and
    /// bit-identical results as [`Bvh::nearest_with`] — see the module docs
    /// for why — but the per-thread state is a single node index:
    ///
    /// - on arrival at a node, the four child-lane boxes are tested by one
    ///   fixed-width (auto-vectorized) loop; a leaf lane's box is its point,
    ///   so the lane distance doubles as the candidate distance;
    /// - the walker then descends to its first live internal lane, or
    ///   follows the rope (`escape`) out of the subtree.
    ///
    /// The `skip` predicate receives *binary* node ids (each lane carries
    /// the id of the binary subtree it collapsed from), so the same
    /// component-label closure drives both walkers. Two contract points the
    /// stack walker does not need (both hold for component labels, where
    /// predicate and callback derive from the same per-rank label array):
    ///
    /// - `skip` must be downward-closed — skipping a node implies its
    ///   descendants would be skipped too — because the collapse only
    ///   consults it at even binary depths;
    /// - leaf candidates are *not* passed to `skip` here; the `leaf`
    ///   callback must itself reject any leaf the predicate would exclude
    ///   (as the Borůvka same-component check does).
    pub fn nearest_stackless<FSkip, FLeaf>(
        &self,
        query: &Point<D>,
        radius_sq: Scalar,
        skip: FSkip,
        leaf: FLeaf,
        stats: &mut TraversalStats,
    ) -> Option<NearestHit>
    where
        FSkip: FnMut(NodeId) -> bool,
        FLeaf: FnMut(u32, Scalar) -> Option<Scalar>,
    {
        self.nearest_stackless_impl::<false, FSkip, FLeaf>(query, radius_sq, skip, leaf, stats)
    }

    /// [`Bvh::nearest_stackless`] with the pruning-floor tracking compiled
    /// in (`TRACK = true`, the merge) or out (`false`, the hot path).
    fn nearest_stackless_impl<const TRACK: bool, FSkip, FLeaf>(
        &self,
        query: &Point<D>,
        mut radius_sq: Scalar,
        mut skip: FSkip,
        mut leaf: FLeaf,
        stats: &mut TraversalStats,
    ) -> Option<NearestHit>
    where
        FSkip: FnMut(NodeId) -> bool,
        FLeaf: FnMut(u32, Scalar) -> Option<Scalar>,
    {
        let mut best: Option<NearestHit> = None;
        if skip(self.root()) {
            stats.skipped += 1;
            return None;
        }
        let nodes = self.wide().nodes();
        let mut cur = 0u32;
        // Set on rope arrivals only: a descend target was box- and
        // label-checked by its parent an instant ago, but a rope leads
        // through *every* later sibling — including ones whose box already
        // failed, or got out-pruned by a since-shrunken radius — so those
        // entries re-validate against the node's own leading fields and
        // usually bail without touching the lane block.
        let mut via_rope = false;
        while cur != INVALID_NODE {
            // SAFETY: `cur` is 0 or came from a `child`/`escape` slot;
            // `WideBvh::collapse` only stores in-range indices there (the
            // build-time invariant `WideBvh::validate` checks).
            let node = unsafe { nodes.get_unchecked(cur as usize) };
            // Start pulling the rope target in before we know whether we
            // need it — the drag chain through out-pruned siblings is a
            // dependent pointer chase and this is what hides it.
            prefetch(nodes.as_ptr().wrapping_add(node.escape as usize));
            stats.nodes += 1;
            if via_rope {
                let sd = node.self_distance_sq(query);
                if sd > radius_sq {
                    if TRACK {
                        stats.pruned_min_sq = stats.pruned_min_sq.min(sd);
                    }
                    stats.rope_hops += 1;
                    cur = node.escape;
                    continue;
                }
                if skip(node.self_bin) {
                    stats.skipped += 1;
                    stats.rope_hops += 1;
                    cur = node.escape;
                    continue;
                }
                via_rope = false;
            }
            let d = node.lane_distances_sq(query);
            let mut descend = INVALID_NODE;
            for (k, &dk) in d.iter().enumerate() {
                // Strict-greater pruning: a lane exactly at the radius can
                // still hold an equidistant smaller-rank tie candidate.
                // Empty lanes carry `+inf` and die on the distance test,
                // except under an infinite radius — caught by the occupancy
                // test. When tracking, occupancy is checked first so empty
                // lanes cannot feed the pruning floor.
                if TRACK {
                    if (node.occupied >> k) & 1 == 0 {
                        continue;
                    }
                    if dk > radius_sq {
                        stats.pruned_min_sq = stats.pruned_min_sq.min(dk);
                        continue;
                    }
                } else if dk > radius_sq || (node.occupied >> k) & 1 == 0 {
                    continue;
                }
                if node.lane_is_leaf(k) {
                    let rank = node.lane_rank(k);
                    stats.leaves += 1;
                    stats.distances += 1;
                    // The lane distance of a degenerate box *is* the
                    // Euclidean squared distance to the point.
                    if let Some(m) = leaf(rank, dk) {
                        if m < radius_sq {
                            radius_sq = m;
                            best = Some(NearestHit { rank, dist_sq: m });
                        } else if m == radius_sq {
                            // Tie: keep the smallest rank for determinism.
                            match best {
                                Some(b) if rank >= b.rank => {}
                                _ => best = Some(NearestHit { rank, dist_sq: m }),
                            }
                        }
                    }
                } else if descend == INVALID_NODE {
                    // First live internal lane; later live lanes are
                    // reached through the ropes of this lane's subtree.
                    if skip(node.bin[k]) {
                        stats.skipped += 1;
                    } else {
                        descend = node.child[k];
                    }
                }
            }
            if descend != INVALID_NODE {
                cur = descend;
            } else {
                stats.rope_hops += 1;
                cur = node.escape;
                via_rope = true;
            }
        }
        best
    }

    /// Nearest neighbour of `query` among all points except `exclude_rank`
    /// (pass `u32::MAX` to exclude nothing). Euclidean metric. Runs on the
    /// default (stackless) walker.
    pub fn nearest_neighbor(&self, query: &Point<D>, exclude_rank: u32) -> Option<NearestHit> {
        let mut stats = TraversalStats::default();
        self.nearest(
            Traversal::default(),
            query,
            Scalar::INFINITY,
            |_| false,
            |rank, e| (rank != exclude_rank).then_some(e),
            &mut stats,
        )
    }

    /// The `k` nearest neighbours of `query` (including any leaf equal to
    /// the query point), as `(rank, squared distance)` sorted ascending,
    /// ties by rank.
    ///
    /// This powers the HDBSCAN* core-distance computation (§4.5), where the
    /// paper notes per-thread priority queues are the main GPU cost.
    pub fn k_nearest(&self, query: &Point<D>, k: usize) -> Vec<(u32, Scalar)> {
        let mut stats = TraversalStats::default();
        self.k_nearest_with_stats(query, k, &mut stats)
    }

    /// [`Self::k_nearest`] with traversal statistics, so callers can feed
    /// the work (including the per-thread heap maintenance) into the device
    /// model.
    pub fn k_nearest_with_stats(
        &self,
        query: &Point<D>,
        k: usize,
        stats: &mut TraversalStats,
    ) -> Vec<(u32, Scalar)> {
        if k == 0 {
            return vec![];
        }
        let mut heap = KnnHeap::new(k);
        // The default (stackless) walker; the kept k-set is identical for
        // any traversal order, because a candidate pruned at some radius is
        // strictly farther than the final k-th distance.
        self.nearest(
            Traversal::default(),
            query,
            Scalar::INFINITY,
            |_| false,
            |rank, e| {
                heap.offer(rank, e);
                // The traversal radius is the current k-th distance.
                Some(heap.bound())
            },
            stats,
        );
        heap.into_sorted()
    }

    /// All leaves within squared distance `radius_sq` of `query`
    /// (boundary exclusive), unordered.
    pub fn within_radius(&self, query: &Point<D>, radius_sq: Scalar) -> Vec<u32> {
        let mut out = vec![];
        let root = self.root();
        if self.is_leaf(root) {
            if query.squared_distance(self.leaf_point(0)) < radius_sq {
                out.push(0);
            }
            return out;
        }
        let mut stack = [0 as NodeId; STACK_CAPACITY];
        let mut sp = 0usize;
        stack[sp] = root;
        sp += 1;
        while sp > 0 {
            sp -= 1;
            let node = stack[sp];
            for child in [self.left_child(node), self.right_child(node)] {
                if self.is_leaf(child) {
                    let rank = self.leaf_rank(child);
                    if query.squared_distance(self.leaf_point(rank)) < radius_sq {
                        out.push(rank);
                    }
                } else if self.node_distance_sq(child, query) < radius_sq {
                    stack[sp] = child;
                    sp += 1;
                }
            }
        }
        out
    }
}

/// A bounded max-heap over `(rank, squared distance)` keeping the `k`
/// smallest candidates — the per-thread priority queue of the k-NN kernel.
///
/// Ordering treats ties in distance by rank so results are deterministic.
#[derive(Clone, Debug)]
pub struct KnnHeap {
    k: usize,
    /// Max-heap: `heap[0]` is the current worst kept candidate.
    heap: Vec<(Scalar, u32)>,
}

impl KnnHeap {
    /// Creates a heap keeping the `k` best candidates.
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        Self { k, heap: Vec::with_capacity(k) }
    }

    #[inline]
    fn worse(a: (Scalar, u32), b: (Scalar, u32)) -> bool {
        a.0 > b.0 || (a.0 == b.0 && a.1 > b.1)
    }

    /// Offers a candidate.
    #[inline]
    pub fn offer(&mut self, rank: u32, dist_sq: Scalar) {
        let cand = (dist_sq, rank);
        if self.heap.len() < self.k {
            self.heap.push(cand);
            // Sift up.
            let mut i = self.heap.len() - 1;
            while i > 0 {
                let p = (i - 1) / 2;
                if Self::worse(self.heap[i], self.heap[p]) {
                    self.heap.swap(i, p);
                    i = p;
                } else {
                    break;
                }
            }
        } else if Self::worse(self.heap[0], cand) {
            self.heap[0] = cand;
            // Sift down.
            let mut i = 0usize;
            loop {
                let l = 2 * i + 1;
                let r = 2 * i + 2;
                let mut m = i;
                if l < self.heap.len() && Self::worse(self.heap[l], self.heap[m]) {
                    m = l;
                }
                if r < self.heap.len() && Self::worse(self.heap[r], self.heap[m]) {
                    m = r;
                }
                if m == i {
                    break;
                }
                self.heap.swap(i, m);
                i = m;
            }
        }
    }

    /// Current pruning bound: the worst kept distance once full, `+inf`
    /// before that.
    #[inline]
    pub fn bound(&self) -> Scalar {
        if self.heap.len() < self.k {
            Scalar::INFINITY
        } else {
            self.heap[0].0
        }
    }

    /// Number of kept candidates.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no candidate was offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Extracts the kept candidates sorted by `(distance, rank)` ascending.
    pub fn into_sorted(self) -> Vec<(u32, Scalar)> {
        let mut v: Vec<(u32, Scalar)> = self.heap.into_iter().map(|(d, r)| (r, d)).collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_exec::Serial;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points_2d(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(-1.0f32..1.0), rng.random_range(-1.0f32..1.0)]))
            .collect()
    }

    fn brute_nn(points: &[Point<2>], q: &Point<2>, exclude: usize) -> (usize, f32) {
        points
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != exclude)
            .map(|(i, p)| (i, q.squared_distance(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .unwrap()
    }

    #[test]
    fn nearest_neighbor_matches_brute_force() {
        let pts = random_points_2d(500, 21);
        let bvh = Bvh::build(&Serial, &pts);
        for i in 0..pts.len() {
            let rank = bvh.morton_order().iter().position(|&o| o == i as u32).unwrap() as u32;
            let hit = bvh.nearest_neighbor(&pts[i], rank).unwrap();
            let (_, bd) = brute_nn(&pts, &pts[i], i);
            assert_eq!(hit.dist_sq, bd, "query {i}");
        }
    }

    #[test]
    fn k_nearest_matches_brute_force() {
        let pts = random_points_2d(300, 5);
        let bvh = Bvh::build(&Serial, &pts);
        for &k in &[1usize, 2, 5, 16, 300, 1000] {
            let q = Point::new([0.1, -0.2]);
            let got = bvh.k_nearest(&q, k);
            let mut all: Vec<f32> = pts.iter().map(|p| q.squared_distance(p)).collect();
            all.sort_by(f32::total_cmp);
            let kk = k.min(pts.len());
            assert_eq!(got.len(), kk);
            for (j, &(_, d)) in got.iter().enumerate() {
                assert_eq!(d, all[j], "k={k} j={j}");
            }
            // sorted ascending
            assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
        }
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let pts = random_points_2d(400, 9);
        let bvh = Bvh::build(&Serial, &pts);
        let q = Point::new([0.3, 0.3]);
        for &r2 in &[0.001f32, 0.05, 0.5, 10.0] {
            let mut got: Vec<u32> =
                bvh.within_radius(&q, r2).into_iter().map(|rank| bvh.point_index(rank)).collect();
            got.sort_unstable();
            let mut expect: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| q.squared_distance(p) < r2)
                .map(|(i, _)| i as u32)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "r2={r2}");
        }
    }

    #[test]
    fn skip_predicate_prunes_everything() {
        let pts = random_points_2d(50, 2);
        let bvh = Bvh::build(&Serial, &pts);
        let mut stats = TraversalStats::default();
        let hit = bvh.nearest_with(
            &Point::new([0.0, 0.0]),
            f32::INFINITY,
            |_| true,
            |_, e| Some(e),
            &mut stats,
        );
        assert!(hit.is_none());
        assert_eq!(stats.leaves, 0);
    }

    #[test]
    fn initial_radius_prunes_far_candidates() {
        let pts = vec![Point::new([0.0f32, 0.0]), Point::new([10.0, 0.0])];
        let bvh = Bvh::build(&Serial, &pts);
        let mut stats = TraversalStats::default();
        // radius² = 1: nothing within
        let hit =
            bvh.nearest_with(&Point::new([5.0, 0.0]), 1.0, |_| false, |_, e| Some(e), &mut stats);
        assert!(hit.is_none());
    }

    #[test]
    fn single_point_tree_queries() {
        let pts = vec![Point::new([1.0f32, 1.0])];
        let bvh = Bvh::build(&Serial, &pts);
        let hit = bvh.nearest_neighbor(&Point::new([0.0, 0.0]), u32::MAX).unwrap();
        assert_eq!(hit.dist_sq, 2.0);
        assert!(bvh.nearest_neighbor(&Point::new([0.0, 0.0]), 0).is_none());
        assert_eq!(bvh.k_nearest(&Point::new([0.0, 0.0]), 3).len(), 1);
        assert_eq!(bvh.within_radius(&Point::new([0.0, 0.0]), 3.0), vec![0]);
        assert!(bvh.within_radius(&Point::new([0.0, 0.0]), 1.0).is_empty());
    }

    #[test]
    fn stats_count_work() {
        let pts = random_points_2d(1000, 33);
        let bvh = Bvh::build(&Serial, &pts);
        let mut stats = TraversalStats::default();
        bvh.nearest_with(
            &Point::new([0.0, 0.0]),
            f32::INFINITY,
            |_| false,
            |_, e| Some(e),
            &mut stats,
        );
        assert!(stats.nodes > 0);
        assert!(stats.leaves > 0);
        assert!(stats.distances >= stats.leaves);
        // Pruning must avoid the vast majority of the 1000 leaves.
        assert!(stats.leaves < 200, "leaves visited: {}", stats.leaves);
    }

    #[test]
    fn knn_heap_keeps_k_smallest_with_ties_by_rank() {
        let mut h = KnnHeap::new(3);
        assert!(h.is_empty());
        for (r, d) in [(5u32, 2.0f32), (1, 1.0), (2, 1.0), (9, 0.5), (7, 1.0)] {
            h.offer(r, d);
        }
        let got = h.into_sorted();
        // kept: 0.5@9, 1.0@1, 1.0@2 (1.0@7 loses the rank tie-break)
        assert_eq!(got, vec![(9, 0.5), (1, 1.0), (2, 1.0)]);
    }

    #[test]
    fn knn_heap_bound_is_inf_until_full() {
        let mut h = KnnHeap::new(2);
        assert_eq!(h.bound(), f32::INFINITY);
        h.offer(0, 3.0);
        assert_eq!(h.bound(), f32::INFINITY);
        h.offer(1, 1.0);
        assert_eq!(h.bound(), 3.0);
        h.offer(2, 0.5);
        assert_eq!(h.bound(), 1.0);
        assert_eq!(h.len(), 2);
    }

    /// Reference subtree labels for a synthetic component assignment —
    /// the downward-closed predicate family the walkers must agree under.
    fn subtree_labels(bvh: &Bvh<2>, labels: &[u32]) -> Vec<u32> {
        fn go(bvh: &Bvh<2>, labels: &[u32], node: u32, out: &mut [u32]) -> u32 {
            let l = if bvh.is_leaf(node) {
                labels[bvh.leaf_rank(node) as usize]
            } else {
                let a = go(bvh, labels, bvh.left_child(node), out);
                let b = go(bvh, labels, bvh.right_child(node), out);
                if a == b {
                    a
                } else {
                    u32::MAX
                }
            };
            out[node as usize] = l;
            l
        }
        let mut out = vec![u32::MAX; bvh.num_nodes()];
        go(bvh, labels, bvh.root(), &mut out);
        out
    }

    /// Runs both walkers with the component-skip predicate active and
    /// asserts bit-identical hits.
    fn assert_walkers_agree(pts: &[Point<2>], labels: &[u32], radius_sq: f32) {
        let bvh = Bvh::build(&Serial, pts);
        let node_labels = subtree_labels(&bvh, labels);
        for i in 0..pts.len() {
            let comp = labels[i];
            let q = bvh.leaf_point(i as u32);
            let run = |t: Traversal| {
                let mut st = TraversalStats::default();
                bvh.nearest(
                    t,
                    q,
                    radius_sq,
                    |node| node_labels[node as usize] == comp,
                    |rank, e| (labels[rank as usize] != comp).then_some(e),
                    &mut st,
                )
            };
            let a = run(Traversal::Stack);
            let b = run(Traversal::Stackless);
            assert_eq!(a, b, "query rank {i}");
        }
    }

    #[test]
    fn stack_and_stackless_agree_under_tie_pressure() {
        // Integer grid: every distance ties; plus duplicate blocks.
        let mut pts: Vec<Point<2>> =
            (0..8).flat_map(|x| (0..8).map(move |y| Point::new([x as f32, y as f32]))).collect();
        pts.extend(std::iter::repeat_n(Point::new([3.0, 3.0]), 9));
        let labels: Vec<u32> = (0..pts.len() as u32).map(|r| r % 5).collect();
        assert_walkers_agree(&pts, &labels, f32::INFINITY);
        assert_walkers_agree(&pts, &labels, 1.0);
    }

    #[test]
    fn stackless_counts_rope_hops() {
        let pts = random_points_2d(1000, 12);
        let bvh = Bvh::build(&Serial, &pts);
        let mut st = TraversalStats::default();
        bvh.nearest_stackless(
            &Point::new([0.1, 0.2]),
            f32::INFINITY,
            |_| false,
            |_, e| Some(e),
            &mut st,
        );
        assert!(st.rope_hops > 0);
        assert!(st.nodes > 0);
        // The stack walker never hops ropes.
        let mut st2 = TraversalStats::default();
        bvh.nearest_with(
            &Point::new([0.1, 0.2]),
            f32::INFINITY,
            |_| false,
            |_, e| Some(e),
            &mut st2,
        );
        assert_eq!(st2.rope_hops, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn stack_vs_stackless_bit_identical_hits(
            n in 1usize..150,
            seed in 0u64..500,
            comps in 1u32..8,
            duplicates in 0usize..3,
            grid in 0u8..2,
        ) {
            // Duplicate/tie pressure: random or integer-grid points plus
            // repeated blocks, random component labels, component-skip
            // predicate active.
            let mut pts = if grid == 1 {
                let mut rng = StdRng::seed_from_u64(seed);
                (0..n).map(|_| Point::new([
                    rng.random_range(0i32..5) as f32,
                    rng.random_range(0i32..5) as f32,
                ])).collect()
            } else {
                random_points_2d(n, seed)
            };
            for _ in 0..duplicates {
                let p = pts[0];
                pts.extend(std::iter::repeat_n(p, 4));
            }
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
            let labels: Vec<u32> = (0..pts.len()).map(|_| rng.random_range(0..comps)).collect();
            assert_walkers_agree(&pts, &labels, f32::INFINITY);
        }

        #[test]
        fn nn_equals_brute_force_on_random_sets(
            n in 2usize..150, seed in 0u64..500, qx in -1.5f32..1.5, qy in -1.5f32..1.5
        ) {
            let pts = random_points_2d(n, seed);
            let bvh = Bvh::build(&Serial, &pts);
            let q = Point::new([qx, qy]);
            let hit = bvh.nearest_neighbor(&q, u32::MAX).unwrap();
            let bd = pts.iter().map(|p| q.squared_distance(p)).fold(f32::INFINITY, f32::min);
            prop_assert_eq!(hit.dist_sq, bd);
        }

        #[test]
        fn knn_equals_brute_force_on_random_sets(
            n in 1usize..100, seed in 0u64..200, k in 1usize..20
        ) {
            let pts = random_points_2d(n, seed);
            let bvh = Bvh::build(&Serial, &pts);
            let q = Point::new([0.0, 0.0]);
            let got = bvh.k_nearest(&q, k);
            let mut all: Vec<f32> = pts.iter().map(|p| q.squared_distance(p)).collect();
            all.sort_by(f32::total_cmp);
            prop_assert_eq!(got.len(), k.min(n));
            for (j, &(_, d)) in got.iter().enumerate() {
                prop_assert_eq!(d, all[j]);
            }
        }

        #[test]
        fn radius_query_equals_brute_force(
            n in 1usize..120, seed in 0u64..200, r in 0.01f32..2.0
        ) {
            let pts = random_points_2d(n, seed);
            let bvh = Bvh::build(&Serial, &pts);
            let q = Point::new([0.25, 0.25]);
            let mut got: Vec<u32> = bvh.within_radius(&q, r * r)
                .into_iter().map(|rank| bvh.point_index(rank)).collect();
            got.sort_unstable();
            let mut expect: Vec<u32> = pts.iter().enumerate()
                .filter(|(_, p)| q.squared_distance(p) < r * r)
                .map(|(i, _)| i as u32).collect();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }
}
