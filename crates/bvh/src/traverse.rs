//! Stack-based top-down traversals (Algorithm 2 of the paper).
//!
//! Each query is executed by a single thread with an explicit stack, in the
//! bulk-synchronous style of ArborX: the caller launches one `parallel_for`
//! over queries and each work item calls into these routines. The generic
//! [`Bvh::nearest_with`] is the hook the single-tree Borůvka algorithm uses:
//! its `skip` predicate implements the paper's Optimization 1 (bypassing
//! subtrees whose leaves all share the query's component) and its `leaf`
//! callback applies the metric (Euclidean or mutual-reachability).

use emst_geometry::{Point, Scalar};

use crate::build::Bvh;
use crate::node::NodeId;

/// Maximum traversal stack depth.
///
/// The radix hierarchy's depth is bounded by the key length (64 Morton bits
/// plus 32 tie-break bits), so 128 slots never overflow.
const STACK_CAPACITY: usize = 128;

/// Per-query work statistics, accumulated locally (no atomics on the hot
/// path) and flushed to [`emst_exec::Counters`] by the caller.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Internal nodes examined.
    pub nodes: u32,
    /// Leaves tested as candidates.
    pub leaves: u32,
    /// Point-to-point distance computations.
    pub distances: u32,
    /// Subtrees skipped by the caller's predicate (Optimization 1).
    pub skipped: u32,
}

/// Result of a nearest-neighbour query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NearestHit {
    /// Morton rank of the winning leaf.
    pub rank: u32,
    /// Squared metric distance to it.
    pub dist_sq: Scalar,
}

impl<const D: usize> Bvh<D> {
    /// Generic single-threaded nearest-neighbour traversal.
    ///
    /// - `query`: the query point;
    /// - `radius_sq`: initial squared cutoff radius (candidates at or beyond
    ///   it are ignored) — the component upper bound of Optimization 2, or
    ///   `f32::INFINITY` for an unconstrained search;
    /// - `skip`: called with a node id before it is examined; returning
    ///   `true` prunes the whole subtree (Optimization 1);
    /// - `leaf`: called with `(morton rank, squared Euclidean distance)` of
    ///   a candidate leaf; returns the squared *metric* distance, or `None`
    ///   to reject the candidate (e.g. "same point" or "same component").
    ///
    /// Returns the best accepted hit at distance **at most** `radius_sq`.
    /// Ties between equidistant leaves resolve to the smallest Morton rank.
    /// Both properties are load-bearing for the EMST: Borůvka's algorithm
    /// only converges under a strict total order on edges (§2 of the paper,
    /// "tie-breaking resolution"), which the caller derives from
    /// `(distance, min rank, max rank)` — so the traversal must neither drop
    /// an equidistant smaller-rank candidate nor miss a candidate that
    /// exactly attains the component upper bound. Node pruning is therefore
    /// strictly-greater-than.
    pub fn nearest_with<FSkip, FLeaf>(
        &self,
        query: &Point<D>,
        mut radius_sq: Scalar,
        mut skip: FSkip,
        mut leaf: FLeaf,
        stats: &mut TraversalStats,
    ) -> Option<NearestHit>
    where
        FSkip: FnMut(NodeId) -> bool,
        FLeaf: FnMut(u32, Scalar) -> Option<Scalar>,
    {
        let mut best: Option<NearestHit> = None;
        let root = self.root();
        if self.is_leaf(root) {
            // Single-point tree: test the one leaf directly.
            if !skip(root) {
                let rank = self.leaf_rank(root);
                stats.leaves += 1;
                stats.distances += 1;
                let e = query.squared_distance(self.leaf_point(rank));
                if e <= radius_sq {
                    if let Some(m) = leaf(rank, e) {
                        if m <= radius_sq {
                            best = Some(NearestHit { rank, dist_sq: m });
                        }
                    }
                }
            }
            return best;
        }

        // Stack entries carry the distance computed at push time, so a
        // popped node whose subtree got pruned by a shrunken radius skips
        // the AABB arithmetic entirely.
        let mut stack = [(0.0 as Scalar, 0 as NodeId); STACK_CAPACITY];
        let mut sp = 0usize;
        stack[sp] = (0.0, root);
        sp += 1;
        if skip(root) {
            stats.skipped += 1;
            return None;
        }

        while sp > 0 {
            sp -= 1;
            let (node_dist, node) = stack[sp];
            stats.nodes += 1;
            // The node was within the radius when pushed, but the radius may
            // have shrunk since. Strict inequality: a node exactly at the
            // radius can still hold an equidistant smaller-rank tie
            // candidate.
            if node_dist > radius_sq {
                continue;
            }
            // Examine both children; descend nearer-first for pruning.
            let children = [self.left_child(node), self.right_child(node)];
            let mut push: [(Scalar, NodeId); 2] = [(Scalar::INFINITY, 0); 2];
            let mut pushes = 0usize;
            for child in children {
                if skip(child) {
                    stats.skipped += 1;
                    continue;
                }
                if self.is_leaf(child) {
                    let rank = self.leaf_rank(child);
                    stats.leaves += 1;
                    stats.distances += 1;
                    let e = query.squared_distance(self.leaf_point(rank));
                    // Cheap Euclidean reject first: metric >= Euclidean.
                    if e > radius_sq {
                        continue;
                    }
                    if let Some(m) = leaf(rank, e) {
                        if m < radius_sq {
                            radius_sq = m;
                            best = Some(NearestHit { rank, dist_sq: m });
                        } else if m == radius_sq {
                            // Tie: keep the smallest rank for determinism.
                            match best {
                                Some(b) if rank >= b.rank => {}
                                _ => best = Some(NearestHit { rank, dist_sq: m }),
                            }
                        }
                    }
                } else {
                    let d = self.node_distance_sq(child, query);
                    if d <= radius_sq {
                        push[pushes] = (d, child);
                        pushes += 1;
                    }
                }
            }
            match pushes {
                0 => {}
                1 => {
                    stack[sp] = push[0];
                    sp += 1;
                }
                _ => {
                    // Push the farther child first so the nearer pops first.
                    let (near, far) = if push[0].0 <= push[1].0 {
                        (push[0], push[1])
                    } else {
                        (push[1], push[0])
                    };
                    stack[sp] = far;
                    stack[sp + 1] = near;
                    sp += 2;
                }
            }
            debug_assert!(sp <= STACK_CAPACITY);
        }
        best
    }

    /// Nearest neighbour of `query` among all points except `exclude_rank`
    /// (pass `u32::MAX` to exclude nothing). Euclidean metric.
    pub fn nearest_neighbor(&self, query: &Point<D>, exclude_rank: u32) -> Option<NearestHit> {
        let mut stats = TraversalStats::default();
        self.nearest_with(
            query,
            Scalar::INFINITY,
            |_| false,
            |rank, e| (rank != exclude_rank).then_some(e),
            &mut stats,
        )
    }

    /// The `k` nearest neighbours of `query` (including any leaf equal to
    /// the query point), as `(rank, squared distance)` sorted ascending,
    /// ties by rank.
    ///
    /// This powers the HDBSCAN* core-distance computation (§4.5), where the
    /// paper notes per-thread priority queues are the main GPU cost.
    pub fn k_nearest(&self, query: &Point<D>, k: usize) -> Vec<(u32, Scalar)> {
        let mut stats = TraversalStats::default();
        self.k_nearest_with_stats(query, k, &mut stats)
    }

    /// [`Self::k_nearest`] with traversal statistics, so callers can feed
    /// the work (including the per-thread heap maintenance) into the device
    /// model.
    pub fn k_nearest_with_stats(
        &self,
        query: &Point<D>,
        k: usize,
        stats: &mut TraversalStats,
    ) -> Vec<(u32, Scalar)> {
        if k == 0 {
            return vec![];
        }
        let mut heap = KnnHeap::new(k);
        self.nearest_with(
            query,
            Scalar::INFINITY,
            |_| false,
            |rank, e| {
                heap.offer(rank, e);
                // The traversal radius is the current k-th distance.
                Some(heap.bound())
            },
            stats,
        );
        heap.into_sorted()
    }

    /// All leaves within squared distance `radius_sq` of `query`
    /// (boundary exclusive), unordered.
    pub fn within_radius(&self, query: &Point<D>, radius_sq: Scalar) -> Vec<u32> {
        let mut out = vec![];
        let root = self.root();
        if self.is_leaf(root) {
            if query.squared_distance(self.leaf_point(0)) < radius_sq {
                out.push(0);
            }
            return out;
        }
        let mut stack = [0 as NodeId; STACK_CAPACITY];
        let mut sp = 0usize;
        stack[sp] = root;
        sp += 1;
        while sp > 0 {
            sp -= 1;
            let node = stack[sp];
            for child in [self.left_child(node), self.right_child(node)] {
                if self.is_leaf(child) {
                    let rank = self.leaf_rank(child);
                    if query.squared_distance(self.leaf_point(rank)) < radius_sq {
                        out.push(rank);
                    }
                } else if self.node_distance_sq(child, query) < radius_sq {
                    stack[sp] = child;
                    sp += 1;
                }
            }
        }
        out
    }
}

/// A bounded max-heap over `(rank, squared distance)` keeping the `k`
/// smallest candidates — the per-thread priority queue of the k-NN kernel.
///
/// Ordering treats ties in distance by rank so results are deterministic.
#[derive(Clone, Debug)]
pub struct KnnHeap {
    k: usize,
    /// Max-heap: `heap[0]` is the current worst kept candidate.
    heap: Vec<(Scalar, u32)>,
}

impl KnnHeap {
    /// Creates a heap keeping the `k` best candidates.
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        Self { k, heap: Vec::with_capacity(k) }
    }

    #[inline]
    fn worse(a: (Scalar, u32), b: (Scalar, u32)) -> bool {
        a.0 > b.0 || (a.0 == b.0 && a.1 > b.1)
    }

    /// Offers a candidate.
    #[inline]
    pub fn offer(&mut self, rank: u32, dist_sq: Scalar) {
        let cand = (dist_sq, rank);
        if self.heap.len() < self.k {
            self.heap.push(cand);
            // Sift up.
            let mut i = self.heap.len() - 1;
            while i > 0 {
                let p = (i - 1) / 2;
                if Self::worse(self.heap[i], self.heap[p]) {
                    self.heap.swap(i, p);
                    i = p;
                } else {
                    break;
                }
            }
        } else if Self::worse(self.heap[0], cand) {
            self.heap[0] = cand;
            // Sift down.
            let mut i = 0usize;
            loop {
                let l = 2 * i + 1;
                let r = 2 * i + 2;
                let mut m = i;
                if l < self.heap.len() && Self::worse(self.heap[l], self.heap[m]) {
                    m = l;
                }
                if r < self.heap.len() && Self::worse(self.heap[r], self.heap[m]) {
                    m = r;
                }
                if m == i {
                    break;
                }
                self.heap.swap(i, m);
                i = m;
            }
        }
    }

    /// Current pruning bound: the worst kept distance once full, `+inf`
    /// before that.
    #[inline]
    pub fn bound(&self) -> Scalar {
        if self.heap.len() < self.k {
            Scalar::INFINITY
        } else {
            self.heap[0].0
        }
    }

    /// Number of kept candidates.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no candidate was offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Extracts the kept candidates sorted by `(distance, rank)` ascending.
    pub fn into_sorted(self) -> Vec<(u32, Scalar)> {
        let mut v: Vec<(u32, Scalar)> = self.heap.into_iter().map(|(d, r)| (r, d)).collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_exec::Serial;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points_2d(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(-1.0f32..1.0), rng.random_range(-1.0f32..1.0)]))
            .collect()
    }

    fn brute_nn(points: &[Point<2>], q: &Point<2>, exclude: usize) -> (usize, f32) {
        points
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != exclude)
            .map(|(i, p)| (i, q.squared_distance(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .unwrap()
    }

    #[test]
    fn nearest_neighbor_matches_brute_force() {
        let pts = random_points_2d(500, 21);
        let bvh = Bvh::build(&Serial, &pts);
        for i in 0..pts.len() {
            let rank = bvh.morton_order().iter().position(|&o| o == i as u32).unwrap() as u32;
            let hit = bvh.nearest_neighbor(&pts[i], rank).unwrap();
            let (_, bd) = brute_nn(&pts, &pts[i], i);
            assert_eq!(hit.dist_sq, bd, "query {i}");
        }
    }

    #[test]
    fn k_nearest_matches_brute_force() {
        let pts = random_points_2d(300, 5);
        let bvh = Bvh::build(&Serial, &pts);
        for &k in &[1usize, 2, 5, 16, 300, 1000] {
            let q = Point::new([0.1, -0.2]);
            let got = bvh.k_nearest(&q, k);
            let mut all: Vec<f32> = pts.iter().map(|p| q.squared_distance(p)).collect();
            all.sort_by(f32::total_cmp);
            let kk = k.min(pts.len());
            assert_eq!(got.len(), kk);
            for (j, &(_, d)) in got.iter().enumerate() {
                assert_eq!(d, all[j], "k={k} j={j}");
            }
            // sorted ascending
            assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
        }
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let pts = random_points_2d(400, 9);
        let bvh = Bvh::build(&Serial, &pts);
        let q = Point::new([0.3, 0.3]);
        for &r2 in &[0.001f32, 0.05, 0.5, 10.0] {
            let mut got: Vec<u32> =
                bvh.within_radius(&q, r2).into_iter().map(|rank| bvh.point_index(rank)).collect();
            got.sort_unstable();
            let mut expect: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| q.squared_distance(p) < r2)
                .map(|(i, _)| i as u32)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "r2={r2}");
        }
    }

    #[test]
    fn skip_predicate_prunes_everything() {
        let pts = random_points_2d(50, 2);
        let bvh = Bvh::build(&Serial, &pts);
        let mut stats = TraversalStats::default();
        let hit = bvh.nearest_with(
            &Point::new([0.0, 0.0]),
            f32::INFINITY,
            |_| true,
            |_, e| Some(e),
            &mut stats,
        );
        assert!(hit.is_none());
        assert_eq!(stats.leaves, 0);
    }

    #[test]
    fn initial_radius_prunes_far_candidates() {
        let pts = vec![Point::new([0.0f32, 0.0]), Point::new([10.0, 0.0])];
        let bvh = Bvh::build(&Serial, &pts);
        let mut stats = TraversalStats::default();
        // radius² = 1: nothing within
        let hit =
            bvh.nearest_with(&Point::new([5.0, 0.0]), 1.0, |_| false, |_, e| Some(e), &mut stats);
        assert!(hit.is_none());
    }

    #[test]
    fn single_point_tree_queries() {
        let pts = vec![Point::new([1.0f32, 1.0])];
        let bvh = Bvh::build(&Serial, &pts);
        let hit = bvh.nearest_neighbor(&Point::new([0.0, 0.0]), u32::MAX).unwrap();
        assert_eq!(hit.dist_sq, 2.0);
        assert!(bvh.nearest_neighbor(&Point::new([0.0, 0.0]), 0).is_none());
        assert_eq!(bvh.k_nearest(&Point::new([0.0, 0.0]), 3).len(), 1);
        assert_eq!(bvh.within_radius(&Point::new([0.0, 0.0]), 3.0), vec![0]);
        assert!(bvh.within_radius(&Point::new([0.0, 0.0]), 1.0).is_empty());
    }

    #[test]
    fn stats_count_work() {
        let pts = random_points_2d(1000, 33);
        let bvh = Bvh::build(&Serial, &pts);
        let mut stats = TraversalStats::default();
        bvh.nearest_with(
            &Point::new([0.0, 0.0]),
            f32::INFINITY,
            |_| false,
            |_, e| Some(e),
            &mut stats,
        );
        assert!(stats.nodes > 0);
        assert!(stats.leaves > 0);
        assert!(stats.distances >= stats.leaves);
        // Pruning must avoid the vast majority of the 1000 leaves.
        assert!(stats.leaves < 200, "leaves visited: {}", stats.leaves);
    }

    #[test]
    fn knn_heap_keeps_k_smallest_with_ties_by_rank() {
        let mut h = KnnHeap::new(3);
        assert!(h.is_empty());
        for (r, d) in [(5u32, 2.0f32), (1, 1.0), (2, 1.0), (9, 0.5), (7, 1.0)] {
            h.offer(r, d);
        }
        let got = h.into_sorted();
        // kept: 0.5@9, 1.0@1, 1.0@2 (1.0@7 loses the rank tie-break)
        assert_eq!(got, vec![(9, 0.5), (1, 1.0), (2, 1.0)]);
    }

    #[test]
    fn knn_heap_bound_is_inf_until_full() {
        let mut h = KnnHeap::new(2);
        assert_eq!(h.bound(), f32::INFINITY);
        h.offer(0, 3.0);
        assert_eq!(h.bound(), f32::INFINITY);
        h.offer(1, 1.0);
        assert_eq!(h.bound(), 3.0);
        h.offer(2, 0.5);
        assert_eq!(h.bound(), 1.0);
        assert_eq!(h.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn nn_equals_brute_force_on_random_sets(
            n in 2usize..150, seed in 0u64..500, qx in -1.5f32..1.5, qy in -1.5f32..1.5
        ) {
            let pts = random_points_2d(n, seed);
            let bvh = Bvh::build(&Serial, &pts);
            let q = Point::new([qx, qy]);
            let hit = bvh.nearest_neighbor(&q, u32::MAX).unwrap();
            let bd = pts.iter().map(|p| q.squared_distance(p)).fold(f32::INFINITY, f32::min);
            prop_assert_eq!(hit.dist_sq, bd);
        }

        #[test]
        fn knn_equals_brute_force_on_random_sets(
            n in 1usize..100, seed in 0u64..200, k in 1usize..20
        ) {
            let pts = random_points_2d(n, seed);
            let bvh = Bvh::build(&Serial, &pts);
            let q = Point::new([0.0, 0.0]);
            let got = bvh.k_nearest(&q, k);
            let mut all: Vec<f32> = pts.iter().map(|p| q.squared_distance(p)).collect();
            all.sort_by(f32::total_cmp);
            prop_assert_eq!(got.len(), k.min(n));
            for (j, &(_, d)) in got.iter().enumerate() {
                prop_assert_eq!(d, all[j]);
            }
        }

        #[test]
        fn radius_query_equals_brute_force(
            n in 1usize..120, seed in 0u64..200, r in 0.01f32..2.0
        ) {
            let pts = random_points_2d(n, seed);
            let bvh = Bvh::build(&Serial, &pts);
            let q = Point::new([0.25, 0.25]);
            let mut got: Vec<u32> = bvh.within_radius(&q, r * r)
                .into_iter().map(|rank| bvh.point_index(rank)).collect();
            got.sort_unstable();
            let mut expect: Vec<u32> = pts.iter().enumerate()
                .filter(|(_, p)| q.squared_distance(p) < r * r)
                .map(|(i, _)| i as u32).collect();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }
}
