//! 4-wide collapsed hierarchy with rope/escape pointers — the storage
//! behind the default stackless traversal.
//!
//! The binary radix tree of [`Bvh`] is pointer-light but traversal-heavy:
//! every step loads two child ids, then two bounding boxes from a separate
//! array, and keeps a 128-entry stack per query. GPUs (and cache-bound CPUs)
//! prefer the opposite trade, which ArborX adopted for its own tree and the
//! MBVH literature formalizes:
//!
//! - **collapse** the binary tree two levels at a time, so one node holds
//!   up to four child subtrees (the grandchildren of a binary node, with
//!   leaf children passing through). Half the tree levels disappear, and
//!   the four child boxes are tested by fixed-width loops the compiler
//!   auto-vectorizes;
//! - store each node as one **contiguous block** — transposed child corners
//!   (`lo[dim][lane]` / `hi[dim][lane]`), child references, the binary
//!   subtree id of every lane (for the Borůvka component-skip predicate),
//!   and the rope — so a visit touches adjacent cache lines only;
//! - link nodes with **rope/escape pointers** computed at build time:
//!   `escape` is the preorder successor outside the node's subtree. A
//!   traversal then needs no stack at all — it either descends to its first
//!   live child or follows the rope, which is exactly the per-thread state
//!   (one index) a GPU traversal can afford.
//!
//! A leaf lane's "box" is the degenerate box of its point, so the
//! vectorized lane test *is* the point-distance computation — bit-identical
//! to [`emst_geometry::Point::squared_distance`] (same per-dimension
//! accumulation order), which is what lets the stack and stackless walkers
//! return byte-for-byte equal [`crate::NearestHit`]s.

use emst_geometry::{Point, Scalar};

use crate::build::Bvh;
use crate::node::{NodeId, INVALID_NODE};

/// Number of child lanes per wide node.
pub const WIDTH: usize = 4;

/// Lane marker: no child in this lane.
pub const EMPTY_LANE: u32 = u32::MAX;

/// High bit of a lane reference: set when the lane is a leaf (low bits hold
/// the Morton rank), clear when it indexes another wide node.
const LEAF_BIT: u32 = 1 << 31;

/// One collapsed node: up to four child subtrees stored
/// structure-of-arrays within the node (AoSoA), plus the rope.
///
/// `repr(C, align(64))`: the transposed lane corners lead the struct so
/// the fixed-width distance loops read cache-line-aligned 16-byte groups,
/// and the scalar tail lands together on the following line — everything a
/// rope arrival needs to re-validate against the node's own box (its lane
/// box was tested by the parent before the radius shrank, or *failed*
/// there, since static ropes chain through every sibling) and bail without
/// touching the lane block.
#[derive(Clone, Debug, PartialEq)]
#[repr(C, align(64))]
pub struct WideNode<const D: usize> {
    /// Transposed child-box lower corners: `lo[d][lane]`. Empty lanes hold
    /// `+inf`, so their lane distance evaluates to `+inf` for free.
    pub lo: [[Scalar; WIDTH]; D],
    /// Transposed child-box upper corners (empty lanes hold `-inf`).
    pub hi: [[Scalar; WIDTH]; D],
    /// Lower corner of the node's own bounding box.
    pub self_lo: [Scalar; D],
    /// Upper corner of the node's own bounding box.
    pub self_hi: [Scalar; D],
    /// Binary-tree node id this wide node collapsed from (skip predicate).
    pub self_bin: NodeId,
    /// Rope: the next wide node in preorder that is *not* below this one
    /// (`INVALID_NODE` for "traversal over").
    pub escape: u32,
    /// Bit `k` set when lane `k` is occupied (empty lanes hold `±inf`
    /// corners, so they also price themselves out of the distance test).
    pub occupied: u32,
    /// Lane references: [`EMPTY_LANE`], a leaf (high bit + Morton rank) or
    /// the index of a child wide node.
    pub child: [u32; WIDTH],
    /// Binary-tree node id of each lane's subtree root (`INVALID_NODE` for
    /// empty lanes) — what the component-skip predicate is keyed on.
    pub bin: [NodeId; WIDTH],
}

impl<const D: usize> WideNode<D> {
    fn empty() -> Self {
        Self {
            self_lo: [Scalar::INFINITY; D],
            self_hi: [Scalar::NEG_INFINITY; D],
            self_bin: INVALID_NODE,
            escape: INVALID_NODE,
            occupied: 0,
            child: [EMPTY_LANE; WIDTH],
            bin: [INVALID_NODE; WIDTH],
            lo: [[Scalar::INFINITY; WIDTH]; D],
            hi: [[Scalar::NEG_INFINITY; WIDTH]; D],
        }
    }

    /// Squared distance from `q` to the node's own bounding box.
    #[inline]
    pub fn self_distance_sq(&self, q: &Point<D>) -> Scalar {
        let mut acc = 0.0;
        for d in 0..D {
            let gap = (self.self_lo[d] - q[d]).max(q[d] - self.self_hi[d]).max(0.0);
            acc += gap * gap;
        }
        acc
    }

    /// True when the lane holds a leaf.
    #[inline]
    pub fn lane_is_leaf(&self, lane: usize) -> bool {
        self.child[lane] & LEAF_BIT != 0
    }

    /// Morton rank of a leaf lane.
    #[inline]
    pub fn lane_rank(&self, lane: usize) -> u32 {
        debug_assert!(self.lane_is_leaf(lane));
        self.child[lane] & !LEAF_BIT
    }

    /// Squared distances from `q` to all four lane boxes at once.
    ///
    /// Written as fixed-width loops over the transposed corners so the
    /// compiler lowers them to SIMD lanes; empty lanes come out as `+inf`.
    /// For a leaf lane (degenerate box) the result equals
    /// `q.squared_distance(point)` bit-for-bit: the per-dimension gap is
    /// `|q_d − p_d|`, whose square and ascending-dimension accumulation
    /// match [`Point::squared_distance`] exactly.
    #[inline]
    pub fn lane_distances_sq(&self, q: &Point<D>) -> [Scalar; WIDTH] {
        let mut acc = [0.0 as Scalar; WIDTH];
        for d in 0..D {
            let qd = q[d];
            let lo = &self.lo[d];
            let hi = &self.hi[d];
            for k in 0..WIDTH {
                let gap = (lo[k] - qd).max(qd - hi[k]).max(0.0);
                acc[k] += gap * gap;
            }
        }
        acc
    }
}

/// The 4-wide rope-linked collapse of a [`Bvh`], nodes in preorder
/// (node 0 is the root; a node's first descendant is `w + 1`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WideBvh<const D: usize> {
    nodes: Vec<WideNode<D>>,
}

impl<const D: usize> WideBvh<D> {
    /// Collapses the binary hierarchy. Deterministic: the wide tree is a
    /// pure function of the binary structure, so all backends build
    /// identical ropes.
    ///
    /// Runs eagerly (and serially) inside every [`Bvh`] construction — a
    /// deliberate trade: the collapse backs the *default* walker of every
    /// workload (EMST kernel, bulk/k-NN, shard merge), it is a small
    /// sort-dominated fraction of the timed `tree` phase, and building it
    /// here keeps the cost visible to the phase timings instead of leaking
    /// into the first query. Only the `Traversal::Stack` ablation pays for
    /// a structure it does not traverse.
    pub fn collapse(bvh: &Bvh<D>) -> Self {
        // Preorder DFS; parents are created before their children, so
        // escape resolution below can run as one ascending pass.
        struct Pending {
            bin: NodeId,
            parent: u32,
            slot: usize,
        }
        let mut nodes: Vec<WideNode<D>> = Vec::with_capacity(bvh.num_leaves() / 2 + 1);
        let mut stack = vec![Pending { bin: bvh.root(), parent: u32::MAX, slot: 0 }];
        let mut lanes = [INVALID_NODE; WIDTH];
        while let Some(p) = stack.pop() {
            let id = nodes.len() as u32;
            if p.parent != u32::MAX {
                nodes[p.parent as usize].child[p.slot] = id;
            }
            let num_lanes = lanes_of(bvh, p.bin, &mut lanes);
            let mut node = WideNode::empty();
            let self_bb = bvh.node_aabb(p.bin);
            for d in 0..D {
                node.self_lo[d] = self_bb.min[d];
                node.self_hi[d] = self_bb.max[d];
            }
            node.self_bin = p.bin;
            for (k, &lane_bin) in lanes[..num_lanes].iter().enumerate() {
                let bb = bvh.node_aabb(lane_bin);
                for d in 0..D {
                    node.lo[d][k] = bb.min[d];
                    node.hi[d][k] = bb.max[d];
                }
                node.bin[k] = lane_bin;
                node.occupied |= 1 << k;
                if bvh.is_leaf(lane_bin) {
                    node.child[k] = LEAF_BIT | bvh.leaf_rank(lane_bin);
                }
            }
            nodes.push(node);
            for (k, &lane_bin) in lanes[..num_lanes].iter().enumerate().rev() {
                if !bvh.is_leaf(lane_bin) {
                    stack.push(Pending { bin: lane_bin, parent: id, slot: k });
                }
            }
        }

        // Ropes: a node's internal lanes chain to each other in lane order;
        // the last one escapes to wherever the node itself escapes.
        for w in 0..nodes.len() {
            let escape = nodes[w].escape;
            let mut prev: Option<u32> = None;
            for k in 0..WIDTH {
                let c = nodes[w].child[k];
                if c == EMPTY_LANE || c & LEAF_BIT != 0 {
                    continue;
                }
                if let Some(p) = prev {
                    nodes[p as usize].escape = c;
                }
                prev = Some(c);
            }
            if let Some(p) = prev {
                nodes[p as usize].escape = escape;
            }
        }
        Self { nodes }
    }

    /// All collapsed nodes, in preorder.
    #[inline]
    pub fn nodes(&self) -> &[WideNode<D>] {
        &self.nodes
    }

    /// Reassembles a collapse from previously serialized nodes (see
    /// [`crate::serial`]); the caller is responsible for the nodes being a
    /// faithful preorder collapse of the binary tree they ride with.
    pub(crate) fn from_nodes(nodes: Vec<WideNode<D>>) -> Self {
        Self { nodes }
    }

    /// Number of collapsed nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Heap bytes held by the collapsed node array — the wide tree's share
    /// of [`crate::Bvh::resident_bytes`]. Like the binary hierarchy, the
    /// collapse is deterministic, so a cache that spills a shard to disk
    /// needs to persist only the points to reload an identical handle.
    #[inline]
    pub fn resident_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<WideNode<D>>()
    }

    /// Structural invariants, cross-checked against the binary tree `bvh`
    /// this collapse was built from; used by tests and `Bvh::validate`.
    pub fn validate(&self, bvh: &Bvh<D>) -> Result<(), String> {
        let mut seen_leaves = vec![false; bvh.num_leaves()];
        let mut entered = vec![false; self.nodes.len()];
        // Follow preorder: every node must be reachable as some lane (or be
        // the root), every leaf rank must appear exactly once, lane boxes
        // must match the binary node's box.
        for (w, node) in self.nodes.iter().enumerate() {
            if node.escape != INVALID_NODE && node.escape as usize >= self.nodes.len() {
                return Err(format!("wide node {w} escape out of range"));
            }
            if node.self_bin == INVALID_NODE {
                return Err(format!("wide node {w} has no binary id"));
            }
            let self_bb = bvh.node_aabb(node.self_bin);
            for d in 0..D {
                if node.self_lo[d] != self_bb.min[d] || node.self_hi[d] != self_bb.max[d] {
                    return Err(format!("wide node {w} self box mismatch"));
                }
            }
            for k in 0..WIDTH {
                let c = node.child[k];
                if (node.occupied >> k) & 1 != u32::from(c != EMPTY_LANE) {
                    return Err(format!("wide node {w} occupied mask wrong at lane {k}"));
                }
                if c == EMPTY_LANE {
                    if node.bin[k] != INVALID_NODE {
                        return Err(format!("wide node {w} lane {k} empty but has a bin id"));
                    }
                    continue;
                }
                let bin = node.bin[k];
                let bb = bvh.node_aabb(bin);
                for d in 0..D {
                    if node.lo[d][k] != bb.min[d] || node.hi[d][k] != bb.max[d] {
                        return Err(format!("wide node {w} lane {k} box mismatch"));
                    }
                }
                if c & LEAF_BIT != 0 {
                    let rank = (c & !LEAF_BIT) as usize;
                    if !bvh.is_leaf(bin) || bvh.leaf_rank(bin) as usize != rank {
                        return Err(format!("wide node {w} lane {k} leaf/bin mismatch"));
                    }
                    if seen_leaves[rank] {
                        return Err(format!("leaf rank {rank} in two wide lanes"));
                    }
                    seen_leaves[rank] = true;
                } else {
                    if bvh.is_leaf(bin) {
                        return Err(format!("wide node {w} lane {k} internal ref to a leaf"));
                    }
                    if entered[c as usize] {
                        return Err(format!("wide node {c} referenced twice"));
                    }
                    entered[c as usize] = true;
                }
            }
        }
        if !seen_leaves.iter().all(|&s| s) {
            return Err("not every leaf rank appears in a wide lane".into());
        }
        if let Some(w) = (1..self.nodes.len()).find(|&w| !entered[w]) {
            return Err(format!("wide node {w} unreachable"));
        }
        Ok(())
    }
}

/// Writes the lane subtree roots of binary node `bin` into `lanes` and
/// returns how many there are: the grandchildren of `bin`, with leaf
/// children passing through (and the node itself when it is a leaf, which
/// only the single-point tree's root can be).
fn lanes_of<const D: usize>(bvh: &Bvh<D>, bin: NodeId, lanes: &mut [NodeId; WIDTH]) -> usize {
    if bvh.is_leaf(bin) {
        lanes[0] = bin;
        return 1;
    }
    let mut cnt = 0;
    for c in bvh.children_of(bin) {
        if bvh.is_leaf(c) {
            lanes[cnt] = c;
            cnt += 1;
        } else {
            for g in bvh.children_of(c) {
                lanes[cnt] = g;
                cnt += 1;
            }
        }
    }
    cnt
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_exec::{Serial, Threads};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points_2d(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(-1.0f32..1.0), rng.random_range(-1.0f32..1.0)]))
            .collect()
    }

    #[test]
    fn single_point_collapse_is_one_leaf_lane() {
        let bvh = Bvh::build(&Serial, &[Point::new([1.0f32, 2.0])]);
        let wide = bvh.wide();
        assert_eq!(wide.num_nodes(), 1);
        let root = &wide.nodes()[0];
        assert!(root.lane_is_leaf(0));
        assert_eq!(root.lane_rank(0), 0);
        assert_eq!(root.child[1], EMPTY_LANE);
        assert_eq!(root.escape, INVALID_NODE);
        wide.validate(&bvh).unwrap();
    }

    #[test]
    fn two_and_three_point_trees_collapse_into_the_root() {
        for n in [2usize, 3] {
            let bvh = Bvh::build(&Serial, &random_points_2d(n, n as u64));
            assert_eq!(bvh.wide().num_nodes(), 1, "n={n}");
            bvh.wide().validate(&bvh).unwrap();
        }
    }

    #[test]
    fn collapse_roughly_halves_depth_worth_of_nodes() {
        let bvh = Bvh::build(&Serial, &random_points_2d(4096, 9));
        let wide = bvh.wide();
        wide.validate(&bvh).unwrap();
        // A 4-ary collapse of a ~balanced binary tree keeps roughly half of
        // the internal nodes (a third in the perfect-tree limit).
        assert!(wide.num_nodes() * 3 < bvh.num_internal() * 2);
    }

    #[test]
    fn lane_distances_match_scalar_boxes_and_points() {
        let pts = random_points_2d(500, 4);
        let bvh = Bvh::build(&Serial, &pts);
        let queries = random_points_2d(20, 5);
        for q in &queries {
            for node in bvh.wide().nodes() {
                let d = node.lane_distances_sq(q);
                for (k, &dk) in d.iter().enumerate() {
                    if node.child[k] == EMPTY_LANE {
                        assert_eq!(dk, Scalar::INFINITY);
                    } else {
                        let expect = bvh.node_distance_sq(node.bin[k], q);
                        assert_eq!(dk, expect, "lane {k}");
                    }
                }
            }
        }
    }

    #[test]
    fn rebuild_from_same_points_is_bit_identical_across_backends() {
        // The resident-shard cache relies on this: evicting a shard spills
        // only its points, and re-admission rebuilds the exact same handle.
        let pts = random_points_2d(700, 12);
        let a = Bvh::build(&Serial, &pts);
        let b = Bvh::build(&Threads, &pts);
        assert_eq!(a.wide(), b.wide());
        assert_eq!(a.morton_order(), b.morton_order());
        assert!(a.resident_bytes() > 0);
        assert_eq!(a.resident_bytes(), b.resident_bytes());
        assert!(a.wide().resident_bytes() <= a.resident_bytes());
    }

    #[test]
    fn ropes_cover_every_node_exactly_once() {
        // A radius-infinite rope walk that never descends-early must visit
        // each wide node exactly once: descend to the first internal lane,
        // escape when there is none.
        let bvh = Bvh::build(&Threads, &random_points_2d(1000, 6));
        let wide = bvh.wide();
        let mut visited = vec![false; wide.num_nodes()];
        let mut cur = 0u32;
        let mut steps = 0usize;
        while cur != INVALID_NODE {
            assert!(!visited[cur as usize], "node {cur} visited twice");
            visited[cur as usize] = true;
            steps += 1;
            assert!(steps <= wide.num_nodes(), "rope walk does not terminate");
            let node = &wide.nodes()[cur as usize];
            let descend =
                (0..WIDTH).map(|k| node.child[k]).find(|&c| c != EMPTY_LANE && c & LEAF_BIT == 0);
            cur = descend.unwrap_or(node.escape);
        }
        assert!(visited.iter().all(|&v| v), "rope walk misses nodes");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn collapse_validates_on_random_and_duplicate_heavy_sets(
            n in 1usize..200, seed in 0u64..500, duplicates in 0usize..3
        ) {
            let mut pts = random_points_2d(n, seed);
            for _ in 0..duplicates {
                let p = pts[0];
                pts.extend(std::iter::repeat_n(p, 7));
            }
            let bvh = Bvh::build(&Threads, &pts);
            prop_assert!(bvh.wide().validate(&bvh).is_ok(), "{:?}", bvh.wide().validate(&bvh));
        }
    }
}
