//! Linear bounding volume hierarchy (LBVH).
//!
//! A from-scratch reimplementation of the tree at the heart of ArborX — the
//! geometric search library the paper builds on. The construction follows
//! Karras (2012) as refined by Apetrei (2014):
//!
//! 1. points are assigned Morton codes on the scene bounding box and sorted
//!    along the Z-order curve (ties broken by index, so keys are unique);
//! 2. the binary radix hierarchy over the sorted keys is built **bottom-up
//!    and fully in parallel**: every leaf walks toward the root, the first
//!    thread to reach an internal node records its half-range and stops, the
//!    second merges the children's bounding boxes and continues;
//! 3. the hierarchy is stored structure-of-arrays (contiguous `children`,
//!    `bounds` and `parent` arrays) and additionally **collapsed into a
//!    4-wide rope-linked tree** ([`WideBvh`]) whose child-box tests
//!    auto-vectorize;
//! 4. queries run one traversal per thread (Algorithm 2 of the paper):
//!    either the seed **stack-based top-down walk** with distance-ordered
//!    descent ([`Bvh::nearest_with`], kept for ablation) or the default
//!    **stackless rope traversal** ([`Bvh::nearest_stackless`]) — pure
//!    index chasing with no per-thread stack, the GPU-faithful form.
//!
//! Given `n` points the tree has `n` leaves and `n − 1` internal nodes
//! (2n−1 total), and leaves appear in Morton order — the property the
//! paper's Optimization 2 (curve-neighbour upper bounds) relies on.
//!
//! The traversal entry points are deliberately generic: the single-tree
//! Borůvka algorithm of `emst-core` injects its component-skip predicate
//! (Optimization 1) and its metric through [`Bvh::nearest`], selecting the
//! walker with [`Traversal`].

pub mod build;
pub mod bulk;
pub mod node;
pub mod quality;
pub mod serial;
pub mod traverse;
pub mod wide;

pub use build::{Bvh, MortonResolution};
pub use node::{NodeId, INVALID_NODE};
pub use quality::TreeQuality;
pub use serial::DecodeError;
pub use traverse::{NearestHit, Traversal, TraversalStats};
pub use wide::{WideBvh, WideNode};
