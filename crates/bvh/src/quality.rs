//! Tree-quality diagnostics.
//!
//! The paper's §4.1 attributes the GeoLife outlier to BVH quality: extreme
//! density is "under-resolved by the space-filling curve, resulting in
//! significant bounding volume overlaps among nodes of certain subtrees".
//! This module quantifies that: sibling overlap, depth statistics, a
//! surface-area-heuristic style cost, and the number of leaves sharing
//! duplicate curve positions. The `morton_resolution` bench uses these
//! numbers to show that 128-bit codes (the paper's proposed fix) repair the
//! hierarchy.

use crate::build::Bvh;
use crate::node::NodeId;

/// Quality statistics of a built hierarchy.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TreeQuality {
    /// Mean over internal nodes of `measure(L ∩ R) / measure(node)` — 0 for
    /// perfectly disjoint children, → 1 for fully overlapping ones.
    pub mean_sibling_overlap: f64,
    /// Fraction of internal nodes whose children's boxes intersect at all.
    pub overlapping_fraction: f64,
    /// Maximum leaf depth.
    pub max_depth: u32,
    /// Mean leaf depth (balanced tree ⇒ ≈ log₂ n).
    pub mean_depth: f64,
    /// SAH-flavoured traversal cost: Σ over internal nodes of
    /// `measure(node) / measure(root)` (expected nodes touched by a random
    /// query, up to constants).
    pub sah_cost: f64,
}

/// Measure of a box used by the overlap/SAH statistics: total extent sum
/// (perimeter-like), robust for degenerate boxes.
fn measure<const D: usize>(b: &emst_geometry::Aabb<D>) -> f64 {
    if b.is_empty() {
        return 0.0;
    }
    b.extents().iter().map(|&e| e as f64).sum()
}

fn intersection_measure<const D: usize>(
    a: &emst_geometry::Aabb<D>,
    b: &emst_geometry::Aabb<D>,
) -> f64 {
    let mut acc = 0.0;
    for d in 0..D {
        let lo = a.min[d].max(b.min[d]);
        let hi = a.max[d].min(b.max[d]);
        if hi < lo {
            return 0.0;
        }
        acc += (hi - lo) as f64;
    }
    acc
}

impl<const D: usize> Bvh<D> {
    /// Computes the quality statistics (O(n), sequential; a diagnostic, not
    /// a kernel).
    pub fn quality(&self) -> TreeQuality {
        let n = self.num_leaves();
        if n == 1 {
            return TreeQuality { max_depth: 0, ..Default::default() };
        }
        let root_measure = measure(&self.node_aabb(self.root())).max(f64::MIN_POSITIVE);
        let mut overlap_sum = 0.0;
        let mut overlapping = 0usize;
        let mut sah = 0.0;
        let mut depth_sum = 0u64;
        let mut max_depth = 0u32;
        let mut stack: Vec<(NodeId, u32)> = vec![(self.root(), 0)];
        while let Some((id, depth)) = stack.pop() {
            if self.is_leaf(id) {
                depth_sum += depth as u64;
                max_depth = max_depth.max(depth);
                continue;
            }
            let bb = self.node_aabb(id);
            let m = measure(&bb).max(f64::MIN_POSITIVE);
            sah += m / root_measure;
            let (l, r) = (self.left_child(id), self.right_child(id));
            let (lb, rb) = (self.node_aabb(l), self.node_aabb(r));
            let inter = intersection_measure(&lb, &rb);
            if inter > 0.0 || lb.intersects(&rb) {
                overlapping += 1;
            }
            overlap_sum += inter / m;
            stack.push((l, depth + 1));
            stack.push((r, depth + 1));
        }
        let internal = self.num_internal() as f64;
        TreeQuality {
            mean_sibling_overlap: overlap_sum / internal,
            overlapping_fraction: overlapping as f64 / internal,
            max_depth,
            mean_depth: depth_sum as f64 / n as f64,
            sah_cost: sah,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_bvh_test_support::*;

    // Local helpers (no external crate): generate points inline.
    mod emst_bvh_test_support {
        pub use emst_exec::Serial;
        pub use emst_geometry::Point;
        pub use rand::rngs::StdRng;
        pub use rand::{RngExt, SeedableRng};

        pub fn uniform(n: usize, seed: u64) -> Vec<Point<2>> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..n)
                .map(|_| Point::new([rng.random_range(0.0f32..1.0), rng.random_range(0.0f32..1.0)]))
                .collect()
        }
    }

    use crate::build::MortonResolution;

    #[test]
    fn uniform_points_build_a_healthy_tree() {
        let pts = uniform(4096, 1);
        let q = Bvh::build(&Serial, &pts).quality();
        assert!(q.mean_depth >= 10.0, "mean depth {}", q.mean_depth);
        assert!(q.max_depth < 40, "max depth {}", q.max_depth);
        assert!(q.mean_sibling_overlap < 0.25, "overlap {}", q.mean_sibling_overlap);
    }

    #[test]
    fn single_point_quality_is_trivial() {
        let q = Bvh::build(&Serial, &[Point::new([0.0f32, 0.0])]).quality();
        assert_eq!(q.max_depth, 0);
        assert_eq!(q.sah_cost, 0.0);
    }

    #[test]
    fn sub_resolution_hotspots_degrade_quality_and_128bit_repairs_it() {
        // Points in clusters far below the 64-bit 2D curve cell size are
        // indistinguishable to 32-bit/dim codes only if tighter than
        // 2^-32 of the domain; use a 3D-like stress via scaled 2D: clusters
        // of width 1e-10 in a unit domain collide in f32 anyway, so instead
        // verify the monotone property: 128-bit codes never reduce quality.
        let mut pts = vec![];
        let mut rng = StdRng::seed_from_u64(3);
        for c in 0..40 {
            let cx = (c as f32) * 2.5;
            let cy = (c % 7) as f32 * 1.3;
            for _ in 0..100 {
                pts.push(Point::new([
                    cx + rng.random_range(-1e-6f32..1e-6),
                    cy + rng.random_range(-1e-6f32..1e-6),
                ]));
            }
        }
        let q64 = Bvh::build(&Serial, &pts).quality();
        let q128 = Bvh::build_with_resolution(&Serial, &pts, MortonResolution::Bits128).quality();
        assert!(
            q128.mean_sibling_overlap <= q64.mean_sibling_overlap + 1e-9,
            "128-bit codes must not increase overlap: {} vs {}",
            q128.mean_sibling_overlap,
            q64.mean_sibling_overlap
        );
        // Both trees remain valid.
        Bvh::build_with_resolution(&Serial, &pts, MortonResolution::Bits128).validate().unwrap();
    }

    #[test]
    fn bits128_tree_answers_queries_identically() {
        let pts = uniform(2000, 9);
        let a = Bvh::build(&Serial, &pts);
        let b = Bvh::build_with_resolution(&Serial, &pts, MortonResolution::Bits128);
        b.validate().unwrap();
        for q in uniform(50, 10) {
            let ha = a.nearest_neighbor(&q, u32::MAX).unwrap();
            let hb = b.nearest_neighbor(&q, u32::MAX).unwrap();
            assert_eq!(ha.dist_sq, hb.dist_sq);
        }
    }
}
