//! Exact binary serialization of a built [`Bvh`] — the artifact-restore
//! half of the serving layer's durable spill format.
//!
//! Construction is a deterministic pure function of the point sequence, so
//! a spilled cloud *can* always be rebuilt; this module makes the cheaper
//! path possible: persist the built storage (binary SoA arrays plus the
//! 4-wide collapse) and reload it as a verified read. The encoding is the
//! in-memory representation written field by field in little-endian order —
//! [`Bvh::deserialize`] reproduces a bit-identical hierarchy, which the
//! round-trip tests assert via [`WideBvh`]'s `PartialEq`.
//!
//! Integrity is layered: callers wrap the blob in a checksummed section
//! (the serve spill format), and the decoder itself validates every length
//! and node-id range so bytes that lie about their structure yield a typed
//! [`DecodeError`], never a panic or out-of-bounds index downstream. The
//! decoder is the trust boundary — after `Ok`, traversals may index freely.

use emst_geometry::{Aabb, Point, Scalar};

use crate::build::Bvh;
use crate::node::{Layout, INVALID_NODE};
use crate::wide::{WideBvh, WideNode, WIDTH};

/// Format version written ahead of every blob; bumped on layout changes so
/// stale artifact bytes fail decode (and the caller falls back to rebuild)
/// instead of being misread.
const VERSION: u32 = 1;

/// A structurally invalid or truncated [`Bvh`] blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub &'static str);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bvh blob: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: Scalar) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_point<const D: usize>(out: &mut Vec<u8>, p: &Point<D>) {
    for d in 0..D {
        put_f32(out, p[d]);
    }
}

/// Little-endian cursor over a blob; every read is length-checked.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError("length overflow"))?;
        if end > self.bytes.len() {
            return Err(DecodeError("truncated"));
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<Scalar, DecodeError> {
        Ok(Scalar::from_bits(u32::from_le_bytes(self.take(4)?.try_into().unwrap())))
    }

    fn point<const D: usize>(&mut self) -> Result<Point<D>, DecodeError> {
        let mut coords = [0.0 as Scalar; D];
        for c in coords.iter_mut() {
            *c = self.f32()?;
        }
        Ok(Point::new(coords))
    }

    fn len(&mut self, cap: usize, what: &'static str) -> Result<usize, DecodeError> {
        let v = self.u64()?;
        if v > cap as u64 {
            return Err(DecodeError(what));
        }
        Ok(v as usize)
    }

    fn done(&self) -> Result<(), DecodeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(DecodeError("trailing bytes"))
        }
    }
}

impl<const D: usize> Bvh<D> {
    /// Appends the exact binary encoding of this hierarchy to `out`. The
    /// inverse is [`Bvh::deserialize`]; round-trips are bit-identical.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        let n = self.layout.n;
        put_u32(out, VERSION);
        put_u64(out, n as u64);
        put_u32(out, self.root);
        put_point(out, &self.scene.min);
        put_point(out, &self.scene.max);
        for p in &self.leaf_points {
            put_point(out, p);
        }
        for &o in &self.order {
            put_u32(out, o);
        }
        for &[l, r] in &self.children {
            put_u32(out, l);
            put_u32(out, r);
        }
        for &p in &self.parent {
            put_u32(out, p);
        }
        for bb in &self.bounds {
            put_point(out, &bb.min);
            put_point(out, &bb.max);
        }
        put_u64(out, self.wide.nodes().len() as u64);
        for w in self.wide.nodes() {
            for d in 0..D {
                for k in 0..WIDTH {
                    put_f32(out, w.lo[d][k]);
                }
            }
            for d in 0..D {
                for k in 0..WIDTH {
                    put_f32(out, w.hi[d][k]);
                }
            }
            for d in 0..D {
                put_f32(out, w.self_lo[d]);
            }
            for d in 0..D {
                put_f32(out, w.self_hi[d]);
            }
            put_u32(out, w.self_bin);
            put_u32(out, w.escape);
            put_u32(out, w.occupied);
            for k in 0..WIDTH {
                put_u32(out, w.child[k]);
            }
            for k in 0..WIDTH {
                put_u32(out, w.bin[k]);
            }
        }
    }

    /// Decodes a blob produced by [`Bvh::serialize_into`], validating every
    /// length and node-id range so no later traversal can index out of
    /// bounds. `bytes` must be exactly one blob (no trailing data).
    pub fn deserialize(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        if r.u32()? != VERSION {
            return Err(DecodeError("unknown version"));
        }
        // Cap `n` by what the blob could possibly hold (each leaf costs at
        // least a point), so a lying header cannot drive huge allocations.
        let n = r.len(bytes.len(), "implausible leaf count")?;
        if n == 0 {
            return Err(DecodeError("zero leaves"));
        }
        let layout = Layout { n };
        let node_count = layout.node_count() as u32;
        let ni = layout.internal_count();
        let root = r.u32()?;
        if root >= node_count {
            return Err(DecodeError("root out of range"));
        }
        let scene = Aabb { min: r.point::<D>()?, max: r.point::<D>()? };
        let mut leaf_points = Vec::with_capacity(n);
        for _ in 0..n {
            leaf_points.push(r.point::<D>()?);
        }
        let mut order = Vec::with_capacity(n);
        for _ in 0..n {
            let o = r.u32()?;
            if o >= n as u32 {
                return Err(DecodeError("morton order entry out of range"));
            }
            order.push(o);
        }
        let mut children = Vec::with_capacity(ni);
        for _ in 0..ni {
            let l = r.u32()?;
            let rr = r.u32()?;
            if l >= node_count || rr >= node_count {
                return Err(DecodeError("child id out of range"));
            }
            children.push([l, rr]);
        }
        let mut parent = Vec::with_capacity(node_count as usize);
        for _ in 0..node_count {
            let p = r.u32()?;
            if p != INVALID_NODE && p >= node_count {
                return Err(DecodeError("parent id out of range"));
            }
            parent.push(p);
        }
        let mut bounds = Vec::with_capacity(ni);
        for _ in 0..ni {
            bounds.push(Aabb { min: r.point::<D>()?, max: r.point::<D>()? });
        }
        let num_wide = r.len(bytes.len(), "implausible wide-node count")? as u32;
        let mut nodes: Vec<WideNode<D>> = Vec::with_capacity(num_wide as usize);
        for _ in 0..num_wide {
            let mut lo = [[0.0 as Scalar; WIDTH]; D];
            let mut hi = [[0.0 as Scalar; WIDTH]; D];
            for row in lo.iter_mut() {
                for v in row.iter_mut() {
                    *v = r.f32()?;
                }
            }
            for row in hi.iter_mut() {
                for v in row.iter_mut() {
                    *v = r.f32()?;
                }
            }
            let mut self_lo = [0.0 as Scalar; D];
            let mut self_hi = [0.0 as Scalar; D];
            for v in self_lo.iter_mut() {
                *v = r.f32()?;
            }
            for v in self_hi.iter_mut() {
                *v = r.f32()?;
            }
            let self_bin = r.u32()?;
            let escape = r.u32()?;
            let occupied = r.u32()?;
            if self_bin >= node_count || (escape != INVALID_NODE && escape >= num_wide) {
                return Err(DecodeError("wide link out of range"));
            }
            let mut child = [0u32; WIDTH];
            let mut bin = [0u32; WIDTH];
            for c in child.iter_mut() {
                *c = r.u32()?;
            }
            for b in bin.iter_mut() {
                *b = r.u32()?;
            }
            const LEAF_BIT: u32 = 1 << 31;
            for k in 0..WIDTH {
                let c = child[k];
                let ok = c == u32::MAX
                    || (c & LEAF_BIT != 0 && (c & !LEAF_BIT) < n as u32)
                    || (c & LEAF_BIT == 0 && c < num_wide);
                if !ok || (bin[k] != INVALID_NODE && bin[k] >= node_count) {
                    return Err(DecodeError("wide lane out of range"));
                }
            }
            nodes.push(WideNode {
                lo,
                hi,
                self_lo,
                self_hi,
                self_bin,
                escape,
                occupied,
                child,
                bin,
            });
        }
        r.done()?;
        Ok(Self {
            layout,
            scene,
            leaf_points,
            order,
            children,
            parent,
            bounds,
            wide: WideBvh::from_nodes(nodes),
            root,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_exec::Serial;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points_2d(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(-1.0f32..1.0), rng.random_range(-1.0f32..1.0)]))
            .collect()
    }

    #[test]
    fn round_trip_is_bit_identical() {
        for n in [1usize, 2, 5, 333] {
            let pts = random_points_2d(n, 7);
            let bvh = Bvh::build(&Serial, &pts);
            let mut blob = vec![];
            bvh.serialize_into(&mut blob);
            let back = Bvh::<2>::deserialize(&blob).unwrap();
            assert_eq!(back.morton_order(), bvh.morton_order());
            assert_eq!(back.leaf_points(), bvh.leaf_points());
            assert_eq!(back.root(), bvh.root());
            assert_eq!(back.parents(), bvh.parents());
            assert_eq!(back.wide(), bvh.wide(), "wide collapse must round-trip exactly");
            back.validate().unwrap();
            // And re-serializing reproduces the same bytes.
            let mut blob2 = vec![];
            back.serialize_into(&mut blob2);
            assert_eq!(blob, blob2);
        }
    }

    #[test]
    fn truncated_and_corrupt_blobs_are_typed_errors_not_panics() {
        let pts = random_points_2d(60, 9);
        let bvh = Bvh::build(&Serial, &pts);
        let mut blob = vec![];
        bvh.serialize_into(&mut blob);
        // Every truncation point decodes to an error.
        for cut in [0usize, 3, 4, 11, blob.len() / 2, blob.len() - 1] {
            assert!(Bvh::<2>::deserialize(&blob[..cut]).is_err(), "cut={cut}");
        }
        // Trailing garbage is rejected.
        let mut long = blob.clone();
        long.push(0);
        assert!(Bvh::<2>::deserialize(&long).is_err());
        // A lying leaf count cannot cause a huge allocation or a panic.
        let mut lying = blob.clone();
        lying[4..12].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Bvh::<2>::deserialize(&lying).is_err());
        // An out-of-range node id is caught at decode time.
        let mut bad_root = blob.clone();
        bad_root[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = Bvh::<2>::deserialize(&bad_root);
        assert!(err.is_err());
    }
}
