//! Node identifiers and layout conventions.
//!
//! For `n` leaves the tree stores `n − 1` internal nodes and `n` leaves in
//! one id space:
//!
//! - ids `0 .. n-1` are **internal** nodes (id = Apetrei split position);
//! - ids `n-1 .. 2n-1` are **leaves**; leaf id `n-1 + r` holds the point of
//!   Morton rank `r`.
//!
//! With `n == 1` there are no internal nodes and the root is the single leaf
//! (id `0`).

/// A node identifier inside one [`crate::Bvh`].
pub type NodeId = u32;

/// Sentinel for "no node" (the root's parent).
pub const INVALID_NODE: NodeId = u32::MAX;

/// Compile-time-ish helpers tying ids, ranks and leaf counts together.
#[derive(Clone, Copy, Debug)]
pub struct Layout {
    /// Number of leaves (== number of points).
    pub n: usize,
}

impl Layout {
    /// Number of internal nodes.
    #[inline]
    pub fn internal_count(&self) -> usize {
        self.n.saturating_sub(1)
    }

    /// Total node count (`2n − 1`, or 1 when `n == 1`).
    #[inline]
    pub fn node_count(&self) -> usize {
        2 * self.n - 1
    }

    /// True when `id` denotes a leaf.
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        (id as usize) >= self.internal_count()
    }

    /// Morton rank of a leaf id.
    #[inline]
    pub fn leaf_rank(&self, id: NodeId) -> u32 {
        debug_assert!(self.is_leaf(id));
        id - self.internal_count() as u32
    }

    /// Leaf id of a Morton rank.
    #[inline]
    pub fn leaf_id(&self, rank: u32) -> NodeId {
        self.internal_count() as u32 + rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_partitions_ids() {
        let l = Layout { n: 5 };
        assert_eq!(l.internal_count(), 4);
        assert_eq!(l.node_count(), 9);
        assert!(!l.is_leaf(0));
        assert!(!l.is_leaf(3));
        assert!(l.is_leaf(4));
        assert!(l.is_leaf(8));
        assert_eq!(l.leaf_rank(4), 0);
        assert_eq!(l.leaf_rank(8), 4);
        assert_eq!(l.leaf_id(2), 6);
    }

    #[test]
    fn single_point_layout_has_leaf_root() {
        let l = Layout { n: 1 };
        assert_eq!(l.internal_count(), 0);
        assert_eq!(l.node_count(), 1);
        assert!(l.is_leaf(0));
        assert_eq!(l.leaf_rank(0), 0);
    }
}
