//! Fully parallel bottom-up LBVH construction (Apetrei 2014).
//!
//! The hierarchy over the Morton-sorted leaves is the Cartesian tree of the
//! *boundary deltas*: boundary `i` (between sorted leaves `i` and `i+1`)
//! carries the comparable value
//!
//! ```text
//! delta(i) = (code[i] ^ code[i+1],  i ^ (i+1),  i)
//! ```
//!
//! compared lexicographically. A larger XOR means a shorter common prefix,
//! so the maximum delta in a range is where the range splits. The index-XOR
//! component is Karras's duplicate-key fix (it keeps runs of identical
//! Morton codes balanced instead of degenerating into chains), and the
//! trailing position makes the order strict, which the bottom-up
//! construction requires for consistency.
//!
//! Every leaf starts one climbing thread. A node with range `[f, l]` attaches
//! to internal node `l` as a left child when `delta(l) < delta(f-1)`, and to
//! `f-1` as a right child otherwise. The first thread to reach an internal
//! node records its half of the range and dies; the second (synchronized by
//! an `AcqRel` flag) merges the bounding boxes and keeps climbing — the same
//! kernel shape the paper reuses for `reduceLabels`.

use std::sync::atomic::{AtomicU32, Ordering};

use emst_exec::{ExecSpace, SyncUnsafeSlice};
use emst_geometry::{Aabb, Point, Scalar};
use emst_morton::MortonEncoder;

use crate::node::{Layout, NodeId, INVALID_NODE};
use crate::wide::WideBvh;

/// A linear bounding volume hierarchy over a point set.
///
/// See the crate docs for the id layout: internal nodes are `0..n-1`, leaves
/// are `n-1..2n-1` in Morton order.
///
/// Storage is structure-of-arrays: one contiguous `children` array (both
/// child ids of a node share a slot, so a traversal step is one load), one
/// contiguous `bounds` array, and one `parent` array — no per-node
/// allocations. Construction also collapses the binary hierarchy into the
/// 4-wide rope-linked [`WideBvh`] that backs the default stackless
/// traversal ([`Bvh::nearest_stackless`]).
#[derive(Clone, Debug)]
pub struct Bvh<const D: usize> {
    pub(crate) layout: Layout,
    pub(crate) scene: Aabb<D>,
    /// Points permuted into Morton order (leaf rank -> point).
    pub(crate) leaf_points: Vec<Point<D>>,
    /// Morton rank -> original point index.
    pub(crate) order: Vec<u32>,
    /// Both children of each internal node (`[left, right]`).
    pub(crate) children: Vec<[NodeId; 2]>,
    /// Parent of every node (`INVALID_NODE` for the root).
    pub(crate) parent: Vec<NodeId>,
    /// Bounding boxes of the internal nodes.
    pub(crate) bounds: Vec<Aabb<D>>,
    /// The 4-wide collapsed form with rope/escape pointers.
    pub(crate) wide: WideBvh<D>,
    pub(crate) root: NodeId,
}

/// Z-curve resolution of the construction.
///
/// `Bits128` is the paper's §4.1 proposal for pathologically dense datasets
/// (GeoLife): when many points collapse onto one 64-bit Morton cell, the
/// hierarchy degenerates into heavily overlapping nodes; doubling the curve
/// resolution restores spatial discrimination.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MortonResolution {
    /// 64-bit codes: 32 bits/dim in 2D, 21 bits/dim in 3D (ArborX default).
    #[default]
    Bits64,
    /// 128-bit codes: 64 bits/dim in 2D, 42 bits/dim in 3D.
    Bits128,
}

/// Comparable boundary delta; see the module docs.
type Delta<C> = (C, u32, u32);

#[inline]
fn delta<C: MortonKey>(codes: &[C], i: isize) -> Delta<C> {
    let n_bounds = codes.len() as isize - 1;
    if i < 0 || i >= n_bounds {
        return (C::MAX, u32::MAX, u32::MAX);
    }
    let i = i as usize;
    (codes[i].xor(codes[i + 1]), (i as u32) ^ (i as u32 + 1), i as u32)
}

/// Abstraction over the two Morton code widths used by the construction.
pub trait MortonKey: Copy + Ord + Send + Sync + Default {
    /// The maximum key (sentinel for out-of-range boundaries).
    const MAX: Self;
    /// Bitwise XOR (numeric comparison of XORs orders by common prefix).
    fn xor(self, other: Self) -> Self;
}

impl MortonKey for u64 {
    const MAX: Self = u64::MAX;
    #[inline]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }
}

impl MortonKey for u128 {
    const MAX: Self = u128::MAX;
    #[inline]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }
}

impl<const D: usize> Bvh<D> {
    /// Builds the hierarchy on the given execution space with the default
    /// 64-bit Z-curve.
    ///
    /// Panics on an empty input (an EMST of zero points is ill-posed; the
    /// higher-level APIs check for this and return empty results instead).
    pub fn build<S: ExecSpace>(space: &S, points: &[Point<D>]) -> Self {
        Self::build_with_resolution(space, points, MortonResolution::Bits64)
    }

    /// Builds the hierarchy with an explicit Z-curve resolution.
    pub fn build_with_resolution<S: ExecSpace>(
        space: &S,
        points: &[Point<D>],
        resolution: MortonResolution,
    ) -> Self {
        let n = points.len();
        assert!(n > 0, "cannot build a BVH over zero points");

        // Scene bounding box (parallel reduction, as in ArborX).
        let scene = space.parallel_reduce(
            n,
            Aabb::empty(),
            |i| Aabb::from_point(points[i]),
            |a, b| a.union(&b),
        );
        let encoder = MortonEncoder::new(&scene);

        match resolution {
            MortonResolution::Bits64 => {
                let mut pairs: Vec<(u64, u32)> = vec![(0, 0); n];
                {
                    let out = SyncUnsafeSlice::new(&mut pairs);
                    space.parallel_for(n, |i| {
                        // SAFETY: one writer per index, read after the kernel.
                        unsafe { out.write(i, (encoder.encode_u64(&points[i]), i as u32)) };
                    });
                }
                space.sort_pairs(&mut pairs);
                Self::from_sorted(space, points, scene, &pairs)
            }
            MortonResolution::Bits128 => {
                let mut pairs: Vec<(u128, u32)> = vec![(0, 0); n];
                {
                    let out = SyncUnsafeSlice::new(&mut pairs);
                    space.parallel_for(n, |i| {
                        // SAFETY: one writer per index, read after the kernel.
                        unsafe { out.write(i, (encoder.encode_u128(&points[i]), i as u32)) };
                    });
                }
                space.sort_pairs_u128(&mut pairs);
                Self::from_sorted(space, points, scene, &pairs)
            }
        }
    }

    /// Shared construction tail: gather the sorted order and build the
    /// radix hierarchy bottom-up.
    fn from_sorted<S: ExecSpace, C: MortonKey>(
        space: &S,
        points: &[Point<D>],
        scene: Aabb<D>,
        pairs: &[(C, u32)],
    ) -> Self {
        let n = points.len();
        let mut order = vec![0u32; n];
        let mut leaf_points = vec![Point::origin(); n];
        let mut codes = vec![C::default(); n];
        {
            let order_s = SyncUnsafeSlice::new(&mut order);
            let pts_s = SyncUnsafeSlice::new(&mut leaf_points);
            let codes_s = SyncUnsafeSlice::new(&mut codes);
            space.parallel_for(n, |i| {
                let (code, idx) = pairs[i];
                // SAFETY: one writer per index, read only after the kernel.
                unsafe {
                    order_s.write(i, idx);
                    pts_s.write(i, points[idx as usize]);
                    codes_s.write(i, code);
                }
            });
        }

        let layout = Layout { n };
        if n == 1 {
            let mut bvh = Self {
                layout,
                scene,
                leaf_points,
                order,
                children: vec![],
                parent: vec![INVALID_NODE],
                bounds: vec![],
                wide: WideBvh::default(),
                root: 0,
            };
            bvh.wide = WideBvh::collapse(&bvh);
            return bvh;
        }

        let ni = n - 1;
        let flags: Vec<AtomicU32> = (0..ni).map(|_| AtomicU32::new(0)).collect();
        let children: Vec<[AtomicU32; 2]> =
            (0..ni).map(|_| [AtomicU32::new(INVALID_NODE), AtomicU32::new(INVALID_NODE)]).collect();
        let range_first: Vec<AtomicU32> = (0..ni).map(|_| AtomicU32::new(0)).collect();
        let range_last: Vec<AtomicU32> = (0..ni).map(|_| AtomicU32::new(0)).collect();
        let parent: Vec<AtomicU32> =
            (0..layout.node_count()).map(|_| AtomicU32::new(INVALID_NODE)).collect();
        let root = AtomicU32::new(INVALID_NODE);
        let mut internal_aabbs = vec![Aabb::empty(); ni];
        {
            let aabbs = SyncUnsafeSlice::new(&mut internal_aabbs);
            let codes = &codes;
            let leaf_points = &leaf_points;
            space.parallel_for(n, |i| {
                let mut node = layout.leaf_id(i as u32);
                let mut f = i;
                let mut l = i;
                let mut bb = Aabb::from_point(leaf_points[i]);
                loop {
                    if f == 0 && l == n - 1 {
                        root.store(node, Ordering::Relaxed);
                        break;
                    }
                    // Attach to the nearer boundary with the smaller delta.
                    let go_left_child = l < n - 1
                        && (f == 0 || delta(codes, l as isize) < delta(codes, f as isize - 1));
                    let p = if go_left_child { l } else { f - 1 };
                    if go_left_child {
                        children[p][0].store(node, Ordering::Relaxed);
                        range_first[p].store(f as u32, Ordering::Relaxed);
                    } else {
                        children[p][1].store(node, Ordering::Relaxed);
                        range_last[p].store(l as u32, Ordering::Relaxed);
                    }
                    parent[node as usize].store(p as u32, Ordering::Relaxed);
                    // First arriver dies; the release half of AcqRel makes our
                    // writes visible to the survivor's acquire.
                    if flags[p].fetch_add(1, Ordering::AcqRel) == 0 {
                        break;
                    }
                    // Survivor: the full range and both children are visible.
                    f = range_first[p].load(Ordering::Relaxed) as usize;
                    l = range_last[p].load(Ordering::Relaxed) as usize;
                    let sibling = if go_left_child {
                        children[p][1].load(Ordering::Relaxed)
                    } else {
                        children[p][0].load(Ordering::Relaxed)
                    };
                    let sibling_bb = if layout.is_leaf(sibling) {
                        Aabb::from_point(leaf_points[layout.leaf_rank(sibling) as usize])
                    } else {
                        // SAFETY: the sibling subtree finished before its
                        // climbing thread linked `sibling` into `p`, which
                        // happened before its fetch_add we synchronized with.
                        *unsafe { aabbs.get(sibling as usize) }
                    };
                    bb = bb.union(&sibling_bb);
                    // SAFETY: exactly one survivor writes node `p`, and every
                    // reader synchronizes through a later flag.
                    unsafe { aabbs.write(p, bb) };
                    node = p as u32;
                }
            });
        }

        let unwrap =
            |v: Vec<AtomicU32>| -> Vec<u32> { v.into_iter().map(AtomicU32::into_inner).collect() };
        let mut bvh = Self {
            layout,
            scene,
            leaf_points,
            order,
            children: children.into_iter().map(|[l, r]| [l.into_inner(), r.into_inner()]).collect(),
            parent: unwrap(parent),
            bounds: internal_aabbs,
            wide: WideBvh::default(),
            root: root.into_inner(),
        };
        bvh.wide = WideBvh::collapse(&bvh);
        bvh
    }

    /// Number of leaves (== number of points).
    #[inline]
    pub fn num_leaves(&self) -> usize {
        self.layout.n
    }

    /// Number of internal nodes (`n − 1`).
    #[inline]
    pub fn num_internal(&self) -> usize {
        self.layout.internal_count()
    }

    /// Total node count (`2n − 1`).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.layout.node_count()
    }

    /// The root node id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The scene bounding box.
    #[inline]
    pub fn scene(&self) -> &Aabb<D> {
        &self.scene
    }

    /// True when `id` is a leaf.
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.layout.is_leaf(id)
    }

    /// Morton rank of a leaf node.
    #[inline]
    pub fn leaf_rank(&self, id: NodeId) -> u32 {
        self.layout.leaf_rank(id)
    }

    /// Leaf node id of a Morton rank.
    #[inline]
    pub fn leaf_id(&self, rank: u32) -> NodeId {
        self.layout.leaf_id(rank)
    }

    /// Original point index of a Morton rank.
    #[inline]
    pub fn point_index(&self, rank: u32) -> u32 {
        self.order[rank as usize]
    }

    /// Morton-order permutation (rank -> original point index).
    #[inline]
    pub fn morton_order(&self) -> &[u32] {
        &self.order
    }

    /// The point at a Morton rank.
    #[inline]
    pub fn leaf_point(&self, rank: u32) -> &Point<D> {
        &self.leaf_points[rank as usize]
    }

    /// All points in Morton order.
    #[inline]
    pub fn leaf_points(&self) -> &[Point<D>] {
        &self.leaf_points
    }

    /// Both children of an internal node (`[left, right]`) — one load from
    /// the structure-of-arrays storage.
    #[inline]
    pub fn children_of(&self, internal: NodeId) -> [NodeId; 2] {
        self.children[internal as usize]
    }

    /// Left child of an internal node.
    #[inline]
    pub fn left_child(&self, internal: NodeId) -> NodeId {
        self.children[internal as usize][0]
    }

    /// Right child of an internal node.
    #[inline]
    pub fn right_child(&self, internal: NodeId) -> NodeId {
        self.children[internal as usize][1]
    }

    /// The 4-wide rope-linked collapse of the hierarchy, built once at
    /// construction time — the storage behind [`Bvh::nearest_stackless`].
    #[inline]
    pub fn wide(&self) -> &WideBvh<D> {
        &self.wide
    }

    /// Heap bytes held by the hierarchy (binary SoA arrays plus the wide
    /// collapse) — what a resident-shard cache charges against its
    /// admission budget.
    ///
    /// The tree is a **deterministic pure function of the point sequence**:
    /// rebuilding from the same points yields byte-identical storage on any
    /// backend (sorting ties break by index, the radix hierarchy is unique
    /// for a code sequence, and [`WideBvh::collapse`] is serial preorder).
    /// A cache can therefore persist just the points — e.g. the sharded
    /// spill-file format — and reload the handle exactly, instead of
    /// serializing node arrays.
    pub fn resident_bytes(&self) -> usize {
        self.leaf_points.len() * std::mem::size_of::<Point<D>>()
            + self.order.len() * std::mem::size_of::<u32>()
            + self.children.len() * std::mem::size_of::<[NodeId; 2]>()
            + self.parent.len() * std::mem::size_of::<NodeId>()
            + self.bounds.len() * std::mem::size_of::<Aabb<D>>()
            + self.wide.resident_bytes()
    }

    /// Parent of a node (`INVALID_NODE` for the root).
    #[inline]
    pub fn parent(&self, id: NodeId) -> NodeId {
        self.parent[id as usize]
    }

    /// Parent array over all `2n − 1` nodes — the input of the paper's
    /// bottom-up `reduceLabels` kernel.
    #[inline]
    pub fn parents(&self) -> &[NodeId] {
        &self.parent
    }

    /// Bounding box of any node (degenerate box for leaves).
    #[inline]
    pub fn node_aabb(&self, id: NodeId) -> Aabb<D> {
        if self.is_leaf(id) {
            Aabb::from_point(self.leaf_points[self.leaf_rank(id) as usize])
        } else {
            self.bounds[id as usize]
        }
    }

    /// Squared Euclidean distance from `q` to a node's bounding volume.
    #[inline]
    pub fn node_distance_sq(&self, id: NodeId, q: &Point<D>) -> Scalar {
        if self.is_leaf(id) {
            q.squared_distance(&self.leaf_points[self.leaf_rank(id) as usize])
        } else {
            self.bounds[id as usize].squared_distance_to_point(q)
        }
    }

    /// Exhaustively checks the structural invariants; used by tests.
    ///
    /// Verifies that: the root covers everything; each internal node has two
    /// children whose parent links point back; every leaf is reachable
    /// exactly once; internal bounding boxes tightly contain their subtree.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_leaves();
        if n == 1 {
            return if self.root == 0 && self.parent == vec![INVALID_NODE] {
                self.wide.validate(self)
            } else {
                Err("bad single-leaf tree".into())
            };
        }
        if self.is_leaf(self.root) {
            return Err("root must be internal for n > 1".into());
        }
        if self.parent(self.root) != INVALID_NODE {
            return Err("root must have no parent".into());
        }
        let mut seen_leaves = vec![false; n];
        let mut stack = vec![self.root];
        let mut visited_internal = 0usize;
        while let Some(id) = stack.pop() {
            if self.is_leaf(id) {
                let rank = self.leaf_rank(id) as usize;
                if seen_leaves[rank] {
                    return Err(format!("leaf rank {rank} reached twice"));
                }
                seen_leaves[rank] = true;
                continue;
            }
            visited_internal += 1;
            let bb = self.node_aabb(id);
            for child in [self.left_child(id), self.right_child(id)] {
                if child == INVALID_NODE {
                    return Err(format!("internal node {id} missing a child"));
                }
                if self.parent(child) != id {
                    return Err(format!("child {child} does not link back to {id}"));
                }
                if !bb.contains_box(&self.node_aabb(child)) {
                    return Err(format!("node {id} box does not contain child {child}"));
                }
                stack.push(child);
            }
            // Tightness: the box is exactly the union of the children's.
            let union =
                self.node_aabb(self.left_child(id)).union(&self.node_aabb(self.right_child(id)));
            if union != bb {
                return Err(format!("node {id} box is not the union of its children"));
            }
        }
        if visited_internal != self.num_internal() {
            return Err(format!(
                "visited {visited_internal} internal nodes, expected {}",
                self.num_internal()
            ));
        }
        if !seen_leaves.iter().all(|&s| s) {
            return Err("not all leaves reachable from the root".into());
        }
        self.wide.validate(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_exec::{GpuSim, Serial, Threads};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points_2d(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(-1.0f32..1.0), rng.random_range(-1.0f32..1.0)]))
            .collect()
    }

    #[test]
    fn single_point_tree_is_one_leaf() {
        let bvh = Bvh::build(&Serial, &[Point::new([1.0f32, 2.0])]);
        assert_eq!(bvh.num_nodes(), 1);
        assert!(bvh.is_leaf(bvh.root()));
        bvh.validate().unwrap();
    }

    #[test]
    fn two_points_form_root_with_two_leaves() {
        let bvh = Bvh::build(&Serial, &[Point::new([0.0f32, 0.0]), Point::new([1.0, 1.0])]);
        assert_eq!(bvh.num_nodes(), 3);
        assert_eq!(bvh.root(), 0);
        bvh.validate().unwrap();
        let bb = bvh.node_aabb(bvh.root());
        assert_eq!(bb.min, Point::new([0.0, 0.0]));
        assert_eq!(bb.max, Point::new([1.0, 1.0]));
    }

    #[test]
    fn all_duplicate_points_build_a_balanced_tree() {
        // Identical Morton codes: the index-XOR tie-break must keep the tree
        // shallow instead of a length-n chain.
        let pts = vec![Point::new([0.5f32, 0.5]); 1024];
        let bvh = Bvh::build(&Serial, &pts);
        bvh.validate().unwrap();
        // Measure depth.
        let mut max_depth = 0usize;
        let mut stack = vec![(bvh.root(), 0usize)];
        while let Some((id, d)) = stack.pop() {
            max_depth = max_depth.max(d);
            if !bvh.is_leaf(id) {
                stack.push((bvh.left_child(id), d + 1));
                stack.push((bvh.right_child(id), d + 1));
            }
        }
        assert!(max_depth <= 16, "duplicate points degenerated: depth {max_depth}");
    }

    #[test]
    fn collinear_points_validate() {
        let pts: Vec<Point<2>> = (0..257).map(|i| Point::new([i as f32, 0.0])).collect();
        let bvh = Bvh::build(&Serial, &pts);
        bvh.validate().unwrap();
    }

    #[test]
    fn serial_threads_gpusim_agree_on_structure_roots() {
        let pts = random_points_2d(2000, 7);
        let a = Bvh::build(&Serial, &pts);
        let b = Bvh::build(&Threads, &pts);
        let c = Bvh::build(&GpuSim::new(), &pts);
        // Construction is deterministic given the sorted order, which is
        // deterministic by the (code, index) sort key.
        assert_eq!(a.morton_order(), b.morton_order());
        assert_eq!(a.morton_order(), c.morton_order());
        assert_eq!(a.root(), b.root());
        assert_eq!(a.parents(), c.parents());
        a.validate().unwrap();
        b.validate().unwrap();
        c.validate().unwrap();
    }

    #[test]
    fn three_dimensional_build_validates() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<Point<3>> = (0..500)
            .map(|_| {
                Point::new([
                    rng.random_range(0.0f32..1.0),
                    rng.random_range(0.0f32..1.0),
                    rng.random_range(0.0f32..1.0),
                ])
            })
            .collect();
        Bvh::build(&Threads, &pts).validate().unwrap();
    }

    #[test]
    fn morton_order_is_a_permutation_of_inputs() {
        let pts = random_points_2d(333, 11);
        let bvh = Bvh::build(&Serial, &pts);
        let mut order: Vec<u32> = bvh.morton_order().to_vec();
        order.sort_unstable();
        assert!(order.iter().enumerate().all(|(i, &o)| i as u32 == o));
        for rank in 0..pts.len() as u32 {
            assert_eq!(*bvh.leaf_point(rank), pts[bvh.point_index(rank) as usize]);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn random_trees_validate(
            n in 1usize..200,
            seed in 0u64..1000,
            duplicates in 0usize..3
        ) {
            let mut pts = random_points_2d(n, seed);
            // Inject duplicate blocks to stress the tie-breaking.
            for _ in 0..duplicates {
                let p = pts[0];
                pts.extend(std::iter::repeat_n(p, 5));
            }
            let bvh = Bvh::build(&Threads, &pts);
            prop_assert!(bvh.validate().is_ok(), "{:?}", bvh.validate());
        }

        #[test]
        fn grid_trees_validate(w in 1usize..20, h in 1usize..20) {
            // Integer grids create massive Morton-code tie structure.
            let pts: Vec<Point<2>> = (0..w)
                .flat_map(|x| (0..h).map(move |y| Point::new([x as f32, y as f32])))
                .collect();
            let bvh = Bvh::build(&Serial, &pts);
            prop_assert!(bvh.validate().is_ok());
        }
    }
}
