//! Bulk query execution — the ArborX usage pattern the paper describes in
//! §2: "each thread is assigned a single query, and all the traversals are
//! performed independently in parallel ... the queries are pre-sorted with
//! the goal to assign neighboring threads the queries that are
//! geometrically close", which turns thread divergence into shared cache
//! lines on both CPUs and GPUs.

use emst_exec::{ExecSpace, SyncUnsafeSlice};
use emst_geometry::{Aabb, Point, Scalar};
use emst_morton::morton_order;

use crate::build::Bvh;
use crate::traverse::{NearestHit, Traversal, TraversalStats};

impl<const D: usize> Bvh<D> {
    /// Nearest neighbour of every query point, executed as one bulk launch.
    ///
    /// Queries are pre-sorted along the Z-curve before the parallel launch
    /// and the results scattered back to input order, exactly as ArborX
    /// does. Each work item runs the default stackless walker over the
    /// 4-wide SoA tree — neighbouring threads then chase the same ropes
    /// through the same cache lines. Returns one optional hit per query
    /// (`None` only if the tree is empty of candidates, which cannot happen
    /// here since trees are non-empty) plus the summed traversal
    /// statistics.
    pub fn bulk_nearest<S: ExecSpace>(
        &self,
        space: &S,
        queries: &[Point<D>],
    ) -> (Vec<NearestHit>, TraversalStats) {
        let m = queries.len();
        let mut results = vec![NearestHit { rank: u32::MAX, dist_sq: Scalar::INFINITY }; m];
        if m == 0 {
            return (results, TraversalStats::default());
        }
        // Pre-sort the queries along the same curve as the leaves.
        let scene = Aabb::from_points(queries);
        let order = morton_order(queries, &scene);

        let stats = {
            let out = SyncUnsafeSlice::new(&mut results);
            space.parallel_reduce(
                m,
                TraversalStats::default(),
                |i| {
                    let q = order[i] as usize;
                    let mut st = TraversalStats::default();
                    let hit = self
                        .nearest(
                            Traversal::default(),
                            &queries[q],
                            Scalar::INFINITY,
                            |_| false,
                            |_, e| Some(e),
                            &mut st,
                        )
                        .expect("non-empty tree always yields a neighbour");
                    // SAFETY: `order` is a permutation — one writer per slot.
                    unsafe { out.write(q, hit) };
                    st
                },
                TraversalStats::merged,
            )
        };
        (results, stats)
    }

    /// All `(query index, leaf rank)` pairs with the leaf strictly inside
    /// `radius` of the query — the bulk form of ArborX's *spatial* query.
    ///
    /// Results are grouped per query in CSR form `(offsets, hits)`: the
    /// matches of query `q` are `hits[offsets[q]..offsets[q+1]]`. Built with
    /// the standard two-pass count-scan-fill device pattern.
    pub fn bulk_within_radius<S: ExecSpace>(
        &self,
        space: &S,
        queries: &[Point<D>],
        radius: Scalar,
    ) -> (Vec<usize>, Vec<u32>) {
        let m = queries.len();
        let radius_sq = radius * radius;
        // Pass 1: count matches per query.
        let mut counts = vec![0usize; m + 1];
        {
            let counts_s = SyncUnsafeSlice::new(&mut counts);
            space.parallel_for(m, |q| {
                let hits = self.within_radius(&queries[q], radius_sq);
                // SAFETY: one writer per slot.
                unsafe { counts_s.write(q, hits.len()) };
            });
        }
        // Pass 2: exclusive scan -> offsets.
        let total = space.parallel_scan_exclusive(&mut counts[..m]);
        counts[m] = total;
        // Pass 3: fill.
        let mut hits = vec![0u32; total];
        {
            let hits_s = SyncUnsafeSlice::new(&mut hits);
            let counts = &counts;
            space.parallel_for(m, |q| {
                let mut found = self.within_radius(&queries[q], radius_sq);
                found.sort_unstable(); // deterministic order per query
                for (k, rank) in found.into_iter().enumerate() {
                    // SAFETY: ranges [offsets[q], offsets[q+1]) are disjoint.
                    unsafe { hits_s.write(counts[q] + k, rank) };
                }
            });
        }
        (counts, hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_exec::{Serial, Threads};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(0.0f32..1.0), rng.random_range(0.0f32..1.0)]))
            .collect()
    }

    #[test]
    fn bulk_nearest_matches_individual_queries() {
        let pts = random_points(800, 1);
        let queries = random_points(150, 2);
        let bvh = Bvh::build(&Serial, &pts);
        let (bulk, stats) = bvh.bulk_nearest(&Threads, &queries);
        assert_eq!(bulk.len(), queries.len());
        assert!(stats.nodes > 0);
        for (q, hit) in queries.iter().zip(&bulk) {
            let single = bvh.nearest_neighbor(q, u32::MAX).unwrap();
            assert_eq!(hit.dist_sq, single.dist_sq);
        }
    }

    #[test]
    fn bulk_nearest_handles_empty_query_set() {
        let pts = random_points(10, 3);
        let bvh = Bvh::build(&Serial, &pts);
        let (bulk, stats) = bvh.bulk_nearest(&Serial, &[]);
        assert!(bulk.is_empty());
        assert_eq!(stats, TraversalStats::default());
    }

    #[test]
    fn bulk_radius_csr_matches_brute_force() {
        let pts = random_points(400, 5);
        let queries = random_points(60, 6);
        let bvh = Bvh::build(&Serial, &pts);
        let r = 0.15f32;
        let (offsets, hits) = bvh.bulk_within_radius(&Threads, &queries, r);
        assert_eq!(offsets.len(), queries.len() + 1);
        assert_eq!(*offsets.last().unwrap(), hits.len());
        for (qi, q) in queries.iter().enumerate() {
            let got: Vec<u32> = hits[offsets[qi]..offsets[qi + 1]]
                .iter()
                .map(|&rank| bvh.point_index(rank))
                .collect();
            let mut expect: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| q.squared_distance(p) < r * r)
                .map(|(i, _)| i as u32)
                .collect();
            // got is sorted by rank; compare as sets.
            let mut got_sorted = got.clone();
            got_sorted.sort_unstable();
            expect.sort_unstable();
            assert_eq!(got_sorted, expect, "query {qi}");
        }
    }

    #[test]
    fn bulk_radius_with_no_matches_yields_empty_ranges() {
        let pts = vec![Point::new([0.0f32, 0.0])];
        let bvh = Bvh::build(&Serial, &pts);
        let queries = vec![Point::new([10.0f32, 10.0]), Point::new([0.0, 0.05])];
        let (offsets, hits) = bvh.bulk_within_radius(&Serial, &queries, 0.1);
        assert_eq!(offsets, vec![0, 0, 1]);
        assert_eq!(hits, vec![0]);
    }

    #[test]
    fn backends_agree_on_bulk_results() {
        let pts = random_points(500, 7);
        let queries = random_points(100, 8);
        let bvh = Bvh::build(&Serial, &pts);
        let (a, _) = bvh.bulk_nearest(&Serial, &queries);
        let (b, _) = bvh.bulk_nearest(&Threads, &queries);
        let a_d: Vec<f32> = a.iter().map(|h| h.dist_sq).collect();
        let b_d: Vec<f32> = b.iter().map(|h| h.dist_sq).collect();
        assert_eq!(a_d, b_d);
    }
}
