//! A simple undirected weighted graph in edge-list + CSR form.

use emst_core::Edge;
use emst_geometry::{Point, Scalar};

/// An undirected weighted graph. Edge weights are stored squared to match
/// the rest of the workspace (take square roots only for reporting).
#[derive(Clone, Debug)]
pub struct WeightedGraph {
    /// Number of vertices.
    pub n: usize,
    /// Undirected edges (`u < v` canonical, weights squared).
    pub edges: Vec<Edge>,
}

impl WeightedGraph {
    /// Creates a graph from an edge list; endpoints are canonicalized and
    /// exact duplicates (same endpoints **and** weight) deduplicated.
    pub fn new(n: usize, raw: impl IntoIterator<Item = (u32, u32, Scalar)>) -> Self {
        let mut edges: Vec<Edge> = raw
            .into_iter()
            .filter(|&(u, v, _)| u != v)
            .map(|(u, v, w)| {
                assert!((u as usize) < n && (v as usize) < n, "edge endpoint out of range");
                assert!(w >= 0.0, "negative weights are not supported");
                Edge::new(u, v, w)
            })
            .collect();
        edges.sort_by_key(Edge::key);
        edges.dedup_by(|a, b| a.u == b.u && a.v == b.v && a.weight_sq == b.weight_sq);
        Self { n, edges }
    }

    /// The complete distance graph of a point set — O(n²) edges; the bridge
    /// between the explicit-graph oracles and the geometric algorithms.
    pub fn complete_from_points<const D: usize>(points: &[Point<D>]) -> Self {
        let n = points.len();
        let mut edges = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u as u32, v as u32, points[u].squared_distance(&points[v])));
            }
        }
        Self::new(n, edges)
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// True when every vertex can reach every other.
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut dsu = emst_core::UnionFind::new(self.n);
        for e in &self.edges {
            dsu.union(e.u as usize, e.v as usize);
        }
        dsu.num_sets() == 1
    }

    /// CSR adjacency: `(offsets, neighbors)` where `neighbors[offsets[u]..
    /// offsets[u+1]]` lists `(v, weight_sq)` pairs; used by Prim.
    pub fn adjacency(&self) -> (Vec<u32>, Vec<(u32, Scalar)>) {
        let mut degree = vec![0u32; self.n];
        for e in &self.edges {
            degree[e.u as usize] += 1;
            degree[e.v as usize] += 1;
        }
        let mut offsets = vec![0u32; self.n + 1];
        for u in 0..self.n {
            offsets[u + 1] = offsets[u] + degree[u];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![(0u32, 0.0); 2 * self.edges.len()];
        for e in &self.edges {
            neighbors[cursor[e.u as usize] as usize] = (e.v, e.weight_sq);
            cursor[e.u as usize] += 1;
            neighbors[cursor[e.v as usize] as usize] = (e.u, e.weight_sq);
            cursor[e.v as usize] += 1;
        }
        (offsets, neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_canonicalizes_and_dedups() {
        let g = WeightedGraph::new(3, vec![(1, 0, 4.0), (0, 1, 4.0), (2, 1, 1.0), (0, 0, 9.0)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edges[0], Edge::new(1, 2, 1.0));
        assert_eq!(g.edges[1], Edge::new(0, 1, 4.0));
    }

    #[test]
    fn parallel_edges_with_distinct_weights_are_kept() {
        let g = WeightedGraph::new(2, vec![(0, 1, 1.0), (0, 1, 2.0)]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn connectivity_detection() {
        let g = WeightedGraph::new(4, vec![(0, 1, 1.0), (2, 3, 1.0)]);
        assert!(!g.is_connected());
        let g = WeightedGraph::new(4, vec![(0, 1, 1.0), (2, 3, 1.0), (1, 2, 1.0)]);
        assert!(g.is_connected());
        assert!(WeightedGraph::new(1, vec![]).is_connected());
        assert!(WeightedGraph::new(0, vec![]).is_connected());
    }

    #[test]
    fn complete_graph_has_binomial_edges() {
        let pts: Vec<Point<2>> = (0..6).map(|i| Point::new([i as f32, 0.0])).collect();
        let g = WeightedGraph::complete_from_points(&pts);
        assert_eq!(g.num_edges(), 15);
        assert!(g.is_connected());
    }

    #[test]
    fn adjacency_round_trips_degrees() {
        let g = WeightedGraph::new(4, vec![(0, 1, 1.0), (1, 2, 2.0), (1, 3, 3.0)]);
        let (offsets, neighbors) = g.adjacency();
        assert_eq!(offsets, vec![0, 1, 4, 5, 6]);
        assert_eq!(neighbors.len(), 6);
        // vertex 1 sees 0, 2, 3
        let mut vs: Vec<u32> =
            neighbors[offsets[1] as usize..offsets[2] as usize].iter().map(|p| p.0).collect();
        vs.sort_unstable();
        assert_eq!(vs, vec![0, 2, 3]);
    }
}
