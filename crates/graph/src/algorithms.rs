//! The three classical MST algorithms (paper §2), all under the
//! `(weight, min, max)` total edge order.
//!
//! On a connected graph each returns exactly `n − 1` edges; on a
//! disconnected one, a minimum spanning **forest**. Because the edge order
//! is total, all three return the *same* edge set — tested against each
//! other and against the geometric implementations.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use emst_core::{Edge, UnionFind};

use crate::graph::WeightedGraph;

/// Kruskal 1956: sort all edges, take those joining distinct components.
/// `O(m log m)`. The paper notes its "limited parallelism which is
/// insufficient for a GPU".
pub fn kruskal(g: &WeightedGraph) -> Vec<Edge> {
    let mut sorted: Vec<&Edge> = g.edges.iter().collect();
    sorted.sort_by_key(|e| e.key());
    let mut dsu = UnionFind::new(g.n);
    let mut mst = Vec::with_capacity(g.n.saturating_sub(1));
    for e in sorted {
        if dsu.union(e.u as usize, e.v as usize) {
            mst.push(*e);
        }
    }
    mst
}

/// Prim 1957: grow one component from each unvisited seed, always adding
/// the lightest edge in its cut. `O(m log m)` with a lazy binary heap. The
/// paper calls it "inherently sequential" — which is why the EMST algorithm
/// builds on Borůvka instead.
pub fn prim(g: &WeightedGraph) -> Vec<Edge> {
    let (offsets, neighbors) = g.adjacency();
    let mut in_tree = vec![false; g.n];
    let mut mst = Vec::with_capacity(g.n.saturating_sub(1));
    // (weight bits, min, max, src, dst): heap orders by the total edge key.
    type Entry = Reverse<(u32, u32, u32, u32)>;
    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();

    for seed in 0..g.n {
        if in_tree[seed] {
            continue;
        }
        in_tree[seed] = true;
        push_cut_edges(seed, &offsets, &neighbors, &in_tree, &mut heap);
        while let Some(Reverse((wbits, _minv, _maxv, dst))) = heap.pop() {
            let dst = dst as usize;
            if in_tree[dst] {
                continue;
            }
            in_tree[dst] = true;
            // Recover the source: the lightest in-tree neighbor achieving
            // this weight with the canonical tie-break.
            let mut best: Option<(u32, u32, u32)> = None;
            let mut src = u32::MAX;
            for &(v, w) in &neighbors[offsets[dst] as usize..offsets[dst + 1] as usize] {
                if !in_tree[v as usize] || v as usize == dst {
                    continue;
                }
                let cand_bits = emst_geometry::nonneg_f32_to_ordered_bits(w);
                if cand_bits != wbits {
                    continue;
                }
                let key = (cand_bits, (dst as u32).min(v), (dst as u32).max(v));
                if best.is_none() || key < best.unwrap() {
                    best = Some(key);
                    src = v;
                }
            }
            debug_assert_ne!(src, u32::MAX);
            mst.push(Edge::new(src, dst as u32, f32::from_bits(wbits)));
            push_cut_edges(dst, &offsets, &neighbors, &in_tree, &mut heap);
        }
    }
    mst.sort_by_key(Edge::key);
    mst
}

type PrimEntry = Reverse<(u32, u32, u32, u32)>;

fn push_cut_edges(
    u: usize,
    offsets: &[u32],
    neighbors: &[(u32, f32)],
    in_tree: &[bool],
    heap: &mut BinaryHeap<PrimEntry>,
) {
    for &(v, w) in &neighbors[offsets[u] as usize..offsets[u + 1] as usize] {
        if !in_tree[v as usize] {
            let bits = emst_geometry::nonneg_f32_to_ordered_bits(w);
            heap.push(Reverse((bits, (u as u32).min(v), (u as u32).max(v), v)));
        }
    }
}

/// Borůvka 1926: every component simultaneously adopts its lightest
/// outgoing edge; components merge; repeat. `O(m log n)` with `O(log n)`
/// iterations — the structure the whole paper parallelizes.
pub fn boruvka(g: &WeightedGraph) -> Vec<Edge> {
    let mut dsu = UnionFind::new(g.n);
    let mut mst = Vec::with_capacity(g.n.saturating_sub(1));
    let mut best: Vec<Option<Edge>> = vec![None; g.n];
    loop {
        for b in best.iter_mut() {
            *b = None;
        }
        let mut any = false;
        for e in &g.edges {
            let (cu, cv) = (dsu.find(e.u as usize), dsu.find(e.v as usize));
            if cu == cv {
                continue;
            }
            any = true;
            for c in [cu, cv] {
                if best[c].is_none_or(|b| e.key() < b.key()) {
                    best[c] = Some(*e);
                }
            }
        }
        if !any {
            break;
        }
        for e in best.iter().flatten() {
            if dsu.union(e.u as usize, e.v as usize) {
                mst.push(*e);
            }
        }
    }
    mst.sort_by_key(Edge::key);
    mst
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_core::edge::{total_weight, verify_spanning_tree};
    use emst_geometry::Point;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn norm(mut edges: Vec<Edge>) -> Vec<Edge> {
        edges.sort_by_key(Edge::key);
        edges
    }

    #[test]
    fn all_three_agree_on_a_simple_graph() {
        let g = WeightedGraph::new(
            5,
            vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 4, 4.0), (0, 4, 10.0), (1, 3, 2.5)],
        );
        let k = norm(kruskal(&g));
        assert_eq!(k, norm(prim(&g)));
        assert_eq!(k, norm(boruvka(&g)));
        verify_spanning_tree(5, &k).unwrap();
        // MST = {(0,1):1, (1,2):2, (1,3):2.5, (3,4):4} (squared weights).
        assert_eq!(total_weight(&k), 1.0 + 2f64.sqrt() + 2.5f64.sqrt() + 2.0);
    }

    #[test]
    fn forests_on_disconnected_graphs() {
        let g = WeightedGraph::new(5, vec![(0, 1, 1.0), (2, 3, 2.0)]);
        for mst in [kruskal(&g), prim(&g), boruvka(&g)] {
            assert_eq!(mst.len(), 2, "spanning forest of 3 components");
        }
    }

    #[test]
    fn trivial_graphs() {
        let g = WeightedGraph::new(0, vec![]);
        assert!(kruskal(&g).is_empty());
        assert!(prim(&g).is_empty());
        assert!(boruvka(&g).is_empty());
        let g = WeightedGraph::new(1, vec![]);
        assert!(kruskal(&g).is_empty());
        assert!(prim(&g).is_empty());
        assert!(boruvka(&g).is_empty());
    }

    #[test]
    fn equal_weight_edges_resolve_identically() {
        // A 4-cycle of equal weights: the MST is determined purely by the
        // tie-breaking order.
        let g = WeightedGraph::new(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)]);
        let k = norm(kruskal(&g));
        assert_eq!(k, norm(prim(&g)));
        assert_eq!(k, norm(boruvka(&g)));
        // (w, min, max) order keeps (0,1), (1,2), (2,3).
        let ends: Vec<(u32, u32)> = k.iter().map(|e| (e.u, e.v)).collect();
        assert_eq!(ends, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn complete_graph_oracle_matches_geometric_emst() {
        let mut rng = StdRng::seed_from_u64(5);
        let pts: Vec<Point<2>> = (0..60)
            .map(|_| Point::new([rng.random_range(0.0f32..1.0), rng.random_range(0.0f32..1.0)]))
            .collect();
        let g = WeightedGraph::complete_from_points(&pts);
        let k = norm(kruskal(&g));
        let geometric = norm(emst_core::brute::brute_force_emst(&pts));
        assert_eq!(k, geometric);
        assert_eq!(k, norm(boruvka(&g)));
        assert_eq!(k, norm(prim(&g)));
    }

    fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
        (2usize..30).prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32, 0u32..16);
            prop::collection::vec(edge, 0..120).prop_map(move |raw| {
                WeightedGraph::new(n, raw.into_iter().map(|(u, v, w)| (u, v, w as f32 * 0.25)))
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn the_three_algorithms_agree_on_random_graphs(g in arb_graph()) {
            let k = norm(kruskal(&g));
            prop_assert_eq!(&k, &norm(prim(&g)));
            prop_assert_eq!(&k, &norm(boruvka(&g)));
            // Forest size = n - #components.
            let mut dsu = UnionFind::new(g.n);
            for e in &g.edges {
                dsu.union(e.u as usize, e.v as usize);
            }
            prop_assert_eq!(k.len(), g.n - dsu.num_sets());
        }
    }
}
