//! Classical minimum-spanning-tree algorithms on **explicit** weighted
//! graphs — the three ancestors the paper's Background section (§2) builds
//! on:
//!
//! - [`boruvka`] — Borůvka 1926, the parallel-friendly one the paper adopts;
//! - [`kruskal`] — Kruskal 1956, the sort-then-filter one GeoFilterKruskal
//!   adapts;
//! - [`prim`] — Prim 1957, the inherently sequential one Bentley–Friedman
//!   adapts.
//!
//! The EMST problem differs from these only in that its graph (the complete
//! distance graph) is *implicit*; these explicit-graph implementations serve
//! as oracles for the geometric algorithms (via
//! [`WeightedGraph::complete_from_points`]) and cross-validate each other on
//! arbitrary sparse graphs, including the tie-heavy ones where MST
//! uniqueness fails.
//!
//! All three use the same `(weight, min, max)` total edge order as the rest
//! of the workspace, so on any input they return the *identical* edge set —
//! the unique MST of the perturbed-weight graph.

pub mod algorithms;
pub mod graph;

pub use algorithms::{boruvka, kruskal, prim};
pub use graph::WeightedGraph;
