//! The cross-shard Borůvka merge.
//!
//! Given a set of resident shards (each a BVH over its points) plus a list
//! of *seed* candidate edges, this engine computes the exact minimum
//! spanning tree of the graph
//!
//! ```text
//! H  =  seeds  ∪  { every edge between points of different shards }
//! ```
//!
//! by Borůvka rounds from singleton components. Each round, a component's
//! shortest outgoing edge is the minimum — under the strict total order
//! `(weight, min endpoint, max endpoint)` — of
//!
//! - the seed edges leaving it (scanned directly), and
//! - its shortest cross-shard edge, found by one constrained
//!   nearest-neighbour traversal per point against every *other* shard's
//!   BVH (the same [`Bvh::nearest_with`] kernel as the monolithic
//!   algorithm, with the component-skip predicate of the paper's
//!   Optimization 1 maintained per shard by [`reduce_labels`]).
//!
//! Why this is exact for the sharded EMST: by the cycle property, an
//! intra-shard edge discarded by that shard's local MST is the heaviest
//! edge of an intra-shard cycle and therefore in no MST of the full point
//! set; so `MST(complete graph) ⊆ (local MST edges) ∪ (cross-shard
//! edges) = H`, and `MST(H) = MST(complete graph)`. Seeding with the local
//! MST edges also gives every interior point a tight traversal radius, so
//! cross-shard queries are root-pruned everywhere except near shard
//! boundaries — the "boundary region" of the queries emerges from the
//! radius bound rather than from an explicit margin.
//!
//! The per-point query tracks its best candidate under the *global* edge
//! order inside the leaf callback (the traversal's own tie-breaking is by
//! Morton rank within one shard, which is meaningless across shards), so
//! every component selects the true total-order minimum and the merged
//! edge set is the unique MST of `H` — no cycle can form, and the
//! union–find merge step never has to discard a chosen edge.
//!
//! # Why warm repeat queries are cheap
//!
//! A naive round fires `n · (K−1)` traversals; this engine prunes almost
//! all of them with four facts that only ever *strengthen* as components
//! merge, so every skip is provably work the walkers would have discarded:
//!
//! - **Entry bounds** ([`CrossBounds`], cached in the artifacts): a
//!   per-`(vertex, shard)` lower bound on the cross distance — skip the
//!   shard while the component radius is below it, with one compare.
//! - **Durable floors**: a query that accepts nothing raises that bound to
//!   the walker's radius-pruned frontier minimum
//!   (`TraversalStats::pruned_min_sq`) — every abandoned leaf lies beyond
//!   it, and every label-skipped leaf is same-component *forever* — so a
//!   provably-empty query is never repeated.
//! - **Persistent candidates**: a found candidate that is still
//!   cross-component is still its vertex's minimum outgoing cross edge
//!   (the candidate set only shrinks), so the vertex skips querying
//!   entirely; the stored edge is re-offered to both sides each round.
//! - **Incremental labels**: only ranks whose vertex changed component
//!   re-reduce their node-label path (full parallel reduction when at
//!   least half a shard changed), and the union/winner bookkeeping walks
//!   the representative list, not all of `n`.
//!
//! None of this changes a single selected edge — the serving tests assert
//! warm answers bit-identical to cold solves across backends and walkers.

use std::sync::atomic::AtomicU32;

use emst_bvh::{Bvh, Traversal, TraversalStats};
use emst_core::labels::{reduce_labels, INVALID_LABEL};
use emst_core::{Edge, UnionFind};
use emst_exec::atomic::{pack_dist_payload, unpack_dist_payload};
use emst_exec::{AtomicU64Min, Counters, ExecSpace, PhaseTimings, SyncUnsafeSlice};
use emst_geometry::{nonneg_f32_to_ordered_bits, Point, Scalar};

/// A merge gave up because its per-query deadline passed.
///
/// Raised only at round boundaries — a round that has started runs to
/// completion, so the partially-built working state (scratch, labels, DSU)
/// is internally consistent and simply discarded; nothing observable leaks
/// into the caller's caches. The serving layer maps this to
/// `ServeError::DeadlineExceeded`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeDeadlineExceeded;

impl std::fmt::Display for MergeDeadlineExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("merge deadline exceeded at a round boundary")
    }
}

impl std::error::Error for MergeDeadlineExceeded {}

/// A shard resident in memory for the merge: its BVH plus the caller's
/// vertex id for every Morton rank. Vertex ids must be unique across all
/// shards and contiguous in `0..n_vertices`.
pub(crate) struct MergeShard<const D: usize> {
    pub bvh: Bvh<D>,
    pub vertex_of_rank: Vec<u32>,
}

impl<const D: usize> MergeShard<D> {
    /// Builds a resident shard from points and their vertex ids (parallel
    /// arrays; `vertices[i]` is the id of `points[i]`).
    pub fn build<S: ExecSpace>(space: &S, points: &[Point<D>], vertices: &[u32]) -> Self {
        debug_assert_eq!(points.len(), vertices.len());
        let bvh = Bvh::build(space, points);
        let vertex_of_rank =
            (0..points.len() as u32).map(|r| vertices[bvh.point_index(r) as usize]).collect();
        Self { bvh, vertex_of_rank }
    }

    /// Borrowed view of this shard for a merge run.
    pub fn view(&self) -> MergeShardView<'_, D> {
        MergeShardView { bvh: &self.bvh, vertex_of_rank: &self.vertex_of_rank }
    }
}

/// A borrowed shard handed to [`cross_shard_boruvka`]. The merge never
/// mutates a shard, so cached shards (the serving layer's resident
/// artifacts) can be lent to any number of sequential merges — possibly
/// with a *fresh* `vertex_of_rank` when the same BVH serves a query whose
/// vertex numbering differs (subset queries renumber to `0..m`).
pub(crate) struct MergeShardView<'a, const D: usize> {
    pub bvh: &'a Bvh<D>,
    pub vertex_of_rank: &'a [u32],
}

/// Outcome of a merge.
pub(crate) struct MergeOutcome {
    /// The `n_vertices − 1` MST edges of `H`, in vertex ids.
    pub edges: Vec<Edge>,
    /// Borůvka rounds executed.
    pub rounds: u32,
    /// Cross-shard queries that actually tested at least one leaf (i.e.
    /// were not pruned at the other shard's root) — the effective boundary
    /// candidate count.
    pub boundary_candidates: u64,
    /// Per-round breakdown, in execution order (one entry per round).
    pub round_details: Vec<MergeRoundDetail>,
}

/// The work profile of one cross-shard Borůvka round: wall-clock time of
/// the whole round (labels + seeds + query + select + union) plus the
/// query phase's traversal deltas. Always collected — a merge runs a
/// handful of rounds, so the record is a few hundred bytes — and surfaced
/// through `ShardStats::round_details` so the serving layer's per-query
/// traces can show where a warm merge spent its time.
#[derive(Clone, Copy, Debug)]
pub struct MergeRoundDetail {
    /// 1-based round number.
    pub round: u32,
    /// Wall-clock seconds of the round.
    pub secs: f64,
    /// Cross-shard nearest-neighbour queries actually fired this round
    /// (after the reach/candidate skips).
    pub queries: u64,
    /// Queries that tested at least one leaf (boundary candidates).
    pub boundary: u64,
    /// Merged traversal statistics of the round's query phase.
    pub stats: TraversalStats,
}

/// Per-query accumulation for the reduction: traversal work plus the count
/// of queries that reached a leaf.
#[derive(Clone, Copy, Default)]
struct QueryWork {
    stats: TraversalStats,
    queries: u64,
    boundary: u64,
}

impl QueryWork {
    fn combine(a: Self, b: Self) -> Self {
        Self {
            stats: a.stats.merged(b.stats),
            queries: a.queries + b.queries,
            boundary: a.boundary + b.boundary,
        }
    }
}

/// Label-independent per-cloud state the merge consumes: vertex → (shard,
/// Morton rank) maps plus the pristine per-`(vertex, shard)` entry bounds.
/// A pure function of the shard geometry, so [`crate::ShardArtifacts`]
/// computes it once at build time and every warm merge starts from a
/// memcpy instead of recomputing `n·K` box distances.
///
/// The bound is the min distance to the other shard's depth-4 node
/// frontier (≤ 16 boxes) rather than its scene box: Morton-range scene
/// boxes overlap heavily, so the scene distance alone lets shallow no-op
/// entries through, while every leaf lies inside some frontier box (a
/// leaf's point distance is termwise >= a containing box's clamped
/// distance, and both walkers prune strictly beyond the radius) and so
/// can never be closer than this bound.
pub(crate) struct CrossBounds {
    /// Owning shard per vertex id.
    pub shard_of: Vec<u32>,
    /// Morton rank inside the owning shard per vertex id.
    pub rank_of: Vec<u32>,
    /// `cross_dist[v * K + s]`: lower bound on `v`'s distance to any point
    /// of shard `s` (`+inf` at `s == home`).
    pub cross_dist: Vec<Scalar>,
    /// Per-vertex min of `cross_dist` over the other shards.
    pub reach: Vec<Scalar>,
}

/// Collects the depth-4 node frontier of every shard's BVH (≤ 16 boxes
/// each) — the geometry the pristine entry bounds are measured against.
fn frontiers<const D: usize>(shards: &[MergeShardView<'_, D>]) -> Vec<Vec<u32>> {
    fn gather<const D: usize>(bvh: &Bvh<D>, node: u32, depth: u32, out: &mut Vec<u32>) {
        if depth == 0 || bvh.is_leaf(node) {
            out.push(node);
        } else {
            gather(bvh, bvh.left_child(node), depth - 1, out);
            gather(bvh, bvh.right_child(node), depth - 1, out);
        }
    }
    shards
        .iter()
        .map(|shard| {
            let mut frontier = vec![];
            gather(shard.bvh, shard.bvh.root(), 4, &mut frontier);
            frontier
        })
        .collect()
}

/// One pristine `(vertex, shard)` entry bound: the min distance from `q` to
/// `shard`'s frontier boxes, optionally sharpened by a radius-capped nearest
/// probe when the box bound falls at or below `refine` (see
/// [`CrossBounds::compute`] for why the probe result is still a sound lower
/// bound — either the exact nearest distance or the probe's pruned floor).
fn entry_bound<const D: usize>(
    shard: &MergeShardView<'_, D>,
    frontier: &[u32],
    q: &Point<D>,
    refine: Option<Scalar>,
) -> Scalar {
    let mut d = frontier
        .iter()
        .map(|&id| shard.bvh.node_distance_sq(id, q))
        .fold(Scalar::INFINITY, Scalar::min);
    if let Some(hint) = refine {
        if d <= hint {
            let mut st = TraversalStats::default();
            let hit = shard.bvh.nearest_floor(
                Traversal::default(),
                q,
                hint,
                |_| false,
                |_, e| Some(e),
                &mut st,
            );
            d = match hit {
                Some(h) => h.dist_sq,
                None => st.pruned_min_sq,
            }
            .max(d);
        }
    }
    d
}

impl CrossBounds {
    /// Derives the vertex → (shard, rank) maps from the rank maps.
    fn maps<const D: usize>(
        shards: &[MergeShardView<'_, D>],
        n_vertices: usize,
    ) -> (Vec<u32>, Vec<u32>) {
        let mut shard_of = vec![0u32; n_vertices];
        let mut rank_of = vec![0u32; n_vertices];
        for (s, shard) in shards.iter().enumerate() {
            for (rank, &v) in shard.vertex_of_rank.iter().enumerate() {
                shard_of[v as usize] = s as u32;
                rank_of[v as usize] = rank as u32;
            }
        }
        (shard_of, rank_of)
    }

    /// Computes the maps and pristine bounds for `shards`.
    ///
    /// `refine_radius` (per vertex id) sharpens weak bounds: wherever the
    /// frontier bound falls at or below a vertex's hint radius — i.e.
    /// wherever the merge's first round would otherwise fire a (usually
    /// empty) query — a radius-capped nearest probe replaces the box bound
    /// with the exact nearest-point distance, or with the probe's own
    /// pruned floor when nothing lies within the hint. Callers pass each
    /// vertex's min incident seed weight (its round-1 radius), shifting
    /// the discovery cost into the one-time build.
    pub fn compute<S: ExecSpace, const D: usize>(
        space: &S,
        shards: &[MergeShardView<'_, D>],
        n_vertices: usize,
        refine_radius: Option<&[Scalar]>,
    ) -> Self {
        let stride = shards.len();
        let (shard_of, rank_of) = Self::maps(shards, n_vertices);
        let frontiers = frontiers(shards);
        let mut reach = vec![Scalar::INFINITY; n_vertices];
        let mut cross_dist = vec![Scalar::INFINITY; n_vertices * stride];
        {
            let reach_s = SyncUnsafeSlice::new(reach.as_mut_slice());
            let cross_s = SyncUnsafeSlice::new(cross_dist.as_mut_slice());
            let (shard_of, rank_of, frontiers) = (&shard_of, &rank_of, &frontiers);
            space.parallel_for(n_vertices, |v| {
                let home = shard_of[v] as usize;
                let q = shards[home].bvh.leaf_point(rank_of[v]);
                let mut r = Scalar::INFINITY;
                for (s, shard) in shards.iter().enumerate() {
                    let d = if s == home {
                        Scalar::INFINITY
                    } else {
                        entry_bound(shard, &frontiers[s], q, refine_radius.map(|h| h[v]))
                    };
                    // SAFETY: one writer per slot.
                    unsafe { cross_s.write(v * stride + s, d) };
                    r = r.min(d);
                }
                // SAFETY: one writer per slot.
                unsafe { reach_s.write(v, r) };
            });
        }
        Self { shard_of, rank_of, cross_dist, reach }
    }

    /// Bounds for a *mutated* cloud, inheriting every still-valid parent
    /// fact and recomputing only what the mutation invalidated.
    ///
    /// `parent_of[v]` is the parent vertex id of child vertex `v`
    /// (`u32::MAX` for a freshly inserted point), `dirty[s]` marks the
    /// local columns whose shard's point set changed. An entry `(v, s)` is
    /// a lower bound on `v`'s distance to shard `s`'s points — a pure
    /// function of `v`'s position and `s`'s geometry — so for a surviving
    /// vertex (position unchanged) and a clean shard (point set unchanged)
    /// the parent entry still holds verbatim, tightened by the parent
    /// accelerator's durable floor for the same slot when one is supplied:
    /// accel floors are harvested from round 1 only, where no
    /// same-component skip can fire, so they too are label-independent
    /// geometric facts about the unchanged `(position, point set)` pair.
    /// Dirty columns and inserted vertices' full rows are recomputed
    /// exactly as [`Self::compute`] would.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn inherit_and_recompute<S: ExecSpace, const D: usize>(
        space: &S,
        shards: &[MergeShardView<'_, D>],
        n_vertices: usize,
        parent: &CrossBounds,
        parent_accel: Option<&MergeAccel>,
        parent_of: &[u32],
        dirty: &[bool],
        refine_radius: Option<&[Scalar]>,
    ) -> Self {
        let stride = shards.len();
        debug_assert_eq!(parent_of.len(), n_vertices);
        debug_assert_eq!(dirty.len(), stride);
        debug_assert_eq!(parent.cross_dist.len() % stride.max(1), 0, "parent stride differs");
        if let Some(a) = parent_accel {
            debug_assert_eq!(a.stride, stride, "accel built for a different sharding");
        }
        let (shard_of, rank_of) = Self::maps(shards, n_vertices);
        let frontiers = frontiers(shards);
        let mut reach = vec![Scalar::INFINITY; n_vertices];
        let mut cross_dist = vec![Scalar::INFINITY; n_vertices * stride];
        {
            let reach_s = SyncUnsafeSlice::new(reach.as_mut_slice());
            let cross_s = SyncUnsafeSlice::new(cross_dist.as_mut_slice());
            let (shard_of, rank_of, frontiers) = (&shard_of, &rank_of, &frontiers);
            space.parallel_for(n_vertices, |v| {
                let home = shard_of[v] as usize;
                let q = shards[home].bvh.leaf_point(rank_of[v]);
                let p = parent_of[v];
                let mut r = Scalar::INFINITY;
                for (s, shard) in shards.iter().enumerate() {
                    let d = if s == home {
                        Scalar::INFINITY
                    } else if p != u32::MAX && !dirty[s] {
                        let idx = p as usize * stride + s;
                        let mut d = parent.cross_dist[idx];
                        if let Some(a) = parent_accel {
                            d = d.max(a.cross_dist[idx]);
                        }
                        d
                    } else {
                        entry_bound(shard, &frontiers[s], q, refine_radius.map(|h| h[v]))
                    };
                    // SAFETY: one writer per slot.
                    unsafe { cross_s.write(v * stride + s, d) };
                    r = r.min(d);
                }
                // SAFETY: one writer per slot.
                unsafe { reach_s.write(v, r) };
            });
        }
        Self { shard_of, rank_of, cross_dist, reach }
    }

    /// Heap bytes the bounds hold resident.
    pub fn resident_bytes(&self) -> usize {
        (self.shard_of.len() + self.rank_of.len()) * std::mem::size_of::<u32>()
            + (self.cross_dist.len() + self.reach.len()) * std::mem::size_of::<Scalar>()
    }
}

/// Durable cross-query acceleration state for one cloud's merges: the
/// per-`(vertex, shard)` floors and per-vertex candidates that hold for
/// *every* merge over the same shards, not just the query that learned
/// them.
///
/// Everything here is harvested from **round 1 only** of a merge. In round
/// 1 every component is a singleton with a distinct label, so no
/// same-component skip can fire anywhere — node labels never equal a
/// foreign query's label, leaf points are never label-rejected, and the
/// hoisted root skip is impossible. Round-1 facts are therefore purely
/// geometric:
///
/// - a failed `(v, s)` query's `pruned_min_sq` bounds `v`'s distance to
///   every point of shard `s` (nothing was label-hidden), and
/// - a found candidate is `v`'s global minimum outgoing cross-shard edge
///   under the `(weight, min, max)` order.
///
/// Rounds ≥ 2 tighten the *working* copies with label-dependent facts
/// (same-component leaves are still cross-shard edges to a fresh merge)
/// and must never land here — which is exactly why the harvest happens
/// once, right after round 1's query phase.
///
/// Two queries that both derive a slot derive the *same value* (the
/// geometry is deterministic and candidates are unique under the total
/// order), so [`MergeAccel::absorb`] is order-independent: concurrent
/// queries can merge their harvests back into a shared instance in any
/// interleaving and reach the same state.
pub struct MergeAccel {
    stride: usize,
    /// `cross_dist[v * stride + s]`: tightened lower bound on `v`'s
    /// distance to any point of shard `s`.
    cross_dist: Vec<Scalar>,
    /// Per-vertex lower bound on the min of `cross_dist` over other shards.
    reach: Vec<Scalar>,
    /// Squared weight of `v`'s minimum outgoing cross edge (when known).
    cand_d: Vec<Scalar>,
    /// Min endpoint of that edge; `u32::MAX` marks an empty slot.
    cand_a: Vec<u32>,
    /// Max endpoint of that edge.
    cand_b: Vec<u32>,
}

impl MergeAccel {
    /// Pristine accelerator over `bounds`: floors start at the build-time
    /// entry bounds, no candidates known yet.
    pub(crate) fn from_bounds(bounds: &CrossBounds, n_vertices: usize, stride: usize) -> Self {
        debug_assert_eq!(bounds.cross_dist.len(), n_vertices * stride);
        Self {
            stride,
            cross_dist: bounds.cross_dist.clone(),
            reach: bounds.reach.clone(),
            cand_d: vec![Scalar::INFINITY; n_vertices],
            cand_a: vec![u32::MAX; n_vertices],
            cand_b: vec![u32::MAX; n_vertices],
        }
    }

    /// An empty accelerator, for pools that size lazily via
    /// [`MergeAccel::copy_from`].
    pub fn new() -> Self {
        Self {
            stride: 0,
            cross_dist: vec![],
            reach: vec![],
            cand_d: vec![],
            cand_a: vec![],
            cand_b: vec![],
        }
    }

    /// Becomes a copy of `other` (resizing as needed, reusing allocations).
    pub fn copy_from(&mut self, other: &Self) {
        self.stride = other.stride;
        self.cross_dist.clone_from(&other.cross_dist);
        self.reach.clone_from(&other.reach);
        self.cand_d.clone_from(&other.cand_d);
        self.cand_a.clone_from(&other.cand_a);
        self.cand_b.clone_from(&other.cand_b);
    }

    /// Folds another accelerator over the same cloud into this one: floors
    /// take the elementwise max (both are valid lower bounds, so the max
    /// is the tighter valid bound), candidates fill empty slots. When both
    /// sides know a candidate they know the *same* one — each is the
    /// unique total-order minimum cross edge of its vertex — so merge
    /// order cannot matter.
    pub fn absorb(&mut self, other: &Self) {
        debug_assert_eq!(self.stride, other.stride);
        debug_assert_eq!(self.cross_dist.len(), other.cross_dist.len());
        for (mine, theirs) in self.cross_dist.iter_mut().zip(&other.cross_dist) {
            *mine = mine.max(*theirs);
        }
        for (mine, theirs) in self.reach.iter_mut().zip(&other.reach) {
            *mine = mine.max(*theirs);
        }
        for v in 0..self.cand_a.len() {
            if other.cand_a[v] == u32::MAX {
                continue;
            }
            if self.cand_a[v] == u32::MAX {
                self.cand_d[v] = other.cand_d[v];
                self.cand_a[v] = other.cand_a[v];
                self.cand_b[v] = other.cand_b[v];
            } else {
                debug_assert_eq!(
                    (self.cand_a[v], self.cand_b[v], self.cand_d[v].to_bits()),
                    (other.cand_a[v], other.cand_b[v], other.cand_d[v].to_bits()),
                    "two derivations of vertex {v}'s minimum cross edge disagree"
                );
            }
        }
    }

    /// Snapshots a merge's round-1 working state (see the type docs for
    /// why round 1, and only round 1, is durable).
    fn harvest(
        &mut self,
        cross_dist: &[Scalar],
        reach: &[Scalar],
        cand_d: &[Scalar],
        cand_a: &[u32],
        cand_b: &[u32],
    ) {
        self.cross_dist.clone_from_slice(cross_dist);
        self.reach.clone_from_slice(reach);
        self.cand_d.clone_from_slice(cand_d);
        self.cand_a.clone_from_slice(cand_a);
        self.cand_b.clone_from_slice(cand_b);
    }

    /// Number of vertices whose minimum outgoing cross edge is known.
    pub fn num_candidates(&self) -> usize {
        self.cand_a.iter().filter(|&&a| a != u32::MAX).count()
    }

    /// Sum of the per-`(vertex, shard)` floor values — monotone under
    /// merges and harvests, so tests can assert the accelerator only ever
    /// tightens.
    pub fn floor_mass(&self) -> f64 {
        self.cross_dist.iter().filter(|d| d.is_finite()).map(|&d| d as f64).sum()
    }

    /// Heap bytes the accelerator holds resident.
    pub fn resident_bytes(&self) -> usize {
        (self.cross_dist.len() + self.reach.len() + self.cand_d.len())
            * std::mem::size_of::<Scalar>()
            + (self.cand_a.len() + self.cand_b.len()) * std::mem::size_of::<u32>()
    }
}

impl Default for MergeAccel {
    fn default() -> Self {
        Self::new()
    }
}

/// Reusable allocation pool of the cross-shard merge: every per-merge
/// array, sized on first use and recycled across calls. A long-lived
/// server (`emst_serve`) keeps one per resident cloud so warm repeat
/// queries allocate nothing.
#[derive(Default)]
pub struct MergeScratch {
    reach: Vec<Scalar>,
    cross_dist: Vec<Scalar>,
    rank_labels: Vec<Vec<u32>>,
    node_labels: Vec<Vec<u32>>,
    flags: Vec<Vec<AtomicU32>>,
    labels: Vec<u32>,
    dsu: UnionFind,
    comp_key: Vec<AtomicU64Min>,
    comp_pair: Vec<AtomicU64Min>,
    upper: Vec<Scalar>,
    cand_d: Vec<Scalar>,
    cand_a: Vec<u32>,
    cand_b: Vec<u32>,
    min_of_root: Vec<u32>,
    relabel: Vec<u32>,
    reps: Vec<u32>,
    changed_ranks: Vec<Vec<u32>>,
    live_seeds: Vec<Edge>,
}

impl MergeScratch {
    /// An empty pool; arrays are sized by the first merge that uses it.
    pub fn new() -> Self {
        Self::default()
    }

    /// (Re)sizes and resets everything a merge over `shards` needs.
    fn ensure<const D: usize>(&mut self, shards: &[MergeShardView<'_, D>], n_vertices: usize) {
        let n = n_vertices;
        self.labels.clear();
        self.labels.extend(0..n as u32);
        self.reps.clear();
        self.reps.extend(0..n as u32);
        self.relabel.resize(n, u32::MAX);
        // Every merge round resets the root slots it touched, so a reused
        // pool is already all-MAX; only a (re)size needs the fill.
        if self.min_of_root.len() != n {
            self.min_of_root.clear();
            self.min_of_root.resize(n, u32::MAX);
        }
        self.cand_a.clear();
        self.cand_a.resize(n, u32::MAX);
        self.cand_b.resize(n, u32::MAX);
        self.cand_d.resize(n, Scalar::INFINITY);
        self.upper.resize(n, Scalar::INFINITY);
        if self.comp_key.len() < n {
            self.comp_key.resize_with(n, AtomicU64Min::new_max);
            self.comp_pair.resize_with(n, AtomicU64Min::new_max);
        }
        self.dsu.reset(n);
        self.rank_labels.resize_with(shards.len(), Vec::new);
        self.node_labels.resize_with(shards.len(), Vec::new);
        self.flags.resize_with(shards.len(), Vec::new);
        self.changed_ranks.resize_with(shards.len(), Vec::new);
        for (s, shard) in shards.iter().enumerate() {
            let ns = shard.bvh.num_leaves();
            self.rank_labels[s].resize(ns, 0);
            self.node_labels[s].resize(shard.bvh.num_nodes(), INVALID_LABEL);
            self.flags[s].truncate(shard.bvh.num_internal());
            self.flags[s].resize_with(shard.bvh.num_internal(), || AtomicU32::new(0));
            self.changed_ranks[s].clear();
        }
        self.live_seeds.clear();
    }
}

/// Runs the cross-shard Borůvka merge over `shards` (all non-empty) with
/// candidate `seeds`, returning the MST of `H` (see module docs).
///
/// `bounds` carries the precomputed [`CrossBounds`] when the caller has
/// them cached (the resident-artifact paths); `None` recomputes them here.
/// `scratch` is the caller's allocation pool — reused across calls, never
/// carrying semantic state between them. `accel`, when given, must be an
/// accelerator for this exact cloud (same vertex numbering and shards,
/// initialised via [`MergeAccel::from_bounds`]): the merge starts its
/// working floors/candidates from it instead of the pristine bounds, and
/// deposits the round-1 harvest back into it. The selected edges are
/// bit-identical with or without it (every accel-driven skip is provably
/// work the walkers would have discarded).
///
/// Panics if `H` is disconnected, which cannot happen for the two callers:
/// local-MST seeds connect each shard internally and the cross-shard edge
/// set connects the shards to each other (any two shards induce a complete
/// bipartite graph).
#[allow(clippy::too_many_arguments)]
pub(crate) fn cross_shard_boruvka<S: ExecSpace, const D: usize>(
    space: &S,
    shards: &[MergeShardView<'_, D>],
    n_vertices: usize,
    seeds: &[Edge],
    traversal: Traversal,
    counters: &Counters,
    timings: &mut PhaseTimings,
    bounds: Option<&CrossBounds>,
    mut accel: Option<&mut MergeAccel>,
    deadline: Option<std::time::Instant>,
    scratch: &mut MergeScratch,
) -> Result<MergeOutcome, MergeDeadlineExceeded> {
    debug_assert!(shards.iter().all(|s| s.bvh.num_leaves() > 0));
    debug_assert_eq!(
        shards.iter().map(|s| s.bvh.num_leaves()).sum::<usize>(),
        n_vertices,
        "shards must partition the vertex set"
    );
    if n_vertices < 2 {
        return Ok(MergeOutcome {
            edges: vec![],
            rounds: 0,
            boundary_candidates: 0,
            round_details: vec![],
        });
    }

    let stride = shards.len();
    scratch.ensure(shards, n_vertices);
    let computed;
    let bounds = match bounds {
        Some(b) => b,
        None => {
            computed = CrossBounds::compute(space, shards, n_vertices, None);
            &computed
        }
    };
    let MergeScratch {
        reach,
        cross_dist,
        rank_labels,
        node_labels,
        flags,
        labels,
        dsu,
        comp_key,
        comp_pair,
        upper,
        cand_d,
        cand_a,
        cand_b,
        min_of_root,
        relabel,
        reps,
        changed_ranks,
        live_seeds,
    } = scratch;
    // Working copies: the query rounds tighten `cross_dist`/`reach` with
    // durable floors learned from failed queries, so the pristine bounds
    // stay untouched in the cache. An accelerator seeds tighter floors and
    // known candidates from earlier merges of the same cloud.
    let (shard_of, rank_of) = (&bounds.shard_of, &bounds.rank_of);
    match accel.as_deref() {
        Some(a) => {
            debug_assert_eq!(a.stride, stride, "accel built for a different sharding");
            debug_assert_eq!(a.cand_a.len(), n_vertices, "accel built for a different cloud");
            reach.clone_from(&a.reach);
            cross_dist.clone_from(&a.cross_dist);
            cand_d.copy_from_slice(&a.cand_d);
            cand_a.copy_from_slice(&a.cand_a);
            cand_b.copy_from_slice(&a.cand_b);
        }
        None => {
            reach.clone_from(&bounds.reach);
            cross_dist.clone_from(&bounds.cross_dist);
        }
    }
    live_seeds.extend_from_slice(seeds);

    let mut edges: Vec<Edge> = Vec::with_capacity(n_vertices - 1);
    let mut rounds = 0u32;
    let mut boundary_candidates = 0u64;
    let mut round_details: Vec<MergeRoundDetail> = vec![];
    let mut num_components = n_vertices;

    while num_components > 1 {
        let round_start = std::time::Instant::now();
        // The deadline is honoured at round granularity: a check here keeps
        // the hot inner kernels free of clock reads, and a round that has
        // begun always completes, so giving up never leaves the scratch in a
        // half-written state.
        if let Some(d) = deadline {
            if round_start >= d {
                return Err(MergeDeadlineExceeded);
            }
        }
        rounds += 1;
        assert!(
            rounds as usize <= usize::BITS as usize * 2,
            "cross-shard merge failed to converge"
        );

        // Phase 1: refresh node labels so traversals can skip subtrees
        // fully inside the query's component. Only ranks whose vertex
        // changed component last round need work: when many changed, the
        // full parallel reduction is cheapest; when few did (late rounds),
        // each changed leaf climbs toward the root recombining its
        // ancestors from their (current) children and stops at the first
        // unchanged node — exact either way, O(changes · height) instead
        // of O(nodes).
        timings.time("merge.labels", || {
            for (s, shard) in shards.iter().enumerate() {
                let bvh = shard.bvh;
                let ns = bvh.num_leaves();
                let changed = &mut changed_ranks[s];
                // Round 1 starts from a clean pool: everything needs its
                // first reduction regardless of the (empty) change list.
                let full = rounds == 1 || changed.len() >= ns / 2;
                if !full && changed.is_empty() {
                    continue;
                }
                if full {
                    {
                        let out = SyncUnsafeSlice::new(rank_labels[s].as_mut_slice());
                        let labels = &labels;
                        let vertex_of_rank = &shard.vertex_of_rank;
                        space.parallel_for(ns, |r| {
                            // SAFETY: one writer per slot, read after the
                            // kernel.
                            unsafe { out.write(r, labels[vertex_of_rank[r] as usize]) };
                        });
                    }
                    reduce_labels(space, bvh, &rank_labels[s], &mut node_labels[s], &flags[s]);
                    counters.add_bytes(bvh.num_nodes() as u64 * 8);
                } else {
                    let nl = &mut node_labels[s];
                    for &rank in changed.iter() {
                        let label = labels[shard.vertex_of_rank[rank as usize] as usize];
                        rank_labels[s][rank as usize] = label;
                        let leaf = bvh.leaf_id(rank);
                        nl[leaf as usize] = label;
                        if ns == 1 {
                            continue;
                        }
                        let mut node = bvh.parent(leaf);
                        while node != emst_bvh::INVALID_NODE {
                            let l = nl[bvh.left_child(node) as usize];
                            let r = nl[bvh.right_child(node) as usize];
                            let combined = if l == r { l } else { INVALID_LABEL };
                            if nl[node as usize] == combined {
                                break;
                            }
                            nl[node as usize] = combined;
                            node = bvh.parent(node);
                        }
                    }
                    counters.add_bytes(changed.len() as u64 * 8);
                }
                changed.clear();
            }
        });

        // Phase 2: reset per-round component minima and offer the seed
        // edges plus every vertex's still-cross candidate from earlier
        // rounds (the analogue of the paper's Optimization 2 upper bounds:
        // local-MST candidate edges and remembered cross edges in place of
        // Z-curve neighbour pairs). Components therefore enter phase 3 with
        // a tight traversal radius even after their seed edges die off.
        timings.time("merge.seeds", || {
            // Component minima are only ever indexed by canonical labels,
            // so resetting walks the representative list, not all of `n`.
            for &r in reps.iter() {
                comp_key[r as usize].store(u64::MAX);
            }
            let labels = &labels;
            let live_seeds = &live_seeds;
            space.parallel_for(live_seeds.len(), |i| {
                let e = live_seeds[i];
                let (lu, lv) = (labels[e.u as usize], labels[e.v as usize]);
                if lu != lv {
                    let key = pack_dist_payload(e.weight_sq, e.u);
                    comp_key[lu as usize].fetch_min(key);
                    comp_key[lv as usize].fetch_min(key);
                }
            });
            let (cand_d, cand_a, cand_b) = (&cand_d, &cand_a, &cand_b);
            space.parallel_for(n_vertices, |v| {
                let a = cand_a[v];
                if a == u32::MAX {
                    return;
                }
                let b = cand_b[v];
                let (la, lb) = (labels[a as usize], labels[b as usize]);
                if la != lb {
                    let key = pack_dist_payload(cand_d[v], a);
                    comp_key[la as usize].fetch_min(key);
                    comp_key[lb as usize].fetch_min(key);
                }
            });
            for &r in reps.iter() {
                let key = comp_key[r as usize].load();
                upper[r as usize] =
                    if key == u64::MAX { Scalar::INFINITY } else { unpack_dist_payload(key).0 };
            }
        });

        // Phase 3: one constrained nearest-neighbour query per point per
        // *other* shard, tracking the best candidate under the global
        // `(weight, min, max)` order inside the leaf callback.
        let work = timings.time("merge.query", || {
            let labels = &labels;
            let node_labels = &node_labels;
            let upper = &upper;
            let shard_of = &shard_of;
            let rank_of = &rank_of;
            let cand_d_s = SyncUnsafeSlice::new(cand_d.as_mut_slice());
            let cand_a_s = SyncUnsafeSlice::new(cand_a.as_mut_slice());
            let cand_b_s = SyncUnsafeSlice::new(cand_b.as_mut_slice());
            let reach_s = SyncUnsafeSlice::new(reach.as_mut_slice());
            let cross_s = SyncUnsafeSlice::new(cross_dist.as_mut_slice());
            space.parallel_reduce(
                n_vertices,
                QueryWork::default(),
                |v| {
                    let c = labels[v];
                    // Persistent-candidate skip: a still-cross candidate
                    // from an earlier round is provably still `v`'s minimum
                    // outgoing cross edge — components only merge, so the
                    // candidate set only shrinks, and anything better in
                    // the `(weight, min, max)` order was already
                    // same-component when the candidate was found. It is
                    // offered to both sides in phases 2 and 4, so the fresh
                    // query could only re-find it.
                    // SAFETY: slot `v` is only touched by this thread.
                    let a = unsafe { *cand_a_s.get(v) };
                    if a != u32::MAX
                        && labels[a as usize] != labels[unsafe { *cand_b_s.get(v) } as usize]
                    {
                        return QueryWork::default();
                    }
                    // No cross candidate can be accepted below the reach
                    // bound (walkers accept `dist <= radius` and prune
                    // strictly beyond), so this skip is exactly the set of
                    // queries that would have been pruned at every root.
                    // SAFETY (all slice accesses below): slot `v` / row
                    // `v * stride ..` is only touched by this thread.
                    if unsafe { *reach_s.get(v) } > upper[c as usize] {
                        return QueryWork::default();
                    }
                    let home = shard_of[v] as usize;
                    let query = shards[home].bvh.leaf_point(rank_of[v]);
                    let mut radius = upper[c as usize];
                    let mut best: Option<(u32, u32, u32)> = None; // (w bits, a, b)
                    let mut best_d = Scalar::INFINITY;
                    let mut work = QueryWork::default();
                    for (s, shard) in shards.iter().enumerate() {
                        if s == home || unsafe { *cross_s.get(v * stride + s) } > radius {
                            continue;
                        }
                        let nl = &node_labels[s];
                        if nl[shard.bvh.root() as usize] == c {
                            // The walker's own root skip, hoisted: the
                            // whole shard is inside `v`'s component — and
                            // will stay there, so the floor is permanent.
                            unsafe { cross_s.write(v * stride + s, Scalar::INFINITY) };
                            continue;
                        }
                        let mut saw_cross = false;
                        let mut st = TraversalStats::default();
                        let vor = &shard.vertex_of_rank;
                        shard.bvh.nearest_floor(
                            traversal,
                            query,
                            radius,
                            |node| nl[node as usize] == c,
                            |rank, e| {
                                let x = vor[rank as usize];
                                if labels[x as usize] == c {
                                    return None;
                                }
                                saw_cross = true;
                                let key = (
                                    nonneg_f32_to_ordered_bits(e),
                                    (v as u32).min(x),
                                    (v as u32).max(x),
                                );
                                if best.is_none_or(|b| key < b) {
                                    best = Some(key);
                                    best_d = e;
                                }
                                Some(e)
                            },
                            &mut st,
                        );
                        if !saw_cross {
                            // A failed query is a durable fact: every leaf
                            // of `s` the walker abandoned lies beyond the
                            // radius-pruned frontier, and every leaf it
                            // label-skipped is same-component forever. So
                            // the walker's pruning floor bounds `v`'s
                            // nearest cross point in `s` for all later
                            // rounds — raise the per-shard floor and never
                            // repeat a provably-empty query (`+inf` when
                            // the whole shard is same-component).
                            unsafe { cross_s.write(v * stride + s, st.pruned_min_sq) };
                        }
                        work.queries += 1;
                        work.stats = work.stats.merged(st);
                        if st.leaves > 0 {
                            work.boundary += 1;
                        }
                        radius = radius.min(best_d);
                    }
                    let row_min = (0..stride)
                        .filter(|&s| s != home)
                        .map(|s| unsafe { *cross_s.get(v * stride + s) })
                        .fold(Scalar::INFINITY, Scalar::min);
                    unsafe { reach_s.write(v, row_min) };
                    if let Some((_, a, b)) = best {
                        // SAFETY: one writer per slot `v`.
                        unsafe {
                            cand_d_s.write(v, best_d);
                            cand_a_s.write(v, a);
                            cand_b_s.write(v, b);
                        }
                        comp_key[c as usize].fetch_min(pack_dist_payload(best_d, a));
                    }
                    work
                },
                QueryWork::combine,
            )
        });
        boundary_candidates += work.boundary;
        counters.add_queries(work.queries);
        counters.add_node_visits(work.stats.nodes);
        counters.add_rope_hops(work.stats.rope_hops);
        counters.add_leaf_visits(work.stats.leaves);
        counters.add_distance_computations(work.stats.distances);
        counters.add_subtrees_skipped(work.stats.skipped);

        // Round 1's post-query working state is durable (see [`MergeAccel`]
        // docs): snapshot it before any label-dependent round can taint the
        // working arrays. Later rounds never write back.
        if rounds == 1 {
            if let Some(a) = accel.as_deref_mut() {
                timings.time("merge.harvest", || {
                    a.harvest(cross_dist, reach, cand_d, cand_a, cand_b);
                });
            }
        }

        // Phase 4: resolve each component's winner. Among candidates that
        // attain `comp_key = (weight, min endpoint)`, the smallest packed
        // `(min, max)` pair wins — completing the total order.
        timings.time("merge.select", || {
            let labels = &labels;
            let live_seeds = &live_seeds;
            // As with `comp_key`: only canonical labels are indexed.
            for &r in reps.iter() {
                comp_pair[r as usize].store(u64::MAX);
            }
            space.parallel_for(live_seeds.len(), |i| {
                let e = live_seeds[i];
                let (lu, lv) = (labels[e.u as usize], labels[e.v as usize]);
                if lu == lv {
                    return;
                }
                let key = pack_dist_payload(e.weight_sq, e.u);
                let pair = ((e.u as u64) << 32) | e.v as u64;
                if key == comp_key[lu as usize].load() {
                    comp_pair[lu as usize].fetch_min(pair);
                }
                if key == comp_key[lv as usize].load() {
                    comp_pair[lv as usize].fetch_min(pair);
                }
            });
            let (cand_d, cand_a, cand_b) = (&cand_d, &cand_a, &cand_b);
            space.parallel_for(n_vertices, |v| {
                let a = cand_a[v];
                if a == u32::MAX {
                    return;
                }
                // Stale (now intra-component) candidates must not compete:
                // a coincidental `(weight, min endpoint)` match would let a
                // dead pair shadow the true winner.
                let b = cand_b[v];
                let (la, lb) = (labels[a as usize], labels[b as usize]);
                if la == lb {
                    return;
                }
                let key = pack_dist_payload(cand_d[v], a);
                let pair = ((a as u64) << 32) | b as u64;
                if key == comp_key[la as usize].load() {
                    comp_pair[la as usize].fetch_min(pair);
                }
                if key == comp_key[lb as usize].load() {
                    comp_pair[lb as usize].fetch_min(pair);
                }
            });
        });

        // Phase 5: merge along the chosen edges and relabel canonically.
        // Union/bookkeeping walks the representative list — O(components),
        // not O(n) — and only the final relabel scan touches every vertex,
        // collecting the changed ranks that drive next round's incremental
        // label update.
        timings.time("merge.union", || {
            for &r in reps.iter() {
                let v = r as usize;
                let pair = comp_pair[v].load();
                assert_ne!(pair, u64::MAX, "component {v} found no outgoing edge");
                let (a, b) = ((pair >> 32) as u32, pair as u32);
                let w = unpack_dist_payload(comp_key[v].load()).0;
                if dsu.union(a as usize, b as usize) {
                    edges.push(Edge::new(a, b, w));
                }
            }
            // New canonical label of each merged set = the smallest old
            // representative in it (components only grow, so canonical
            // labels only decrease). `min_of_root` is keyed by DSU root,
            // `relabel` by old representative.
            for &r in reps.iter() {
                let root = dsu.find(r as usize);
                min_of_root[root] = min_of_root[root].min(r);
            }
            let mut new_reps = Vec::with_capacity(reps.len() / 2 + 1);
            for &r in reps.iter() {
                let new = min_of_root[dsu.find(r as usize)];
                relabel[r as usize] = new;
                if new == r {
                    new_reps.push(r);
                }
            }
            // Reset only the root slots this round touched.
            for &r in reps.iter() {
                min_of_root[dsu.find(r as usize)] = u32::MAX;
            }
            *reps = new_reps;
            for v in 0..n_vertices {
                let old = labels[v];
                let new = relabel[old as usize];
                if old != new {
                    labels[v] = new;
                    changed_ranks[shard_of[v] as usize].push(rank_of[v]);
                }
            }
            live_seeds.retain(|e| labels[e.u as usize] != labels[e.v as usize]);
            counters.add_bytes(n_vertices as u64 * 12);
        });

        num_components = reps.len();
        round_details.push(MergeRoundDetail {
            round: rounds,
            secs: round_start.elapsed().as_secs_f64(),
            queries: work.queries,
            boundary: work.boundary,
            stats: work.stats,
        });
    }

    assert_eq!(edges.len(), n_vertices - 1, "merge did not produce a spanning tree");
    Ok(MergeOutcome { edges, rounds, boundary_candidates, round_details })
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_core::brute::brute_force_emst;
    use emst_core::edge::{verify_spanning_tree, weight_multiset};
    use emst_exec::Serial;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points_2d(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(-1.0f32..1.0), rng.random_range(-1.0f32..1.0)]))
            .collect()
    }

    /// Two shards, no seeds: the engine computes the spanning tree of the
    /// complete bipartite cross graph, verified against a brute-force
    /// bipartite Borůvka oracle's weight multiset.
    #[test]
    fn bipartite_merge_matches_brute_force() {
        let pts = random_points_2d(60, 5);
        let (a, b) = pts.split_at(25);
        let va: Vec<u32> = (0..25).collect();
        let vb: Vec<u32> = (25..60).collect();
        let shards = [MergeShard::build(&Serial, a, &va), MergeShard::build(&Serial, b, &vb)];
        let views: Vec<_> = shards.iter().map(MergeShard::view).collect();
        let counters = Counters::new();
        let mut timings = PhaseTimings::new();
        let out = cross_shard_boruvka(
            &Serial,
            &views,
            60,
            &[],
            Traversal::default(),
            &counters,
            &mut timings,
            None,
            None,
            None,
            &mut MergeScratch::new(),
        )
        .unwrap();
        assert_eq!(out.edges.len(), 59);
        verify_spanning_tree(60, &out.edges).unwrap();
        // One detail record per round, rounds numbered from 1, and the
        // per-round boundary counts must sum to the outcome's total.
        assert_eq!(out.round_details.len() as u32, out.rounds);
        assert!(out
            .round_details
            .iter()
            .enumerate()
            .all(|(i, d)| d.round == i as u32 + 1 && d.secs >= 0.0));
        assert_eq!(
            out.round_details.iter().map(|d| d.boundary).sum::<u64>(),
            out.boundary_candidates
        );

        // Oracle: Kruskal over all cross edges only.
        let mut cross: Vec<Edge> = vec![];
        for u in 0..25u32 {
            for v in 25..60u32 {
                cross.push(Edge::new(u, v, pts[u as usize].squared_distance(&pts[v as usize])));
            }
        }
        let g = emst_graph::WeightedGraph::new(60, cross.iter().map(|e| (e.u, e.v, e.weight_sq)));
        let oracle = emst_graph::kruskal(&g);
        assert_eq!(weight_multiset(&out.edges), weight_multiset(&oracle));
    }

    /// One shard plus its local MST as seeds: the merge must reproduce the
    /// EMST exactly (no cross queries are possible).
    #[test]
    fn single_shard_merge_reassembles_local_mst() {
        let pts = random_points_2d(120, 7);
        let vertices: Vec<u32> = (0..120).collect();
        let seeds = brute_force_emst(&pts);
        let shards = [MergeShard::build(&Serial, &pts, &vertices)];
        let views: Vec<_> = shards.iter().map(MergeShard::view).collect();
        let counters = Counters::new();
        let mut timings = PhaseTimings::new();
        let out = cross_shard_boruvka(
            &Serial,
            &views,
            120,
            &seeds,
            Traversal::default(),
            &counters,
            &mut timings,
            None,
            None,
            None,
            &mut MergeScratch::new(),
        )
        .unwrap();
        verify_spanning_tree(120, &out.edges).unwrap();
        assert_eq!(weight_multiset(&out.edges), weight_multiset(&seeds));
        assert_eq!(out.boundary_candidates, 0);
    }

    /// Repeated merges through a shared accelerator stay bit-identical to
    /// the accel-free merge, while the accelerator itself only tightens:
    /// floors grow monotonically and known candidates never vanish.
    #[test]
    fn accelerated_merges_are_bit_identical_and_monotone() {
        let pts = random_points_2d(90, 13);
        let (a, b) = pts.split_at(40);
        let va: Vec<u32> = (0..40).collect();
        let vb: Vec<u32> = (40..90).collect();
        let shards = [MergeShard::build(&Serial, a, &va), MergeShard::build(&Serial, b, &vb)];
        let views: Vec<_> = shards.iter().map(MergeShard::view).collect();
        let bounds = CrossBounds::compute(&Serial, &views, 90, None);
        // Local-MST seeds give every vertex a finite round-1 radius, so
        // interior queries fail and raise durable floors.
        let mut seeds = brute_force_emst(a);
        seeds
            .extend(brute_force_emst(b).iter().map(|e| Edge::new(e.u + 40, e.v + 40, e.weight_sq)));
        let counters = Counters::new();
        let mut scratch = MergeScratch::new();

        let seeds = &seeds;
        let mut run = |accel: Option<&mut MergeAccel>| {
            let mut timings = PhaseTimings::new();
            cross_shard_boruvka(
                &Serial,
                &views,
                90,
                seeds,
                Traversal::default(),
                &counters,
                &mut timings,
                Some(&bounds),
                accel,
                None,
                &mut scratch,
            )
            .unwrap()
            .edges
        };
        let baseline = run(None);

        let mut accel = MergeAccel::from_bounds(&bounds, 90, 2);
        let pristine_mass = accel.floor_mass();
        let mut last_mass = pristine_mass;
        let mut last_cands = 0;
        for _ in 0..3 {
            let edges = run(Some(&mut accel));
            assert_eq!(edges, baseline, "accelerated merge must stay bit-identical");
            assert!(accel.floor_mass() >= last_mass, "floors must only tighten");
            assert!(accel.num_candidates() >= last_cands, "candidates must persist");
            last_mass = accel.floor_mass();
            last_cands = accel.num_candidates();
        }
        assert!(last_cands > 0, "round 1 must have harvested some candidates");
        assert!(last_mass > pristine_mass, "failed queries must have raised floors");

        // Absorbing a fresh harvest into a pristine accel reproduces it —
        // and absorbing it again is idempotent.
        let mut merged = MergeAccel::from_bounds(&bounds, 90, 2);
        merged.absorb(&accel);
        merged.absorb(&accel);
        assert_eq!(merged.floor_mass(), accel.floor_mass());
        assert_eq!(merged.num_candidates(), accel.num_candidates());
        let edges = run(Some(&mut merged));
        assert_eq!(edges, baseline);
    }

    #[test]
    fn trivial_sizes() {
        let pts = [Point::new([0.0f32, 0.0])];
        let shards = [MergeShard::build(&Serial, &pts, &[0])];
        let views: Vec<_> = shards.iter().map(MergeShard::view).collect();
        let counters = Counters::new();
        let mut timings = PhaseTimings::new();
        let out = cross_shard_boruvka(
            &Serial,
            &views,
            1,
            &[],
            Traversal::default(),
            &counters,
            &mut timings,
            None,
            None,
            None,
            &mut MergeScratch::new(),
        )
        .unwrap();
        assert!(out.edges.is_empty());
        assert_eq!(out.rounds, 0);
    }
}
