//! The cross-shard Borůvka merge.
//!
//! Given a set of resident shards (each a BVH over its points) plus a list
//! of *seed* candidate edges, this engine computes the exact minimum
//! spanning tree of the graph
//!
//! ```text
//! H  =  seeds  ∪  { every edge between points of different shards }
//! ```
//!
//! by Borůvka rounds from singleton components. Each round, a component's
//! shortest outgoing edge is the minimum — under the strict total order
//! `(weight, min endpoint, max endpoint)` — of
//!
//! - the seed edges leaving it (scanned directly), and
//! - its shortest cross-shard edge, found by one constrained
//!   nearest-neighbour traversal per point against every *other* shard's
//!   BVH (the same [`Bvh::nearest_with`] kernel as the monolithic
//!   algorithm, with the component-skip predicate of the paper's
//!   Optimization 1 maintained per shard by [`reduce_labels`]).
//!
//! Why this is exact for the sharded EMST: by the cycle property, an
//! intra-shard edge discarded by that shard's local MST is the heaviest
//! edge of an intra-shard cycle and therefore in no MST of the full point
//! set; so `MST(complete graph) ⊆ (local MST edges) ∪ (cross-shard
//! edges) = H`, and `MST(H) = MST(complete graph)`. Seeding with the local
//! MST edges also gives every interior point a tight traversal radius, so
//! cross-shard queries are root-pruned everywhere except near shard
//! boundaries — the "boundary region" of the queries emerges from the
//! radius bound rather than from an explicit margin.
//!
//! The per-point query tracks its best candidate under the *global* edge
//! order inside the leaf callback (the traversal's own tie-breaking is by
//! Morton rank within one shard, which is meaningless across shards), so
//! every component selects the true total-order minimum and the merged
//! edge set is the unique MST of `H` — no cycle can form, and the
//! union–find merge step never has to discard a chosen edge.

use std::sync::atomic::AtomicU32;

use emst_bvh::{Bvh, Traversal, TraversalStats};
use emst_core::labels::{reduce_labels, INVALID_LABEL};
use emst_core::{Edge, UnionFind};
use emst_exec::atomic::{pack_dist_payload, unpack_dist_payload};
use emst_exec::{AtomicU64Min, Counters, ExecSpace, PhaseTimings, SyncUnsafeSlice};
use emst_geometry::{nonneg_f32_to_ordered_bits, Point, Scalar};

/// A shard resident in memory for the merge: its BVH plus the caller's
/// vertex id for every Morton rank. Vertex ids must be unique across all
/// shards and contiguous in `0..n_vertices`.
pub(crate) struct MergeShard<const D: usize> {
    pub bvh: Bvh<D>,
    pub vertex_of_rank: Vec<u32>,
}

impl<const D: usize> MergeShard<D> {
    /// Builds a resident shard from points and their vertex ids (parallel
    /// arrays; `vertices[i]` is the id of `points[i]`).
    pub fn build<S: ExecSpace>(space: &S, points: &[Point<D>], vertices: &[u32]) -> Self {
        debug_assert_eq!(points.len(), vertices.len());
        let bvh = Bvh::build(space, points);
        let vertex_of_rank =
            (0..points.len() as u32).map(|r| vertices[bvh.point_index(r) as usize]).collect();
        Self { bvh, vertex_of_rank }
    }
}

/// Outcome of a merge.
pub(crate) struct MergeOutcome {
    /// The `n_vertices − 1` MST edges of `H`, in vertex ids.
    pub edges: Vec<Edge>,
    /// Borůvka rounds executed.
    pub rounds: u32,
    /// Cross-shard queries that actually tested at least one leaf (i.e.
    /// were not pruned at the other shard's root) — the effective boundary
    /// candidate count.
    pub boundary_candidates: u64,
}

/// Per-query accumulation for the reduction: traversal work plus the count
/// of queries that reached a leaf.
#[derive(Clone, Copy, Default)]
struct QueryWork {
    stats: TraversalStats,
    queries: u64,
    boundary: u64,
}

impl QueryWork {
    fn combine(a: Self, b: Self) -> Self {
        Self {
            stats: a.stats.merged(b.stats),
            queries: a.queries + b.queries,
            boundary: a.boundary + b.boundary,
        }
    }
}

/// Runs the cross-shard Borůvka merge over `shards` (all non-empty) with
/// candidate `seeds`, returning the MST of `H` (see module docs).
///
/// Panics if `H` is disconnected, which cannot happen for the two callers:
/// local-MST seeds connect each shard internally and the cross-shard edge
/// set connects the shards to each other (any two shards induce a complete
/// bipartite graph).
pub(crate) fn cross_shard_boruvka<S: ExecSpace, const D: usize>(
    space: &S,
    shards: &[MergeShard<D>],
    n_vertices: usize,
    seeds: &[Edge],
    traversal: Traversal,
    counters: &Counters,
    timings: &mut PhaseTimings,
) -> MergeOutcome {
    debug_assert!(shards.iter().all(|s| s.bvh.num_leaves() > 0));
    debug_assert_eq!(
        shards.iter().map(|s| s.bvh.num_leaves()).sum::<usize>(),
        n_vertices,
        "shards must partition the vertex set"
    );
    if n_vertices < 2 {
        return MergeOutcome { edges: vec![], rounds: 0, boundary_candidates: 0 };
    }

    // vertex -> (owning shard, Morton rank inside it).
    let mut shard_of = vec![0u32; n_vertices];
    let mut rank_of = vec![0u32; n_vertices];
    for (s, shard) in shards.iter().enumerate() {
        for (rank, &v) in shard.vertex_of_rank.iter().enumerate() {
            shard_of[v as usize] = s as u32;
            rank_of[v as usize] = rank as u32;
        }
    }

    // Per-shard label-reduction scratch (Optimization 1 state).
    let mut rank_labels: Vec<Vec<u32>> =
        shards.iter().map(|s| vec![0u32; s.bvh.num_leaves()]).collect();
    let mut node_labels: Vec<Vec<u32>> =
        shards.iter().map(|s| vec![INVALID_LABEL; s.bvh.num_nodes()]).collect();
    let flags: Vec<Vec<AtomicU32>> = shards
        .iter()
        .map(|s| (0..s.bvh.num_internal()).map(|_| AtomicU32::new(0)).collect())
        .collect();

    // Component state. Labels are canonical: the smallest vertex id of the
    // component, so `labels[v] == v` identifies representatives.
    let mut labels: Vec<u32> = (0..n_vertices as u32).collect();
    let mut dsu = UnionFind::new(n_vertices);
    let comp_key: Vec<AtomicU64Min> = (0..n_vertices).map(|_| AtomicU64Min::new_max()).collect();
    let comp_pair: Vec<AtomicU64Min> = (0..n_vertices).map(|_| AtomicU64Min::new_max()).collect();
    let mut upper = vec![Scalar::INFINITY; n_vertices];
    let mut cand_d = vec![Scalar::INFINITY; n_vertices];
    let mut cand_a = vec![u32::MAX; n_vertices];
    let mut cand_b = vec![u32::MAX; n_vertices];
    let mut min_of_root = vec![u32::MAX; n_vertices];

    let mut edges: Vec<Edge> = Vec::with_capacity(n_vertices - 1);
    let mut rounds = 0u32;
    let mut boundary_candidates = 0u64;
    let mut num_components = n_vertices;

    while num_components > 1 {
        rounds += 1;
        assert!(
            rounds as usize <= usize::BITS as usize * 2,
            "cross-shard merge failed to converge"
        );

        // Phase 1: refresh every shard's node labels so traversals can skip
        // subtrees fully inside the query's component.
        timings.time("merge.labels", || {
            for (s, shard) in shards.iter().enumerate() {
                let ns = shard.bvh.num_leaves();
                {
                    let out = SyncUnsafeSlice::new(&mut rank_labels[s]);
                    let labels = &labels;
                    let vertex_of_rank = &shard.vertex_of_rank;
                    space.parallel_for(ns, |r| {
                        // SAFETY: one writer per slot, read after the kernel.
                        unsafe { out.write(r, labels[vertex_of_rank[r] as usize]) };
                    });
                }
                reduce_labels(space, &shard.bvh, &rank_labels[s], &mut node_labels[s], &flags[s]);
            }
            counters.add_bytes(shards.iter().map(|s| s.bvh.num_nodes() as u64 * 8).sum());
        });

        // Phase 2: reset per-round state and offer the seed edges, which
        // also yields each component's traversal radius (the analogue of
        // the paper's Optimization 2 upper bounds, with local-MST candidate
        // edges in place of Z-curve neighbour pairs).
        timings.time("merge.seeds", || {
            space.parallel_for(n_vertices, |v| comp_key[v].store(u64::MAX));
            {
                let cand_a_s = SyncUnsafeSlice::new(&mut cand_a);
                space.parallel_for(n_vertices, |v| {
                    // SAFETY: one writer per slot.
                    unsafe { cand_a_s.write(v, u32::MAX) };
                });
            }
            let labels = &labels;
            space.parallel_for(seeds.len(), |i| {
                let e = seeds[i];
                let (lu, lv) = (labels[e.u as usize], labels[e.v as usize]);
                if lu != lv {
                    let key = pack_dist_payload(e.weight_sq, e.u);
                    comp_key[lu as usize].fetch_min(key);
                    comp_key[lv as usize].fetch_min(key);
                }
            });
            let upper_s = SyncUnsafeSlice::new(&mut upper);
            space.parallel_for(n_vertices, |v| {
                let key = comp_key[v].load();
                let r = if key == u64::MAX { Scalar::INFINITY } else { unpack_dist_payload(key).0 };
                // SAFETY: one writer per slot.
                unsafe { upper_s.write(v, r) };
            });
        });

        // Phase 3: one constrained nearest-neighbour query per point per
        // *other* shard, tracking the best candidate under the global
        // `(weight, min, max)` order inside the leaf callback.
        timings.time("merge.query", || {
            let labels = &labels;
            let node_labels = &node_labels;
            let upper = &upper;
            let shard_of = &shard_of;
            let rank_of = &rank_of;
            let cand_d_s = SyncUnsafeSlice::new(&mut cand_d);
            let cand_a_s = SyncUnsafeSlice::new(&mut cand_a);
            let cand_b_s = SyncUnsafeSlice::new(&mut cand_b);
            let work = space.parallel_reduce(
                n_vertices,
                QueryWork::default(),
                |v| {
                    let c = labels[v];
                    let home = shard_of[v] as usize;
                    let query = shards[home].bvh.leaf_point(rank_of[v]);
                    let mut radius = upper[c as usize];
                    let mut best: Option<(u32, u32, u32)> = None; // (w bits, a, b)
                    let mut best_d = Scalar::INFINITY;
                    let mut work = QueryWork::default();
                    for (s, shard) in shards.iter().enumerate() {
                        if s == home {
                            continue;
                        }
                        let mut st = TraversalStats::default();
                        let nl = &node_labels[s];
                        let vor = &shard.vertex_of_rank;
                        shard.bvh.nearest(
                            traversal,
                            query,
                            radius,
                            |node| nl[node as usize] == c,
                            |rank, e| {
                                let x = vor[rank as usize];
                                if labels[x as usize] == c {
                                    return None;
                                }
                                let key = (
                                    nonneg_f32_to_ordered_bits(e),
                                    (v as u32).min(x),
                                    (v as u32).max(x),
                                );
                                if best.is_none_or(|b| key < b) {
                                    best = Some(key);
                                    best_d = e;
                                }
                                Some(e)
                            },
                            &mut st,
                        );
                        work.queries += 1;
                        work.stats = work.stats.merged(st);
                        if st.leaves > 0 {
                            work.boundary += 1;
                        }
                        radius = radius.min(best_d);
                    }
                    if let Some((_, a, b)) = best {
                        // SAFETY: one writer per slot `v`.
                        unsafe {
                            cand_d_s.write(v, best_d);
                            cand_a_s.write(v, a);
                            cand_b_s.write(v, b);
                        }
                        comp_key[c as usize].fetch_min(pack_dist_payload(best_d, a));
                    }
                    work
                },
                QueryWork::combine,
            );
            boundary_candidates += work.boundary;
            counters.add_queries(work.queries);
            counters.add_node_visits(work.stats.nodes);
            counters.add_rope_hops(work.stats.rope_hops);
            counters.add_leaf_visits(work.stats.leaves);
            counters.add_distance_computations(work.stats.distances);
            counters.add_subtrees_skipped(work.stats.skipped);
        });

        // Phase 4: resolve each component's winner. Among candidates that
        // attain `comp_key = (weight, min endpoint)`, the smallest packed
        // `(min, max)` pair wins — completing the total order.
        timings.time("merge.select", || {
            let labels = &labels;
            space.parallel_for(n_vertices, |v| comp_pair[v].store(u64::MAX));
            space.parallel_for(seeds.len(), |i| {
                let e = seeds[i];
                let (lu, lv) = (labels[e.u as usize], labels[e.v as usize]);
                if lu == lv {
                    return;
                }
                let key = pack_dist_payload(e.weight_sq, e.u);
                let pair = ((e.u as u64) << 32) | e.v as u64;
                if key == comp_key[lu as usize].load() {
                    comp_pair[lu as usize].fetch_min(pair);
                }
                if key == comp_key[lv as usize].load() {
                    comp_pair[lv as usize].fetch_min(pair);
                }
            });
            let cand_d = &cand_d;
            let cand_a = &cand_a;
            let cand_b = &cand_b;
            space.parallel_for(n_vertices, |v| {
                if cand_a[v] == u32::MAX {
                    return;
                }
                let c = labels[v] as usize;
                if pack_dist_payload(cand_d[v], cand_a[v]) == comp_key[c].load() {
                    comp_pair[c].fetch_min(((cand_a[v] as u64) << 32) | cand_b[v] as u64);
                }
            });
        });

        // Phase 5: merge along the chosen edges and relabel canonically.
        timings.time("merge.union", || {
            for v in 0..n_vertices {
                if labels[v] != v as u32 {
                    continue;
                }
                let pair = comp_pair[v].load();
                assert_ne!(pair, u64::MAX, "component {v} found no outgoing edge");
                let (a, b) = ((pair >> 32) as u32, pair as u32);
                let w = unpack_dist_payload(comp_key[v].load()).0;
                if dsu.union(a as usize, b as usize) {
                    edges.push(Edge::new(a, b, w));
                }
            }
            min_of_root.fill(u32::MAX);
            for v in 0..n_vertices {
                let r = dsu.find(v);
                min_of_root[r] = min_of_root[r].min(v as u32);
            }
            for v in 0..n_vertices {
                labels[v] = min_of_root[dsu.find(v)];
            }
            counters.add_bytes(n_vertices as u64 * 12);
        });

        num_components = dsu.num_sets();
    }

    assert_eq!(edges.len(), n_vertices - 1, "merge did not produce a spanning tree");
    MergeOutcome { edges, rounds, boundary_candidates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_core::brute::brute_force_emst;
    use emst_core::edge::{verify_spanning_tree, weight_multiset};
    use emst_exec::Serial;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points_2d(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(-1.0f32..1.0), rng.random_range(-1.0f32..1.0)]))
            .collect()
    }

    /// Two shards, no seeds: the engine computes the spanning tree of the
    /// complete bipartite cross graph, verified against a brute-force
    /// bipartite Borůvka oracle's weight multiset.
    #[test]
    fn bipartite_merge_matches_brute_force() {
        let pts = random_points_2d(60, 5);
        let (a, b) = pts.split_at(25);
        let va: Vec<u32> = (0..25).collect();
        let vb: Vec<u32> = (25..60).collect();
        let shards = vec![MergeShard::build(&Serial, a, &va), MergeShard::build(&Serial, b, &vb)];
        let counters = Counters::new();
        let mut timings = PhaseTimings::new();
        let out = cross_shard_boruvka(
            &Serial,
            &shards,
            60,
            &[],
            Traversal::default(),
            &counters,
            &mut timings,
        );
        assert_eq!(out.edges.len(), 59);
        verify_spanning_tree(60, &out.edges).unwrap();

        // Oracle: Kruskal over all cross edges only.
        let mut cross: Vec<Edge> = vec![];
        for u in 0..25u32 {
            for v in 25..60u32 {
                cross.push(Edge::new(u, v, pts[u as usize].squared_distance(&pts[v as usize])));
            }
        }
        let g = emst_graph::WeightedGraph::new(60, cross.iter().map(|e| (e.u, e.v, e.weight_sq)));
        let oracle = emst_graph::kruskal(&g);
        assert_eq!(weight_multiset(&out.edges), weight_multiset(&oracle));
    }

    /// One shard plus its local MST as seeds: the merge must reproduce the
    /// EMST exactly (no cross queries are possible).
    #[test]
    fn single_shard_merge_reassembles_local_mst() {
        let pts = random_points_2d(120, 7);
        let vertices: Vec<u32> = (0..120).collect();
        let seeds = brute_force_emst(&pts);
        let shards = vec![MergeShard::build(&Serial, &pts, &vertices)];
        let counters = Counters::new();
        let mut timings = PhaseTimings::new();
        let out = cross_shard_boruvka(
            &Serial,
            &shards,
            120,
            &seeds,
            Traversal::default(),
            &counters,
            &mut timings,
        );
        verify_spanning_tree(120, &out.edges).unwrap();
        assert_eq!(weight_multiset(&out.edges), weight_multiset(&seeds));
        assert_eq!(out.boundary_candidates, 0);
    }

    #[test]
    fn trivial_sizes() {
        let pts = [Point::new([0.0f32, 0.0])];
        let shards = vec![MergeShard::build(&Serial, &pts, &[0])];
        let counters = Counters::new();
        let mut timings = PhaseTimings::new();
        let out = cross_shard_boruvka(
            &Serial,
            &shards,
            1,
            &[],
            Traversal::default(),
            &counters,
            &mut timings,
        );
        assert!(out.edges.is_empty());
        assert_eq!(out.rounds, 0);
    }
}
