//! Out-of-core sharded EMST: stream shards from CSV so the input is never
//! fully resident.
//!
//! The pipeline makes three sequential passes over the input file through
//! [`emst_datasets::io::read_points_chunked`] (one chunk resident at a
//! time), then works shard-by-shard:
//!
//! 1. **scan** — count points and accumulate the scene bounding box;
//! 2. **histogram** — bucket every point by the top 16 bits of its Morton
//!    code and cut the bucket axis into `K` ranges of roughly equal count
//!    (equal codes share a bucket, so duplicates always land in one shard —
//!    the same invariant as [`crate::ShardPlan`]);
//! 3. **route** — append every point (with its original index) to its
//!    shard's spill file;
//! 4. **local** — load one shard at a time and solve its EMST with the
//!    single-tree algorithm, keeping only the edge list;
//! 5. **pairs** — for every pair of non-empty shards, load the two shards
//!    and compute the spanning tree of their complete *bipartite* cross
//!    graph with the same constrained-query Borůvka engine as the
//!    in-memory merge. By the cycle property, `MST(all cross edges) ⊆
//!    ⋃ᵢⱼ MST(cross edges between i and j)`, so these trees plus the local
//!    MSTs contain the global EMST;
//! 6. **assemble** — Kruskal over the ~`(K + 1)·n` candidate edges (edges
//!    are resident, points are not).
//!
//! Peak point residency is `max(chunk, largest shard, largest shard pair)`
//! — reported in [`ShardStats::peak_resident`]. The `O(K²)` pair pass
//! bounds sensible `K` to a few dozen; pruning far-apart pairs is a
//! ROADMAP item.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use emst_core::edge::total_weight;
use emst_core::{Edge, EmstConfig, SingleTreeBoruvka};
use emst_datasets::io::read_points_chunked;
use emst_exec::counters::CounterSnapshot;
use emst_exec::{Counters, ExecSpace, PhaseTimings};
use emst_geometry::{Aabb, Point};
use emst_morton::MortonEncoder;

use crate::merge::{cross_shard_boruvka, MergeScratch, MergeShard};
use crate::{ShardStats, ShardedResult};

/// Number of Morton-prefix buckets used to balance the streaming split.
const BUCKETS: usize = 1 << 16;

/// Configuration of an out-of-core sharded solve.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Number of shards. `0` derives a count from `max_resident` so that a
    /// pair of average shards fits in the residency target.
    pub shards: usize,
    /// Target bound on simultaneously resident points (advisory: a single
    /// overfull shard — e.g. all-duplicate inputs — can exceed it; the
    /// actual peak is reported in [`ShardStats::peak_resident`]).
    pub max_resident: usize,
    /// Points per streamed chunk (clamped to `max_resident` when a cap is
    /// set — the in-flight chunk counts toward residency too).
    pub chunk_points: usize,
    /// Configuration forwarded to every per-shard single-tree solve.
    pub emst: EmstConfig,
}

impl StreamConfig {
    /// Default configuration with `shards` shards and a residency target.
    pub fn new(shards: usize, max_resident: usize) -> Self {
        Self { shards, max_resident, chunk_points: 4096, emst: EmstConfig::default() }
    }
}

/// One spilled point: original index plus coordinates.
type Spilled<const D: usize> = (u32, Point<D>);

/// Computes the EMST of the CSV point cloud at `path` without ever holding
/// all points in memory. The edge-weight multiset equals the in-memory and
/// monolithic solves.
pub fn emst_sharded_csv<S: ExecSpace, const D: usize>(
    space: &S,
    path: &Path,
    config: &StreamConfig,
) -> io::Result<ShardedResult> {
    let mut timings = PhaseTimings::new();
    let counters = Counters::new();
    // The streamed chunk is resident too, so it must fit under the cap.
    let chunk = match config.max_resident {
        0 => config.chunk_points.max(1),
        cap => config.chunk_points.clamp(1, cap),
    };

    // Pass 1: point count and scene bounding box.
    let mut scene = Aabb::<D>::empty();
    let n = timings.time("scan", || {
        read_points_chunked::<D>(path, chunk, |_, pts| {
            for p in pts {
                scene = scene.union(&Aabb::from_point(*p));
            }
            Ok(())
        })
    })?;
    if n < 2 {
        let mut result = ShardedResult::empty();
        // Report the (trivial) input size so callers can tell "empty file"
        // from "one point", matching the in-memory stats.
        result.stats.shard_sizes = vec![n];
        result.stats.peak_resident = n;
        result.stats.timings = timings;
        return Ok(result);
    }
    assert!(n <= u32::MAX as usize, "more than u32::MAX points");

    let k = if config.shards > 0 {
        config.shards
    } else {
        (2 * n).div_ceil(config.max_resident.max(1)).clamp(1, 256)
    };
    let encoder = MortonEncoder::new(&scene);
    let bucket_of = |p: &Point<D>| (encoder.encode_u64(p) >> 48) as usize;

    // Pass 2: Morton-prefix histogram, cut into K contiguous bucket ranges.
    let mut counts = vec![0usize; BUCKETS];
    timings.time("histogram", || {
        read_points_chunked::<D>(path, chunk, |_, pts| {
            for p in pts {
                counts[bucket_of(p)] += 1;
            }
            Ok(())
        })
    })?;
    let shard_of_bucket = split_buckets(&counts, n, k);

    // Pass 3: route points (with their original indices) to spill files.
    let dir = spill_dir(path)?;
    let result = stream_shards::<S, D>(
        space,
        path,
        config,
        chunk,
        n,
        k,
        &dir,
        &shard_of_bucket,
        bucket_of,
        &counters,
        &mut timings,
    );
    std::fs::remove_dir_all(&dir).ok();
    result
}

/// Assigns each Morton-prefix bucket to a shard, targeting `n / k` points
/// per shard while keeping bucket (and hence code) ranges contiguous.
fn split_buckets(counts: &[usize], n: usize, k: usize) -> Vec<u32> {
    let target = n.div_ceil(k);
    let mut shard_of_bucket = vec![0u32; counts.len()];
    let mut shard = 0usize;
    let mut acc = 0usize;
    for (b, &c) in counts.iter().enumerate() {
        if acc >= target && shard + 1 < k {
            shard += 1;
            acc = 0;
        }
        shard_of_bucket[b] = shard as u32;
        acc += c;
    }
    shard_of_bucket
}

fn spill_dir(input: &Path) -> io::Result<PathBuf> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut dir = std::env::temp_dir();
    dir.push(format!("emst-shard-spill-{}-{unique}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let _ = input; // the directory is process-unique; the input path is not needed
    Ok(dir)
}

fn spill_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.csv"))
}

/// Loads one shard's spill file: `index,coord0,...` lines.
fn load_spill<const D: usize>(dir: &Path, shard: usize) -> io::Result<Vec<Spilled<D>>> {
    let mut out = vec![];
    let mut reader = BufReader::new(File::open(spill_path(dir, shard))?);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(out);
        }
        let mut fields = line.trim().split(',');
        let bad = || io::Error::new(io::ErrorKind::InvalidData, "corrupt spill file");
        let idx: u32 = fields.next().and_then(|f| f.parse().ok()).ok_or_else(bad)?;
        let mut coords = [0.0f32; D];
        for c in coords.iter_mut() {
            *c = fields.next().and_then(|f| f.parse().ok()).ok_or_else(bad)?;
        }
        out.push((idx, Point::new(coords)));
    }
}

#[allow(clippy::too_many_arguments)] // internal driver; splitting it would only scatter state
fn stream_shards<S: ExecSpace, const D: usize>(
    space: &S,
    path: &Path,
    config: &StreamConfig,
    chunk: usize,
    n: usize,
    k: usize,
    dir: &Path,
    shard_of_bucket: &[u32],
    bucket_of: impl Fn(&Point<D>) -> usize,
    counters: &Counters,
    timings: &mut PhaseTimings,
) -> io::Result<ShardedResult> {
    let mut peak_resident = chunk.min(n);

    // Pass 3: route.
    timings.time("route", || {
        let mut writers: Vec<BufWriter<File>> = (0..k)
            .map(|s| File::create(spill_path(dir, s)).map(BufWriter::new))
            .collect::<io::Result<_>>()?;
        read_points_chunked::<D>(path, chunk, |start, pts| {
            for (i, p) in pts.iter().enumerate() {
                let w = &mut writers[shard_of_bucket[bucket_of(p)] as usize];
                write!(w, "{}", start + i)?;
                for d in 0..D {
                    // `{:?}` prints the shortest f32 representation that
                    // round-trips, as in `emst_datasets::io::save_csv`.
                    write!(w, ",{:?}", p[d])?;
                }
                writeln!(w)?;
            }
            Ok(())
        })?;
        for w in &mut writers {
            w.flush()?;
        }
        Ok::<(), io::Error>(())
    })?;

    // Pass 4: local solves, one shard resident at a time, all drawing from
    // one reused scratch pool (the solves are sequential by design here).
    let mut shard_sizes = vec![0usize; k];
    let mut local_iterations = vec![];
    let mut local_work = CounterSnapshot::default();
    let mut candidates: Vec<Edge> = vec![];
    let mut scratch = emst_core::BoruvkaScratch::new();
    timings.time("local", || {
        for s in 0..k {
            let spilled: Vec<Spilled<D>> = load_spill(dir, s)?;
            shard_sizes[s] = spilled.len();
            peak_resident = peak_resident.max(spilled.len());
            if spilled.len() < 2 {
                if !spilled.is_empty() {
                    // One entry per non-empty shard, as in the in-memory path.
                    local_iterations.push(0);
                }
                continue;
            }
            let pts: Vec<Point<D>> = spilled.iter().map(|&(_, p)| p).collect();
            let r = SingleTreeBoruvka::new(&pts).run_scratch(space, &config.emst, &mut scratch);
            local_iterations.push(r.iterations);
            local_work += r.work;
            candidates.extend(
                r.edges.iter().map(|e| {
                    Edge::new(spilled[e.u as usize].0, spilled[e.v as usize].0, e.weight_sq)
                }),
            );
        }
        Ok::<(), io::Error>(())
    })?;

    // Pass 5: bipartite cross candidates, two shards resident at a time.
    let nonempty: Vec<usize> = (0..k).filter(|&s| shard_sizes[s] > 0).collect();
    let mut merge_rounds = 0u32;
    let mut boundary_candidates = 0u64;
    let pairs_start = std::time::Instant::now();
    let mut merge_scratch = MergeScratch::new();
    for (ai, &a) in nonempty.iter().enumerate() {
        for &b in &nonempty[ai + 1..] {
            let left: Vec<Spilled<D>> = load_spill(dir, a)?;
            let right: Vec<Spilled<D>> = load_spill(dir, b)?;
            peak_resident = peak_resident.max(left.len() + right.len());
            // Contiguous pair-local vertex ids: left then right.
            let globals: Vec<u32> = left.iter().chain(right.iter()).map(|&(g, _)| g).collect();
            let left_pts: Vec<Point<D>> = left.iter().map(|&(_, p)| p).collect();
            let right_pts: Vec<Point<D>> = right.iter().map(|&(_, p)| p).collect();
            let left_ids: Vec<u32> = (0..left.len() as u32).collect();
            let right_ids: Vec<u32> = (left.len() as u32..globals.len() as u32).collect();
            let shards = [
                MergeShard::build(space, &left_pts, &left_ids),
                MergeShard::build(space, &right_pts, &right_ids),
            ];
            let views = [shards[0].view(), shards[1].view()];
            let out = cross_shard_boruvka(
                space,
                &views,
                globals.len(),
                &[],
                config.emst.traversal,
                counters,
                timings,
                None,
                None,
                None,
                &mut merge_scratch,
            )
            .expect("no deadline was set");
            merge_rounds += out.rounds;
            boundary_candidates += out.boundary_candidates;
            candidates.extend(
                out.edges
                    .iter()
                    .map(|e| Edge::new(globals[e.u as usize], globals[e.v as usize], e.weight_sq)),
            );
        }
    }
    timings.record("pairs", pairs_start.elapsed().as_secs_f64());

    // Pass 6: Kruskal over the candidate edges (edges resident, points not).
    let edges = timings.time("assemble", || {
        let g =
            emst_graph::WeightedGraph::new(n, candidates.iter().map(|e| (e.u, e.v, e.weight_sq)));
        emst_graph::kruskal(&g)
    });
    assert_eq!(edges.len(), n - 1, "candidate edges did not span the input");

    Ok(ShardedResult {
        total_weight: total_weight(&edges),
        edges,
        stats: ShardStats {
            shard_sizes,
            local_iterations,
            boundary_candidates,
            merge_rounds,
            // Per-round details are a per-merge concept; the streamed path
            // runs many independent pairwise merges, so it reports none.
            round_details: vec![],
            peak_resident,
            timings: std::mem::take(timings),
            work: local_work + counters.snapshot(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_core::edge::{verify_spanning_tree, weight_multiset};
    use emst_datasets::{generate_2d, generate_3d, save_csv, DatasetSpec};
    use emst_exec::Serial;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("emst-shard-stream-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn streamed_solve_matches_in_memory_solve_2d() {
        let pts = generate_2d(&DatasetSpec::hacc_like(900, 5));
        let path = tmp("ooc-2d.csv");
        save_csv(&path, &pts).unwrap();
        let mono = crate::emst_sharded(&pts, 1);
        for k in [1usize, 3, 8] {
            let mut cfg = StreamConfig::new(k, 400);
            cfg.chunk_points = 128;
            let streamed = emst_sharded_csv::<_, 2>(&Serial, &path, &cfg).unwrap();
            verify_spanning_tree(pts.len(), &streamed.edges).unwrap();
            assert_eq!(weight_multiset(&streamed.edges), weight_multiset(&mono.edges), "k={k}");
            assert_eq!(streamed.stats.shard_sizes.iter().sum::<usize>(), pts.len());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streamed_solve_matches_in_memory_solve_3d() {
        let pts = generate_3d(&DatasetSpec::normal(700, 9));
        let path = tmp("ooc-3d.csv");
        save_csv(&path, &pts).unwrap();
        let mono = crate::emst_sharded(&pts, 1);
        let streamed =
            emst_sharded_csv::<_, 3>(&Serial, &path, &StreamConfig::new(5, 400)).unwrap();
        assert_eq!(weight_multiset(&streamed.edges), weight_multiset(&mono.edges));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn derived_shard_count_respects_residency_target() {
        let pts = generate_2d(&DatasetSpec::uniform(1000, 3));
        let path = tmp("ooc-derived.csv");
        save_csv(&path, &pts).unwrap();
        // The default 4096-point chunk must be clamped to the cap — the
        // cap has to hold without manually tuning chunk_points.
        let cfg = StreamConfig::new(0, 250); // shards derived: ≥ 8
        let streamed = emst_sharded_csv::<_, 2>(&Serial, &path, &cfg).unwrap();
        assert!(streamed.stats.shard_sizes.len() >= 8);
        // Uniform data splits evenly, so the pair bound should hold.
        assert!(
            streamed.stats.peak_resident <= 2 * 250,
            "peak {} exceeds the target",
            streamed.stats.peak_resident
        );
        let mono = crate::emst_sharded(&pts, 1);
        assert_eq!(weight_multiset(&streamed.edges), weight_multiset(&mono.edges));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tiny_and_missing_inputs() {
        let path = tmp("ooc-tiny.csv");
        std::fs::write(&path, "1.0,2.0\n").unwrap();
        let r = emst_sharded_csv::<_, 2>(&Serial, &path, &StreamConfig::new(4, 100)).unwrap();
        assert!(r.edges.is_empty());
        // The stats still say how many points were seen (1 here, 0 for an
        // empty file) so callers can distinguish the two.
        assert_eq!(r.stats.shard_sizes.iter().sum::<usize>(), 1);
        std::fs::write(&path, "").unwrap();
        let r = emst_sharded_csv::<_, 2>(&Serial, &path, &StreamConfig::new(4, 100)).unwrap();
        assert_eq!(r.stats.shard_sizes.iter().sum::<usize>(), 0);
        std::fs::remove_file(&path).ok();
        assert!(emst_sharded_csv::<_, 2>(
            &Serial,
            Path::new("/no/such/file.csv"),
            &StreamConfig::new(4, 100)
        )
        .is_err());
    }
}
