//! Morton-range sharded EMST — the scale-out layer over the single-tree
//! algorithm.
//!
//! The paper's algorithm is bounded by one device's memory. This crate
//! decomposes the problem across `K` *shards*:
//!
//! 1. **Plan** ([`ShardPlan`]) — points are cut into `K` spatially coherent
//!    shards by Morton-code range splitting (the same Z-order machinery the
//!    BVH construction uses), with cuts snapped so identical codes never
//!    straddle a shard boundary;
//! 2. **Local solve** — each shard's EMST is computed by the existing
//!    [`emst_core::SingleTreeBoruvka`] on any [`emst_exec::ExecSpace`];
//!    shards run concurrently on the vendored rayon;
//! 3. **Merge** — shards are connected by Borůvka rounds over candidate
//!    boundary edges: each component's shortest outgoing edge is the
//!    minimum of its local-MST candidate edges and constrained
//!    nearest-neighbour queries against the *other* shards' BVHs. Local
//!    candidates give interior points tight traversal radii, so only the
//!    shard-boundary region does real cross-shard work (see
//!    `merge` module docs for the exactness argument).
//!
//! The result's edge-weight multiset is **guaranteed equal to the
//! monolithic solve**: discarding non-MST intra-shard edges is justified by
//! the cycle property, and the merge computes the exact MST of what
//! remains under the paper's `(weight, min, max)` total edge order.
//!
//! For inputs too large to hold in memory, [`emst_sharded_csv`] streams
//! shards from CSV through [`emst_datasets::io`] so points are never fully
//! resident (see the [`stream`] module).
//!
//! ```
//! use emst_datasets::{generate_2d, DatasetSpec};
//! use emst_shard::emst_sharded;
//!
//! let pts = generate_2d(&DatasetSpec::uniform(500, 42));
//! let result = emst_sharded(&pts, 4);
//! assert_eq!(result.edges.len(), 499);
//! assert_eq!(result.stats.shard_sizes.iter().sum::<usize>(), 500);
//! ```

// The spill writer indexes point coordinates by dimension; clippy's
// iterator suggestion does not apply cleanly there.
#![allow(clippy::needless_range_loop)]

pub mod artifacts;
mod merge;
pub mod plan;
pub mod stream;

pub use artifacts::{ShardArtifacts, UpdateReport, ARTIFACT_MAGIC};
pub use merge::{MergeAccel, MergeDeadlineExceeded, MergeRoundDetail, MergeScratch};
pub use plan::ShardPlan;
pub use stream::{emst_sharded_csv, StreamConfig};

use emst_core::{Edge, EmstConfig};
use emst_exec::counters::CounterSnapshot;
use emst_exec::{ExecSpace, PhaseTimings, Threads};
use emst_geometry::Point;

/// Configuration of a sharded solve.
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Number of Morton-range shards (clamped to at least 1).
    pub shards: usize,
    /// Configuration forwarded to every per-shard single-tree solve.
    pub emst: EmstConfig,
    /// Solve shards concurrently on the rayon pool. When false, shards are
    /// solved one after another (useful to attribute time per shard).
    pub parallel_shards: bool,
}

impl ShardConfig {
    /// Default configuration with `shards` shards.
    pub fn new(shards: usize) -> Self {
        Self { shards, emst: EmstConfig::default(), parallel_shards: true }
    }
}

/// Observability of a sharded run: per-shard sizes, boundary-candidate
/// counts and merge-round counts, plus the aggregated [`emst_exec`]
/// counters and wall-clock phase timings.
#[derive(Clone, Debug, Default)]
pub struct ShardStats {
    /// Point count per shard (empty shards included).
    pub shard_sizes: Vec<usize>,
    /// Borůvka iterations of each non-empty shard's local solve.
    pub local_iterations: Vec<u32>,
    /// Cross-shard queries that reached at least one leaf of another
    /// shard's BVH — the effective boundary-region candidate count.
    pub boundary_candidates: u64,
    /// Borůvka rounds of the cross-shard merge.
    pub merge_rounds: u32,
    /// Per-round merge breakdown (wall-clock, queries fired, boundary
    /// candidates, traversal deltas), in execution order. Empty only when
    /// the merge ran zero rounds (`n < 2`).
    pub round_details: Vec<MergeRoundDetail>,
    /// Peak number of points resident at once (only meaningful for the
    /// out-of-core path; equals `n` for in-memory solves).
    pub peak_resident: usize,
    /// Wall-clock phase timings: `"plan"`, `"local"`, `"merge"` and
    /// `merge.*` sub-phases.
    pub timings: PhaseTimings,
    /// Aggregated algorithmic work (local solves + merge traversals).
    pub work: CounterSnapshot,
}

/// Output of a sharded EMST computation.
#[derive(Clone, Debug)]
pub struct ShardedResult {
    /// The `n − 1` tree edges (original point indices, `u < v`).
    pub edges: Vec<Edge>,
    /// Sum of (non-squared) edge weights, accumulated in `f64`.
    pub total_weight: f64,
    /// Run statistics.
    pub stats: ShardStats,
}

impl ShardedResult {
    fn empty() -> Self {
        Self { edges: vec![], total_weight: 0.0, stats: ShardStats::default() }
    }
}

/// Computes the EMST of `points` over `shards` Morton-range shards on the
/// [`Threads`] backend with default configuration.
pub fn emst_sharded<const D: usize>(points: &[Point<D>], shards: usize) -> ShardedResult {
    emst_sharded_with(&Threads, points, &ShardConfig::new(shards))
}

/// Computes the sharded EMST with an explicit execution space and
/// configuration. The edge-weight multiset equals the monolithic
/// [`emst_core::SingleTreeBoruvka`] solve for every `K`.
///
/// This is exactly [`ShardArtifacts::build`] followed by
/// [`ShardArtifacts::merge`] with the stats of both phases stitched
/// together — the one-shot form of the resident-artifact flow the serving
/// layer keeps warm.
pub fn emst_sharded_with<S: ExecSpace, const D: usize>(
    space: &S,
    points: &[Point<D>],
    config: &ShardConfig,
) -> ShardedResult {
    let n = points.len();
    if n < 2 {
        return ShardedResult::empty();
    }
    let artifacts = ShardArtifacts::build(space, points, config);
    let mut result = artifacts.merge(space, config.emst.traversal);
    let mut timings = artifacts.build_timings().clone();
    timings.absorb(&result.stats.timings);
    result.stats.timings = timings;
    result.stats.work = artifacts.build_work() + result.stats.work;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_core::brute::brute_force_emst;
    use emst_core::edge::{verify_spanning_tree, weight_multiset};
    use emst_core::SingleTreeBoruvka;
    use emst_exec::{GpuSim, Serial};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points_2d(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(-1.0f32..1.0), rng.random_range(-1.0f32..1.0)]))
            .collect()
    }

    fn check_matches_monolithic(pts: &[Point<2>], k: usize) {
        let sharded = emst_sharded(pts, k);
        verify_spanning_tree(pts.len(), &sharded.edges).unwrap();
        let mono = SingleTreeBoruvka::new(pts).run(&Serial, &EmstConfig::default());
        assert_eq!(
            weight_multiset(&sharded.edges),
            weight_multiset(&mono.edges),
            "k={k} n={}",
            pts.len()
        );
    }

    #[test]
    fn matches_monolithic_across_shard_counts() {
        let pts = random_points_2d(800, 13);
        for k in [1usize, 2, 3, 7, 16] {
            check_matches_monolithic(&pts, k);
        }
    }

    #[test]
    fn matches_brute_force_on_small_inputs() {
        for n in [2usize, 3, 5, 17, 50] {
            let pts = random_points_2d(n, n as u64);
            for k in [1usize, 2, 7, 16] {
                let sharded = emst_sharded(&pts, k);
                verify_spanning_tree(n, &sharded.edges).unwrap();
                let brute = brute_force_emst(&pts);
                assert_eq!(weight_multiset(&sharded.edges), weight_multiset(&brute), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn all_duplicates_collapse_into_one_shard_and_still_solve() {
        let pts = vec![Point::new([0.5f32, -0.5]); 40];
        let sharded = emst_sharded(&pts, 7);
        verify_spanning_tree(40, &sharded.edges).unwrap();
        assert_eq!(sharded.total_weight, 0.0);
        assert_eq!(sharded.stats.shard_sizes.iter().filter(|&&s| s > 0).count(), 1);
    }

    #[test]
    fn trivial_sizes() {
        assert!(emst_sharded::<2>(&[], 4).edges.is_empty());
        assert!(emst_sharded(&[Point::new([1.0f32, 2.0])], 4).edges.is_empty());
        let two = [Point::new([0.0f32, 0.0]), Point::new([3.0, 4.0])];
        let r = emst_sharded(&two, 4);
        assert_eq!(r.edges, vec![Edge::new(0, 1, 25.0)]);
        assert_eq!(r.total_weight, 5.0);
    }

    #[test]
    fn grid_with_massive_ties_matches_monolithic() {
        let pts: Vec<Point<2>> =
            (0..15).flat_map(|x| (0..15).map(move |y| Point::new([x as f32, y as f32]))).collect();
        for k in [2usize, 7, 16] {
            check_matches_monolithic(&pts, k);
        }
    }

    #[test]
    fn backends_and_sequential_shards_agree() {
        let pts = random_points_2d(600, 29);
        let reference = emst_sharded(&pts, 5);
        for parallel in [false, true] {
            let cfg = ShardConfig { parallel_shards: parallel, ..ShardConfig::new(5) };
            let a = emst_sharded_with(&Serial, &pts, &cfg);
            let b = emst_sharded_with(&GpuSim::new(), &pts, &cfg);
            assert_eq!(weight_multiset(&a.edges), weight_multiset(&reference.edges));
            assert_eq!(weight_multiset(&b.edges), weight_multiset(&reference.edges));
        }
    }

    #[test]
    fn stats_are_populated() {
        let pts = random_points_2d(1000, 31);
        let r = emst_sharded(&pts, 4);
        assert_eq!(r.stats.shard_sizes.len(), 4);
        assert_eq!(r.stats.shard_sizes.iter().sum::<usize>(), 1000);
        assert_eq!(r.stats.local_iterations.len(), 4);
        assert!(r.stats.merge_rounds >= 1);
        assert!(r.stats.boundary_candidates > 0);
        assert_eq!(r.stats.peak_resident, 1000);
        assert!(r.stats.timings.get("plan") > 0.0);
        assert!(r.stats.timings.get("local") > 0.0);
        assert!(r.stats.timings.get("merge") > 0.0);
        assert!(r.stats.work.queries > 0);
        assert!(r.stats.work.node_visits > 0);
    }

    #[test]
    fn interior_points_are_radius_pruned() {
        // Boundary candidates must be a small fraction of all cross-shard
        // queries: the local-MST radii prune interior points at the root.
        let pts = random_points_2d(2000, 37);
        let r = emst_sharded(&pts, 4);
        let total_queries = r.stats.work.queries;
        assert!(
            r.stats.boundary_candidates * 3 < total_queries,
            "boundary {} of {total_queries} queries",
            r.stats.boundary_candidates
        );
    }
}
