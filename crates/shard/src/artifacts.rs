//! The cacheable half of a sharded solve.
//!
//! A sharded EMST run has two phases with very different lifetimes:
//!
//! - the **build** — Morton planning, per-shard single-tree solves, and
//!   per-shard BVH construction — depends only on `(points, K)` and is by
//!   far the expensive part;
//! - the **merge** — cross-shard Borůvka over the boundary region — is
//!   cheap (mostly root-pruned box tests) but depends on what the caller
//!   asks (full cloud vs. a subset).
//!
//! [`ShardArtifacts`] reifies the build phase as a value: the plan, every
//! non-empty shard's BVH (with its 4-wide rope-linked collapse), its local
//! MST edges, and the build-work accounting. The artifacts are immutable —
//! [`ShardArtifacts::merge`] and [`ShardArtifacts::merge_subset`] only
//! *borrow* them — so a long-lived service can keep them resident and
//! answer repeated queries by re-running nothing but the merge. This is the
//! object the `emst_serve` cache holds under its `(input digest, K)` key.
//!
//! ```
//! use emst_datasets::{generate_2d, DatasetSpec};
//! use emst_exec::Threads;
//! use emst_shard::{ShardArtifacts, ShardConfig};
//!
//! let pts = generate_2d(&DatasetSpec::uniform(600, 9));
//! let artifacts = ShardArtifacts::build(&Threads, &pts, &ShardConfig::new(4));
//! // Merge-only queries: no plan, no local solves, no tree builds.
//! let a = artifacts.merge(&Threads, Default::default());
//! let b = artifacts.merge(&Threads, Default::default());
//! assert_eq!(a.edges, b.edges); // deterministic, bit-identical
//! assert_eq!(a.edges.len(), 599);
//! ```
//!
//! # Subset queries
//!
//! [`ShardArtifacts::merge_subset`] computes the exact EMST of a *subset*
//! of the ingested points while reusing as much of the build as possible.
//! The subset inherits the resident plan's partition; per shard:
//!
//! - **fully covered** (every point of the shard is in the subset): the
//!   cached BVH and local MST are reused verbatim — only the vertex
//!   numbering is remapped;
//! - **partially covered**: that shard's members are re-solved locally
//!   (they form a sub-shard of the induced partition, so the cycle-property
//!   argument applies unchanged — see the `merge` module docs);
//! - **untouched**: skipped entirely.
//!
//! Morton-contiguous subsets (spatial range queries) therefore touch the
//! local phase only at their two boundary shards.

use emst_bvh::{Traversal, TraversalStats};
use emst_core::edge::total_weight;
use emst_core::{BoruvkaScratch, Edge, EmstConfig, SingleTreeBoruvka};
use emst_exec::counters::CounterSnapshot;
use emst_exec::{Counters, ExecSpace, PhaseTimings};
use emst_geometry::{Point, Scalar};
use rayon::prelude::*;

use crate::merge::{cross_shard_boruvka, CrossBounds, MergeAccel, MergeShard, MergeShardView};
use crate::plan::ShardPlan;
use crate::{MergeScratch, ShardConfig, ShardStats, ShardedResult};

/// One non-empty shard's resident state: its BVH (`vertex_of_rank` maps
/// Morton ranks to original point indices) and its local MST edges.
struct LocalArtifact<const D: usize> {
    /// Index of this shard in the plan (empty shards have no artifact).
    shard: usize,
    /// The merge-resident BVH + rank-to-vertex map.
    merge: MergeShard<D>,
    /// Local MST edges in original point indices — the merge seeds.
    seeds: Vec<Edge>,
}

/// The resident product of a sharded build: plan + per-shard BVHs + local
/// MSTs, ready to answer repeated merge-only queries. See the module docs.
pub struct ShardArtifacts<const D: usize> {
    plan: ShardPlan,
    locals: Vec<LocalArtifact<D>>,
    n: usize,
    shard_sizes: Vec<usize>,
    local_iterations: Vec<u32>,
    build_work: CounterSnapshot,
    build_timings: PhaseTimings,
    /// Label-independent merge bounds (vertex→shard maps + pristine
    /// per-(vertex, shard) entry distances), precomputed so every warm
    /// merge starts from a memcpy.
    bounds: CrossBounds,
    /// All local MST edges flattened in shard order — the full-cloud merge
    /// seeds, cached so warm queries skip the per-call gather.
    flat_seeds: Vec<Edge>,
}

impl<const D: usize> ShardArtifacts<D> {
    /// Runs the build phase: plan the Morton ranges, solve every non-empty
    /// shard's local EMST, and build the merge-resident BVHs. Shards run
    /// concurrently when `config.parallel_shards` is set.
    pub fn build<S: ExecSpace>(space: &S, points: &[Point<D>], config: &ShardConfig) -> Self {
        let n = points.len();
        let mut timings = PhaseTimings::new();
        let plan = timings.time("plan", || ShardPlan::new(points, config.shards));
        let shard_sizes = plan.shard_sizes();

        // Gather each non-empty shard's points and original indices.
        let inputs: Vec<(usize, Vec<u32>, Vec<Point<D>>)> = (0..plan.num_shards())
            .filter(|&s| !plan.shard_indices(s).is_empty())
            .map(|s| {
                let ids = plan.shard_indices(s).to_vec();
                let pts = ids.iter().map(|&i| points[i as usize]).collect();
                (s, ids, pts)
            })
            .collect();

        let solve_one = |(s, ids, pts): (usize, Vec<u32>, Vec<Point<D>>),
                         scratch: &mut BoruvkaScratch|
         -> (LocalArtifact<D>, u32, CounterSnapshot) {
            let (seeds, iterations, work) = if pts.len() >= 2 {
                let r = SingleTreeBoruvka::new(&pts).run_scratch(space, &config.emst, scratch);
                let seeds = r
                    .edges
                    .iter()
                    .map(|e| Edge::new(ids[e.u as usize], ids[e.v as usize], e.weight_sq))
                    .collect();
                (seeds, r.iterations, r.work)
            } else {
                (vec![], 0, CounterSnapshot::default())
            };
            let merge = MergeShard::build(space, &pts, &ids);
            (LocalArtifact { shard: s, merge, seeds }, iterations, work)
        };
        let locals: Vec<(LocalArtifact<D>, u32, CounterSnapshot)> = timings.time("local", || {
            if config.parallel_shards && inputs.len() > 1 {
                // Concurrent shards cannot share a pool; each worker brings
                // its own (the sequential path reuses one across shards).
                inputs
                    .into_par_iter()
                    .map(|input| solve_one(input, &mut BoruvkaScratch::new()))
                    .collect()
            } else {
                let mut scratch = BoruvkaScratch::new();
                inputs.into_iter().map(|input| solve_one(input, &mut scratch)).collect()
            }
        });

        let local_iterations: Vec<u32> = locals.iter().map(|(_, it, _)| *it).collect();
        let build_work = locals.iter().fold(CounterSnapshot::default(), |acc, (_, _, w)| acc + *w);
        let locals: Vec<LocalArtifact<D>> = locals.into_iter().map(|(l, _, _)| l).collect();
        let bounds = timings.time("plan", || {
            // Each vertex's round-1 merge radius (min incident seed
            // weight) — the refinement threshold for the entry bounds.
            let mut hint = vec![Scalar::INFINITY; n];
            for l in &locals {
                for e in &l.seeds {
                    hint[e.u as usize] = hint[e.u as usize].min(e.weight_sq);
                    hint[e.v as usize] = hint[e.v as usize].min(e.weight_sq);
                }
            }
            let views: Vec<MergeShardView<'_, D>> = locals.iter().map(|l| l.merge.view()).collect();
            CrossBounds::compute(space, &views, n, Some(&hint))
        });
        let flat_seeds: Vec<Edge> = locals.iter().flat_map(|l| l.seeds.iter().copied()).collect();
        Self {
            plan,
            locals,
            n,
            shard_sizes,
            local_iterations,
            build_work,
            build_timings: timings,
            bounds,
            flat_seeds,
        }
    }

    /// Number of ingested points.
    pub fn num_points(&self) -> usize {
        self.n
    }

    /// The Morton-range plan the build partitioned on.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Point counts per shard (empty shards included).
    pub fn shard_sizes(&self) -> &[usize] {
        &self.shard_sizes
    }

    /// Borůvka iterations of each non-empty shard's local solve.
    pub fn local_iterations(&self) -> &[u32] {
        &self.local_iterations
    }

    /// Algorithmic work spent by the build phase (the local solves).
    pub fn build_work(&self) -> CounterSnapshot {
        self.build_work
    }

    /// Wall-clock timings of the build phase (`"plan"`, `"local"`).
    pub fn build_timings(&self) -> &PhaseTimings {
        &self.build_timings
    }

    /// Heap bytes held resident by the artifacts (BVHs, rank maps, seeds,
    /// plan, precomputed merge bounds) — what a serving cache charges
    /// against its budget.
    pub fn resident_bytes(&self) -> usize {
        let per_local = |l: &LocalArtifact<D>| {
            l.merge.bvh.resident_bytes()
                + l.merge.vertex_of_rank.len() * std::mem::size_of::<u32>()
                + l.seeds.len() * std::mem::size_of::<Edge>()
        };
        self.plan.resident_bytes()
            + self.bounds.resident_bytes()
            + self.locals.iter().map(per_local).sum::<usize>()
    }

    /// Runs the merge phase over the full cloud: the exact EMST, computed
    /// without re-planning, re-solving, or rebuilding anything.
    ///
    /// The returned [`ShardStats`] covers **only this merge** (its `work`
    /// has `iterations == 0` since no Borůvka *solve* ran — the warm-query
    /// signature the serving tests assert); callers wanting the cold-solve
    /// view combine it with [`Self::build_work`]/[`Self::build_timings`] as
    /// [`crate::emst_sharded_with`] does.
    pub fn merge<S: ExecSpace>(&self, space: &S, traversal: Traversal) -> ShardedResult {
        self.merge_scratch(space, traversal, &mut MergeScratch::new())
    }

    /// [`Self::merge`] drawing every per-merge allocation from `scratch` —
    /// the form a long-lived server uses so warm repeat queries allocate
    /// nothing. The scratch carries no semantic state between calls.
    pub fn merge_scratch<S: ExecSpace>(
        &self,
        space: &S,
        traversal: Traversal,
        scratch: &mut MergeScratch,
    ) -> ShardedResult {
        self.merge_with(space, traversal, scratch, None)
    }

    /// A pristine [`MergeAccel`] for this cloud: floors seeded from the
    /// cached entry bounds, no candidates yet. Feed it to
    /// [`Self::merge_accel`]; it is only valid for these exact artifacts.
    pub fn new_accel(&self) -> MergeAccel {
        MergeAccel::from_bounds(&self.bounds, self.n, self.locals.len())
    }

    /// [`Self::merge_scratch`] additionally reading and re-depositing the
    /// durable cross-query floors/candidates in `accel` (built by
    /// [`Self::new_accel`]). The selected edges are bit-identical with or
    /// without the accelerator; only the traversal work shrinks.
    pub fn merge_accel<S: ExecSpace>(
        &self,
        space: &S,
        traversal: Traversal,
        scratch: &mut MergeScratch,
        accel: &mut MergeAccel,
    ) -> ShardedResult {
        self.merge_with(space, traversal, scratch, Some(accel))
    }

    fn merge_with<S: ExecSpace>(
        &self,
        space: &S,
        traversal: Traversal,
        scratch: &mut MergeScratch,
        accel: Option<&mut MergeAccel>,
    ) -> ShardedResult {
        let mut timings = PhaseTimings::new();
        let counters = Counters::new();
        let mut result = ShardedResult {
            edges: vec![],
            total_weight: 0.0,
            stats: ShardStats {
                shard_sizes: self.shard_sizes.clone(),
                local_iterations: self.local_iterations.clone(),
                peak_resident: self.n,
                ..ShardStats::default()
            },
        };
        if self.n < 2 {
            return result;
        }
        let views: Vec<MergeShardView<'_, D>> =
            self.locals.iter().map(|l| l.merge.view()).collect();
        let mst_start = std::time::Instant::now();
        let outcome = cross_shard_boruvka(
            space,
            &views,
            self.n,
            &self.flat_seeds,
            traversal,
            &counters,
            &mut timings,
            Some(&self.bounds),
            accel,
            scratch,
        );
        timings.record("merge", mst_start.elapsed().as_secs_f64());
        debug_assert_eq!(outcome.edges.len(), self.n - 1);

        result.total_weight = total_weight(&outcome.edges);
        result.edges = outcome.edges;
        result.stats.boundary_candidates = outcome.boundary_candidates;
        result.stats.merge_rounds = outcome.rounds;
        result.stats.round_details = outcome.round_details;
        result.stats.timings = timings;
        result.stats.work = counters.snapshot();
        result
    }

    /// Exact EMST of a **subset** of the ingested points, reusing the
    /// resident build wherever the subset covers a shard completely (see
    /// the module docs for the partition argument).
    ///
    /// `points` must be the cloud the artifacts were built from (the
    /// serving layer guards this with its content digest), and `subset`
    /// holds distinct original point indices. Returned edges use original
    /// indices; `stats.shard_sizes` reports the subset's per-shard counts
    /// and `stats.local_iterations` only the partially-covered shards that
    /// had to re-solve.
    ///
    /// # Panics
    /// On out-of-range or duplicate subset indices.
    pub fn merge_subset<S: ExecSpace>(
        &self,
        space: &S,
        points: &[Point<D>],
        subset: &[u32],
        config: &EmstConfig,
        scratch: &mut BoruvkaScratch,
    ) -> ShardedResult {
        assert_eq!(points.len(), self.n, "points are not the ingested cloud");
        let m = subset.len();
        let mut timings = PhaseTimings::new();
        let counters = Counters::new();

        // Renumber the subset to contiguous vertex ids 0..m.
        let mut new_id = vec![u32::MAX; self.n];
        for (j, &orig) in subset.iter().enumerate() {
            assert!((orig as usize) < self.n, "subset index {orig} out of range");
            assert_eq!(new_id[orig as usize], u32::MAX, "duplicate subset index {orig}");
            new_id[orig as usize] = j as u32;
        }

        // Per touched shard: reuse or re-solve.
        enum SubShard<'a, const D2: usize> {
            /// Fully covered: the cached BVH with a renumbered rank map.
            Reused { local: &'a LocalArtifact<D2>, vor: Vec<u32> },
            /// Partially covered: a fresh sub-shard over the members only.
            Fresh(MergeShard<D2>),
        }
        let mut shard_sizes = vec![0usize; self.plan.num_shards()];
        let mut local_iterations = vec![];
        let mut local_work = CounterSnapshot::default();
        let mut seeds: Vec<Edge> = vec![];
        let mut subs: Vec<SubShard<'_, D>> = vec![];
        timings.time("local", || {
            for local in &self.locals {
                let ids = self.plan.shard_indices(local.shard);
                let members: Vec<u32> =
                    ids.iter().copied().filter(|&i| new_id[i as usize] != u32::MAX).collect();
                shard_sizes[local.shard] = members.len();
                if members.is_empty() {
                    continue;
                }
                if members.len() == ids.len() {
                    let vor = local
                        .merge
                        .vertex_of_rank
                        .iter()
                        .map(|&orig| new_id[orig as usize])
                        .collect();
                    seeds.extend(local.seeds.iter().map(|e| {
                        Edge::new(new_id[e.u as usize], new_id[e.v as usize], e.weight_sq)
                    }));
                    subs.push(SubShard::Reused { local, vor });
                } else {
                    let pts: Vec<Point<D>> = members.iter().map(|&i| points[i as usize]).collect();
                    let vids: Vec<u32> = members.iter().map(|&i| new_id[i as usize]).collect();
                    if pts.len() >= 2 {
                        let r = SingleTreeBoruvka::new(&pts).run_scratch(space, config, scratch);
                        local_iterations.push(r.iterations);
                        local_work += r.work;
                        seeds.extend(r.edges.iter().map(|e| {
                            Edge::new(vids[e.u as usize], vids[e.v as usize], e.weight_sq)
                        }));
                    }
                    subs.push(SubShard::Fresh(MergeShard::build(space, &pts, &vids)));
                }
            }
        });

        let mut result = ShardedResult {
            edges: vec![],
            total_weight: 0.0,
            stats: ShardStats {
                shard_sizes,
                local_iterations,
                peak_resident: self.n,
                ..ShardStats::default()
            },
        };
        if m < 2 {
            result.stats.timings = timings;
            return result;
        }

        let views: Vec<MergeShardView<'_, D>> = subs
            .iter()
            .map(|s| match s {
                SubShard::Reused { local, vor } => {
                    MergeShardView { bvh: &local.merge.bvh, vertex_of_rank: vor }
                }
                SubShard::Fresh(ms) => ms.view(),
            })
            .collect();
        let mst_start = std::time::Instant::now();
        let outcome = cross_shard_boruvka(
            space,
            &views,
            m,
            &seeds,
            config.traversal,
            &counters,
            &mut timings,
            // Subset views renumber vertices, so neither the cached
            // full-cloud bounds nor any accelerator applies.
            None,
            None,
            &mut MergeScratch::new(),
        );
        timings.record("merge", mst_start.elapsed().as_secs_f64());
        debug_assert_eq!(outcome.edges.len(), m - 1);

        // Map vertex ids back to original point indices.
        let edges: Vec<Edge> = outcome
            .edges
            .iter()
            .map(|e| Edge::new(subset[e.u as usize], subset[e.v as usize], e.weight_sq))
            .collect();
        result.total_weight = total_weight(&edges);
        result.edges = edges;
        result.stats.boundary_candidates = outcome.boundary_candidates;
        result.stats.merge_rounds = outcome.rounds;
        result.stats.round_details = outcome.round_details;
        result.stats.timings = timings;
        result.stats.work = local_work + counters.snapshot();
        result
    }

    /// The `k` nearest ingested points to `query` as `(original index,
    /// squared distance)`, sorted ascending by `(distance, index)` —
    /// answered from the resident per-shard BVHs (each shard returns its
    /// local top-`k`; the global top-`k` is their merge). The distance
    /// multiset is exact; when several points tie *at the cut-off distance
    /// within one shard*, which of them is reported follows that shard's
    /// Morton-rank order. Traversal work accumulates into `stats`.
    pub fn k_nearest(
        &self,
        query: &Point<D>,
        k: usize,
        stats: &mut TraversalStats,
    ) -> Vec<(u32, Scalar)> {
        let mut all: Vec<(u32, Scalar)> = vec![];
        for l in &self.locals {
            let mut st = TraversalStats::default();
            for (rank, d) in l.merge.bvh.k_nearest_with_stats(query, k, &mut st) {
                all.push((l.merge.vertex_of_rank[rank as usize], d));
            }
            *stats = stats.merged(st);
        }
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emst_sharded;
    use emst_core::brute::brute_force_emst;
    use emst_core::edge::{verify_spanning_tree, weight_multiset};
    use emst_exec::{Serial, Threads};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points_2d(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(-1.0f32..1.0), rng.random_range(-1.0f32..1.0)]))
            .collect()
    }

    #[test]
    fn repeated_merges_are_bit_identical_and_do_no_build_work() {
        let pts = random_points_2d(900, 3);
        let artifacts = ShardArtifacts::build(&Threads, &pts, &ShardConfig::new(5));
        assert!(artifacts.build_work().iterations > 0);
        assert!(artifacts.resident_bytes() > 0);
        let cold = emst_sharded(&pts, 5);
        let a = artifacts.merge(&Threads, Traversal::default());
        let b = artifacts.merge(&Threads, Traversal::default());
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.edges, cold.edges);
        // Merge-only stats: traversal queries happened, but no Borůvka
        // solve iterations and no tree-phase work.
        assert!(a.stats.work.queries > 0);
        assert_eq!(a.stats.work.iterations, 0);
        assert_eq!(a.stats.timings.get("plan"), 0.0);
        assert_eq!(a.stats.timings.get("local"), 0.0);
        assert!(a.stats.timings.get("merge") > 0.0);
    }

    #[test]
    fn subset_merge_matches_brute_force_on_the_subset() {
        let pts = random_points_2d(400, 7);
        let artifacts = ShardArtifacts::build(&Serial, &pts, &ShardConfig::new(6));
        let mut scratch = BoruvkaScratch::new();
        let mut rng = StdRng::seed_from_u64(11);
        for take in [2usize, 17, 120, 399, 400] {
            // Random distinct subset of `take` indices.
            let mut all: Vec<u32> = (0..400).collect();
            for i in 0..take {
                let j = rng.random_range(i..400);
                all.swap(i, j);
            }
            let subset = &all[..take];
            let r =
                artifacts.merge_subset(&Serial, &pts, subset, &EmstConfig::default(), &mut scratch);
            assert_eq!(r.edges.len(), take - 1);
            // Edges use original ids; verify over the compacted numbering.
            let compact: std::collections::HashMap<u32, u32> =
                subset.iter().enumerate().map(|(j, &o)| (o, j as u32)).collect();
            let compacted: Vec<Edge> = r
                .edges
                .iter()
                .map(|e| Edge::new(compact[&e.u], compact[&e.v], e.weight_sq))
                .collect();
            verify_spanning_tree(take, &compacted).unwrap();
            let sub_pts: Vec<Point<2>> = subset.iter().map(|&i| pts[i as usize]).collect();
            let brute = brute_force_emst(&sub_pts);
            assert_eq!(weight_multiset(&r.edges), weight_multiset(&brute), "take={take}");
        }
    }

    #[test]
    fn morton_contiguous_subset_reuses_interior_shards() {
        // A subset aligned to the plan's own order covers interior shards
        // completely, so only the boundary shards re-solve.
        let pts = random_points_2d(1000, 13);
        let artifacts = ShardArtifacts::build(&Serial, &pts, &ShardConfig::new(8));
        let plan = artifacts.plan();
        // Everything except the first half of shard 0: shards 1..8 are
        // fully covered, shard 0 partially.
        let mut subset: Vec<u32> = vec![];
        let first = plan.shard_indices(0);
        subset.extend(first.iter().skip(first.len() / 2));
        for s in 1..plan.num_shards() {
            subset.extend(plan.shard_indices(s));
        }
        let mut scratch = BoruvkaScratch::new();
        let r =
            artifacts.merge_subset(&Serial, &pts, &subset, &EmstConfig::default(), &mut scratch);
        // Only shard 0 re-ran a local solve.
        assert_eq!(r.stats.local_iterations.len(), 1);
        let sub_pts: Vec<Point<2>> = subset.iter().map(|&i| pts[i as usize]).collect();
        let brute = brute_force_emst(&sub_pts);
        assert_eq!(weight_multiset(&r.edges), weight_multiset(&brute));
    }

    #[test]
    fn trivial_subsets() {
        let pts = random_points_2d(50, 1);
        let artifacts = ShardArtifacts::build(&Serial, &pts, &ShardConfig::new(4));
        let mut scratch = BoruvkaScratch::new();
        let cfg = EmstConfig::default();
        assert!(artifacts.merge_subset(&Serial, &pts, &[], &cfg, &mut scratch).edges.is_empty());
        assert!(artifacts.merge_subset(&Serial, &pts, &[7], &cfg, &mut scratch).edges.is_empty());
        let two = artifacts.merge_subset(&Serial, &pts, &[3, 41], &cfg, &mut scratch);
        assert_eq!(two.edges.len(), 1);
        assert_eq!(two.edges[0], Edge::new(3, 41, pts[3].squared_distance(&pts[41])));
    }

    #[test]
    #[should_panic(expected = "duplicate subset index")]
    fn duplicate_subset_indices_panic() {
        let pts = random_points_2d(20, 2);
        let artifacts = ShardArtifacts::build(&Serial, &pts, &ShardConfig::new(2));
        artifacts.merge_subset(
            &Serial,
            &pts,
            &[1, 2, 1],
            &EmstConfig::default(),
            &mut BoruvkaScratch::new(),
        );
    }

    #[test]
    fn k_nearest_matches_brute_force() {
        let pts = random_points_2d(300, 17);
        let artifacts = ShardArtifacts::build(&Serial, &pts, &ShardConfig::new(5));
        let queries = random_points_2d(20, 18);
        let mut stats = TraversalStats::default();
        for q in &queries {
            for k in [1usize, 4, 9] {
                let got = artifacts.k_nearest(q, k, &mut stats);
                let mut expect: Vec<(u32, Scalar)> = pts
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i as u32, q.squared_distance(p)))
                    .collect();
                expect.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                expect.truncate(k);
                assert_eq!(got, expect, "k={k}");
            }
        }
        assert!(stats.nodes > 0);
    }
}
