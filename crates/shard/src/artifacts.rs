//! The cacheable half of a sharded solve.
//!
//! A sharded EMST run has two phases with very different lifetimes:
//!
//! - the **build** — Morton planning, per-shard single-tree solves, and
//!   per-shard BVH construction — depends only on `(points, K)` and is by
//!   far the expensive part;
//! - the **merge** — cross-shard Borůvka over the boundary region — is
//!   cheap (mostly root-pruned box tests) but depends on what the caller
//!   asks (full cloud vs. a subset).
//!
//! [`ShardArtifacts`] reifies the build phase as a value: the plan, every
//! non-empty shard's BVH (with its 4-wide rope-linked collapse), its local
//! MST edges, and the build-work accounting. The artifacts are immutable —
//! [`ShardArtifacts::merge`] and [`ShardArtifacts::merge_subset`] only
//! *borrow* them — so a long-lived service can keep them resident and
//! answer repeated queries by re-running nothing but the merge. This is the
//! object the `emst_serve` cache holds under its `(input digest, K)` key.
//!
//! ```
//! use emst_datasets::{generate_2d, DatasetSpec};
//! use emst_exec::Threads;
//! use emst_shard::{ShardArtifacts, ShardConfig};
//!
//! let pts = generate_2d(&DatasetSpec::uniform(600, 9));
//! let artifacts = ShardArtifacts::build(&Threads, &pts, &ShardConfig::new(4));
//! // Merge-only queries: no plan, no local solves, no tree builds.
//! let a = artifacts.merge(&Threads, Default::default());
//! let b = artifacts.merge(&Threads, Default::default());
//! assert_eq!(a.edges, b.edges); // deterministic, bit-identical
//! assert_eq!(a.edges.len(), 599);
//! ```
//!
//! # Subset queries
//!
//! [`ShardArtifacts::merge_subset`] computes the exact EMST of a *subset*
//! of the ingested points while reusing as much of the build as possible.
//! The subset inherits the resident plan's partition; per shard:
//!
//! - **fully covered** (every point of the shard is in the subset): the
//!   cached BVH and local MST are reused verbatim — only the vertex
//!   numbering is remapped;
//! - **partially covered**: that shard's members are re-solved locally
//!   (they form a sub-shard of the induced partition, so the cycle-property
//!   argument applies unchanged — see the `merge` module docs);
//! - **untouched**: skipped entirely.
//!
//! Morton-contiguous subsets (spatial range queries) therefore touch the
//! local phase only at their two boundary shards.

use std::io;
use std::time::Instant;

use emst_bvh::{Bvh, Traversal, TraversalStats};
use emst_core::edge::total_weight;
use emst_core::{BoruvkaScratch, Edge, EmstConfig, SingleTreeBoruvka};
use emst_datasets::io::{BlobReader, BlobWriter, ByteReader, ByteWriter};
use emst_exec::counters::CounterSnapshot;
use emst_exec::{Counters, ExecSpace, PhaseTimings};
use emst_geometry::{Aabb, Point, Scalar};
use emst_morton::MortonEncoder;
use rayon::prelude::*;

use crate::merge::{
    cross_shard_boruvka, CrossBounds, MergeAccel, MergeDeadlineExceeded, MergeShard, MergeShardView,
};
use crate::plan::ShardPlan;
use crate::{MergeScratch, ShardConfig, ShardStats, ShardedResult};

/// One non-empty shard's resident state: its BVH (`vertex_of_rank` maps
/// Morton ranks to original point indices) and its local MST edges.
struct LocalArtifact<const D: usize> {
    /// Index of this shard in the plan (empty shards have no artifact).
    shard: usize,
    /// The merge-resident BVH + rank-to-vertex map.
    merge: MergeShard<D>,
    /// Local MST edges in original point indices — the merge seeds.
    seeds: Vec<Edge>,
}

/// The resident product of a sharded build: plan + per-shard BVHs + local
/// MSTs, ready to answer repeated merge-only queries. See the module docs.
pub struct ShardArtifacts<const D: usize> {
    plan: ShardPlan,
    locals: Vec<LocalArtifact<D>>,
    n: usize,
    shard_sizes: Vec<usize>,
    local_iterations: Vec<u32>,
    build_work: CounterSnapshot,
    build_timings: PhaseTimings,
    /// Label-independent merge bounds (vertex→shard maps + pristine
    /// per-(vertex, shard) entry distances), precomputed so every warm
    /// merge starts from a memcpy.
    bounds: CrossBounds,
    /// All local MST edges flattened in shard order — the full-cloud merge
    /// seeds, cached so warm queries skip the per-call gather.
    flat_seeds: Vec<Edge>,
}

impl<const D: usize> ShardArtifacts<D> {
    /// Runs the build phase: plan the Morton ranges, solve every non-empty
    /// shard's local EMST, and build the merge-resident BVHs. Shards run
    /// concurrently when `config.parallel_shards` is set.
    pub fn build<S: ExecSpace>(space: &S, points: &[Point<D>], config: &ShardConfig) -> Self {
        let n = points.len();
        let mut timings = PhaseTimings::new();
        let plan = timings.time("plan", || ShardPlan::new(points, config.shards));
        let shard_sizes = plan.shard_sizes();

        // Gather each non-empty shard's points and original indices.
        let inputs: Vec<(usize, Vec<u32>, Vec<Point<D>>)> = (0..plan.num_shards())
            .filter(|&s| !plan.shard_indices(s).is_empty())
            .map(|s| {
                let ids = plan.shard_indices(s).to_vec();
                let pts = ids.iter().map(|&i| points[i as usize]).collect();
                (s, ids, pts)
            })
            .collect();

        let solve_one = |(s, ids, pts): (usize, Vec<u32>, Vec<Point<D>>),
                         scratch: &mut BoruvkaScratch|
         -> (LocalArtifact<D>, u32, CounterSnapshot) {
            let (seeds, iterations, work) = if pts.len() >= 2 {
                let r = SingleTreeBoruvka::new(&pts).run_scratch(space, &config.emst, scratch);
                let seeds = r
                    .edges
                    .iter()
                    .map(|e| Edge::new(ids[e.u as usize], ids[e.v as usize], e.weight_sq))
                    .collect();
                (seeds, r.iterations, r.work)
            } else {
                (vec![], 0, CounterSnapshot::default())
            };
            let merge = MergeShard::build(space, &pts, &ids);
            (LocalArtifact { shard: s, merge, seeds }, iterations, work)
        };
        let locals: Vec<(LocalArtifact<D>, u32, CounterSnapshot)> = timings.time("local", || {
            if config.parallel_shards && inputs.len() > 1 {
                // Concurrent shards cannot share a pool; each worker brings
                // its own (the sequential path reuses one across shards).
                inputs
                    .into_par_iter()
                    .map(|input| solve_one(input, &mut BoruvkaScratch::new()))
                    .collect()
            } else {
                let mut scratch = BoruvkaScratch::new();
                inputs.into_iter().map(|input| solve_one(input, &mut scratch)).collect()
            }
        });

        let local_iterations: Vec<u32> = locals.iter().map(|(_, it, _)| *it).collect();
        let build_work = locals.iter().fold(CounterSnapshot::default(), |acc, (_, _, w)| acc + *w);
        let locals: Vec<LocalArtifact<D>> = locals.into_iter().map(|(l, _, _)| l).collect();
        let bounds = timings.time("plan", || {
            // Each vertex's round-1 merge radius (min incident seed
            // weight) — the refinement threshold for the entry bounds.
            let mut hint = vec![Scalar::INFINITY; n];
            for l in &locals {
                for e in &l.seeds {
                    hint[e.u as usize] = hint[e.u as usize].min(e.weight_sq);
                    hint[e.v as usize] = hint[e.v as usize].min(e.weight_sq);
                }
            }
            let views: Vec<MergeShardView<'_, D>> = locals.iter().map(|l| l.merge.view()).collect();
            CrossBounds::compute(space, &views, n, Some(&hint))
        });
        let flat_seeds: Vec<Edge> = locals.iter().flat_map(|l| l.seeds.iter().copied()).collect();
        Self {
            plan,
            locals,
            n,
            shard_sizes,
            local_iterations,
            build_work,
            build_timings: timings,
            bounds,
            flat_seeds,
        }
    }

    /// Number of ingested points.
    pub fn num_points(&self) -> usize {
        self.n
    }

    /// The Morton-range plan the build partitioned on.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Point counts per shard (empty shards included).
    pub fn shard_sizes(&self) -> &[usize] {
        &self.shard_sizes
    }

    /// Borůvka iterations of each non-empty shard's local solve.
    pub fn local_iterations(&self) -> &[u32] {
        &self.local_iterations
    }

    /// Algorithmic work spent by the build phase (the local solves).
    pub fn build_work(&self) -> CounterSnapshot {
        self.build_work
    }

    /// Wall-clock timings of the build phase (`"plan"`, `"local"`).
    pub fn build_timings(&self) -> &PhaseTimings {
        &self.build_timings
    }

    /// Heap bytes held resident by the artifacts (BVHs, rank maps, seeds,
    /// plan, precomputed merge bounds) — what a serving cache charges
    /// against its budget.
    pub fn resident_bytes(&self) -> usize {
        let per_local = |l: &LocalArtifact<D>| {
            l.merge.bvh.resident_bytes()
                + l.merge.vertex_of_rank.len() * std::mem::size_of::<u32>()
                + l.seeds.len() * std::mem::size_of::<Edge>()
        };
        self.plan.resident_bytes()
            + self.bounds.resident_bytes()
            + self.locals.iter().map(per_local).sum::<usize>()
    }

    /// Runs the merge phase over the full cloud: the exact EMST, computed
    /// without re-planning, re-solving, or rebuilding anything.
    ///
    /// The returned [`ShardStats`] covers **only this merge** (its `work`
    /// has `iterations == 0` since no Borůvka *solve* ran — the warm-query
    /// signature the serving tests assert); callers wanting the cold-solve
    /// view combine it with [`Self::build_work`]/[`Self::build_timings`] as
    /// [`crate::emst_sharded_with`] does.
    pub fn merge<S: ExecSpace>(&self, space: &S, traversal: Traversal) -> ShardedResult {
        self.merge_scratch(space, traversal, &mut MergeScratch::new())
    }

    /// [`Self::merge`] drawing every per-merge allocation from `scratch` —
    /// the form a long-lived server uses so warm repeat queries allocate
    /// nothing. The scratch carries no semantic state between calls.
    pub fn merge_scratch<S: ExecSpace>(
        &self,
        space: &S,
        traversal: Traversal,
        scratch: &mut MergeScratch,
    ) -> ShardedResult {
        self.merge_with(space, traversal, scratch, None, None).expect("no deadline was set")
    }

    /// A pristine [`MergeAccel`] for this cloud: floors seeded from the
    /// cached entry bounds, no candidates yet. Feed it to
    /// [`Self::merge_accel`]; it is only valid for these exact artifacts.
    pub fn new_accel(&self) -> MergeAccel {
        MergeAccel::from_bounds(&self.bounds, self.n, self.locals.len())
    }

    /// [`Self::merge_scratch`] additionally reading and re-depositing the
    /// durable cross-query floors/candidates in `accel` (built by
    /// [`Self::new_accel`]). The selected edges are bit-identical with or
    /// without the accelerator; only the traversal work shrinks.
    pub fn merge_accel<S: ExecSpace>(
        &self,
        space: &S,
        traversal: Traversal,
        scratch: &mut MergeScratch,
        accel: &mut MergeAccel,
    ) -> ShardedResult {
        self.merge_with(space, traversal, scratch, Some(accel), None).expect("no deadline was set")
    }

    /// [`Self::merge_accel`] under a wall-clock deadline, checked at every
    /// merge-round boundary. On [`MergeDeadlineExceeded`] no partial result
    /// escapes: the accelerator and scratch are exactly as reusable as
    /// before the call (the round-1 harvest of an abandoned merge is
    /// discarded with it).
    pub fn merge_accel_deadline<S: ExecSpace>(
        &self,
        space: &S,
        traversal: Traversal,
        scratch: &mut MergeScratch,
        accel: &mut MergeAccel,
        deadline: Option<Instant>,
    ) -> Result<ShardedResult, MergeDeadlineExceeded> {
        self.merge_with(space, traversal, scratch, Some(accel), deadline)
    }

    fn merge_with<S: ExecSpace>(
        &self,
        space: &S,
        traversal: Traversal,
        scratch: &mut MergeScratch,
        accel: Option<&mut MergeAccel>,
        deadline: Option<Instant>,
    ) -> Result<ShardedResult, MergeDeadlineExceeded> {
        let mut timings = PhaseTimings::new();
        let counters = Counters::new();
        let mut result = ShardedResult {
            edges: vec![],
            total_weight: 0.0,
            stats: ShardStats {
                shard_sizes: self.shard_sizes.clone(),
                local_iterations: self.local_iterations.clone(),
                peak_resident: self.n,
                ..ShardStats::default()
            },
        };
        if self.n < 2 {
            return Ok(result);
        }
        let views: Vec<MergeShardView<'_, D>> =
            self.locals.iter().map(|l| l.merge.view()).collect();
        let mst_start = std::time::Instant::now();
        let outcome = cross_shard_boruvka(
            space,
            &views,
            self.n,
            &self.flat_seeds,
            traversal,
            &counters,
            &mut timings,
            Some(&self.bounds),
            accel,
            deadline,
            scratch,
        )?;
        timings.record("merge", mst_start.elapsed().as_secs_f64());
        debug_assert_eq!(outcome.edges.len(), self.n - 1);

        result.total_weight = total_weight(&outcome.edges);
        result.edges = outcome.edges;
        result.stats.boundary_candidates = outcome.boundary_candidates;
        result.stats.merge_rounds = outcome.rounds;
        result.stats.round_details = outcome.round_details;
        result.stats.timings = timings;
        result.stats.work = counters.snapshot();
        Ok(result)
    }

    /// Exact EMST of a **subset** of the ingested points, reusing the
    /// resident build wherever the subset covers a shard completely (see
    /// the module docs for the partition argument).
    ///
    /// `points` must be the cloud the artifacts were built from (the
    /// serving layer guards this with its content digest), and `subset`
    /// holds distinct original point indices. Returned edges use original
    /// indices; `stats.shard_sizes` reports the subset's per-shard counts
    /// and `stats.local_iterations` only the partially-covered shards that
    /// had to re-solve.
    ///
    /// # Panics
    /// On out-of-range or duplicate subset indices.
    pub fn merge_subset<S: ExecSpace>(
        &self,
        space: &S,
        points: &[Point<D>],
        subset: &[u32],
        config: &EmstConfig,
        scratch: &mut BoruvkaScratch,
    ) -> ShardedResult {
        self.merge_subset_deadline(space, points, subset, config, scratch, None)
            .expect("no deadline was set")
    }

    /// [`Self::merge_subset`] under a wall-clock deadline, checked at every
    /// merge-round boundary (the local re-solve phase of partially covered
    /// shards runs to completion first — it is bounded by the build cost,
    /// which the caller already accepted).
    pub fn merge_subset_deadline<S: ExecSpace>(
        &self,
        space: &S,
        points: &[Point<D>],
        subset: &[u32],
        config: &EmstConfig,
        scratch: &mut BoruvkaScratch,
        deadline: Option<Instant>,
    ) -> Result<ShardedResult, MergeDeadlineExceeded> {
        assert_eq!(points.len(), self.n, "points are not the ingested cloud");
        let m = subset.len();
        let mut timings = PhaseTimings::new();
        let counters = Counters::new();

        // Renumber the subset to contiguous vertex ids 0..m.
        let mut new_id = vec![u32::MAX; self.n];
        for (j, &orig) in subset.iter().enumerate() {
            assert!((orig as usize) < self.n, "subset index {orig} out of range");
            assert_eq!(new_id[orig as usize], u32::MAX, "duplicate subset index {orig}");
            new_id[orig as usize] = j as u32;
        }

        // Per touched shard: reuse or re-solve.
        enum SubShard<'a, const D2: usize> {
            /// Fully covered: the cached BVH with a renumbered rank map.
            Reused { local: &'a LocalArtifact<D2>, vor: Vec<u32> },
            /// Partially covered: a fresh sub-shard over the members only.
            Fresh(MergeShard<D2>),
        }
        let mut shard_sizes = vec![0usize; self.plan.num_shards()];
        let mut local_iterations = vec![];
        let mut local_work = CounterSnapshot::default();
        let mut seeds: Vec<Edge> = vec![];
        let mut subs: Vec<SubShard<'_, D>> = vec![];
        timings.time("local", || {
            for local in &self.locals {
                let ids = self.plan.shard_indices(local.shard);
                let members: Vec<u32> =
                    ids.iter().copied().filter(|&i| new_id[i as usize] != u32::MAX).collect();
                shard_sizes[local.shard] = members.len();
                if members.is_empty() {
                    continue;
                }
                if members.len() == ids.len() {
                    let vor = local
                        .merge
                        .vertex_of_rank
                        .iter()
                        .map(|&orig| new_id[orig as usize])
                        .collect();
                    seeds.extend(local.seeds.iter().map(|e| {
                        Edge::new(new_id[e.u as usize], new_id[e.v as usize], e.weight_sq)
                    }));
                    subs.push(SubShard::Reused { local, vor });
                } else {
                    let pts: Vec<Point<D>> = members.iter().map(|&i| points[i as usize]).collect();
                    let vids: Vec<u32> = members.iter().map(|&i| new_id[i as usize]).collect();
                    if pts.len() >= 2 {
                        let r = SingleTreeBoruvka::new(&pts).run_scratch(space, config, scratch);
                        local_iterations.push(r.iterations);
                        local_work += r.work;
                        seeds.extend(r.edges.iter().map(|e| {
                            Edge::new(vids[e.u as usize], vids[e.v as usize], e.weight_sq)
                        }));
                    }
                    subs.push(SubShard::Fresh(MergeShard::build(space, &pts, &vids)));
                }
            }
        });

        let mut result = ShardedResult {
            edges: vec![],
            total_weight: 0.0,
            stats: ShardStats {
                shard_sizes,
                local_iterations,
                peak_resident: self.n,
                ..ShardStats::default()
            },
        };
        if m < 2 {
            result.stats.timings = timings;
            return Ok(result);
        }

        let views: Vec<MergeShardView<'_, D>> = subs
            .iter()
            .map(|s| match s {
                SubShard::Reused { local, vor } => {
                    MergeShardView { bvh: &local.merge.bvh, vertex_of_rank: vor }
                }
                SubShard::Fresh(ms) => ms.view(),
            })
            .collect();
        let mst_start = std::time::Instant::now();
        let outcome = cross_shard_boruvka(
            space,
            &views,
            m,
            &seeds,
            config.traversal,
            &counters,
            &mut timings,
            // Subset views renumber vertices, so neither the cached
            // full-cloud bounds nor any accelerator applies.
            None,
            None,
            deadline,
            &mut MergeScratch::new(),
        )?;
        timings.record("merge", mst_start.elapsed().as_secs_f64());
        debug_assert_eq!(outcome.edges.len(), m - 1);

        // Map vertex ids back to original point indices.
        let edges: Vec<Edge> = outcome
            .edges
            .iter()
            .map(|e| Edge::new(subset[e.u as usize], subset[e.v as usize], e.weight_sq))
            .collect();
        result.total_weight = total_weight(&edges);
        result.edges = edges;
        result.stats.boundary_candidates = outcome.boundary_candidates;
        result.stats.merge_rounds = outcome.rounds;
        result.stats.round_details = outcome.round_details;
        result.stats.timings = timings;
        result.stats.work = local_work + counters.snapshot();
        Ok(result)
    }

    /// Derives the artifacts of a *mutated* cloud from these artifacts,
    /// re-solving only the shards the mutation touched.
    ///
    /// `old_points` is the cloud these artifacts were built from and
    /// `new_points` the mutated cloud; `parent_of[v]` gives child vertex
    /// `v`'s id in the parent cloud (`u32::MAX` for an inserted point —
    /// surviving points must keep their coordinates). Each inserted point
    /// is routed to the non-empty shard whose Morton range covers its code
    /// (under the parent scene box, clamped like the plan's own encoder);
    /// any deterministic assignment yields the *exact* EMST — the cycle
    /// property discards intra-shard non-MST edges regardless of which
    /// partition produced them, so the child's edge-weight multiset is
    /// bit-identical to a from-scratch solve even though its plan need not
    /// equal one.
    ///
    /// Per shard: **clean** (no member inserted or deleted) reuses the BVH
    /// and local MST verbatim with renumbered vertex ids, and its
    /// per-`(vertex, shard)` entry bounds are inherited — tightened by
    /// `accel`'s durable round-1 floors, which are label-independent
    /// geometric facts about the unchanged point set (the PR 6 commute
    /// argument); **dirty** re-solves locally and recomputes its bounds
    /// column (plus every inserted vertex's full row). Accel *candidates*
    /// are never inherited: a parent candidate edge may name a deleted
    /// point, so the child starts candidate-free and re-harvests on its
    /// first merge.
    ///
    /// When the mutation changes the set of non-empty shards (a shard
    /// drained, or inserts landed where nothing lived) the incremental
    /// path cannot keep the parent's shard-column layout and the update
    /// falls back to a full [`Self::build`], reported honestly in the
    /// [`UpdateReport`].
    ///
    /// `deadline` is checked before each dirty-shard re-solve (and before
    /// a fallback rebuild), so a slow update gives up at phase granularity
    /// with nothing observable leaked — the parent artifacts are untouched
    /// either way.
    ///
    /// # Panics
    /// On `parent_of` inconsistencies (out-of-range or duplicate parent
    /// ids) or when `old_points` is not the ingested cloud.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_update<S: ExecSpace>(
        &self,
        space: &S,
        old_points: &[Point<D>],
        new_points: &[Point<D>],
        parent_of: &[u32],
        config: &ShardConfig,
        scratch: &mut BoruvkaScratch,
        accel: Option<&MergeAccel>,
        deadline: Option<Instant>,
    ) -> Result<(Self, UpdateReport), MergeDeadlineExceeded> {
        assert_eq!(old_points.len(), self.n, "old_points are not the ingested cloud");
        assert_eq!(parent_of.len(), new_points.len(), "parent_of must map every new point");
        let n_new = new_points.len();
        let k = self.plan.num_shards();
        let mut timings = PhaseTimings::new();

        // Invert the parent map and collect the inserted child ids.
        let mut child_of = vec![u32::MAX; self.n];
        let mut inserted: Vec<u32> = vec![];
        for (v, &p) in parent_of.iter().enumerate() {
            if p == u32::MAX {
                inserted.push(v as u32);
            } else {
                assert!((p as usize) < self.n, "parent_of id {p} out of range");
                assert_eq!(child_of[p as usize], u32::MAX, "duplicate parent_of id {p}");
                debug_assert_eq!(
                    new_points[v], old_points[p as usize],
                    "surviving point {v} moved — model a move as delete + insert"
                );
                child_of[p as usize] = v as u32;
            }
        }

        // Child membership per shard: survivors in parent order, then the
        // routed inserts in (Morton code, child id) order — deterministic,
        // so two derivations of the same mutation agree bit-for-bit.
        let (members, dirty_shard) = timings.time("plan", || {
            let mut members: Vec<Vec<u32>> = vec![vec![]; k];
            let mut dirty_shard = vec![false; k];
            for (s, dirty) in dirty_shard.iter_mut().enumerate() {
                let kept = &mut members[s];
                for &p in self.plan.shard_indices(s) {
                    let c = child_of[p as usize];
                    if c != u32::MAX {
                        kept.push(c);
                    } else {
                        *dirty = true;
                    }
                }
            }
            if !inserted.is_empty() {
                let scene = Aabb::from_points(old_points);
                let enc = MortonEncoder::new(&scene);
                let max_code: Vec<Option<u64>> = (0..k)
                    .map(|s| {
                        self.plan
                            .shard_indices(s)
                            .iter()
                            .map(|&p| enc.encode_u64(&old_points[p as usize]))
                            .max()
                    })
                    .collect();
                let route = |code: u64| -> usize {
                    let mut last = 0;
                    for (s, m) in max_code.iter().enumerate() {
                        if let Some(m) = m {
                            last = s;
                            if code <= *m {
                                return s;
                            }
                        }
                    }
                    last
                };
                let mut routed: Vec<(u64, u32, usize)> = inserted
                    .iter()
                    .map(|&c| {
                        let code = enc.encode_u64(&new_points[c as usize]);
                        (code, c, route(code))
                    })
                    .collect();
                routed.sort_unstable();
                for &(_, c, s) in &routed {
                    members[s].push(c);
                    dirty_shard[s] = true;
                }
            }
            (members, dirty_shard)
        });

        // The incremental path keeps the parent's local-column layout
        // (bounds stride, accel slots, serialization shape), which requires
        // the set of non-empty shards to be unchanged. Otherwise: honest
        // full rebuild.
        if (0..k).any(|s| self.plan.shard_indices(s).is_empty() != members[s].is_empty()) {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(MergeDeadlineExceeded);
                }
            }
            let rebuilt = Self::build(space, new_points, config);
            let dirty_shards = (0..rebuilt.plan.num_shards())
                .filter(|&s| !rebuilt.plan.shard_indices(s).is_empty())
                .collect();
            return Ok((
                rebuilt,
                UpdateReport { dirty_shards, reused_shards: 0, full_rebuild: true },
            ));
        }

        let mut order: Vec<u32> = Vec::with_capacity(n_new);
        let mut cut = Vec::with_capacity(k + 1);
        cut.push(0);
        for m in &members {
            order.extend_from_slice(m);
            cut.push(order.len());
        }
        let plan = ShardPlan::from_parts(order, cut);
        let shard_sizes = plan.shard_sizes();

        let mut local_iterations = Vec::with_capacity(self.locals.len());
        let mut build_work = CounterSnapshot::default();
        let mut locals: Vec<LocalArtifact<D>> = Vec::with_capacity(self.locals.len());
        let mut dirty_local = Vec::with_capacity(self.locals.len());
        let mut dirty_shards = vec![];
        let mut reused_shards = 0usize;
        timings.time("local", || -> Result<(), MergeDeadlineExceeded> {
            for (li, local) in self.locals.iter().enumerate() {
                let s = local.shard;
                if !dirty_shard[s] {
                    let vertex_of_rank =
                        local.merge.vertex_of_rank.iter().map(|&p| child_of[p as usize]).collect();
                    let seeds = local
                        .seeds
                        .iter()
                        .map(|e| {
                            Edge::new(child_of[e.u as usize], child_of[e.v as usize], e.weight_sq)
                        })
                        .collect();
                    let merge = MergeShard { bvh: local.merge.bvh.clone(), vertex_of_rank };
                    locals.push(LocalArtifact { shard: s, merge, seeds });
                    local_iterations.push(self.local_iterations[li]);
                    dirty_local.push(false);
                    reused_shards += 1;
                    continue;
                }
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Err(MergeDeadlineExceeded);
                    }
                }
                let ids = &members[s];
                let pts: Vec<Point<D>> = ids.iter().map(|&c| new_points[c as usize]).collect();
                let (seeds, iterations, work) = if pts.len() >= 2 {
                    let r = SingleTreeBoruvka::new(&pts).run_scratch(space, &config.emst, scratch);
                    let seeds = r
                        .edges
                        .iter()
                        .map(|e| Edge::new(ids[e.u as usize], ids[e.v as usize], e.weight_sq))
                        .collect();
                    (seeds, r.iterations, r.work)
                } else {
                    (vec![], 0, CounterSnapshot::default())
                };
                build_work += work;
                local_iterations.push(iterations);
                locals.push(LocalArtifact {
                    shard: s,
                    merge: MergeShard::build(space, &pts, ids),
                    seeds,
                });
                dirty_local.push(true);
                dirty_shards.push(s);
            }
            Ok(())
        })?;

        let bounds = timings.time("plan", || {
            let mut hint = vec![Scalar::INFINITY; n_new];
            for l in &locals {
                for e in &l.seeds {
                    hint[e.u as usize] = hint[e.u as usize].min(e.weight_sq);
                    hint[e.v as usize] = hint[e.v as usize].min(e.weight_sq);
                }
            }
            let views: Vec<MergeShardView<'_, D>> = locals.iter().map(|l| l.merge.view()).collect();
            CrossBounds::inherit_and_recompute(
                space,
                &views,
                n_new,
                &self.bounds,
                accel,
                parent_of,
                &dirty_local,
                Some(&hint),
            )
        });
        let flat_seeds: Vec<Edge> = locals.iter().flat_map(|l| l.seeds.iter().copied()).collect();
        Ok((
            Self {
                plan,
                locals,
                n: n_new,
                shard_sizes,
                local_iterations,
                build_work,
                build_timings: timings,
                bounds,
                flat_seeds,
            },
            UpdateReport { dirty_shards, reused_shards, full_rebuild: false },
        ))
    }

    /// The `k` nearest ingested points to `query` as `(original index,
    /// squared distance)`, sorted ascending by `(distance, index)` —
    /// answered from the resident per-shard BVHs (each shard returns its
    /// local top-`k`; the global top-`k` is their merge). The distance
    /// multiset is exact; when several points tie *at the cut-off distance
    /// within one shard*, which of them is reported follows that shard's
    /// Morton-rank order. Traversal work accumulates into `stats`.
    pub fn k_nearest(
        &self,
        query: &Point<D>,
        k: usize,
        stats: &mut TraversalStats,
    ) -> Vec<(u32, Scalar)> {
        let mut all: Vec<(u32, Scalar)> = vec![];
        for l in &self.locals {
            let mut st = TraversalStats::default();
            for (rank, d) in l.merge.bvh.k_nearest_with_stats(query, k, &mut st) {
                all.push((l.merge.vertex_of_rank[rank as usize], d));
            }
            *stats = stats.merged(st);
        }
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// Appends the durable binary encoding of these artifacts to `out` —
    /// the plan, every local's seeds and BVH, and the precomputed merge
    /// bounds, framed as checksummed sections (magic `EMSTART1`).
    ///
    /// Only state that cannot be derived from the rest is stored:
    /// `vertex_of_rank`, the vertex→shard maps, `shard_sizes` and
    /// `flat_seeds` are all recomputed by [`Self::deserialize`]. Build-time
    /// accounting (`build_work`, `build_timings`) is deliberately **not**
    /// persisted — a restore did no build work, and reporting zeros is the
    /// honest signature the serving stats rely on.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        let mut blob = BlobWriter::new(ARTIFACT_MAGIC);
        let mut plan = ByteWriter::new();
        plan.u64(self.n as u64);
        plan.u64(self.plan.num_shards() as u64);
        for &o in self.plan.order() {
            plan.u32(o);
        }
        for &b in self.plan.cut_bounds() {
            plan.u64(b as u64);
        }
        blob.section(b"PLAN", &plan.into_vec());

        let mut locs = ByteWriter::new();
        locs.u64(self.locals.len() as u64);
        for (l, &iters) in self.locals.iter().zip(&self.local_iterations) {
            locs.u32(l.shard as u32);
            locs.u32(iters);
            locs.u64(l.seeds.len() as u64);
            for e in &l.seeds {
                locs.u32(e.u);
                locs.u32(e.v);
                locs.f32(e.weight_sq);
            }
            let mut bvh = vec![];
            l.merge.bvh.serialize_into(&mut bvh);
            locs.u64(bvh.len() as u64);
            locs.bytes(&bvh);
        }
        blob.section(b"LOCS", &locs.into_vec());

        let mut bnds = ByteWriter::new();
        for &d in &self.bounds.cross_dist {
            bnds.f32(d);
        }
        for &r in &self.bounds.reach {
            bnds.f32(r);
        }
        blob.section(b"BNDS", &bnds.into_vec());
        out.extend_from_slice(&blob.finish());
    }

    /// Decodes a blob written by [`Self::serialize_into`], re-deriving all
    /// the redundant state. Every length, id range and structural invariant
    /// is validated — corrupt or foreign bytes yield an `InvalidData` error
    /// (the serving layer's cue to fall back to the deterministic rebuild),
    /// never a panic or wrong artifacts downstream.
    ///
    /// The caller is responsible for the blob belonging to the point cloud
    /// it will be merged against; the serving layer guarantees this by
    /// storing artifact bytes inside the same digest-named spill file as
    /// the points themselves.
    pub fn deserialize(bytes: &[u8]) -> io::Result<Self> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let mut blob = BlobReader::open(bytes, ARTIFACT_MAGIC)?;

        let plan_bytes = blob.section(b"PLAN")?;
        let mut r = ByteReader::new(plan_bytes);
        let n = r.len_capped(plan_bytes.len() / 4, "artifact plan: implausible point count")?;
        let k = r.len_capped(plan_bytes.len() / 8, "artifact plan: implausible shard count")?;
        if k == 0 {
            return Err(bad("artifact plan: zero shards"));
        }
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        for _ in 0..n {
            let o = r.u32()?;
            if o as usize >= n || std::mem::replace(&mut seen[o as usize], true) {
                return Err(bad("artifact plan: order is not a permutation"));
            }
            order.push(o);
        }
        let mut cut_bounds = Vec::with_capacity(k + 1);
        for _ in 0..=k {
            cut_bounds.push(r.u64()? as usize);
        }
        r.done()?;
        if cut_bounds[0] != 0 || cut_bounds[k] != n || cut_bounds.windows(2).any(|w| w[0] > w[1]) {
            return Err(bad("artifact plan: cut table is not monotone over 0..n"));
        }
        let plan = ShardPlan::from_parts(order, cut_bounds);
        let shard_sizes = plan.shard_sizes();

        let locs_bytes = blob.section(b"LOCS")?;
        let mut r = ByteReader::new(locs_bytes);
        let num_locals = r.len_capped(k, "artifact locals: more locals than shards")?;
        let mut locals: Vec<LocalArtifact<D>> = Vec::with_capacity(num_locals);
        let mut local_iterations = Vec::with_capacity(num_locals);
        for _ in 0..num_locals {
            let shard = r.u32()? as usize;
            if shard >= k || shard_sizes[shard] == 0 {
                return Err(bad("artifact locals: local for an empty or out-of-range shard"));
            }
            if locals.iter().any(|l: &LocalArtifact<D>| l.shard == shard) {
                return Err(bad("artifact locals: duplicate shard"));
            }
            local_iterations.push(r.u32()?);
            let num_seeds = r.len_capped(shard_sizes[shard], "artifact locals: seed count")?;
            let mut seeds = Vec::with_capacity(num_seeds);
            for _ in 0..num_seeds {
                let u = r.u32()?;
                let v = r.u32()?;
                let w = r.f32()?;
                if u as usize >= n || v as usize >= n {
                    return Err(bad("artifact locals: seed endpoint out of range"));
                }
                seeds.push(Edge::new(u, v, w));
            }
            let blob_len = r.len_capped(r.remaining(), "artifact locals: bvh blob length")?;
            let bvh = Bvh::<D>::deserialize(r.take(blob_len)?)
                .map_err(|e| bad(&format!("artifact locals: {e}")))?;
            if bvh.num_leaves() != shard_sizes[shard] {
                return Err(bad("artifact locals: bvh leaf count disagrees with the plan"));
            }
            // vertex_of_rank is derived, exactly as MergeShard::build does.
            let ids = plan.shard_indices(shard);
            let vertex_of_rank =
                (0..bvh.num_leaves() as u32).map(|r| ids[bvh.point_index(r) as usize]).collect();
            let merge = MergeShard { bvh, vertex_of_rank };
            locals.push(LocalArtifact { shard, merge, seeds });
        }
        r.done()?;
        if locals.len() != (0..k).filter(|&s| shard_sizes[s] > 0).count() {
            return Err(bad("artifact locals: missing a non-empty shard's local"));
        }

        let bnds_bytes = blob.section(b"BNDS")?;
        blob.done()?;
        let stride = locals.len();
        let expect = n
            .checked_mul(stride)
            .and_then(|c| c.checked_add(n))
            .and_then(|c| c.checked_mul(4))
            .ok_or_else(|| bad("artifact bounds: size overflow"))?;
        if bnds_bytes.len() != expect {
            return Err(bad("artifact bounds: wrong length"));
        }
        let mut r = ByteReader::new(bnds_bytes);
        let mut cross_dist = Vec::with_capacity(n * stride);
        for _ in 0..n * stride {
            cross_dist.push(r.f32()?);
        }
        let mut reach = Vec::with_capacity(n);
        for _ in 0..n {
            reach.push(r.f32()?);
        }
        r.done()?;
        // shard_of / rank_of are derived from the rank maps (local index,
        // not plan shard index — mirroring CrossBounds::compute, which the
        // merge's cross_dist indexing depends on).
        let mut shard_of = vec![0u32; n];
        let mut rank_of = vec![0u32; n];
        let mut covered = vec![false; n];
        for (s, l) in locals.iter().enumerate() {
            for (rank, &v) in l.merge.vertex_of_rank.iter().enumerate() {
                shard_of[v as usize] = s as u32;
                rank_of[v as usize] = rank as u32;
                covered[v as usize] = true;
            }
        }
        if n > 0 && !covered.iter().all(|&c| c) {
            return Err(bad("artifact locals: rank maps do not cover every vertex"));
        }
        let bounds = CrossBounds { shard_of, rank_of, cross_dist, reach };
        let flat_seeds = locals.iter().flat_map(|l| l.seeds.iter().copied()).collect();

        Ok(Self {
            plan,
            locals,
            n,
            shard_sizes,
            local_iterations,
            build_work: CounterSnapshot::default(),
            build_timings: PhaseTimings::new(),
            bounds,
            flat_seeds,
        })
    }
}

/// What [`ShardArtifacts::apply_update`] did to derive the child artifacts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// Plan-shard indices whose local solve re-ran (insert/delete landed
    /// there). On a full rebuild: every non-empty shard of the new plan.
    pub dirty_shards: Vec<usize>,
    /// Non-empty shards whose BVH + local MST were reused verbatim.
    pub reused_shards: usize,
    /// The mutation changed the set of non-empty shards, so the update
    /// fell back to a full build instead of staying incremental.
    pub full_rebuild: bool,
}

/// Magic of the serialized-artifact blob ([`ShardArtifacts::serialize_into`]).
pub const ARTIFACT_MAGIC: &[u8; 8] = b"EMSTART1";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emst_sharded;
    use emst_core::brute::brute_force_emst;
    use emst_core::edge::{verify_spanning_tree, weight_multiset};
    use emst_exec::{Serial, Threads};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points_2d(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(-1.0f32..1.0), rng.random_range(-1.0f32..1.0)]))
            .collect()
    }

    #[test]
    fn repeated_merges_are_bit_identical_and_do_no_build_work() {
        let pts = random_points_2d(900, 3);
        let artifacts = ShardArtifacts::build(&Threads, &pts, &ShardConfig::new(5));
        assert!(artifacts.build_work().iterations > 0);
        assert!(artifacts.resident_bytes() > 0);
        let cold = emst_sharded(&pts, 5);
        let a = artifacts.merge(&Threads, Traversal::default());
        let b = artifacts.merge(&Threads, Traversal::default());
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.edges, cold.edges);
        // Merge-only stats: traversal queries happened, but no Borůvka
        // solve iterations and no tree-phase work.
        assert!(a.stats.work.queries > 0);
        assert_eq!(a.stats.work.iterations, 0);
        assert_eq!(a.stats.timings.get("plan"), 0.0);
        assert_eq!(a.stats.timings.get("local"), 0.0);
        assert!(a.stats.timings.get("merge") > 0.0);
    }

    #[test]
    fn subset_merge_matches_brute_force_on_the_subset() {
        let pts = random_points_2d(400, 7);
        let artifacts = ShardArtifacts::build(&Serial, &pts, &ShardConfig::new(6));
        let mut scratch = BoruvkaScratch::new();
        let mut rng = StdRng::seed_from_u64(11);
        for take in [2usize, 17, 120, 399, 400] {
            // Random distinct subset of `take` indices.
            let mut all: Vec<u32> = (0..400).collect();
            for i in 0..take {
                let j = rng.random_range(i..400);
                all.swap(i, j);
            }
            let subset = &all[..take];
            let r =
                artifacts.merge_subset(&Serial, &pts, subset, &EmstConfig::default(), &mut scratch);
            assert_eq!(r.edges.len(), take - 1);
            // Edges use original ids; verify over the compacted numbering.
            let compact: std::collections::HashMap<u32, u32> =
                subset.iter().enumerate().map(|(j, &o)| (o, j as u32)).collect();
            let compacted: Vec<Edge> = r
                .edges
                .iter()
                .map(|e| Edge::new(compact[&e.u], compact[&e.v], e.weight_sq))
                .collect();
            verify_spanning_tree(take, &compacted).unwrap();
            let sub_pts: Vec<Point<2>> = subset.iter().map(|&i| pts[i as usize]).collect();
            let brute = brute_force_emst(&sub_pts);
            assert_eq!(weight_multiset(&r.edges), weight_multiset(&brute), "take={take}");
        }
    }

    #[test]
    fn morton_contiguous_subset_reuses_interior_shards() {
        // A subset aligned to the plan's own order covers interior shards
        // completely, so only the boundary shards re-solve.
        let pts = random_points_2d(1000, 13);
        let artifacts = ShardArtifacts::build(&Serial, &pts, &ShardConfig::new(8));
        let plan = artifacts.plan();
        // Everything except the first half of shard 0: shards 1..8 are
        // fully covered, shard 0 partially.
        let mut subset: Vec<u32> = vec![];
        let first = plan.shard_indices(0);
        subset.extend(first.iter().skip(first.len() / 2));
        for s in 1..plan.num_shards() {
            subset.extend(plan.shard_indices(s));
        }
        let mut scratch = BoruvkaScratch::new();
        let r =
            artifacts.merge_subset(&Serial, &pts, &subset, &EmstConfig::default(), &mut scratch);
        // Only shard 0 re-ran a local solve.
        assert_eq!(r.stats.local_iterations.len(), 1);
        let sub_pts: Vec<Point<2>> = subset.iter().map(|&i| pts[i as usize]).collect();
        let brute = brute_force_emst(&sub_pts);
        assert_eq!(weight_multiset(&r.edges), weight_multiset(&brute));
    }

    #[test]
    fn trivial_subsets() {
        let pts = random_points_2d(50, 1);
        let artifacts = ShardArtifacts::build(&Serial, &pts, &ShardConfig::new(4));
        let mut scratch = BoruvkaScratch::new();
        let cfg = EmstConfig::default();
        assert!(artifacts.merge_subset(&Serial, &pts, &[], &cfg, &mut scratch).edges.is_empty());
        assert!(artifacts.merge_subset(&Serial, &pts, &[7], &cfg, &mut scratch).edges.is_empty());
        let two = artifacts.merge_subset(&Serial, &pts, &[3, 41], &cfg, &mut scratch);
        assert_eq!(two.edges.len(), 1);
        assert_eq!(two.edges[0], Edge::new(3, 41, pts[3].squared_distance(&pts[41])));
    }

    #[test]
    #[should_panic(expected = "duplicate subset index")]
    fn duplicate_subset_indices_panic() {
        let pts = random_points_2d(20, 2);
        let artifacts = ShardArtifacts::build(&Serial, &pts, &ShardConfig::new(2));
        artifacts.merge_subset(
            &Serial,
            &pts,
            &[1, 2, 1],
            &EmstConfig::default(),
            &mut BoruvkaScratch::new(),
        );
    }

    #[test]
    fn serialized_artifacts_restore_to_bit_identical_merges() {
        let pts = random_points_2d(700, 21);
        let built = ShardArtifacts::build(&Serial, &pts, &ShardConfig::new(6));
        let mut blob = vec![];
        built.serialize_into(&mut blob);
        let restored = ShardArtifacts::<2>::deserialize(&blob).unwrap();

        // Restored state mirrors the build, minus the build accounting.
        assert_eq!(restored.num_points(), built.num_points());
        assert_eq!(restored.shard_sizes(), built.shard_sizes());
        assert_eq!(restored.local_iterations(), built.local_iterations());
        assert_eq!(restored.resident_bytes(), built.resident_bytes());
        assert_eq!(restored.build_work().iterations, 0);

        // Full-cloud merge, subset merge, and knn are all bit-identical.
        let a = built.merge(&Serial, Traversal::default());
        let b = restored.merge(&Serial, Traversal::default());
        assert_eq!(a.edges, b.edges);
        let subset: Vec<u32> = (0..700).step_by(3).collect();
        let mut scratch = BoruvkaScratch::new();
        let sa = built.merge_subset(&Serial, &pts, &subset, &EmstConfig::default(), &mut scratch);
        let sb =
            restored.merge_subset(&Serial, &pts, &subset, &EmstConfig::default(), &mut scratch);
        assert_eq!(sa.edges, sb.edges);
        let mut st = TraversalStats::default();
        assert_eq!(built.k_nearest(&pts[17], 5, &mut st), restored.k_nearest(&pts[17], 5, &mut st));
        // Accelerated merges over the restored bounds stay bit-identical.
        let mut accel = restored.new_accel();
        let mut ms = MergeScratch::new();
        let c = restored.merge_accel(&Serial, Traversal::default(), &mut ms, &mut accel);
        assert_eq!(a.edges, c.edges);

        // Re-serializing the restored artifacts reproduces the same bytes.
        let mut blob2 = vec![];
        restored.serialize_into(&mut blob2);
        assert_eq!(blob, blob2);
    }

    #[test]
    fn corrupt_artifact_blobs_are_errors_not_panics() {
        let pts = random_points_2d(120, 23);
        let built = ShardArtifacts::build(&Serial, &pts, &ShardConfig::new(3));
        let mut blob = vec![];
        built.serialize_into(&mut blob);
        assert!(ShardArtifacts::<2>::deserialize(&[]).is_err());
        for cut in [7usize, 12, blob.len() / 2, blob.len() - 1] {
            assert!(ShardArtifacts::<2>::deserialize(&blob[..cut]).is_err(), "cut={cut}");
        }
        // A flipped byte anywhere is caught (section checksums), including
        // deep inside the BVH bytes.
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..40 {
            let i = rng.random_range(0..blob.len());
            let mut bad = blob.clone();
            bad[i] ^= 0x20;
            if bad == blob {
                continue;
            }
            assert!(ShardArtifacts::<2>::deserialize(&bad).is_err(), "flip at {i}");
        }
    }

    #[test]
    fn expired_deadline_returns_error_and_leaves_state_reusable() {
        let pts = random_points_2d(500, 29);
        let artifacts = ShardArtifacts::build(&Serial, &pts, &ShardConfig::new(4));
        let mut scratch = MergeScratch::new();
        let mut accel = artifacts.new_accel();
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let err = artifacts.merge_accel_deadline(
            &Serial,
            Traversal::default(),
            &mut scratch,
            &mut accel,
            Some(past),
        );
        assert_eq!(err.unwrap_err(), MergeDeadlineExceeded);
        let mut bs = BoruvkaScratch::new();
        let sub: Vec<u32> = (0..100).collect();
        let err = artifacts.merge_subset_deadline(
            &Serial,
            &pts,
            &sub,
            &EmstConfig::default(),
            &mut bs,
            Some(past),
        );
        assert_eq!(err.unwrap_err(), MergeDeadlineExceeded);
        // A generous deadline succeeds, bit-identically, with the same
        // scratch and accelerator the failed attempts touched.
        let far = Instant::now() + std::time::Duration::from_secs(3600);
        let ok = artifacts
            .merge_accel_deadline(
                &Serial,
                Traversal::default(),
                &mut scratch,
                &mut accel,
                Some(far),
            )
            .unwrap();
        assert_eq!(ok.edges, artifacts.merge(&Serial, Traversal::default()).edges);
    }

    /// Appends `extra` fresh points to `pts`, returning the child cloud and
    /// its `parent_of` map (identity for survivors, `MAX` for inserts).
    fn with_inserts(pts: &[Point<2>], extra: &[Point<2>]) -> (Vec<Point<2>>, Vec<u32>) {
        let mut np = pts.to_vec();
        np.extend_from_slice(extra);
        let mut parent_of: Vec<u32> = (0..pts.len() as u32).collect();
        parent_of.extend(std::iter::repeat_n(u32::MAX, extra.len()));
        (np, parent_of)
    }

    /// Removes the points at `del` (distinct parent ids) from `pts`,
    /// returning the compacted child cloud and its `parent_of` map.
    fn with_deletes(pts: &[Point<2>], del: &[u32]) -> (Vec<Point<2>>, Vec<u32>) {
        let dead: std::collections::HashSet<u32> = del.iter().copied().collect();
        let mut np = vec![];
        let mut parent_of = vec![];
        for (i, p) in pts.iter().enumerate() {
            if !dead.contains(&(i as u32)) {
                np.push(*p);
                parent_of.push(i as u32);
            }
        }
        (np, parent_of)
    }

    #[test]
    fn incremental_insert_matches_from_scratch_and_reuses_clean_shards() {
        let pts = random_points_2d(400, 31);
        let parent = ShardArtifacts::build(&Serial, &pts, &ShardConfig::new(6));
        // A tight cluster of inserts lands in few shards.
        let extra: Vec<Point<2>> =
            (0..8).map(|i| Point::new([0.31 + i as f32 * 1e-3, 0.52])).collect();
        let (np, parent_of) = with_inserts(&pts, &extra);
        let mut scratch = BoruvkaScratch::new();
        let (child, report) = parent
            .apply_update(
                &Serial,
                &pts,
                &np,
                &parent_of,
                &ShardConfig::new(6),
                &mut scratch,
                None,
                None,
            )
            .unwrap();
        assert!(!report.full_rebuild);
        assert!(report.reused_shards >= 4, "cluster inserts must keep most shards clean");
        assert_eq!(report.dirty_shards.len() + report.reused_shards, 6);
        let r = child.merge(&Serial, Traversal::default());
        assert_eq!(weight_multiset(&r.edges), weight_multiset(&brute_force_emst(&np)));
        // The child is a first-class artifact: it serializes and restores
        // to bit-identical merges like any built one.
        let mut blob = vec![];
        child.serialize_into(&mut blob);
        let restored = ShardArtifacts::<2>::deserialize(&blob).unwrap();
        assert_eq!(restored.merge(&Serial, Traversal::default()).edges, r.edges);
    }

    #[test]
    fn incremental_delete_matches_from_scratch() {
        let pts = random_points_2d(300, 37);
        let parent = ShardArtifacts::build(&Serial, &pts, &ShardConfig::new(5));
        // Delete a handful of spatially close members (all from one shard)
        // plus one arbitrary id.
        let victim_shard: Vec<u32> =
            parent.plan().shard_indices(2).iter().take(3).copied().collect();
        let mut del = victim_shard;
        del.push(7);
        let (np, parent_of) = with_deletes(&pts, &del);
        let mut scratch = BoruvkaScratch::new();
        let (child, report) = parent
            .apply_update(
                &Serial,
                &pts,
                &np,
                &parent_of,
                &ShardConfig::new(5),
                &mut scratch,
                None,
                None,
            )
            .unwrap();
        assert!(!report.full_rebuild);
        assert!(!report.dirty_shards.is_empty() && report.reused_shards > 0);
        let r = child.merge(&Serial, Traversal::default());
        assert_eq!(r.edges.len(), np.len() - 1);
        assert_eq!(weight_multiset(&r.edges), weight_multiset(&brute_force_emst(&np)));
    }

    #[test]
    fn incremental_update_inherits_accel_floors_bit_identically() {
        let pts = random_points_2d(350, 41);
        let parent = ShardArtifacts::build(&Serial, &pts, &ShardConfig::new(4));
        // Warm the parent accelerator so there are durable floors to
        // inherit.
        let mut accel = parent.new_accel();
        let mut ms = MergeScratch::new();
        parent.merge_accel(&Serial, Traversal::default(), &mut ms, &mut accel);
        assert!(accel.num_candidates() > 0, "round 1 must have harvested candidates");

        let extra = vec![Point::new([0.05f32, -0.4]), Point::new([-0.6f32, 0.33])];
        let (np, parent_of) = with_inserts(&pts, &extra);
        let mut scratch = BoruvkaScratch::new();
        let cfg = ShardConfig::new(4);
        let derive = |accel: Option<&MergeAccel>, scratch: &mut BoruvkaScratch| {
            parent.apply_update(&Serial, &pts, &np, &parent_of, &cfg, scratch, accel, None).unwrap()
        };
        let (plain, _) = derive(None, &mut scratch);
        let (floored, _) = derive(Some(&accel), &mut scratch);
        // Inherited floors only prune provably-dead work: the merge result
        // is bit-identical, and repeated merges through the child's own
        // accelerator stay so.
        let a = plain.merge(&Serial, Traversal::default());
        let b = floored.merge(&Serial, Traversal::default());
        assert_eq!(a.edges, b.edges);
        let mut child_accel = floored.new_accel();
        for _ in 0..2 {
            let c = floored.merge_accel(&Serial, Traversal::default(), &mut ms, &mut child_accel);
            assert_eq!(c.edges, b.edges);
        }
        assert_eq!(weight_multiset(&a.edges), weight_multiset(&brute_force_emst(&np)));
    }

    #[test]
    fn draining_a_shard_falls_back_to_full_rebuild() {
        let pts = random_points_2d(200, 43);
        let parent = ShardArtifacts::build(&Serial, &pts, &ShardConfig::new(4));
        let del: Vec<u32> = parent.plan().shard_indices(1).to_vec();
        assert!(!del.is_empty());
        let (np, parent_of) = with_deletes(&pts, &del);
        let mut scratch = BoruvkaScratch::new();
        let (child, report) = parent
            .apply_update(
                &Serial,
                &pts,
                &np,
                &parent_of,
                &ShardConfig::new(4),
                &mut scratch,
                None,
                None,
            )
            .unwrap();
        assert!(report.full_rebuild);
        assert_eq!(report.reused_shards, 0);
        let r = child.merge(&Serial, Traversal::default());
        assert_eq!(weight_multiset(&r.edges), weight_multiset(&brute_force_emst(&np)));
    }

    #[test]
    fn expired_deadline_aborts_update_and_leaves_parent_reusable() {
        let pts = random_points_2d(250, 47);
        let parent = ShardArtifacts::build(&Serial, &pts, &ShardConfig::new(4));
        let (np, parent_of) = with_inserts(&pts, &[Point::new([0.1f32, 0.1])]);
        let mut scratch = BoruvkaScratch::new();
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let err = parent.apply_update(
            &Serial,
            &pts,
            &np,
            &parent_of,
            &ShardConfig::new(4),
            &mut scratch,
            None,
            Some(past),
        );
        assert!(matches!(err, Err(MergeDeadlineExceeded)));
        // The parent is untouched and a generous deadline succeeds.
        let far = Instant::now() + std::time::Duration::from_secs(3600);
        let (child, _) = parent
            .apply_update(
                &Serial,
                &pts,
                &np,
                &parent_of,
                &ShardConfig::new(4),
                &mut scratch,
                None,
                Some(far),
            )
            .unwrap();
        let r = child.merge(&Serial, Traversal::default());
        assert_eq!(weight_multiset(&r.edges), weight_multiset(&brute_force_emst(&np)));
        assert_eq!(parent.merge(&Serial, Traversal::default()).edges.len(), pts.len() - 1);
    }

    #[test]
    fn k_nearest_matches_brute_force() {
        let pts = random_points_2d(300, 17);
        let artifacts = ShardArtifacts::build(&Serial, &pts, &ShardConfig::new(5));
        let queries = random_points_2d(20, 18);
        let mut stats = TraversalStats::default();
        for q in &queries {
            for k in [1usize, 4, 9] {
                let got = artifacts.k_nearest(q, k, &mut stats);
                let mut expect: Vec<(u32, Scalar)> = pts
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i as u32, q.squared_distance(p)))
                    .collect();
                expect.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                expect.truncate(k);
                assert_eq!(got, expect, "k={k}");
            }
        }
        assert!(stats.nodes > 0);
    }
}
