//! Morton-range partitioning of a point cloud into spatially coherent shards.
//!
//! The plan sorts points along the Z-order curve (reusing [`emst_morton`]'s
//! encoder, exactly like the BVH construction) and cuts the sorted sequence
//! into `K` contiguous ranges of roughly equal size. Because the curve
//! preserves spatial locality, every range is a spatially coherent blob —
//! the property the per-shard local solves and the boundary-query pruning of
//! the merge both rely on.
//!
//! Cut positions are *snapped forward past runs of identical Morton codes*,
//! so points that are indistinguishable on the curve (duplicates, or
//! hot-spot collapses at 64-bit resolution) always land in the same shard.
//! With heavily duplicated inputs this makes the split uneven — in the
//! extreme (all points identical) one shard holds everything and the rest
//! are empty, which every consumer of a plan must tolerate.

use emst_geometry::{Aabb, Point};
use emst_morton::MortonEncoder;

/// A partition of `n` points into `K` contiguous Morton ranges.
///
/// ```
/// use emst_geometry::Point;
/// use emst_shard::ShardPlan;
///
/// let pts: Vec<Point<2>> = (0..100).map(|i| Point::new([i as f32, 0.0])).collect();
/// let plan = ShardPlan::new(&pts, 4);
/// assert_eq!(plan.num_shards(), 4);
/// assert_eq!(plan.shard_sizes(), vec![25, 25, 25, 25]);
/// // Every original index appears in exactly one shard.
/// let mut seen: Vec<u32> = (0..4).flat_map(|s| plan.shard_indices(s).to_vec()).collect();
/// seen.sort();
/// assert_eq!(seen, (0..100).collect::<Vec<_>>());
/// ```
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Original point indices, sorted by `(morton code, index)`.
    order: Vec<u32>,
    /// Shard `s` owns `order[bounds[s]..bounds[s + 1]]`; `K + 1` entries.
    bounds: Vec<usize>,
}

impl ShardPlan {
    /// Plans `shards` Morton-range shards over `points` (`shards` is clamped
    /// to at least 1). Shards may be empty when `shards > n` or when
    /// duplicate Morton codes force a cut to snap forward.
    pub fn new<const D: usize>(points: &[Point<D>], shards: usize) -> Self {
        let k = shards.max(1);
        let scene = Aabb::from_points(points);
        let enc = MortonEncoder::new(&scene);
        let mut pairs: Vec<(u64, u32)> =
            points.iter().enumerate().map(|(i, p)| (enc.encode_u64(p), i as u32)).collect();
        pairs.sort_unstable();
        Self::from_sorted_codes(&pairs, k)
    }

    /// Plans shards from pre-sorted `(code, original index)` pairs.
    pub fn from_sorted_codes(pairs: &[(u64, u32)], shards: usize) -> Self {
        let n = pairs.len();
        let k = shards.max(1);
        debug_assert!(pairs.windows(2).all(|w| w[0] <= w[1]), "pairs must be sorted");
        let mut bounds = Vec::with_capacity(k + 1);
        bounds.push(0);
        for s in 1..k {
            let mut b = (s * n / k).max(*bounds.last().unwrap());
            // Snap forward so equal Morton codes never straddle a cut.
            while b > 0 && b < n && pairs[b].0 == pairs[b - 1].0 {
                b += 1;
            }
            bounds.push(b);
        }
        bounds.push(n);
        let order = pairs.iter().map(|&(_, i)| i).collect();
        Self { order, bounds }
    }

    /// Number of shards (including empty ones).
    pub fn num_shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total number of points across all shards.
    pub fn num_points(&self) -> usize {
        self.order.len()
    }

    /// Original point indices of shard `s`, in Morton order.
    pub fn shard_indices(&self, s: usize) -> &[u32] {
        &self.order[self.bounds[s]..self.bounds[s + 1]]
    }

    /// Point counts per shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        (0..self.num_shards()).map(|s| self.bounds[s + 1] - self.bounds[s]).collect()
    }

    /// Reassembles a plan from its raw parts — the artifact-restore path.
    /// The caller (the artifact decoder) has already validated that `order`
    /// is a permutation and `bounds` a monotone cut table ending at
    /// `order.len()`.
    pub(crate) fn from_parts(order: Vec<u32>, bounds: Vec<usize>) -> Self {
        Self { order, bounds }
    }

    /// The sorted original-index order (artifact serialization).
    pub(crate) fn order(&self) -> &[u32] {
        &self.order
    }

    /// The cut table (artifact serialization); `K + 1` entries.
    pub(crate) fn cut_bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// Heap bytes held by the plan (the sorted order plus the cut table) —
    /// its share of a resident cache entry's budget.
    pub fn resident_bytes(&self) -> usize {
        self.order.len() * std::mem::size_of::<u32>()
            + self.bounds.len() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points_2d(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(-1.0f32..1.0), rng.random_range(-1.0f32..1.0)]))
            .collect()
    }

    fn assert_is_partition(plan: &ShardPlan, n: usize) {
        let mut seen: Vec<u32> =
            (0..plan.num_shards()).flat_map(|s| plan.shard_indices(s).iter().copied()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn plan_partitions_all_points_evenly() {
        let pts = random_points_2d(1000, 3);
        for k in [1usize, 2, 7, 16] {
            let plan = ShardPlan::new(&pts, k);
            assert_eq!(plan.num_shards(), k);
            assert_is_partition(&plan, pts.len());
            // Random points rarely collide on the curve, so sizes are even.
            for size in plan.shard_sizes() {
                assert!(size >= 1000 / k - 1 && size <= 1000 / k + k, "size {size} for k={k}");
            }
        }
    }

    #[test]
    fn all_duplicates_fall_into_one_shard() {
        let pts = vec![Point::new([0.25f32, 0.75]); 64];
        let plan = ShardPlan::new(&pts, 7);
        assert_is_partition(&plan, 64);
        let nonempty: Vec<usize> =
            plan.shard_sizes().into_iter().filter(|&size| size > 0).collect();
        assert_eq!(nonempty, vec![64]);
    }

    #[test]
    fn more_shards_than_points_yields_empty_shards() {
        let pts = random_points_2d(5, 9);
        let plan = ShardPlan::new(&pts, 16);
        assert_eq!(plan.num_shards(), 16);
        assert_is_partition(&plan, 5);
        assert_eq!(plan.shard_sizes().iter().sum::<usize>(), 5);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let pts = random_points_2d(10, 1);
        let plan = ShardPlan::new(&pts, 0);
        assert_eq!(plan.num_shards(), 1);
        assert_eq!(plan.shard_indices(0).len(), 10);
    }

    #[test]
    fn empty_input_plans_empty_shards() {
        let pts: Vec<Point<2>> = vec![];
        let plan = ShardPlan::new(&pts, 4);
        assert_eq!(plan.num_shards(), 4);
        assert_eq!(plan.shard_sizes(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn shards_are_morton_contiguous() {
        // Code ranges of consecutive shards must not interleave.
        let pts = random_points_2d(500, 11);
        let scene = Aabb::from_points(&pts);
        let enc = MortonEncoder::new(&scene);
        let plan = ShardPlan::new(&pts, 8);
        let mut prev_max: Option<u64> = None;
        for s in 0..plan.num_shards() {
            let codes: Vec<u64> =
                plan.shard_indices(s).iter().map(|&i| enc.encode_u64(&pts[i as usize])).collect();
            if codes.is_empty() {
                continue;
            }
            let lo = *codes.iter().min().unwrap();
            let hi = *codes.iter().max().unwrap();
            if let Some(p) = prev_max {
                assert!(lo >= p, "shard {s} overlaps the previous range");
            }
            prev_max = Some(hi);
        }
    }
}
