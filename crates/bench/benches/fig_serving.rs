//! Serving study: what the resident-shard cache buys a repeat query.
//!
//! Not a paper figure — this measures the `emst_serve` layer on top of the
//! reproduction. Per `(generator, n, K)` cell three full-EMST query paths
//! run interleaved against the same cloud:
//!
//! - **cold** — a fresh engine per query: digest + plan + per-shard local
//!   solves + shard BVH builds + cross-shard merge (what every request
//!   would pay without a cache);
//! - **warm** — the resident engine: digest + cross-shard merge only (the
//!   local phase is skipped entirely; the harness asserts zero build work
//!   and bit-identical edges);
//! - **subset** — a warm Morton-contiguous half-range query, which reuses
//!   fully-covered shards and re-solves only the partially-covered ones.
//!
//! Expected shape: warm time is dominated by the merge's label passes and
//! root-pruned boundary queries, so the warm/cold ratio grows with the
//! local-solve share — larger `n` and moderate `K` favour the cache.

use emst_bench::*;
use emst_datasets::Kind;
use emst_exec::Threads;
use emst_serve::{CacheOutcome, ServeConfig, ServeEngine};

const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

fn main() {
    let scale = bench_scale();
    let sizes: Vec<usize> = match bench_n_override() {
        Some(n) => vec![n],
        None => [50_000.0, 200_000.0].iter().map(|s| (s * scale) as usize).collect(),
    };
    let repeats = 3;
    println!("# Serving: cold (fresh engine) vs warm (resident artifacts), K in {SHARD_COUNTS:?}");
    println!("# columns: generator, n, K, cold(s), warm(s), speedup, subset(s)");
    println!(
        "{:<10} {:>9} {:>4} {:>10} {:>10} {:>9} {:>10}",
        "generator", "n", "K", "cold", "warm", "speedup", "subset"
    );
    for (name, kind) in [("uniform", Kind::Uniform), ("hacc", Kind::HaccLike)] {
        for &n in &sizes {
            let points = kind.generate::<2>(n, 0xF16);
            for shards in SHARD_COUNTS {
                let resident = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(shards, 1));
                resident.ingest(&points);
                let subset: Vec<u32> = (n as u32 / 4..3 * n as u32 / 4).collect();
                let (mut cold, mut warm, mut sub) = (vec![], vec![], vec![]);
                let mut reference = None;
                for _ in 0..repeats {
                    let fresh = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(shards, 1));
                    let (c, c_secs) = time_it(|| fresh.emst(&points));
                    assert_eq!(c.outcome, CacheOutcome::Miss);
                    cold.push(c_secs);

                    let (w, w_secs) = time_it(|| resident.emst(&points));
                    assert_eq!(w.outcome, CacheOutcome::Hit);
                    assert!(w.build_work.is_zero(), "warm query must skip the local phase");
                    assert_eq!(w.edges, c.edges, "warm answer must be bit-identical");
                    warm.push(w_secs);

                    let (s, s_secs) = time_it(|| resident.emst_subset(&points, &subset));
                    match &reference {
                        None => reference = Some(s.total_weight),
                        Some(r) => assert_eq!(*r, s.total_weight),
                    }
                    sub.push(s_secs);
                }
                let med = |v: &mut Vec<f64>| {
                    v.sort_by(f64::total_cmp);
                    v[v.len() / 2]
                };
                let (c, w, s) = (med(&mut cold), med(&mut warm), med(&mut sub));
                println!(
                    "{name:<10} {n:>9} {shards:>4} {c:>10.4} {w:>10.4} {:>8.1}x {s:>10.4}",
                    c / w
                );
            }
        }
    }
    println!();
    println!("# warm pays only the cross-shard merge (label passes + root-pruned boundary");
    println!("# queries); cold additionally plans, solves every shard and builds every BVH");
}
