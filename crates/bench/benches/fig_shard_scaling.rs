//! Shard-scaling study: how the Morton-range sharded EMST behaves as the
//! shard count grows.
//!
//! Not a paper figure — this measures the scale-out subsystem layered on
//! top of the reproduction. For each dataset archetype the monolithic
//! single-tree solve is the baseline; the sharded solver then runs at
//! K ∈ {1, 2, 4, 8, 16}, reporting per-phase timings (plan / parallel
//! local solves / cross-shard merge), the merge-round count and the
//! boundary-candidate count (cross-shard queries that were not root-pruned
//! — the effective "surface area" of the decomposition).
//!
//! Expected shape: local-solve time drops with K (smaller shards, solved
//! concurrently) while merge time and boundary candidates grow; the sweet
//! spot moves right as n grows. Weights are asserted equal to the
//! monolithic solve on every row.

use emst_bench::*;
use emst_core::{EmstConfig, SingleTreeBoruvka};
use emst_datasets::{PaperDataset, PointCloud};
use emst_exec::Threads;
use emst_shard::{emst_sharded_with, ShardConfig, ShardedResult};

const SHARD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

fn sharded(cloud: &PointCloud, k: usize) -> ShardedResult {
    let cfg = ShardConfig::new(k);
    with_cloud(
        cloud,
        |p| emst_sharded_with(&Threads, p, &cfg),
        |p| emst_sharded_with(&Threads, p, &cfg),
    )
}

fn monolithic_weight_and_secs(cloud: &PointCloud) -> (f64, f64) {
    with_cloud(
        cloud,
        |p| {
            let (r, secs) =
                time_it(|| SingleTreeBoruvka::new(p).run(&Threads, &EmstConfig::default()));
            (r.total_weight, secs)
        },
        |p| {
            let (r, secs) =
                time_it(|| SingleTreeBoruvka::new(p).run(&Threads, &EmstConfig::default()));
            (r.total_weight, secs)
        },
    )
}

fn main() {
    let scale = bench_scale();
    println!("# Shard scaling: Morton-range sharded EMST vs the monolithic solve");
    println!("# columns: K, total(s), plan(s), local(s), merge(s), rounds, boundary, rate");
    for ds in [PaperDataset::Uniform100M2, PaperDataset::Hacc37M, PaperDataset::Normal100M3] {
        let n = bench_n_override().unwrap_or(ds.scaled_size(scale));
        let cloud = ds.generate(n, 0x5AD);
        let (mono_weight, mono_secs) = monolithic_weight_and_secs(&cloud);
        println!();
        println!("## {} (n = {n}, dim = {})", ds.name(), cloud.dim());
        println!(
            "{:>4} {:>9} {:>8} {:>8} {:>8} {:>7} {:>10} {:>12}",
            "K", "total", "plan", "local", "merge", "rounds", "boundary", "MFeat/s"
        );
        println!(
            "{:>4} {:>9.3} {:>8} {:>8} {:>8} {:>7} {:>10} {:>12.2}",
            "mono",
            mono_secs,
            "-",
            "-",
            "-",
            "-",
            "-",
            mfeatures_per_sec(cloud.features(), mono_secs)
        );
        for k in SHARD_COUNTS {
            let (result, secs) = time_it(|| sharded(&cloud, k));
            assert!(
                (result.total_weight - mono_weight).abs() <= 1e-6 * mono_weight.max(1.0),
                "K={k}: sharded weight {} != monolithic {mono_weight}",
                result.total_weight
            );
            let t = &result.stats.timings;
            println!(
                "{k:>4} {secs:>9.3} {:>8.3} {:>8.3} {:>8.3} {:>7} {:>10} {:>12.2}",
                t.get("plan"),
                t.get("local"),
                t.get("merge"),
                result.stats.merge_rounds,
                result.stats.boundary_candidates,
                mfeatures_per_sec(cloud.features(), secs)
            );
        }
    }
    println!();
    println!("# local time falls with K (parallel smaller solves); merge time and boundary");
    println!("# candidates grow with K — the crossover is the useful shard count for this n");
}
