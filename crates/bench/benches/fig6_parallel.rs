//! Figure 6: parallel performance (MFeatures/sec) across the twelve
//! datasets: MemoGFK multithreaded, ArborX multithreaded, and ArborX on the
//! two modeled devices.
//!
//! Paper shape to reproduce: ArborX on the A100 is 4–24× the multithreaded
//! MemoGFK (45–270 MFeat/s); the MI250X single GCD tracks the A100
//! qualitatively at ~0.6–0.7×; RoadNetwork3D underperforms on the device
//! because it is too small to saturate it; best case is Hacc37M, worst is
//! GeoLife24M3D.

use emst_bench::*;
use emst_datasets::PaperDataset;
use emst_exec::DeviceModel;

fn main() {
    let scale = bench_scale();
    let a100 = DeviceModel::a100_like();
    let mi = DeviceModel::mi250x_gcd_like();
    println!("# Figure 6: parallel EMST performance (MFeatures/sec)");
    println!("# scale = {scale}; device columns are modeled (DESIGN.md)");
    println!();
    println!(
        "{:<16} {:>8} {:>4} {:>12} {:>12} {:>14} {:>16}",
        "dataset", "n", "dim", "MemoGFK(MT)", "ArborX(MT)", "ArborX(A100~)", "ArborX(MI250X~)"
    );
    let mut speedups: Vec<f64> = vec![];
    for ds in PaperDataset::FIGURE56 {
        let n = bench_n_override().unwrap_or(ds.scaled_size(scale));
        let cloud = ds.generate(n, 0xF16);
        let gfk = wspd_rate(&cloud, true);
        let arborx_mt = single_tree_rate_threads(&cloud);
        let arborx_a100 = single_tree_rate_modeled(&cloud, &a100);
        let arborx_mi = single_tree_rate_modeled(&cloud, &mi);
        speedups.push(arborx_a100 / gfk);
        println!(
            "{:<16} {:>8} {:>4} {:>12.2} {:>12.2} {:>14.2} {:>16.2}",
            ds.name(),
            n,
            cloud.dim(),
            gfk,
            arborx_mt,
            arborx_a100,
            arborx_mi
        );
    }
    let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().copied().fold(0.0, f64::max);
    println!();
    println!("# A100-model over MemoGFK(MT): {min:.1}x - {max:.1}x  (paper: 4x - 24x)");
    println!("# paper (Fig. 6): MemoGFK(MT) 6-16, ArborX(MT) 1-17, A100 45-270, MI250X 21-180");
}
