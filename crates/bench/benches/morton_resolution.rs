//! Morton-resolution study (the paper's §4.1 hypothesis, implemented).
//!
//! The paper attributes its GeoLife outlier to the Z-curve under-resolving
//! extremely dense regions and proposes 128-bit Morton codes as the fix
//! ("we believe that this issue can be addressed by increasing the
//! resolution of the Z-curve grid, e.g., by using 128-bit Morton codes
//! instead of 64-bit ones"). This bench tests that hypothesis: for each
//! dataset it reports the BVH quality statistics and the sequential EMST
//! rate under both resolutions. Expectation: a large improvement on
//! GeoLife-like data, no regression elsewhere.

use emst_bench::*;
use emst_bvh::{Bvh, MortonResolution};
use emst_core::{EmstConfig, SingleTreeBoruvka};
use emst_datasets::Kind;
use emst_exec::Serial;
use emst_geometry::Point;

fn report<const D: usize>(name: &str, points: &[Point<D>]) {
    let features = points.len() * D;
    for (label, res) in
        [("64-bit ", MortonResolution::Bits64), ("128-bit", MortonResolution::Bits128)]
    {
        let q = Bvh::build_with_resolution(&Serial, points, res).quality();
        let cfg = EmstConfig { morton_resolution: res, ..Default::default() };
        let (r, secs) = time_it(|| SingleTreeBoruvka::new(points).run(&Serial, &cfg));
        println!(
            "{name:<16} {label} | overlap {:>6.3} overlap-frac {:>6.3} depth {:>5.1}/{:<3} | {:>8.3} MFeat/s  ({} dists)",
            q.mean_sibling_overlap,
            q.overlapping_fraction,
            q.mean_depth,
            q.max_depth,
            mfeatures_per_sec(features, secs),
            r.work.distance_computations,
        );
    }
}

fn main() {
    let scale = bench_scale();
    let n = bench_n_override().unwrap_or((80_000.0 * scale * 5.0) as usize);
    println!("# Morton resolution: 64-bit vs 128-bit Z-curves (n = {n}, sequential)");
    println!("# paper §4.1: GeoLife suffers from curve under-resolution; 128-bit should repair it");
    println!();
    for (name, kind) in [
        ("GeoLife-like", Kind::GeoLifeLike),
        ("Hacc-like", Kind::HaccLike),
        ("Uniform", Kind::Uniform),
        ("Normal", Kind::Normal),
    ] {
        let points: Vec<Point<3>> = kind.generate(n, 0x128);
        report(name, &points);
    }
}
