//! Traversal ablation (ours): the seed per-query-stack walker vs the
//! stackless rope traversal over the 4-wide SoA tree, on the `Threads`
//! backend, across the three dataset archetypes of the hot-path study —
//! uniform, clustered (variable-density), and GeoLife-style dense — at
//! three decades of n.
//!
//! The paper's traversal (Algorithm 2) is stack-based; ArborX itself later
//! moved to rope-linked stackless traversal, and this bench quantifies why:
//! no per-query 1 KiB stack, half the tree levels (4-wide collapse), and
//! vectorized child-box tests. The acceptance bar for the refactor is a
//! ≥ 1.3× median speedup of the `mst.find_edges` phase.
//!
//! Pass `--json <path>` (after `--`) to also write the measured grid as an
//! `emst-bench-snapshot/1` JSON (see `emst_bench::snapshot`); `perf_snapshot`
//! is the richer entry point for committed `BENCH_*.json` files.

use emst_bench::snapshot::{measure_traversal_grid, Snapshot};
use emst_bench::{bench_n_override, bench_scale};

fn main() {
    let scale = bench_scale();
    let sizes: Vec<usize> = match bench_n_override() {
        Some(n) => vec![n],
        None => [10_000usize, 100_000, 1_000_000]
            .iter()
            .map(|&n| ((n as f64 * scale * 5.0) as usize).max(1_000))
            .collect(),
    };
    let repeats = 3;

    println!("# Traversal ablation: stack vs stackless/SoA (Threads backend, {repeats} repeats)");
    println!();
    println!(
        "{:<12} {:>10} {:>14} {:>14} {:>14} {:>14} {:>9}",
        "generator", "n", "stack find", "stackless", "stack mst", "stackless", "speedup"
    );
    let cells = measure_traversal_grid(&sizes, repeats);
    let mut speedups: Vec<f64> = vec![];
    for cell in &cells {
        speedups.push(cell.speedup_find_edges());
        println!(
            "{:<12} {:>10} {:>12.4} s {:>12.4} s {:>12.4} s {:>12.4} s {:>8.2}x",
            cell.generator,
            cell.n,
            cell.stack.find_edges_s,
            cell.stackless.find_edges_s,
            cell.stack.mst_s,
            cell.stackless.mst_s,
            cell.speedup_find_edges()
        );
    }
    speedups.sort_by(f64::total_cmp);
    let median = speedups[speedups.len() / 2];
    println!();
    println!("median find_edges speedup = {median:.2}x (target >= 1.30x)");

    if let Some(pos) = std::env::args().position(|a| a == "--json") {
        if let Some(path) = std::env::args().nth(pos + 1) {
            let snap = Snapshot {
                repeats,
                summary: vec![],
                traversal: cells,
                serving: vec![],
                serving_concurrent: vec![],
                observability: vec![],
                fault_tolerance: vec![],
                serving_network: vec![],
                incremental: vec![],
            };
            snap.write(std::path::Path::new(&path)).expect("write JSON");
            eprintln!("wrote {path}");
        }
    }
}
