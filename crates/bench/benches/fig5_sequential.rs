//! Figure 5: sequential performance (MFeatures/sec) of the three EMST
//! implementations across the twelve evaluation datasets.
//!
//! Paper shape to reproduce: MLPACK slower than MemoGFK(S) everywhere;
//! ArborX(S) competitive with MemoGFK(S) on most datasets (up to 1.5×
//! faster on Ngsimlocation3); GeoLife is the single-tree outlier (BVH
//! quality under extreme density skew); rates roughly dimension-agnostic.

use emst_bench::*;
use emst_datasets::PaperDataset;

fn main() {
    let scale = bench_scale();
    println!("# Figure 5: sequential EMST performance (MFeatures/sec)");
    println!("# scale = {scale} (EMST_BENCH_SCALE), GPU not involved");
    println!();
    println!(
        "{:<16} {:>8} {:>4} {:>12} {:>12} {:>12}",
        "dataset", "n", "dim", "MLPACK", "MemoGFK(S)", "ArborX(S)"
    );
    for ds in PaperDataset::FIGURE56 {
        let n = bench_n_override().unwrap_or(ds.scaled_size(scale));
        let cloud = ds.generate(n, 0xF15);
        let mlpack = dual_tree_rate(&cloud);
        let gfk = wspd_rate(&cloud, false);
        let arborx = single_tree_rate_serial(&cloud);
        println!(
            "{:<16} {:>8} {:>4} {:>12.3} {:>12.3} {:>12.3}",
            ds.name(),
            n,
            cloud.dim(),
            mlpack,
            gfk,
            arborx
        );
    }
    println!();
    println!(
        "# paper (Fig. 5, AMD EPYC 7763): MLPACK 0.2-0.7, MemoGFK(S) 0.1-1.2, ArborX(S) 0.5-1.1"
    );
}
