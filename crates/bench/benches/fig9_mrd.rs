//! Figure 9: mutual-reachability distance — effect of `k_pts` on the MST
//! computation (the HDBSCAN* workload of §4.5).
//!
//! For `k_pts ∈ {2, 4, 8, 16}` on Normal100M3-like and Hacc37M-like data,
//! reports `T_core` (core-distance computation) and `T_emst` (total MST
//! under m.r.d.) for the MemoGFK-like CPU implementation (measured,
//! multithreaded) and the single-tree implementation on the modeled device.
//!
//! Paper shape to reproduce: `T_core` grows with `k_pts` on both sides, but
//! faster on the device (per-thread priority-queue divergence), so the
//! ArborX-over-MemoGFK speedup **shrinks** as `k_pts` grows (e.g. 20× at
//! k=2 down to 12.7× at k=16 on Hacc37M); the Borůvka kernel itself stays
//! within ~30% of its k=2 cost.

use emst_bench::*;
use emst_bvh::Bvh;
use emst_core::boruvka::run_boruvka;
use emst_core::EmstConfig;
use emst_datasets::Kind;
use emst_exec::{Counters, DeviceModel, GpuSim, PhaseTimings, Threads};
use emst_geometry::{MutualReachability, Point};
use emst_hdbscan::{core_distances_sq, core_distances_sq_instrumented};

/// Measured CPU times: `(t_core, t_emst_total)`.
fn memogfk_cpu<const D: usize>(points: &[Point<D>], k: usize) -> (f64, f64) {
    let (core, t_core) = time_it(|| core_distances_sq(&Threads, points, k));
    let metric = MutualReachability::new(&core);
    let (_, t_mst) = time_it(|| emst_wspd::wspd_emst_with_metric(points, true, &metric));
    (t_core, t_core + t_mst)
}

/// Modeled device times: `(t_core, t_emst_total, t_boruvka_kernel)`.
fn arborx_modeled<const D: usize>(
    points: &[Point<D>],
    k: usize,
    model: &DeviceModel,
) -> (f64, f64, f64) {
    let gpu = GpuSim::new();
    let counters = Counters::new();
    let stats = gpu.stats();

    let bvh = Bvh::build(&gpu, points);
    let (l0, i0) = (stats.launches(), stats.items());
    let w0 = counters.snapshot();
    let t_tree = model.time(l0, i0, &w0).total_s();

    let core = core_distances_sq_instrumented(&gpu, &bvh, k, &counters);
    let (l1, i1) = (stats.launches(), stats.items());
    let w1 = counters.snapshot();
    let t_core = model.time(l1 - l0, i1 - i0, &w1.since(&w0)).total_s();

    let metric = MutualReachability::new(&core);
    let mut timings = PhaseTimings::new();
    let _ = run_boruvka(&gpu, &bvh, &metric, &EmstConfig::default(), &counters, &mut timings);
    let (l2, i2) = (stats.launches(), stats.items());
    let w2 = counters.snapshot();
    let t_mst = model.time(l2 - l1, i2 - i1, &w2.since(&w1)).total_s();

    (t_core, t_tree + t_core + t_mst, t_mst)
}

fn main() {
    let scale = bench_scale();
    let model = DeviceModel::a100_like();
    let datasets: [(&str, Kind); 2] =
        [("Normal100M3-like", Kind::Normal), ("Hacc37M-like", Kind::HaccLike)];
    let n = bench_n_override().unwrap_or((120_000.0 * scale * 5.0) as usize);

    println!("# Figure 9: mutual reachability — effect of k_pts (seconds)");
    println!("# n = {n} 3D points; ArborX columns are A100-modeled");
    for (name, kind) in datasets {
        let points: Vec<Point<3>> = kind.generate(n, 0xF19);
        println!();
        println!("## {name}");
        println!(
            "{:>5} {:>14} {:>14} {:>14} {:>14} {:>9} {:>12}",
            "k", "Tcore-GFK", "Tcore-ArbX~", "Temst-GFK", "Temst-ArbX~", "speedup", "boruvka-rel"
        );
        let mut boruvka_k2 = None;
        for k in [2usize, 4, 8, 16] {
            let (cpu_core, cpu_total) = memogfk_cpu(&points, k);
            let (gpu_core, gpu_total, gpu_boruvka) = arborx_modeled(&points, k, &model);
            let b0 = *boruvka_k2.get_or_insert(gpu_boruvka);
            println!(
                "{:>5} {:>14.4} {:>14.6} {:>14.4} {:>14.6} {:>8.1}x {:>11.2}x",
                k,
                cpu_core,
                gpu_core,
                cpu_total,
                gpu_total,
                cpu_total / gpu_total,
                gpu_boruvka / b0
            );
        }
    }
    println!();
    println!("# paper (Fig. 9): speedup decays with k_pts (Hacc37M: 20x @ k=2 -> 12.7x @ k=16);");
    println!("#                 Boruvka kernel cost stays within ~1.3x of k=2");
}
