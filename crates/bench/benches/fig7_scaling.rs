//! Figure 7: effect of dataset size on parallel performance — the
//! subsampling experiment of §4.3.
//!
//! A large parent dataset is generated per archetype (Hacc497M-like,
//! Normal300M2-like, Uniform300M3-like); subsets of increasing size are
//! drawn with [`emst_datasets::sample_preserving_distribution`], and each
//! implementation's rate is reported per size.
//!
//! Paper shape to reproduce: rates **rise** with size and then **saturate**
//! (empirical evidence of asymptotically linear cost — a superlinear
//! algorithm's rate would fall); the modeled device needs ~10⁶ points to
//! saturate while the CPU peaks earlier.

use emst_bench::*;
use emst_datasets::{sample_preserving_distribution, PaperDataset, PointCloud};
use emst_exec::DeviceModel;
use emst_geometry::Point;

fn subsample(cloud: &PointCloud, m: usize, seed: u64) -> PointCloud {
    match cloud {
        PointCloud::D2(v) => PointCloud::D2(sample_preserving_distribution(v, m, seed)),
        PointCloud::D3(v) => PointCloud::D3(sample_preserving_distribution(v, m, seed)),
    }
}

fn main() {
    let scale = bench_scale();
    let a100 = DeviceModel::a100_like();
    println!("# Figure 7: rate vs subsample size (MFeatures/sec)");
    println!("# columns: n, MemoGFK(MT), ArborX(MT), ArborX(A100-model)");
    for ds in PaperDataset::FIGURE7 {
        let parent_n =
            bench_n_override().unwrap_or(((ds.scaled_size(scale) as f64) * 2.0) as usize);
        let parent = ds.generate(parent_n, 0xF17);
        println!();
        println!("## {} (parent n = {parent_n}, dim = {})", ds.name(), parent.dim());
        println!("{:>9} {:>14} {:>12} {:>16}", "n", "MemoGFK(MT)", "ArborX(MT)", "ArborX(A100~)");
        let mut m = 1000usize;
        while m <= parent_n {
            let sub = subsample(&parent, m, m as u64);
            let gfk = wspd_rate(&sub, true);
            let arborx_mt = single_tree_rate_threads(&sub);
            let arborx_gpu = single_tree_rate_modeled(&sub, &a100);
            println!("{m:>9} {gfk:>14.2} {arborx_mt:>12.2} {arborx_gpu:>16.2}");
            if m == parent_n {
                break;
            }
            m = (m * 4).min(parent_n);
        }
    }
    println!();
    println!("# paper (Fig. 7): both curves rise then flatten; ArborX saturates near 1e6 points");
    let _ = Point::<2>::origin(); // keep the geometry dependency obvious
}
