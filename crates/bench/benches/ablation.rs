//! Ablation study (ours, motivated by the paper's §3): how much do the two
//! optimizations and the edge-selection strategy matter?
//!
//! - **Optimization 1** (subtree skipping via `reduceLabels`);
//! - **Optimization 2** (Z-curve-neighbour upper bounds);
//! - **edge selection**: mutex-per-component vs GPU-style packed atomics.
//!
//! Reports wall time on the multithreaded backend plus the counted work, on
//! three dataset archetypes. Expected: turning both optimizations off blows
//! up distance computations by an order of magnitude (the O(n²) late-
//! iteration behaviour the paper describes); Optimization 1 dominates on
//! clustered data; the two edge-selection strategies tie on CPUs.

use emst_bench::*;
use emst_core::{EdgeSelection, EmstConfig, SingleTreeBoruvka};
use emst_datasets::Kind;
use emst_exec::Threads;
use emst_geometry::Point;

fn run_config<const D: usize>(points: &[Point<D>], cfg: &EmstConfig) -> (f64, u64, u64) {
    let (r, secs) = time_it(|| SingleTreeBoruvka::new(points).run(&Threads, cfg));
    (secs, r.work.distance_computations, r.work.node_visits)
}

fn main() {
    let scale = bench_scale();
    let n = bench_n_override().unwrap_or((100_000.0 * scale * 5.0) as usize);
    println!("# Ablation: single-tree Borůvka optimizations (n = {n}, Threads backend)");
    for (name, kind) in [
        ("Uniform-2D", Kind::Uniform),
        ("Normal-2D", Kind::Normal),
        ("Hacc-like-2D", Kind::HaccLike),
    ] {
        let points: Vec<Point<2>> = kind.generate(n, 0xAB1);
        println!();
        println!("## {name}");
        println!(
            "{:<44} {:>10} {:>16} {:>14}",
            "configuration", "seconds", "distance-comps", "node-visits"
        );
        let configs: [(&str, EmstConfig); 5] = [
            (
                "baseline (no skip, no bounds)",
                EmstConfig { subtree_skipping: false, upper_bounds: false, ..Default::default() },
            ),
            (
                "+ Optimization 1 (subtree skipping)",
                EmstConfig { subtree_skipping: true, upper_bounds: false, ..Default::default() },
            ),
            (
                "+ Optimization 2 (upper bounds)",
                EmstConfig { subtree_skipping: false, upper_bounds: true, ..Default::default() },
            ),
            (
                "+ both (paper configuration, Atomic64)",
                EmstConfig { subtree_skipping: true, upper_bounds: true, ..Default::default() },
            ),
            (
                "+ both, Locked edge selection",
                EmstConfig {
                    subtree_skipping: true,
                    upper_bounds: true,
                    edge_selection: EdgeSelection::Locked,
                    ..Default::default()
                },
            ),
        ];
        for (label, cfg) in configs {
            let (secs, dists, nodes) = run_config(&points, &cfg);
            println!("{label:<44} {secs:>10.4} {dists:>16} {nodes:>14}");
        }
    }
    println!();
    println!("# expectation: both optimizations together cut distance computations by >2x");
    println!("# (paper: they are what keeps late Borůvka iterations from O(n^2))");
}
