//! Figure 8: breakdown of the computational phases.
//!
//! **Part A (Fig. 8a)** — MemoGFK-like: T_mark, T_mst, T_tree, T_wspd,
//! sequential vs multithreaded, with per-phase speed-ups. Paper shape:
//! T_wspd dominates sequentially and scales best (up to 57×); tree
//! construction scales worst and becomes the parallel bottleneck.
//!
//! **Part B (Fig. 8b)** — single-tree: T_tree and T_mst, sequential wall
//! time vs modeled device time, with speed-ups. Paper shape: both phases
//! scale strongly (best case ~360× and ~350× on the A100) except on the
//! small RoadNetwork3D.

use emst_bench::*;
use emst_datasets::{PaperDataset, PointCloud};
use emst_exec::DeviceModel;
use emst_geometry::Point;

const DATASETS: [PaperDataset; 6] = [
    PaperDataset::GeoLife24M3D,
    PaperDataset::RoadNetwork3D,
    PaperDataset::Normal100M3,
    PaperDataset::Normal100M2,
    PaperDataset::PortoTaxi,
    PaperDataset::Hacc37M,
];

fn wspd_phases(cloud: &PointCloud, parallel: bool) -> (f64, f64, f64, f64) {
    fn inner<const D: usize>(points: &[Point<D>], parallel: bool) -> (f64, f64, f64, f64) {
        let r = emst_wspd::wspd_emst(points, parallel);
        (r.timings.get("mark"), r.timings.get("mst"), r.timings.get("tree"), r.timings.get("wspd"))
    }
    with_cloud(cloud, |p| inner(p, parallel), |p| inner(p, parallel))
}

fn single_tree_phases_wall(cloud: &PointCloud) -> (f64, f64) {
    let (_, tree, mst) = with_cloud(
        cloud,
        |p| single_tree_wall(p, &emst_exec::Serial),
        |p| single_tree_wall(p, &emst_exec::Serial),
    );
    (tree, mst)
}

fn single_tree_phases_modeled(cloud: &PointCloud, model: &DeviceModel) -> (f64, f64) {
    let (_, tree, mst) =
        with_cloud(cloud, |p| single_tree_modeled(p, model), |p| single_tree_modeled(p, model));
    (tree, mst)
}

fn main() {
    let scale = bench_scale();
    println!("# Figure 8a: MemoGFK-like phase breakdown (seconds; speedup = seq/MT)");
    println!(
        "{:<16} {:>8} | {:>9} {:>9} {:>9} {:>9} | {:>6} {:>6} {:>6} {:>6}",
        "dataset", "n", "T_mark", "T_mst", "T_tree", "T_wspd", "xmark", "xmst", "xtree", "xwspd"
    );
    for ds in DATASETS {
        let n = bench_n_override().unwrap_or(ds.scaled_size(scale));
        let cloud = ds.generate(n, 0xF18);
        let (s_mark, s_mst, s_tree, s_wspd) = wspd_phases(&cloud, false);
        let (p_mark, p_mst, p_tree, p_wspd) = wspd_phases(&cloud, true);
        println!(
            "{:<16} {:>8} | {:>9.4} {:>9.4} {:>9.4} {:>9.4} | {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
            ds.name(),
            n,
            s_mark,
            s_mst,
            s_tree,
            s_wspd,
            s_mark / p_mark.max(1e-9),
            s_mst / p_mst.max(1e-9),
            s_tree / p_tree.max(1e-9),
            s_wspd / p_wspd.max(1e-9),
        );
    }
    println!("# paper: T_wspd dominates sequential; speedups (64 cores): wspd 26-52x, tree 2-9x");

    println!();
    println!("# Figure 8b: single-tree phase breakdown (sequential seconds vs A100-model seconds)");
    println!(
        "{:<16} {:>8} | {:>10} {:>10} | {:>12} {:>12} | {:>7} {:>7}",
        "dataset", "n", "seq tree", "seq mst", "model tree", "model mst", "xtree", "xmst"
    );
    let model = DeviceModel::a100_like();
    for ds in DATASETS {
        let n = bench_n_override().unwrap_or(ds.scaled_size(scale));
        let cloud = ds.generate(n, 0xF18);
        let (s_tree, s_mst) = single_tree_phases_wall(&cloud);
        let (g_tree, g_mst) = single_tree_phases_modeled(&cloud, &model);
        println!(
            "{:<16} {:>8} | {:>10.4} {:>10.4} | {:>12.6} {:>12.6} | {:>7.0} {:>7.0}",
            ds.name(),
            n,
            s_tree,
            s_mst,
            g_tree,
            g_mst,
            s_tree / g_tree.max(1e-12),
            s_mst / g_mst.max(1e-12),
        );
    }
    println!("# paper: both phases speed up 100-400x on the device, except small RoadNetwork3D");
}
