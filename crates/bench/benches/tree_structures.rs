//! Tree-structure study (the paper's §3 design choice): the same single-tree
//! Borůvka algorithm over the linear BVH (the paper's choice) vs a k-d tree,
//! plus the Bentley–Friedman 1978 strawman the paper's introduction
//! motivates against.
//!
//! Expectation: BVH and kd-tree are within a small factor of each other
//! (the algorithm is tree-agnostic); Bentley–Friedman loses badly because
//! its per-point queries repeat work across Prim steps — the "excessive
//! number of distance calculations" of §1.

use emst_bench::*;
use emst_core::{EmstConfig, SingleTreeBoruvka, Traversal};
use emst_datasets::Kind;
use emst_exec::Serial;
use emst_geometry::Point;
use emst_kdtree::{bentley_friedman_emst, kd_single_tree_emst};

fn main() {
    let scale = bench_scale();
    let n = bench_n_override().unwrap_or((60_000.0 * scale * 5.0) as usize);
    println!("# Tree structures: single-tree Borůvka over BVH vs k-d tree (n = {n}, sequential)");
    println!("# BVH columns: seed stack walker vs stackless rope/SoA (the default)");
    println!();
    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>18}",
        "dataset", "BVH (stack)", "BVH (ropes)", "k-d tree", "Bentley-Friedman"
    );
    for (name, kind) in [
        ("Uniform-2D", Kind::Uniform),
        ("Normal-2D", Kind::Normal),
        ("Hacc-like-2D", Kind::HaccLike),
        ("Ngsim-like-2D", Kind::NgsimLike),
    ] {
        let points: Vec<Point<2>> = kind.generate(n, 0x7EE);
        let stack_cfg = EmstConfig { traversal: Traversal::Stack, ..Default::default() };
        let (_, t_stack) = time_it(|| SingleTreeBoruvka::new(&points).run(&Serial, &stack_cfg));
        let (_, t_ropes) =
            time_it(|| SingleTreeBoruvka::new(&points).run(&Serial, &EmstConfig::default()));
        let (_, t_kd) = time_it(|| kd_single_tree_emst(&points));
        // Bentley-Friedman is quadratic-ish in bad cases; cap its input.
        let m = n.min(30_000);
        let (_, t_bf_raw) = time_it(|| bentley_friedman_emst(&points[..m]));
        let t_bf = t_bf_raw * (n as f64 / m as f64); // linear extrapolation (optimistic)
        println!(
            "{:<16} {:>12.3} s {:>12.3} s {:>12.3} s {:>15.3} s*",
            name, t_stack, t_ropes, t_kd, t_bf
        );
    }
    println!();
    println!("# * Bentley-Friedman extrapolated linearly from n = min(n, 30000) — optimistic.");
}
