//! Figure 1: performance summary (MFeatures/sec) for the dual-tree
//! (MLPACK-like), WSPD (MemoGFK-like) and single-tree (this work)
//! approaches on the HACC-like 3D cosmology dataset, across the three
//! platforms: Sequential, Multithreaded, and GPU (modeled).
//!
//! Paper values for Hacc37M: Sequential — MLPACK 0.2, MemoGFK 0.7,
//! ArborX 0.8; Multithreaded — MemoGFK 16.3, ArborX 17.1; GPU — ArborX
//! 270.7 (A100) and 180.3 (MI250X single GCD).

use emst_bench::*;
use emst_datasets::PaperDataset;
use emst_exec::DeviceModel;

fn main() {
    let scale = bench_scale();
    let n = bench_n_override().unwrap_or(PaperDataset::Hacc37M.scaled_size(scale));
    let cloud = PaperDataset::Hacc37M.generate(n, 37);
    assert_agreement(&cloud);

    println!("# Figure 1: EMST performance summary on Hacc37M-like data");
    println!("# n = {n} points, d = {}, rates in MFeatures/sec", cloud.dim());
    println!("# (GPU rows are modeled from counted work; see DESIGN.md)");
    println!();
    println!("{:<36} {:>12}", "configuration", "MFeat/s");

    let seq_mlpack = dual_tree_rate(&cloud);
    println!("{:<36} {:>12.3}", "Sequential  MLPACK-like (dual-tree)", seq_mlpack);
    let seq_gfk = wspd_rate(&cloud, false);
    println!("{:<36} {:>12.3}", "Sequential  MemoGFK-like (WSPD)", seq_gfk);
    let seq_arborx = single_tree_rate_serial(&cloud);
    println!("{:<36} {:>12.3}", "Sequential  ArborX-like (this work)", seq_arborx);

    let mt_gfk = wspd_rate(&cloud, true);
    println!("{:<36} {:>12.3}", "Multithread MemoGFK-like (WSPD)", mt_gfk);
    let mt_arborx = single_tree_rate_threads(&cloud);
    println!("{:<36} {:>12.3}", "Multithread ArborX-like (this work)", mt_arborx);

    let gpu_a100 = single_tree_rate_modeled(&cloud, &DeviceModel::a100_like());
    println!("{:<36} {:>12.3}", "GPU-model   ArborX-like (A100-like)", gpu_a100);
    let gpu_mi = single_tree_rate_modeled(&cloud, &DeviceModel::mi250x_gcd_like());
    println!("{:<36} {:>12.3}", "GPU-model   ArborX-like (MI250X-GCD)", gpu_mi);

    println!();
    println!("# shape checks (paper: GPU 4-24x over best MT; MT ArborX within 0.5-2x of MemoGFK;");
    println!("#               MI250X-GCD ~0.6-0.7x of A100)");
    println!("gpu_over_best_mt      = {:.2}x", gpu_a100 / mt_gfk.max(mt_arborx));
    println!("arborx_mt_vs_memogfk  = {:.2}x", mt_arborx / mt_gfk);
    println!("mi250x_vs_a100        = {:.2}x", gpu_mi / gpu_a100);
}
