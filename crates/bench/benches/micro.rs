//! Criterion micro-benchmarks for the substrates: Morton encoding, BVH
//! construction, nearest-neighbour and k-NN traversals, and one Borůvka
//! iteration's worth of constrained queries. These are regression
//! benchmarks, not paper figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emst_bvh::Bvh;
use emst_core::{EmstConfig, SingleTreeBoruvka};
use emst_datasets::Kind;
use emst_exec::{Serial, Threads};
use emst_geometry::{Aabb, Point};
use emst_morton::MortonEncoder;
use std::hint::black_box;

fn bench_morton(c: &mut Criterion) {
    let points: Vec<Point<3>> = Kind::Uniform.generate(100_000, 1);
    let scene = Aabb::from_points(&points);
    let enc = MortonEncoder::new(&scene);
    let mut g = c.benchmark_group("morton");
    g.sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    g.throughput(Throughput::Elements(points.len() as u64));
    g.bench_function("encode_u64_3d_100k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &points {
                acc ^= enc.encode_u64(black_box(p));
            }
            acc
        })
    });
    g.bench_function("encode_u128_3d_100k", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for p in &points {
                acc ^= enc.encode_u128(black_box(p));
            }
            acc
        })
    });
    g.finish();
}

fn bench_bvh_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("bvh_build");
    g.sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    for &n in &[10_000usize, 100_000] {
        let points: Vec<Point<3>> = Kind::HaccLike.generate(n, 2);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("serial", n), &points, |b, pts| {
            b.iter(|| Bvh::build(&Serial, black_box(pts)))
        });
        g.bench_with_input(BenchmarkId::new("threads", n), &points, |b, pts| {
            b.iter(|| Bvh::build(&Threads, black_box(pts)))
        });
    }
    g.finish();
}

fn bench_traversal(c: &mut Criterion) {
    let points: Vec<Point<3>> = Kind::HaccLike.generate(100_000, 3);
    let bvh = Bvh::build(&Threads, &points);
    let queries: Vec<Point<3>> = Kind::Uniform.generate(1_000, 4);
    let mut g = c.benchmark_group("traversal");
    g.sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    g.throughput(Throughput::Elements(queries.len() as u64));
    g.bench_function("nn_1k_queries_over_100k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for q in &queries {
                acc ^= bvh.nearest_neighbor(black_box(q), u32::MAX).unwrap().rank;
            }
            acc
        })
    });
    for &k in &[4usize, 16] {
        g.bench_with_input(BenchmarkId::new("knn_1k_queries", k), &k, |b, &k| {
            b.iter(|| {
                let mut acc = 0usize;
                for q in &queries {
                    acc += bvh.k_nearest(black_box(q), k).len();
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_emst_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("emst");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(5));
    for &n in &[10_000usize, 50_000] {
        let points: Vec<Point<2>> = Kind::Normal.generate(n, 5);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("single_tree_threads", n), &points, |b, pts| {
            b.iter(|| SingleTreeBoruvka::new(pts).run(&Threads, &EmstConfig::default()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_morton, bench_bvh_build, bench_traversal, bench_emst_end_to_end);
criterion_main!(benches);
