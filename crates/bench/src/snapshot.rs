//! Machine-readable performance snapshots (`BENCH_*.json`).
//!
//! Wall-clock numbers printed to a terminal rot; committed JSON gives every
//! future PR a trajectory to regress against. This module measures two
//! things and serializes them with a tiny hand-rolled writer (the workspace
//! has no serde):
//!
//! - a **fig1-style summary**: MFeatures/s of the competing EMST
//!   implementations at one fixed size, plus per-phase medians of the
//!   single-tree solve;
//! - the **traversal ablation grid**: stack vs stackless medians of the
//!   `mst.find_edges` phase (and the whole `mst` phase) per
//!   `(generator, n)` cell on the `Threads` backend, with the speedup.
//!
//! - the **serving ablation**: cold (fresh engine: digest + plan + local
//!   solves + merge) vs warm (resident artifacts: digest + merge only)
//!   medians of a full-EMST query against `emst_serve::ServeEngine`, per
//!   `(generator, n, shards)` cell.
//!
//! - the **concurrent serving ablation**: warm full-EMST throughput of
//!   one shared engine under 1/2/4 worker threads (queries run on the
//!   `Serial` backend so the workers themselves are the parallelism),
//!   with every concurrent answer asserted bit-identical to the
//!   single-threaded one. Cells carry `host_cpus` because throughput
//!   scaling is physically bounded by the cores of the measuring host —
//!   on a 1-CPU container `speedup_vs_1 ≈ 1.0` is the *correct* reading,
//!   not a harness failure.
//!
//! - the **observability overhead**: median warm full-EMST query time on
//!   two otherwise-identical resident engines, one with the `emst_obs`
//!   instrumentation enabled (the default) and one with
//!   `ServeConfig::observability = false` (every probe compiled to a
//!   skipped `Option` check). The budget is ≤5% overhead on warm queries;
//!   both engines' answers are asserted bit-identical.
//!
//! - the **fault-tolerance reload ablation**: median reload time of an
//!   evicted cloud on two otherwise-identical engines, one spilling
//!   durable artifacts next to the points (`spill_artifacts = true`, the
//!   default — reload is a checksum-verified read plus deserialize) and
//!   one spilling points only (`spill_artifacts = false` — reload re-runs
//!   the deterministic plan + local solves). Both answers are asserted
//!   bit-identical to the resident reference, the restoring engine's
//!   reload must report zero build work, and the rebuilding engine's must
//!   not — the harness refuses to report a speedup for a mislabeled path.
//!   No faults are injected (`fault_plan` stays `None`), so this grid
//!   also pins the happy-path cost of the robustness layer.
//!
//! - the **network serving overhead**: median warm full-EMST request
//!   latency through `emst_serve::ServeServer`'s TCP front-end vs the
//!   same request executed by the in-process protocol function
//!   (`emst_serve::net::respond`) on the same engine — the wire reply is
//!   asserted byte-identical to the in-process bytes before any latency
//!   is reported. Each cell also fires a same-key storm of `clients`
//!   identical cold queries and records how many coalesced onto one
//!   in-flight execution (`coalesced`; `0` is an honest reading on a
//!   host too fast or too serial for the storm to overlap).
//!
//! - the **incremental-update ablation**: median 1%-mutation `insert`
//!   against a resident engine (changed points routed to their Morton
//!   shards, dirty shards re-solved, clean shards' harvested facts
//!   reused, exact cross-shard re-merge) vs a cold from-scratch build of
//!   the same mutated cloud on a fresh engine. The incremental answer's
//!   edge-weight multiset is asserted bit-identical to the from-scratch
//!   one before any number is reported, the update must not have fallen
//!   back to a full rebuild, and at least one clean shard must have been
//!   reused — the harness refuses to report a speedup for a mislabeled
//!   path or wrong bits.
//!
//! # JSON schema (`emst-bench-snapshot/1`)
//!
//! ```json
//! {
//!   "schema": "emst-bench-snapshot/1",
//!   "repeats": 3,
//!   "backend": "Threads",
//!   "summary": [
//!     { "configuration": "single-tree (Threads)", "n": 100000, "dim": 3,
//!       "mfeatures_per_s": 1.8,
//!       "phases": { "tree": 0.01, "mst": 0.2, "mst.find_edges": 0.15 } }
//!   ],
//!   "traversal": [
//!     { "generator": "uniform", "n": 100000,
//!       "stack":     { "find_edges_s": 0.21, "mst_s": 0.26, "total_s": 0.30 },
//!       "stackless": { "find_edges_s": 0.16, "mst_s": 0.21, "total_s": 0.25 },
//!       "speedup_find_edges": 1.36 }
//!   ],
//!   "serving": [
//!     { "generator": "uniform", "n": 100000, "shards": 2,
//!       "cold_s": 0.33, "warm_s": 0.06, "speedup_warm": 5.3 }
//!   ],
//!   "serving_concurrent": [
//!     { "generator": "uniform", "n": 100000, "shards": 4, "workers": 2,
//!       "queries": 32, "queries_per_s": 31.0, "speedup_vs_1": 1.9,
//!       "host_cpus": 8 }
//!   ],
//!   "observability": [
//!     { "generator": "uniform", "n": 100000, "shards": 4,
//!       "warm_observed_s": 0.061, "warm_raw_s": 0.060, "overhead_pct": 1.7 }
//!   ],
//!   "fault_tolerance": [
//!     { "generator": "uniform", "n": 100000, "shards": 4,
//!       "restore_reload_s": 0.02, "rebuild_reload_s": 0.31,
//!       "restore_speedup": 15.5 }
//!   ],
//!   "serving_network": [
//!     { "generator": "uniform", "n": 100000, "shards": 4, "clients": 8,
//!       "requests": 32, "warm_net_s": 0.061, "warm_inproc_s": 0.060,
//!       "wire_overhead": 1.02, "coalesced": 7 }
//!   ],
//!   "incremental": [
//!     { "generator": "uniform", "n": 100000, "shards": 16, "mutated": 1000,
//!       "dirty_shards": 1, "update_s": 0.14, "rebuild_s": 0.46,
//!       "speedup_update": 3.3 }
//!   ]
//! }
//! ```
//!
//! Field by field (see also `docs/bench-snapshot.md`):
//!
//! - `schema` — the literal `"emst-bench-snapshot/1"`. Consumers **must
//!   ignore unknown fields** (new sections are additive — `serving` was
//!   added by PR 4 without a version bump); producers bump the suffix only
//!   on breaking changes to *existing* fields.
//! - `repeats` — interleaved repetitions behind every median in the file
//!   (interleaved so machine drift hits every configuration equally).
//! - `backend` — execution space of every measured row (`"Threads"`).
//! - `summary[]` — fig1-style rows: `configuration` (human-readable solver
//!   name), `n` (point count), `dim` (dimensionality), `mfeatures_per_s`
//!   (the paper's rate metric, `n·dim / seconds / 10⁶`), and `phases`
//!   (median seconds per recorded phase name; empty object for solvers
//!   that only report totals).
//! - `traversal[]` — stack-vs-stackless ablation cells: `generator`
//!   (`uniform` | `clustered` | `dense`, see [`TRAVERSAL_GENERATORS`]),
//!   `n`, then per walker (`stack`, `stackless`) the median seconds of the
//!   `mst.find_edges` phase (`find_edges_s`), the whole `mst` phase
//!   (`mst_s`) and construction + solve (`total_s`).
//!   `speedup_find_edges` = `stack.find_edges_s / stackless.find_edges_s`.
//! - `serving[]` — cold-vs-warm serving cells: `generator`, `n`, `shards`
//!   (the cache key's `K`), `cold_s` (median full query on a *fresh*
//!   engine — digest, plan, local solves, shard BVHs, merge), `warm_s`
//!   (median repeat query on the *resident* engine — digest + cross-shard
//!   merge only; the local phase is skipped entirely).
//!   `speedup_warm` = `cold_s / warm_s`.
//! - `serving_concurrent[]` — warm-throughput scaling cells (added by
//!   PR 6, additive): `generator`, `n`, `shards`, `workers` (threads
//!   querying one shared engine), `queries` (total answered),
//!   `queries_per_s` (aggregate throughput), `speedup_vs_1` (throughput
//!   over the same grid's `workers = 1` cell), `host_cpus` (cores of the
//!   measuring host — the upper bound on honest scaling).
//! - `observability[]` — instrumentation overhead cells (added by PR 7,
//!   additive): `generator`, `n`, `shards`, `warm_observed_s` (median
//!   warm query with metrics + traces enabled), `warm_raw_s` (same engine
//!   configuration with `observability = false`), `overhead_pct` =
//!   `(warm_observed_s / warm_raw_s − 1) × 100` — the acceptance budget
//!   is ≤5 on warm queries.
//! - `fault_tolerance[]` — artifact-restore-vs-rebuild reload cells
//!   (added by PR 8, additive): `generator`, `n`, `shards`,
//!   `restore_reload_s` (median reload of an evicted cloud from a spill
//!   carrying durable artifacts — verified read + deserialize),
//!   `rebuild_reload_s` (same reload with points-only spills —
//!   deterministic plan + local solves re-run), `restore_speedup` =
//!   `rebuild_reload_s / restore_reload_s`.
//! - `serving_network[]` — TCP front-end cells (added by PR 9, additive):
//!   `generator`, `n`, `shards`, `clients` (concurrent connections in the
//!   coalescing storm, also the server's worker count), `requests`
//!   (sequential warm round-trips behind each latency median),
//!   `warm_net_s` (median warm full-EMST request over a real socket),
//!   `warm_inproc_s` (the same request through `respond` directly),
//!   `wire_overhead` = `warm_net_s / warm_inproc_s`, `coalesced`
//!   (same-key storm queries that shared one execution; may honestly be
//!   `0` on a host where the storm never overlapped).
//! - `incremental[]` — incremental-update cells (added by PR 10,
//!   additive): `generator`, `n`, `shards`, `mutated` (points inserted by
//!   the 1% clustered mutation), `dirty_shards` (shards the update
//!   re-solved; the clustered insert keeps this small by design),
//!   `update_s` (median `ServeEngine::insert` — digest + route + dirty
//!   re-solves + exact re-merge), `rebuild_s` (median cold from-scratch
//!   build of the identical mutated cloud on a fresh engine),
//!   `speedup_update` = `rebuild_s / update_s`.
//!
//! All durations are seconds. `null` replaces non-finite numbers.

use std::io::Write as _;
use std::path::Path;

use emst_core::{EmstConfig, SingleTreeBoruvka, Traversal};
use emst_datasets::Kind;
use emst_exec::Threads;
use emst_geometry::Point;

/// The generators of the traversal ablation: uniform, clustered
/// (variable-density), and GeoLife-style dense hot spots.
pub const TRAVERSAL_GENERATORS: [(&str, Kind); 3] =
    [("uniform", Kind::Uniform), ("clustered", Kind::VisualVar), ("dense", Kind::GeoLifeLike)];

/// Median timings of one `(generator, n, traversal)` cell.
#[derive(Clone, Copy, Debug)]
pub struct TraversalTimings {
    /// Median seconds of the `mst.find_edges` phase.
    pub find_edges_s: f64,
    /// Median seconds of the whole `mst` phase.
    pub mst_s: f64,
    /// Median seconds of tree construction + `mst`.
    pub total_s: f64,
}

/// One `(generator, n)` cell of the ablation: both walkers plus the ratio.
#[derive(Clone, Debug)]
pub struct TraversalCell {
    /// Generator name (see [`TRAVERSAL_GENERATORS`]).
    pub generator: String,
    /// Point count.
    pub n: usize,
    /// Seed stack walker medians.
    pub stack: TraversalTimings,
    /// Stackless rope walker medians.
    pub stackless: TraversalTimings,
}

impl TraversalCell {
    /// `stack / stackless` on the `mst.find_edges` phase.
    pub fn speedup_find_edges(&self) -> f64 {
        self.stack.find_edges_s / self.stackless.find_edges_s
    }
}

/// One row of the fig1-style summary.
#[derive(Clone, Debug)]
pub struct SummaryRow {
    /// Human-readable configuration name.
    pub configuration: String,
    /// Point count.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// The paper's rate metric.
    pub mfeatures_per_s: f64,
    /// Median seconds per recorded phase (may be empty for non-single-tree
    /// rows, whose solvers report only totals).
    pub phases: Vec<(String, f64)>,
}

/// One `(generator, n, shards)` cell of the serving ablation: median
/// cold-vs-warm full-EMST query times against `emst_serve::ServeEngine`.
#[derive(Clone, Debug)]
pub struct ServingCell {
    /// Generator name (see [`TRAVERSAL_GENERATORS`]).
    pub generator: String,
    /// Point count.
    pub n: usize,
    /// Shard count (the cache key's `K`).
    pub shards: usize,
    /// Median seconds of a cold query (fresh engine: digest + plan +
    /// local solves + shard BVH builds + merge).
    pub cold_s: f64,
    /// Median seconds of a warm repeat query (resident artifacts: digest
    /// + cross-shard merge only).
    pub warm_s: f64,
}

impl ServingCell {
    /// `cold / warm` — how much the resident cache buys a repeat query.
    pub fn speedup_warm(&self) -> f64 {
        self.cold_s / self.warm_s
    }
}

/// One `(generator, n, shards, workers)` cell of the concurrent serving
/// ablation: aggregate warm-query throughput of one shared engine.
#[derive(Clone, Debug)]
pub struct ServingConcurrentCell {
    /// Generator name.
    pub generator: String,
    /// Point count.
    pub n: usize,
    /// Shard count (the cache key's `K`).
    pub shards: usize,
    /// Threads querying the shared engine concurrently.
    pub workers: usize,
    /// Total warm queries answered in the timed window.
    pub queries: usize,
    /// Aggregate throughput (queries / wall-clock seconds).
    pub queries_per_s: f64,
    /// Throughput over the same grid's `workers = 1` cell.
    pub speedup_vs_1: f64,
    /// CPU cores of the measuring host — the physical ceiling on
    /// `speedup_vs_1` (on a 1-CPU container ≈1.0 is the expected value).
    pub host_cpus: usize,
}

/// One `(generator, n, shards)` cell of the observability-overhead
/// measurement: median warm full-EMST query with instrumentation on vs
/// off on otherwise-identical resident engines.
#[derive(Clone, Debug)]
pub struct ObservabilityCell {
    /// Generator name.
    pub generator: String,
    /// Point count.
    pub n: usize,
    /// Shard count (the cache key's `K`).
    pub shards: usize,
    /// Median warm query seconds with metrics, spans and traces enabled
    /// (`ServeConfig::observability = true`, the default).
    pub warm_observed_s: f64,
    /// Median warm query seconds with every probe disabled
    /// (`ServeConfig::observability = false`).
    pub warm_raw_s: f64,
}

impl ObservabilityCell {
    /// Instrumentation overhead in percent: `(observed / raw − 1) × 100`.
    /// The acceptance budget is ≤5 on warm queries.
    pub fn overhead_pct(&self) -> f64 {
        (self.warm_observed_s / self.warm_raw_s - 1.0) * 100.0
    }
}

/// One `(generator, n, shards)` cell of the fault-tolerance reload
/// ablation: median reload of an evicted cloud from an artifact-bearing
/// spill (verified read + deserialize) vs a points-only spill
/// (deterministic rebuild), on otherwise-identical engines with no
/// faults injected.
#[derive(Clone, Debug)]
pub struct FaultToleranceCell {
    /// Generator name.
    pub generator: String,
    /// Point count.
    pub n: usize,
    /// Shard count (the cache key's `K`).
    pub shards: usize,
    /// Median reload seconds when the spill carries durable artifacts
    /// (`ServeConfig::spill_artifacts = true`, the default).
    pub restore_reload_s: f64,
    /// Median reload seconds when the spill carries points only and the
    /// engine re-runs plan + local solves (`spill_artifacts = false`).
    pub rebuild_reload_s: f64,
}

impl FaultToleranceCell {
    /// `rebuild / restore` — how much durable artifacts buy a reload.
    pub fn restore_speedup(&self) -> f64 {
        self.rebuild_reload_s / self.restore_reload_s
    }
}

/// One `(generator, n, shards)` cell of the network serving measurement:
/// median warm full-EMST request latency over a real TCP socket vs the
/// same request through the in-process protocol function, plus the
/// coalesced count of a same-key query storm.
#[derive(Clone, Debug)]
pub struct ServingNetworkCell {
    /// Generator name.
    pub generator: String,
    /// Point count.
    pub n: usize,
    /// Shard count (the cache key's `K`).
    pub shards: usize,
    /// Concurrent connections in the coalescing storm (also the server's
    /// worker-thread count).
    pub clients: usize,
    /// Sequential warm round-trips behind each latency median.
    pub requests: usize,
    /// Median seconds of a warm full-EMST request over the socket
    /// (write line → read reply, one connection, byte-verified).
    pub warm_net_s: f64,
    /// Median seconds of the identical request through
    /// `emst_serve::net::respond` on the same engine.
    pub warm_inproc_s: f64,
    /// Same-key storm queries that shared one in-flight execution
    /// (`ServeStats::query_coalesced` delta). `0` is an honest reading on
    /// a host where the storm never overlapped.
    pub coalesced: u64,
}

impl ServingNetworkCell {
    /// `net / inproc` — what the socket round-trip costs on top of the
    /// query itself.
    pub fn wire_overhead(&self) -> f64 {
        self.warm_net_s / self.warm_inproc_s
    }
}

/// One `(generator, n, shards)` cell of the incremental-update ablation:
/// median 1%-clustered-insert against a resident engine (dirty shards
/// re-solved, clean shards reused, exact re-merge) vs a cold
/// from-scratch build of the identical mutated cloud on a fresh engine.
#[derive(Clone, Debug)]
pub struct IncrementalCell {
    /// Generator name.
    pub generator: String,
    /// Point count of the parent cloud.
    pub n: usize,
    /// Shard count (the cache key's `K`).
    pub shards: usize,
    /// Points inserted by the mutation (≈1% of `n`, clustered around one
    /// resident member so the Morton router dirties few shards).
    pub mutated: usize,
    /// Shards the update actually re-solved (`UpdateReport` dirty set).
    pub dirty_shards: usize,
    /// Median seconds of the incremental `insert`: child digest + shard
    /// routing + dirty-shard local re-solves + exact cross-shard re-merge.
    pub update_s: f64,
    /// Median seconds of a cold from-scratch build of the same mutated
    /// cloud on a fresh engine (plan + all local solves + merge).
    pub rebuild_s: f64,
}

impl IncrementalCell {
    /// `rebuild / update` — what delta-solving dirty shards buys a
    /// mutation over rebuilding the whole cloud.
    pub fn speedup_update(&self) -> f64 {
        self.rebuild_s / self.update_s
    }
}

/// A complete snapshot, ready to serialize.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Interleaved repetitions behind each median.
    pub repeats: usize,
    /// Fig1-style rows.
    pub summary: Vec<SummaryRow>,
    /// Traversal ablation cells.
    pub traversal: Vec<TraversalCell>,
    /// Serving (cold vs warm) ablation cells.
    pub serving: Vec<ServingCell>,
    /// Concurrent serving (warm throughput vs worker count) cells.
    pub serving_concurrent: Vec<ServingConcurrentCell>,
    /// Observability-overhead cells (instrumentation on vs off).
    pub observability: Vec<ObservabilityCell>,
    /// Fault-tolerance reload cells (artifact restore vs rebuild).
    pub fault_tolerance: Vec<FaultToleranceCell>,
    /// Network serving cells (wire latency vs in-process + coalescing).
    pub serving_network: Vec<ServingNetworkCell>,
    /// Incremental-update cells (1% clustered insert vs cold rebuild).
    pub incremental: Vec<IncrementalCell>,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    let m = samples.len();
    if m == 0 {
        return f64::NAN;
    }
    if m % 2 == 1 {
        samples[m / 2]
    } else {
        0.5 * (samples[m / 2 - 1] + samples[m / 2])
    }
}

/// Measures one ablation cell: `repeats` interleaved runs of both walkers
/// on the `Threads` backend, reporting per-phase medians.
pub fn measure_traversal_cell(
    generator: &str,
    kind: Kind,
    n: usize,
    repeats: usize,
) -> TraversalCell {
    let points: Vec<Point<2>> = kind.generate(n, 0x7A3);
    let mut samples: [[Vec<f64>; 3]; 2] = Default::default();
    for _ in 0..repeats {
        for (which, traversal) in [Traversal::Stack, Traversal::Stackless].into_iter().enumerate() {
            let cfg = EmstConfig { traversal, ..Default::default() };
            let r = SingleTreeBoruvka::new(&points).run(&Threads, &cfg);
            samples[which][0].push(r.timings.get("mst.find_edges"));
            samples[which][1].push(r.timings.get("mst"));
            samples[which][2].push(r.timings.get("tree") + r.timings.get("mst"));
        }
    }
    let timings = |s: &mut [Vec<f64>; 3]| TraversalTimings {
        find_edges_s: median(&mut s[0]),
        mst_s: median(&mut s[1]),
        total_s: median(&mut s[2]),
    };
    let [mut stack, mut stackless] = samples;
    TraversalCell {
        generator: generator.to_string(),
        n,
        stack: timings(&mut stack),
        stackless: timings(&mut stackless),
    }
}

/// Measures the full `generators × sizes` ablation grid.
pub fn measure_traversal_grid(sizes: &[usize], repeats: usize) -> Vec<TraversalCell> {
    let mut cells = vec![];
    for (name, kind) in TRAVERSAL_GENERATORS {
        for &n in sizes {
            cells.push(measure_traversal_cell(name, kind, n, repeats));
        }
    }
    cells
}

/// Measures one serving cell: `repeats` interleaved cold (fresh engine)
/// and warm (resident engine) full-EMST queries on the `Threads` backend.
/// Panics if a warm answer is not bit-identical to the cold one — the
/// harness refuses to report a speedup for wrong bits.
pub fn measure_serving_cell(
    generator: &str,
    kind: Kind,
    n: usize,
    shards: usize,
    repeats: usize,
) -> ServingCell {
    use emst_serve::{CacheOutcome, ServeConfig, ServeEngine};
    let points: Vec<Point<2>> = kind.generate(n, 0x5E21);
    let resident = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(shards, 1));
    resident.ingest(&points);
    let mut cold = vec![];
    let mut warm = vec![];
    for _ in 0..repeats {
        let fresh = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(shards, 1));
        let t = std::time::Instant::now();
        let c = fresh.emst(&points);
        cold.push(t.elapsed().as_secs_f64());
        assert_eq!(c.outcome, CacheOutcome::Miss);

        let t = std::time::Instant::now();
        let w = resident.emst(&points);
        warm.push(t.elapsed().as_secs_f64());
        assert_eq!(w.outcome, CacheOutcome::Hit);
        assert!(w.build_work.is_zero());
        assert_eq!(w.edges, c.edges, "warm answer must be bit-identical");
    }
    ServingCell {
        generator: generator.to_string(),
        n,
        shards,
        cold_s: median(&mut cold),
        warm_s: median(&mut warm),
    }
}

/// Measures the serving ablation over `sizes` (uniform and dense
/// generators) at one shard count; callers sweep `K` by calling this per
/// count (cells carry their `shards`).
pub fn measure_serving_grid(sizes: &[usize], shards: usize, repeats: usize) -> Vec<ServingCell> {
    let mut cells = vec![];
    for (name, kind) in [("uniform", Kind::Uniform), ("dense", Kind::GeoLifeLike)] {
        for &n in sizes {
            cells.push(measure_serving_cell(name, kind, n, shards, repeats));
        }
    }
    cells
}

/// Measures warm-query throughput of one *shared* engine at each worker
/// count in `workers_list` (the first entry is the scaling baseline;
/// callers pass `[1, 2, 4]`). Queries run on the `Serial` backend so the
/// worker threads are the only parallelism in play, and every answer is
/// asserted bit-identical to the pre-warmed single-threaded reference —
/// the harness refuses to report throughput for wrong bits.
pub fn measure_serving_concurrent(
    generator: &str,
    kind: Kind,
    n: usize,
    shards: usize,
    workers_list: &[usize],
    queries_per_worker: usize,
) -> Vec<ServingConcurrentCell> {
    use emst_exec::Serial;
    use emst_serve::{ServeConfig, ServeEngine};
    let points: Vec<Point<2>> = kind.generate(n, 0xC0C);
    let engine = ServeEngine::<_, 2>::new(Serial, ServeConfig::new(shards, 2));
    // Warm twice: the second query runs against the merged-back
    // accelerator, so the timed loop measures the steady state.
    let reference = engine.emst(&points).edges;
    assert_eq!(engine.emst(&points).edges, reference);
    let host_cpus = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let mut cells: Vec<ServingConcurrentCell> = vec![];
    let mut base_rate = f64::NAN;
    for &workers in workers_list {
        let start = std::time::Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let (engine, points, reference) = (&engine, &points, &reference);
                scope.spawn(move || {
                    for _ in 0..queries_per_worker {
                        let warm = engine.emst(points);
                        assert_eq!(
                            &warm.edges, reference,
                            "concurrent warm answer must be bit-identical"
                        );
                    }
                });
            }
        });
        let secs = start.elapsed().as_secs_f64();
        let queries = workers * queries_per_worker;
        let rate = queries as f64 / secs;
        if cells.is_empty() {
            base_rate = rate;
        }
        cells.push(ServingConcurrentCell {
            generator: generator.to_string(),
            n,
            shards,
            workers,
            queries,
            queries_per_s: rate,
            speedup_vs_1: rate / base_rate,
            host_cpus,
        });
    }
    cells
}

/// Measures one observability cell: `repeats` interleaved warm full-EMST
/// queries against two resident engines that differ only in
/// `ServeConfig::observability`. The instrumented engine's answers are
/// asserted bit-identical to the raw engine's — probes must not perturb
/// results — and the instrumented engine must actually have recorded
/// metrics (an accidentally-dark engine would report a flattering 0%
/// overhead).
pub fn measure_observability(
    generator: &str,
    kind: Kind,
    n: usize,
    shards: usize,
    repeats: usize,
) -> ObservabilityCell {
    use emst_serve::{ServeConfig, ServeEngine};
    let points: Vec<Point<2>> = kind.generate(n, 0x0B5);
    let observed = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(shards, 1));
    let raw_config = ServeConfig { observability: false, ..ServeConfig::new(shards, 1) };
    let raw = ServeEngine::<_, 2>::new(Threads, raw_config);
    // Warm both engines twice so the timed loop measures the steady state
    // (second query runs against the merged-back accelerator).
    let reference = raw.emst(&points).edges;
    raw.emst(&points);
    assert_eq!(observed.emst(&points).edges, reference, "instrumentation must not perturb bits");
    observed.emst(&points);
    let mut observed_s = vec![];
    let mut raw_s = vec![];
    for _ in 0..repeats {
        let t = std::time::Instant::now();
        let o = observed.emst(&points);
        observed_s.push(t.elapsed().as_secs_f64());
        assert_eq!(o.edges, reference);

        let t = std::time::Instant::now();
        let r = raw.emst(&points);
        raw_s.push(t.elapsed().as_secs_f64());
        assert_eq!(r.edges, reference);
    }
    assert!(
        observed.metrics_prometheus().contains("emst_serve_op_seconds_count"),
        "instrumented engine recorded no metrics"
    );
    ObservabilityCell {
        generator: generator.to_string(),
        n,
        shards,
        warm_observed_s: median(&mut observed_s),
        warm_raw_s: median(&mut raw_s),
    }
}

/// Measures one fault-tolerance reload cell: `repeats` interleaved
/// evict-then-reload cycles on two engines that differ only in
/// `ServeConfig::spill_artifacts`. Each cycle evicts the measured cloud
/// by querying a decoy through the single residency slot, then times the
/// by-key reload. Panics if any reloaded answer is not bit-identical to
/// the reference, if the restoring engine reports build work (it must
/// deserialize, not rebuild), or if the rebuilding engine reports none —
/// a mislabeled path would make the speedup meaningless.
pub fn measure_fault_tolerance(
    generator: &str,
    kind: Kind,
    n: usize,
    shards: usize,
    repeats: usize,
) -> FaultToleranceCell {
    use emst_serve::{CacheOutcome, ServeConfig, ServeEngine};
    let points: Vec<Point<2>> = kind.generate(n, 0xFA17);
    // The decoy only exists to push the measured cloud out of the single
    // residency slot; a smaller cloud keeps eviction churn cheap.
    let decoy: Vec<Point<2>> = kind.generate((n / 4).max(64), 0xDEC0);

    let restoring = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(shards, 1));
    let rebuild_cfg = ServeConfig { spill_artifacts: false, ..ServeConfig::new(shards, 1) };
    let rebuilding = ServeEngine::<_, 2>::new(Threads, rebuild_cfg);
    let reference = restoring.emst(&points).edges;
    assert_eq!(rebuilding.emst(&points).edges, reference, "engines must agree before eviction");
    let key_restore = restoring.key(&points);
    let key_rebuild = rebuilding.key(&points);

    let mut restore_s = vec![];
    let mut rebuild_s = vec![];
    for _ in 0..repeats {
        restoring.emst(&decoy); // evict `points` into its artifact spill
        let t = std::time::Instant::now();
        let resp = restoring.emst_by_key(key_restore).expect("fault-free restore reload");
        restore_s.push(t.elapsed().as_secs_f64());
        assert_eq!(resp.outcome, CacheOutcome::Reloaded);
        assert_eq!(resp.edges, reference, "restored answer must be bit-identical");
        assert!(resp.build_work.is_zero(), "artifact restore must not rebuild");

        rebuilding.emst(&decoy); // evict `points` into its points-only spill
        let t = std::time::Instant::now();
        let resp = rebuilding.emst_by_key(key_rebuild).expect("fault-free rebuild reload");
        rebuild_s.push(t.elapsed().as_secs_f64());
        assert_eq!(resp.outcome, CacheOutcome::Reloaded);
        assert_eq!(resp.edges, reference, "rebuilt answer must be bit-identical");
        assert!(!resp.build_work.is_zero(), "a points-only reload must rebuild");
    }
    // The ladder accounting must agree with what was asserted per cycle:
    // only restores on one engine, only rebuilds on the other, and no
    // storage failures anywhere (this grid runs with faults disabled).
    let (rs, bs) = (restoring.stats(), rebuilding.stats());
    assert!(rs.artifact_restores >= repeats as u64 && rs.artifact_rebuilds == 0, "{rs:?}");
    assert!(bs.artifact_rebuilds >= repeats as u64 && bs.artifact_restores == 0, "{bs:?}");
    assert_eq!(rs.checksum_failures + bs.checksum_failures, 0, "no faults were injected");
    assert_eq!(rs.spill_failures + bs.spill_failures, 0, "no faults were injected");

    FaultToleranceCell {
        generator: generator.to_string(),
        n,
        shards,
        restore_reload_s: median(&mut restore_s),
        rebuild_reload_s: median(&mut rebuild_s),
    }
}

/// Measures one network serving cell: warm full-EMST request latency
/// over a real loopback socket vs the identical request through the
/// in-process protocol function on the same engine, then a same-key
/// storm of `clients` identical cold queries to count coalescing.
/// Panics if any wire reply is not byte-identical to the in-process
/// bytes — the harness refuses to report latency for wrong bits.
pub fn measure_serving_network(
    generator: &str,
    kind: Kind,
    n: usize,
    shards: usize,
    clients: usize,
    requests: usize,
) -> ServingNetworkCell {
    use emst_exec::Serial;
    use emst_serve::net::respond;
    use emst_serve::{NetConfig, NetSession, ServeConfig, ServeEngine, ServeServer};
    use std::io::{BufRead as _, BufReader, Read as _, Write as _};
    use std::net::TcpStream;
    use std::sync::Arc;

    let clients = clients.max(1);
    let points: Arc<Vec<Point<2>>> = Arc::new(kind.generate(n, 0x9E7));
    let engine = Arc::new(ServeEngine::<_, 2>::new(Serial, ServeConfig::new(shards, 2)));
    engine.ingest(&points);
    // Warm twice (steady state) and capture the expected warm wire bytes
    // from the in-process protocol function — the oracle for every
    // socket reply below.
    let mut session = NetSession::new(Arc::clone(&points));
    let _ = respond(engine.as_ref(), &mut session, "emst");
    let expected = respond(engine.as_ref(), &mut session, "emst").text;
    assert!(expected.starts_with("ok emst cache=hit "), "warm-up failed: {expected}");

    let mut inproc = vec![];
    for _ in 0..requests {
        let t = std::time::Instant::now();
        let r = respond(engine.as_ref(), &mut session, "emst");
        inproc.push(t.elapsed().as_secs_f64());
        assert_eq!(r.text, expected);
    }

    let server = ServeServer::bind(
        Arc::clone(&engine),
        Arc::clone(&points),
        "127.0.0.1:0",
        NetConfig { workers: clients, max_pending: 2 * clients },
    )
    .expect("bind an ephemeral loopback port");

    let mut net = vec![];
    {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for _ in 0..requests {
            let t = std::time::Instant::now();
            writer.write_all(b"emst\n").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            net.push(t.elapsed().as_secs_f64());
            assert_eq!(line, expected, "wire reply must match the in-process bytes");
        }
    }

    // Same-key storm: concurrent identical cold queries; overlapping
    // executions coalesce onto one flight and share its reply.
    let before = engine.stats().query_coalesced;
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let addr = server.local_addr();
            scope.spawn(move || {
                let mut c = TcpStream::connect(addr).unwrap();
                c.write_all(b"hdbscan 4 8\nquit\n").unwrap();
                let mut got = String::new();
                c.read_to_string(&mut got).unwrap();
                assert!(got.starts_with("ok hdbscan cache="), "{got}");
            });
        }
    });
    let coalesced = engine.stats().query_coalesced - before;
    server.shutdown();

    ServingNetworkCell {
        generator: generator.to_string(),
        n,
        shards,
        clients,
        requests,
        warm_net_s: median(&mut net),
        warm_inproc_s: median(&mut inproc),
        coalesced,
    }
}

/// Measures one incremental-update cell: `repeats` interleaved runs of a
/// 1%-clustered `insert` against a freshly ingested resident parent (a
/// fresh engine per repeat — the child becomes resident after one
/// update, so re-timing against the same engine would measure a cache
/// hit, not the delta-solve) vs a cold from-scratch build of the same
/// mutated cloud. Panics if the incremental answer's edge-weight
/// multiset is not bit-identical to the from-scratch one, if the update
/// silently fell back to a full rebuild, or if no clean shard was
/// reused — a mislabeled path would make the speedup meaningless.
pub fn measure_incremental(
    generator: &str,
    kind: Kind,
    n: usize,
    shards: usize,
    repeats: usize,
) -> IncrementalCell {
    use emst_core::edge::weight_multiset;
    use emst_serve::{CacheOutcome, ServeConfig, ServeEngine};
    let points: Vec<Point<2>> = kind.generate(n, 0x1CA);
    // ~1% of the cloud, clustered around one resident member so the
    // Morton router dirties as few shards as possible — the locality the
    // incremental path exists to exploit.
    let mutated = (n / 100).max(1);
    let anchor = points[n / 3];
    let added: Vec<Point<2>> = (0..mutated)
        .map(|i| {
            let eps = 1e-4 * (i as f32 + 1.0) / mutated as f32;
            Point::new([anchor[0] + eps, anchor[1] - eps])
        })
        .collect();

    let mut update = vec![];
    let mut rebuild = vec![];
    let mut dirty_shards = shards;
    for _ in 0..repeats {
        let engine = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(shards, 2));
        let key = engine.ingest(&points);
        let t = std::time::Instant::now();
        let m = engine.insert(key, &added).expect("incremental insert");
        update.push(t.elapsed().as_secs_f64());
        assert!(!m.full_rebuild, "a clustered 1% insert must not fall back to a full rebuild");
        assert!(m.reused_shards > 0, "the incremental path must reuse clean shards");
        dirty_shards = m.dirty_shards.len();

        let fresh = ServeEngine::<_, 2>::new(Threads, ServeConfig::new(shards, 1));
        let t = std::time::Instant::now();
        let c = fresh.emst(&m.points);
        rebuild.push(t.elapsed().as_secs_f64());
        assert_eq!(c.outcome, CacheOutcome::Miss);
        assert_eq!(
            weight_multiset(&m.update.edges),
            weight_multiset(&c.edges),
            "incremental weight multiset must match the from-scratch build"
        );
    }
    IncrementalCell {
        generator: generator.to_string(),
        n,
        shards,
        mutated,
        dirty_shards,
        update_s: median(&mut update),
        rebuild_s: median(&mut rebuild),
    }
}

/// Measures the fig1-style summary rows at one size: every solver's rate,
/// plus phase medians for the single-tree runs.
pub fn measure_summary(n: usize, repeats: usize) -> Vec<SummaryRow> {
    let cloud = emst_datasets::PaperDataset::Hacc37M.generate(n, 37);
    let features = cloud.features();
    let dim = cloud.dim();
    let mut rows = vec![];

    // Single-tree rows carry per-phase medians.
    for (name, threads) in [("single-tree (Serial)", false), ("single-tree (Threads)", true)] {
        let mut totals = vec![];
        let mut phases: Vec<(String, Vec<f64>)> = vec![];
        for _ in 0..repeats {
            let r = crate::with_cloud(
                &cloud,
                |p| {
                    let solver = SingleTreeBoruvka::new(p);
                    if threads {
                        solver.run(&Threads, &EmstConfig::default())
                    } else {
                        solver.run(&emst_exec::Serial, &EmstConfig::default())
                    }
                },
                |p| {
                    let solver = SingleTreeBoruvka::new(p);
                    if threads {
                        solver.run(&Threads, &EmstConfig::default())
                    } else {
                        solver.run(&emst_exec::Serial, &EmstConfig::default())
                    }
                },
            );
            totals.push(r.timings.get("tree") + r.timings.get("mst"));
            for (phase, secs) in r.timings.iter() {
                match phases.iter_mut().find(|(p, _)| p == phase) {
                    Some((_, v)) => v.push(secs),
                    None => phases.push((phase.to_string(), vec![secs])),
                }
            }
        }
        let total = median(&mut totals);
        let mut phase_medians: Vec<(String, f64)> =
            phases.into_iter().map(|(p, mut v)| (p, median(&mut v))).collect();
        phase_medians.sort_by(|a, b| a.0.cmp(&b.0));
        rows.push(SummaryRow {
            configuration: name.to_string(),
            n,
            dim,
            mfeatures_per_s: crate::mfeatures_per_sec(features, total),
            phases: phase_medians,
        });
    }

    // Competing implementations: totals only.
    for (name, rate) in [
        ("dual-tree (Serial)", crate::dual_tree_rate(&cloud)),
        ("wspd (Serial)", crate::wspd_rate(&cloud, false)),
    ] {
        rows.push(SummaryRow {
            configuration: name.to_string(),
            n,
            dim,
            mfeatures_per_s: rate,
            phases: vec![],
        });
    }
    rows
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

impl Snapshot {
    /// Serializes to the documented `emst-bench-snapshot/1` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"emst-bench-snapshot/1\",\n");
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str("  \"backend\": \"Threads\",\n");
        out.push_str("  \"summary\": [\n");
        for (i, row) in self.summary.iter().enumerate() {
            let phases = row
                .phases
                .iter()
                .map(|(p, s)| format!("\"{p}\": {}", json_f64(*s)))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{ \"configuration\": \"{}\", \"n\": {}, \"dim\": {}, \
                 \"mfeatures_per_s\": {}, \"phases\": {{ {} }} }}{}\n",
                row.configuration,
                row.n,
                row.dim,
                json_f64(row.mfeatures_per_s),
                phases,
                if i + 1 == self.summary.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n  \"traversal\": [\n");
        for (i, cell) in self.traversal.iter().enumerate() {
            let t = |t: &TraversalTimings| {
                format!(
                    "{{ \"find_edges_s\": {}, \"mst_s\": {}, \"total_s\": {} }}",
                    json_f64(t.find_edges_s),
                    json_f64(t.mst_s),
                    json_f64(t.total_s)
                )
            };
            out.push_str(&format!(
                "    {{ \"generator\": \"{}\", \"n\": {}, \"stack\": {}, \"stackless\": {}, \
                 \"speedup_find_edges\": {} }}{}\n",
                cell.generator,
                cell.n,
                t(&cell.stack),
                t(&cell.stackless),
                json_f64(cell.speedup_find_edges()),
                if i + 1 == self.traversal.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n  \"serving\": [\n");
        for (i, cell) in self.serving.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"generator\": \"{}\", \"n\": {}, \"shards\": {}, \"cold_s\": {}, \
                 \"warm_s\": {}, \"speedup_warm\": {} }}{}\n",
                cell.generator,
                cell.n,
                cell.shards,
                json_f64(cell.cold_s),
                json_f64(cell.warm_s),
                json_f64(cell.speedup_warm()),
                if i + 1 == self.serving.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n  \"serving_concurrent\": [\n");
        for (i, cell) in self.serving_concurrent.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"generator\": \"{}\", \"n\": {}, \"shards\": {}, \"workers\": {}, \
                 \"queries\": {}, \"queries_per_s\": {}, \"speedup_vs_1\": {}, \
                 \"host_cpus\": {} }}{}\n",
                cell.generator,
                cell.n,
                cell.shards,
                cell.workers,
                cell.queries,
                json_f64(cell.queries_per_s),
                json_f64(cell.speedup_vs_1),
                cell.host_cpus,
                if i + 1 == self.serving_concurrent.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n  \"observability\": [\n");
        for (i, cell) in self.observability.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"generator\": \"{}\", \"n\": {}, \"shards\": {}, \
                 \"warm_observed_s\": {}, \"warm_raw_s\": {}, \"overhead_pct\": {} }}{}\n",
                cell.generator,
                cell.n,
                cell.shards,
                json_f64(cell.warm_observed_s),
                json_f64(cell.warm_raw_s),
                json_f64(cell.overhead_pct()),
                if i + 1 == self.observability.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n  \"fault_tolerance\": [\n");
        for (i, cell) in self.fault_tolerance.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"generator\": \"{}\", \"n\": {}, \"shards\": {}, \
                 \"restore_reload_s\": {}, \"rebuild_reload_s\": {}, \
                 \"restore_speedup\": {} }}{}\n",
                cell.generator,
                cell.n,
                cell.shards,
                json_f64(cell.restore_reload_s),
                json_f64(cell.rebuild_reload_s),
                json_f64(cell.restore_speedup()),
                if i + 1 == self.fault_tolerance.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n  \"serving_network\": [\n");
        for (i, cell) in self.serving_network.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"generator\": \"{}\", \"n\": {}, \"shards\": {}, \"clients\": {}, \
                 \"requests\": {}, \"warm_net_s\": {}, \"warm_inproc_s\": {}, \
                 \"wire_overhead\": {}, \"coalesced\": {} }}{}\n",
                cell.generator,
                cell.n,
                cell.shards,
                cell.clients,
                cell.requests,
                json_f64(cell.warm_net_s),
                json_f64(cell.warm_inproc_s),
                json_f64(cell.wire_overhead()),
                cell.coalesced,
                if i + 1 == self.serving_network.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n  \"incremental\": [\n");
        for (i, cell) in self.incremental.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"generator\": \"{}\", \"n\": {}, \"shards\": {}, \"mutated\": {}, \
                 \"dirty_shards\": {}, \"update_s\": {}, \"rebuild_s\": {}, \
                 \"speedup_update\": {} }}{}\n",
                cell.generator,
                cell.n,
                cell.shards,
                cell.mutated,
                cell.dirty_shards,
                json_f64(cell.update_s),
                json_f64(cell.rebuild_s),
                json_f64(cell.speedup_update()),
                if i + 1 == self.incremental.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even_sample_counts() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&mut []).is_nan());
    }

    #[test]
    fn snapshot_serializes_valid_shape() {
        let cell = measure_traversal_cell("uniform", Kind::Uniform, 500, 1);
        let serving = measure_serving_cell("uniform", Kind::Uniform, 600, 3, 1);
        let concurrent = measure_serving_concurrent("uniform", Kind::Uniform, 600, 3, &[1, 2], 2);
        let obs = measure_observability("uniform", Kind::Uniform, 600, 3, 1);
        let ft = measure_fault_tolerance("uniform", Kind::Uniform, 600, 3, 1);
        let net = measure_serving_network("uniform", Kind::Uniform, 600, 3, 2, 2);
        let inc = measure_incremental("uniform", Kind::Uniform, 600, 3, 1);
        let snap = Snapshot {
            repeats: 1,
            summary: measure_summary(400, 1),
            traversal: vec![cell],
            serving: vec![serving],
            serving_concurrent: concurrent,
            observability: vec![obs],
            fault_tolerance: vec![ft],
            serving_network: vec![net],
            incremental: vec![inc],
        };
        let json = snap.to_json();
        assert!(json.contains("\"schema\": \"emst-bench-snapshot/1\""));
        assert!(json.contains("\"speedup_find_edges\""));
        assert!(json.contains("\"speedup_warm\""));
        assert!(json.contains("\"speedup_vs_1\""));
        assert!(json.contains("\"host_cpus\""));
        assert!(json.contains("\"overhead_pct\""));
        assert!(json.contains("\"restore_speedup\""));
        assert!(json.contains("\"wire_overhead\""));
        assert!(json.contains("\"coalesced\""));
        assert!(json.contains("\"speedup_update\""));
        assert!(json.contains("\"dirty_shards\""));
        assert!(json.contains("single-tree (Threads)"));
        // Balanced braces/brackets (cheap well-formedness check without a
        // JSON parser in the workspace).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn traversal_cell_speedup_is_finite_and_positive() {
        let cell = measure_traversal_cell("dense", Kind::GeoLifeLike, 800, 1);
        assert!(cell.speedup_find_edges().is_finite());
        assert!(cell.stack.find_edges_s > 0.0);
        assert!(cell.stackless.find_edges_s > 0.0);
    }

    #[test]
    fn serving_cell_measures_both_paths() {
        // Bit-identity of warm answers is asserted inside the harness; at
        // tiny n the speedup itself is noise, so only shape is checked.
        let cell = measure_serving_cell("dense", Kind::GeoLifeLike, 700, 4, 2);
        assert!(cell.cold_s > 0.0);
        assert!(cell.warm_s > 0.0);
        assert!(cell.speedup_warm().is_finite());
    }

    #[test]
    fn concurrent_serving_cells_share_one_baseline() {
        // Bit-identity is asserted inside the harness; here the shape: the
        // first (workers = 1) cell is its own baseline by construction and
        // every cell answered its full query budget.
        let cells = measure_serving_concurrent("dense", Kind::GeoLifeLike, 600, 3, &[1, 2], 2);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].workers, 1);
        assert_eq!(cells[0].speedup_vs_1, 1.0);
        assert_eq!(cells[1].queries, 4);
        assert!(cells.iter().all(|c| c.queries_per_s > 0.0 && c.host_cpus >= 1));
        assert!(cells[1].speedup_vs_1.is_finite());
    }

    #[test]
    fn fault_tolerance_cell_measures_both_reload_paths() {
        // Bit-identity, restore-reports-zero-build-work and
        // rebuild-reports-nonzero are all asserted inside the harness; at
        // tiny n the speedup itself is noise, so only shape is checked.
        let cell = measure_fault_tolerance("dense", Kind::GeoLifeLike, 700, 4, 2);
        assert!(cell.restore_reload_s > 0.0);
        assert!(cell.rebuild_reload_s > 0.0);
        assert!(cell.restore_speedup().is_finite());
    }

    #[test]
    fn serving_network_cell_verifies_wire_bytes_and_measures_both_paths() {
        // Byte-identity of every socket reply against the in-process
        // oracle is asserted inside the harness; at tiny n the latency
        // ratio is noise (and `coalesced` may honestly be 0), so only
        // shape is checked here.
        let cell = measure_serving_network("dense", Kind::GeoLifeLike, 600, 3, 2, 3);
        assert!(cell.warm_net_s > 0.0);
        assert!(cell.warm_inproc_s > 0.0);
        assert!(cell.wire_overhead().is_finite());
        assert_eq!((cell.clients, cell.requests), (2, 3));
    }

    #[test]
    fn incremental_cell_measures_both_paths_and_stays_incremental() {
        // Weight-multiset identity with the from-scratch build, the
        // no-full-rebuild and clean-shards-reused invariants are all
        // asserted inside the harness; at tiny n the speedup itself is
        // noise, so only shape is checked here.
        let cell = measure_incremental("dense", Kind::GeoLifeLike, 700, 4, 2);
        assert!(cell.update_s > 0.0);
        assert!(cell.rebuild_s > 0.0);
        assert!(cell.speedup_update().is_finite());
        assert_eq!(cell.mutated, 7);
        assert!(cell.dirty_shards >= 1 && cell.dirty_shards < 4, "{}", cell.dirty_shards);
    }

    #[test]
    fn observability_cell_measures_both_engines() {
        // Bit-identity between instrumented and raw engines is asserted
        // inside the harness; at tiny n the overhead itself is pure noise,
        // so only shape is checked here.
        let cell = measure_observability("dense", Kind::GeoLifeLike, 700, 4, 2);
        assert!(cell.warm_observed_s > 0.0);
        assert!(cell.warm_raw_s > 0.0);
        assert!(cell.overhead_pct().is_finite());
    }
}
