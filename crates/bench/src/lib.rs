//! Shared machinery for the figure-regeneration benches.
//!
//! Every figure of the paper's evaluation (§4) has one `harness = false`
//! bench target in `benches/` that prints the figure's rows. Sizes are
//! scaled down from the paper's 10⁷–10⁸ points to bench scale
//! (10⁴–10⁵ by default); override with:
//!
//! - `EMST_BENCH_SCALE` — multiplies every dataset size (default 0.2);
//! - `EMST_BENCH_N` — fixes all dataset sizes to an absolute point count.
//!
//! GPU rows are **modeled**, not measured: the run executes on the
//! instrumented [`GpuSim`] backend and an analytic [`DeviceModel`] converts
//! counted work into device time (see DESIGN.md §1 and `emst-exec`'s
//! `device` module for the calibration).

pub mod snapshot;

use emst_core::{EmstConfig, SingleTreeBoruvka};
use emst_datasets::PointCloud;
use emst_exec::{DeviceModel, ExecSpace, GpuSim, Serial, Threads};
use emst_geometry::Point;

/// The dataset scale factor (`EMST_BENCH_SCALE`, default 0.2).
pub fn bench_scale() -> f64 {
    std::env::var("EMST_BENCH_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.2)
}

/// Absolute dataset size override (`EMST_BENCH_N`).
pub fn bench_n_override() -> Option<usize> {
    std::env::var("EMST_BENCH_N").ok().and_then(|v| v.parse().ok())
}

/// The paper's rate metric: millions of features (`n × d`) per second.
pub fn mfeatures_per_sec(features: usize, seconds: f64) -> f64 {
    features as f64 / seconds / 1e6
}

/// Applies `f2`/`f3` to a dimension-erased cloud.
pub fn with_cloud<R>(
    cloud: &PointCloud,
    f2: impl FnOnce(&[Point<2>]) -> R,
    f3: impl FnOnce(&[Point<3>]) -> R,
) -> R {
    match cloud {
        PointCloud::D2(v) => f2(v),
        PointCloud::D3(v) => f3(v),
    }
}

/// Wall-clock seconds of a single-tree EMST run (`(total, tree, mst)`).
pub fn single_tree_wall<S: ExecSpace, const D: usize>(
    points: &[Point<D>],
    space: &S,
) -> (f64, f64, f64) {
    let r = SingleTreeBoruvka::new(points).run(space, &EmstConfig::default());
    let tree = r.timings.get("tree");
    let mst = r.timings.get("mst");
    (tree + mst, tree, mst)
}

/// Modeled device seconds of a single-tree EMST run (`(total, tree, mst)`).
///
/// Executes the identical kernels on the host ([`GpuSim`]), then prices the
/// recorded launches/visits/distances/bytes with the device model.
pub fn single_tree_modeled<const D: usize>(
    points: &[Point<D>],
    model: &DeviceModel,
) -> (f64, f64, f64) {
    let gpu = GpuSim::new();
    let r = SingleTreeBoruvka::new(points).run(&gpu, &EmstConfig::default());
    let tree = model.time(r.launches_tree.0, r.launches_tree.1, &r.work_tree).total_s();
    let mst = model.time(r.launches_mst.0, r.launches_mst.1, &r.work_mst()).total_s();
    (tree + mst, tree, mst)
}

/// Single-tree EMST rate for an erased cloud on a wall-clock backend.
pub fn single_tree_rate_wall<S: ExecSpace>(cloud: &PointCloud, space: &S) -> f64 {
    let secs =
        with_cloud(cloud, |p| single_tree_wall(p, space).0, |p| single_tree_wall(p, space).0);
    mfeatures_per_sec(cloud.features(), secs)
}

/// Single-tree EMST rate for an erased cloud under a device model.
pub fn single_tree_rate_modeled(cloud: &PointCloud, model: &DeviceModel) -> f64 {
    let secs =
        with_cloud(cloud, |p| single_tree_modeled(p, model).0, |p| single_tree_modeled(p, model).0);
    mfeatures_per_sec(cloud.features(), secs)
}

/// MemoGFK-like rate for an erased cloud.
pub fn wspd_rate(cloud: &PointCloud, parallel: bool) -> f64 {
    let secs =
        with_cloud(cloud, |p| wspd_total_secs(p, parallel), |p| wspd_total_secs(p, parallel));
    mfeatures_per_sec(cloud.features(), secs)
}

/// Total seconds of a MemoGFK-like run.
pub fn wspd_total_secs<const D: usize>(points: &[Point<D>], parallel: bool) -> f64 {
    let r = emst_wspd::wspd_emst(points, parallel);
    r.timings.total()
}

/// MLPACK-like (dual-tree, sequential) rate for an erased cloud.
pub fn dual_tree_rate(cloud: &PointCloud) -> f64 {
    let secs = with_cloud(
        cloud,
        |p| emst_kdtree::dual_tree_emst(p).timings.total(),
        |p| emst_kdtree::dual_tree_emst(p).timings.total(),
    );
    mfeatures_per_sec(cloud.features(), secs)
}

/// Cross-checks that all three implementations agree on the MST weight for
/// the given cloud (cheap insurance that the benches measure the same
/// problem). Panics on mismatch.
pub fn assert_agreement(cloud: &PointCloud) {
    fn check<const D: usize>(points: &[Point<D>]) {
        let a = SingleTreeBoruvka::new(points).run(&Threads, &EmstConfig::default()).total_weight;
        let b = emst_wspd::wspd_emst(points, true).total_weight;
        let rel = ((a - b) / a.max(1e-30)).abs();
        assert!(rel < 1e-5, "single-tree {a} vs wspd {b}");
    }
    with_cloud(cloud, check::<2>, check::<3>);
}

/// Convenience: run something and return seconds.
pub fn time_it<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = std::time::Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

/// Serial single-tree rate (used by Fig. 1/5).
pub fn single_tree_rate_serial(cloud: &PointCloud) -> f64 {
    single_tree_rate_wall(cloud, &Serial)
}

/// Threads single-tree rate (used by Fig. 1/6). On a single-threaded rayon
/// pool this degrades to the Serial backend — fork/join overhead without
/// parallelism would only add noise (OpenMP with one thread behaves the
/// same way).
pub fn single_tree_rate_threads(cloud: &PointCloud) -> f64 {
    if rayon::current_num_threads() > 1 {
        single_tree_rate_wall(cloud, &Threads)
    } else {
        single_tree_rate_wall(cloud, &Serial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_datasets::PaperDataset;

    #[test]
    fn rates_are_positive_and_agree() {
        let cloud = PaperDataset::Hacc37M.generate(3000, 1);
        assert_agreement(&cloud);
        assert!(single_tree_rate_serial(&cloud) > 0.0);
        assert!(wspd_rate(&cloud, false) > 0.0);
        assert!(dual_tree_rate(&cloud) > 0.0);
        let model = DeviceModel::a100_like();
        assert!(single_tree_rate_modeled(&cloud, &model) > 0.0);
    }

    #[test]
    fn mfeatures_math() {
        assert_eq!(mfeatures_per_sec(3_000_000, 1.0), 3.0);
        assert_eq!(mfeatures_per_sec(1_000_000, 0.5), 2.0);
    }
}
