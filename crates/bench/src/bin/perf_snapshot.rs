//! `perf_snapshot` — the machine-readable perf harness.
//!
//! Runs the fig1-style summary plus the stack-vs-stackless traversal
//! ablation and writes the result as `emst-bench-snapshot/1` JSON (schema
//! documented in `emst_bench::snapshot`), so every PR can commit a
//! `BENCH_*.json` for future PRs to regress against.
//!
//! ```text
//! perf_snapshot [--json BENCH_PR3.json] [--sizes 10000,100000,1000000]
//!               [--summary-n 100000] [--repeats 3]
//! ```
//!
//! Without `--json` the tables are printed only. CI runs this at tiny
//! sizes as a schema/harness smoke test and uploads the JSON artifact.

use std::path::PathBuf;
use std::process::ExitCode;

use emst_bench::snapshot::{measure_summary, measure_traversal_grid, Snapshot};

struct Args {
    json: Option<PathBuf>,
    sizes: Vec<usize>,
    summary_n: usize,
    repeats: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { json: None, sizes: vec![10_000, 100_000], summary_n: 50_000, repeats: 3 };
    let mut it = std::env::args().skip(1);
    while let Some(key) = it.next() {
        let mut value = || it.next().ok_or(format!("{key} needs a value"));
        match key.as_str() {
            "--json" => args.json = Some(PathBuf::from(value()?)),
            "--sizes" => {
                args.sizes = value()?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("bad size {s:?}")))
                    .collect::<Result<_, _>>()?;
            }
            "--summary-n" => {
                args.summary_n = value()?.parse().map_err(|_| "bad --summary-n".to_string())?;
            }
            "--repeats" => {
                args.repeats = value()?.parse().map_err(|_| "bad --repeats".to_string())?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.sizes.is_empty() || args.repeats == 0 {
        return Err("--sizes and --repeats must be non-empty/non-zero".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: perf_snapshot [--json out.json] [--sizes n1,n2,...] [--summary-n n] \
                 [--repeats r]"
            );
            return ExitCode::FAILURE;
        }
    };

    println!("# perf_snapshot: summary n = {}, repeats = {}", args.summary_n, args.repeats);
    let summary = measure_summary(args.summary_n, args.repeats);
    println!();
    println!("{:<28} {:>10} {:>12}", "configuration", "n", "MFeat/s");
    for row in &summary {
        println!("{:<28} {:>10} {:>12.3}", row.configuration, row.n, row.mfeatures_per_s);
        for (phase, secs) in &row.phases {
            println!("    {phase:<24} {secs:>10.4} s");
        }
    }

    println!();
    println!("# traversal ablation (stack vs stackless, Threads backend)");
    println!(
        "{:<12} {:>10} {:>14} {:>14} {:>9}",
        "generator", "n", "stack find", "stackless", "speedup"
    );
    let traversal = measure_traversal_grid(&args.sizes, args.repeats);
    for cell in &traversal {
        println!(
            "{:<12} {:>10} {:>12.4} s {:>12.4} s {:>8.2}x",
            cell.generator,
            cell.n,
            cell.stack.find_edges_s,
            cell.stackless.find_edges_s,
            cell.speedup_find_edges()
        );
    }

    let snap = Snapshot { repeats: args.repeats, summary, traversal };
    if let Some(path) = &args.json {
        if let Err(e) = snap.write(path) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
