//! `perf_snapshot` — the machine-readable perf harness.
//!
//! Runs the fig1-style summary plus the stack-vs-stackless traversal
//! ablation and writes the result as `emst-bench-snapshot/1` JSON (schema
//! documented in `emst_bench::snapshot`), so every PR can commit a
//! `BENCH_*.json` for future PRs to regress against.
//!
//! ```text
//! perf_snapshot [--json BENCH_PR6.json] [--sizes 10000,100000,1000000]
//!               [--summary-n 100000] [--repeats 3]
//!               [--serving-sizes 10000,100000] [--serving-shards 2,4]
//!               [--concurrent-workers 1,2,4] [--concurrent-queries 8]
//!               [--net-clients 8] [--net-requests 32]
//!               [--incremental-shards 16]
//! ```
//!
//! Without `--json` the tables are printed only. CI runs this at tiny
//! sizes as a schema/harness smoke test and uploads the JSON artifact.
//! `--concurrent-workers` drives the shared-engine warm-throughput grid
//! (the first count is the scaling baseline, so keep `1` first); its
//! cells record the host's CPU count, because throughput scaling cannot
//! exceed the cores actually available to the harness.
//!
//! The observability-overhead grid (instrumentation on vs off on warm
//! queries, budget ≤5%) reuses `--serving-sizes`, the last
//! `--serving-shards` entry and `--repeats` — no extra flags. So does the
//! fault-tolerance reload grid (artifact restore vs deterministic rebuild
//! of an evicted cloud, faults disabled), and the network serving grid
//! (warm wire latency vs in-process, plus a `--net-clients`-wide same-key
//! coalescing storm; every wire reply is byte-verified).
//!
//! The incremental-update grid (1% clustered insert delta-solved against
//! a resident engine vs a cold rebuild of the same mutated cloud, weight
//! multisets asserted bit-identical) reuses `--serving-sizes` and
//! `--repeats` but takes its own `--incremental-shards` count: the
//! update's advantage scales with the fraction of shards left clean
//! (the exact cross-shard merge is paid by both paths and dominates the
//! update, so coarse shardings cap the speedup), so it is measured at a
//! finer sharding than the cold/warm grid's sweep.

use std::path::PathBuf;
use std::process::ExitCode;

use emst_bench::snapshot::{
    measure_fault_tolerance, measure_incremental, measure_observability,
    measure_serving_concurrent, measure_serving_grid, measure_serving_network, measure_summary,
    measure_traversal_grid, Snapshot,
};

struct Args {
    json: Option<PathBuf>,
    sizes: Vec<usize>,
    serving_sizes: Vec<usize>,
    serving_shards: Vec<usize>,
    concurrent_workers: Vec<usize>,
    concurrent_queries: usize,
    net_clients: usize,
    net_requests: usize,
    incremental_shards: usize,
    summary_n: usize,
    repeats: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: None,
        sizes: vec![10_000, 100_000],
        serving_sizes: vec![10_000, 100_000],
        serving_shards: vec![2, 4],
        concurrent_workers: vec![1, 2, 4],
        concurrent_queries: 8,
        net_clients: 8,
        net_requests: 32,
        incremental_shards: 16,
        summary_n: 50_000,
        repeats: 3,
    };
    let mut it = std::env::args().skip(1);
    while let Some(key) = it.next() {
        let mut value = || it.next().ok_or(format!("{key} needs a value"));
        match key.as_str() {
            "--json" => args.json = Some(PathBuf::from(value()?)),
            "--sizes" => {
                args.sizes = value()?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("bad size {s:?}")))
                    .collect::<Result<_, _>>()?;
            }
            "--serving-sizes" => {
                args.serving_sizes = value()?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("bad size {s:?}")))
                    .collect::<Result<_, _>>()?;
            }
            "--serving-shards" => {
                args.serving_shards = value()?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("bad shard count {s:?}")))
                    .collect::<Result<_, _>>()?;
            }
            "--concurrent-workers" => {
                args.concurrent_workers = value()?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("bad worker count {s:?}")))
                    .collect::<Result<_, _>>()?;
            }
            "--concurrent-queries" => {
                args.concurrent_queries =
                    value()?.parse().map_err(|_| "bad --concurrent-queries".to_string())?;
            }
            "--net-clients" => {
                args.net_clients = value()?.parse().map_err(|_| "bad --net-clients".to_string())?;
            }
            "--net-requests" => {
                args.net_requests =
                    value()?.parse().map_err(|_| "bad --net-requests".to_string())?;
            }
            "--incremental-shards" => {
                args.incremental_shards =
                    value()?.parse().map_err(|_| "bad --incremental-shards".to_string())?;
            }
            "--summary-n" => {
                args.summary_n = value()?.parse().map_err(|_| "bad --summary-n".to_string())?;
            }
            "--repeats" => {
                args.repeats = value()?.parse().map_err(|_| "bad --repeats".to_string())?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.sizes.is_empty() || args.repeats == 0 {
        return Err("--sizes and --repeats must be non-empty/non-zero".into());
    }
    if args.serving_shards.is_empty() || args.serving_shards.contains(&0) {
        return Err("--serving-shards must be non-empty positive counts".into());
    }
    if args.concurrent_workers.is_empty()
        || args.concurrent_workers.contains(&0)
        || args.concurrent_queries == 0
    {
        return Err("--concurrent-workers and --concurrent-queries must be positive".into());
    }
    if args.net_clients == 0 || args.net_requests == 0 {
        return Err("--net-clients and --net-requests must be positive".into());
    }
    if args.incremental_shards == 0 {
        return Err("--incremental-shards must be positive".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: perf_snapshot [--json out.json] [--sizes n1,n2,...] [--summary-n n] \
                 [--repeats r] [--serving-sizes n1,n2,...] [--serving-shards k] \
                 [--concurrent-workers w1,w2,...] [--concurrent-queries q] \
                 [--net-clients c] [--net-requests q] [--incremental-shards k]"
            );
            return ExitCode::FAILURE;
        }
    };

    println!("# perf_snapshot: summary n = {}, repeats = {}", args.summary_n, args.repeats);
    let summary = measure_summary(args.summary_n, args.repeats);
    println!();
    println!("{:<28} {:>10} {:>12}", "configuration", "n", "MFeat/s");
    for row in &summary {
        println!("{:<28} {:>10} {:>12.3}", row.configuration, row.n, row.mfeatures_per_s);
        for (phase, secs) in &row.phases {
            println!("    {phase:<24} {secs:>10.4} s");
        }
    }

    println!();
    println!("# traversal ablation (stack vs stackless, Threads backend)");
    println!(
        "{:<12} {:>10} {:>14} {:>14} {:>9}",
        "generator", "n", "stack find", "stackless", "speedup"
    );
    let traversal = measure_traversal_grid(&args.sizes, args.repeats);
    for cell in &traversal {
        println!(
            "{:<12} {:>10} {:>12.4} s {:>12.4} s {:>8.2}x",
            cell.generator,
            cell.n,
            cell.stack.find_edges_s,
            cell.stackless.find_edges_s,
            cell.speedup_find_edges()
        );
    }

    println!();
    println!(
        "# serving ablation (cold vs warm full-EMST query, K in {:?}, Threads backend)",
        args.serving_shards
    );
    println!(
        "{:<12} {:>10} {:>4} {:>12} {:>12} {:>9}",
        "generator", "n", "K", "cold", "warm", "speedup"
    );
    let mut serving = vec![];
    for &shards in &args.serving_shards {
        serving.extend(measure_serving_grid(&args.serving_sizes, shards, args.repeats));
    }
    for cell in &serving {
        println!(
            "{:<12} {:>10} {:>4} {:>10.4} s {:>10.4} s {:>8.2}x",
            cell.generator,
            cell.n,
            cell.shards,
            cell.cold_s,
            cell.warm_s,
            cell.speedup_warm()
        );
    }

    println!();
    println!(
        "# concurrent serving (warm throughput, shared engine, Serial per query, workers {:?})",
        args.concurrent_workers
    );
    println!(
        "{:<12} {:>10} {:>4} {:>8} {:>12} {:>9} {:>9}",
        "generator", "n", "K", "workers", "queries/s", "speedup", "cpus"
    );
    let mut serving_concurrent = vec![];
    {
        use emst_datasets::Kind;
        let shards = *args.serving_shards.last().unwrap();
        for (name, kind) in [("uniform", Kind::Uniform), ("dense", Kind::GeoLifeLike)] {
            for &n in &args.serving_sizes {
                serving_concurrent.extend(measure_serving_concurrent(
                    name,
                    kind,
                    n,
                    shards,
                    &args.concurrent_workers,
                    args.concurrent_queries,
                ));
            }
        }
    }
    for cell in &serving_concurrent {
        println!(
            "{:<12} {:>10} {:>4} {:>8} {:>12.2} {:>8.2}x {:>9}",
            cell.generator,
            cell.n,
            cell.shards,
            cell.workers,
            cell.queries_per_s,
            cell.speedup_vs_1,
            cell.host_cpus,
        );
    }

    println!();
    println!("# observability overhead (warm query, instrumentation on vs off, budget <= 5%)");
    println!(
        "{:<12} {:>10} {:>4} {:>12} {:>12} {:>9}",
        "generator", "n", "K", "observed", "raw", "overhead"
    );
    let mut observability = vec![];
    {
        use emst_datasets::Kind;
        let shards = *args.serving_shards.last().unwrap();
        for (name, kind) in [("uniform", Kind::Uniform), ("dense", Kind::GeoLifeLike)] {
            for &n in &args.serving_sizes {
                observability.push(measure_observability(name, kind, n, shards, args.repeats));
            }
        }
    }
    for cell in &observability {
        println!(
            "{:<12} {:>10} {:>4} {:>10.4} s {:>10.4} s {:>7.2}%",
            cell.generator,
            cell.n,
            cell.shards,
            cell.warm_observed_s,
            cell.warm_raw_s,
            cell.overhead_pct(),
        );
    }

    println!();
    println!("# fault tolerance (reload of an evicted cloud: artifact restore vs rebuild)");
    println!(
        "{:<12} {:>10} {:>4} {:>12} {:>12} {:>9}",
        "generator", "n", "K", "restore", "rebuild", "speedup"
    );
    let mut fault_tolerance = vec![];
    {
        use emst_datasets::Kind;
        let shards = *args.serving_shards.last().unwrap();
        for (name, kind) in [("uniform", Kind::Uniform), ("dense", Kind::GeoLifeLike)] {
            for &n in &args.serving_sizes {
                fault_tolerance.push(measure_fault_tolerance(name, kind, n, shards, args.repeats));
            }
        }
    }
    for cell in &fault_tolerance {
        println!(
            "{:<12} {:>10} {:>4} {:>10.4} s {:>10.4} s {:>8.2}x",
            cell.generator,
            cell.n,
            cell.shards,
            cell.restore_reload_s,
            cell.rebuild_reload_s,
            cell.restore_speedup(),
        );
    }

    println!();
    println!(
        "# network serving (warm wire latency vs in-process, {} clients storm)",
        args.net_clients
    );
    println!(
        "{:<12} {:>10} {:>4} {:>12} {:>12} {:>9} {:>10}",
        "generator", "n", "K", "wire", "in-proc", "overhead", "coalesced"
    );
    let mut serving_network = vec![];
    {
        use emst_datasets::Kind;
        let shards = *args.serving_shards.last().unwrap();
        for (name, kind) in [("uniform", Kind::Uniform), ("dense", Kind::GeoLifeLike)] {
            for &n in &args.serving_sizes {
                serving_network.push(measure_serving_network(
                    name,
                    kind,
                    n,
                    shards,
                    args.net_clients,
                    args.net_requests,
                ));
            }
        }
    }
    for cell in &serving_network {
        println!(
            "{:<12} {:>10} {:>4} {:>10.6} s {:>10.6} s {:>8.2}x {:>10}",
            cell.generator,
            cell.n,
            cell.shards,
            cell.warm_net_s,
            cell.warm_inproc_s,
            cell.wire_overhead(),
            cell.coalesced,
        );
    }

    println!();
    println!(
        "# incremental updates (1% clustered insert delta-solve vs cold rebuild, K = {})",
        args.incremental_shards
    );
    println!(
        "{:<12} {:>10} {:>4} {:>8} {:>6} {:>12} {:>12} {:>9}",
        "generator", "n", "K", "mutated", "dirty", "update", "rebuild", "speedup"
    );
    let mut incremental = vec![];
    {
        use emst_datasets::Kind;
        for (name, kind) in [("uniform", Kind::Uniform), ("dense", Kind::GeoLifeLike)] {
            for &n in &args.serving_sizes {
                incremental.push(measure_incremental(
                    name,
                    kind,
                    n,
                    args.incremental_shards,
                    args.repeats,
                ));
            }
        }
    }
    for cell in &incremental {
        println!(
            "{:<12} {:>10} {:>4} {:>8} {:>6} {:>10.4} s {:>10.4} s {:>8.2}x",
            cell.generator,
            cell.n,
            cell.shards,
            cell.mutated,
            cell.dirty_shards,
            cell.update_s,
            cell.rebuild_s,
            cell.speedup_update(),
        );
    }

    let snap = Snapshot {
        repeats: args.repeats,
        summary,
        traversal,
        serving,
        serving_concurrent,
        observability,
        fault_tolerance,
        serving_network,
        incremental,
    };
    if let Some(path) = &args.json {
        if let Err(e) = snap.write(path) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
