//! Quick phase/counter profile of the single-tree EMST vs the dual-tree
//! baseline on one dataset. Usage:
//!
//! ```text
//! cargo run --release -p emst-bench --bin profile_st [kind] [n]
//! ```
//!
//! `kind` ∈ {uniform, normal, visualvar, hacc, geolife, ngsim, porto, road}
//! (default hacc), `n` default 300000. 3D points.

use emst_core::{EmstConfig, SingleTreeBoruvka};
use emst_datasets::Kind;
use emst_exec::Serial;
use emst_geometry::Point;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = match args.get(1).map(String::as_str).unwrap_or("hacc") {
        "uniform" => Kind::Uniform,
        "normal" => Kind::Normal,
        "visualvar" => Kind::VisualVar,
        "geolife" => Kind::GeoLifeLike,
        "ngsim" => Kind::NgsimLike,
        "porto" => Kind::PortoTaxiLike,
        "road" => Kind::RoadNetworkLike,
        _ => Kind::HaccLike,
    };
    let n: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(300_000);

    let points: Vec<Point<3>> = kind.generate(n, 0xF);
    let r = SingleTreeBoruvka::new(&points).run(&Serial, &EmstConfig::default());
    println!("single-tree ({kind:?}, n = {n}):");
    for (name, secs) in r.timings.iter() {
        println!("  {name:<22} {secs:.3}s");
    }
    println!("  iterations: {}", r.iterations);
    let w = r.work;
    println!(
        "  dist {} nodes {} leaves {} skipped {} queries {}",
        w.distance_computations, w.node_visits, w.leaf_visits, w.subtrees_skipped, w.queries
    );
    let d = emst_kdtree::dual_tree_emst(&points);
    println!(
        "dual-tree: tree {:.3}s mst {:.3}s dist {}",
        d.timings.get("tree"),
        d.timings.get("mst"),
        d.distance_computations
    );
    assert!((r.total_weight - d.total_weight).abs() / r.total_weight < 1e-6);
}
