//! Device-style atomic helpers.
//!
//! The paper's kernels communicate through GPU atomics: `atomic_min` on
//! per-component upper bounds (Optimization 2) and packed 64-bit
//! compare-and-swap loops for the shortest-outgoing-edge selection. These
//! wrappers reproduce those primitives on the host.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Atomic minimum over non-negative `f32` values.
///
/// Exploits the fact that the IEEE-754 bit pattern of non-negative floats is
/// order-isomorphic to `u32`, so `fetch_min` on the bits implements a float
/// minimum without a CAS loop — exactly the trick GPU implementations use.
#[derive(Debug)]
pub struct AtomicF32Min(AtomicU32);

impl AtomicF32Min {
    /// Creates the atomic initialized to `+inf` (the identity of `min`).
    pub fn new_inf() -> Self {
        Self(AtomicU32::new(f32::INFINITY.to_bits()))
    }

    /// Creates the atomic with an initial value (must be non-negative).
    pub fn new(value: f32) -> Self {
        debug_assert!(value >= 0.0);
        Self(AtomicU32::new(value.to_bits()))
    }

    /// Lowers the stored value to `min(current, value)`.
    /// `value` must be non-negative.
    #[inline]
    pub fn fetch_min(&self, value: f32) -> f32 {
        debug_assert!(value >= 0.0);
        f32::from_bits(self.0.fetch_min(value.to_bits(), Ordering::Relaxed))
    }

    /// Reads the current value.
    #[inline]
    pub fn load(&self) -> f32 {
        f32::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Overwrites the current value (not atomic with respect to `fetch_min`
    /// ordering guarantees beyond `Relaxed`; used between kernel launches).
    #[inline]
    pub fn store(&self, value: f32) {
        debug_assert!(value >= 0.0);
        self.0.store(value.to_bits(), Ordering::Relaxed)
    }
}

impl Default for AtomicF32Min {
    fn default() -> Self {
        Self::new_inf()
    }
}

/// Atomic minimum over packed `u64` keys.
///
/// The single-tree Borůvka edge selection packs
/// `(distance bits : u32) << 32 | payload : u32` into one `u64` so the
/// lexicographic order `(distance, payload)` is the integer order — the same
/// packed-atomic idiom ArborX uses on devices.
#[derive(Debug)]
pub struct AtomicU64Min(AtomicU64);

impl AtomicU64Min {
    /// Creates the atomic initialized to `u64::MAX` (the identity of `min`).
    pub fn new_max() -> Self {
        Self(AtomicU64::new(u64::MAX))
    }

    /// Lowers the stored value to `min(current, value)`, returning the
    /// previous value.
    #[inline]
    pub fn fetch_min(&self, value: u64) -> u64 {
        self.0.fetch_min(value, Ordering::Relaxed)
    }

    /// Reads the current value.
    #[inline]
    pub fn load(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the current value.
    #[inline]
    pub fn store(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed)
    }
}

impl Default for AtomicU64Min {
    fn default() -> Self {
        Self::new_max()
    }
}

/// Packs a non-negative `f32` distance and a 32-bit payload into a `u64`
/// whose integer order is the lexicographic `(distance, payload)` order.
#[inline]
pub fn pack_dist_payload(dist: f32, payload: u32) -> u64 {
    debug_assert!(dist >= 0.0);
    ((dist.to_bits() as u64) << 32) | payload as u64
}

/// Inverse of [`pack_dist_payload`].
#[inline]
pub fn unpack_dist_payload(packed: u64) -> (f32, u32) {
    (f32::from_bits((packed >> 32) as u32), packed as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn f32_min_converges_to_global_minimum_under_contention() {
        let m = AtomicF32Min::new_inf();
        (0..10_000u32).into_par_iter().for_each(|i| {
            m.fetch_min((i as f32 * 37.0 + 1.0) % 1000.0);
        });
        // The sequence hits (i*37+1) mod 1000; minimum over i is 0? 37i+1 ≡ 0 mod 1000
        // → i ≡ 27*... check smallest value by brute force instead:
        let expect =
            (0..10_000u32).map(|i| (i as f32 * 37.0 + 1.0) % 1000.0).fold(f32::INFINITY, f32::min);
        assert_eq!(m.load(), expect);
    }

    #[test]
    fn f32_min_handles_zero_and_inf() {
        let m = AtomicF32Min::new_inf();
        assert_eq!(m.load(), f32::INFINITY);
        m.fetch_min(0.0);
        assert_eq!(m.load(), 0.0);
        m.fetch_min(5.0);
        assert_eq!(m.load(), 0.0);
    }

    #[test]
    fn u64_min_converges_under_contention() {
        let m = AtomicU64Min::new_max();
        (0..100_000u64).into_par_iter().for_each(|i| {
            m.fetch_min(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        });
        let expect = (0..100_000u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).min().unwrap();
        assert_eq!(m.load(), expect);
    }

    #[test]
    fn pack_orders_by_distance_then_payload() {
        let a = pack_dist_payload(1.0, 99);
        let b = pack_dist_payload(2.0, 0);
        assert!(a < b, "smaller distance wins regardless of payload");
        let c = pack_dist_payload(1.0, 5);
        assert!(c < a, "equal distance tie-breaks by payload");
    }

    #[test]
    fn pack_round_trips() {
        for (d, p) in [(0.0f32, 0u32), (1.5, 7), (1e30, u32::MAX)] {
            let (d2, p2) = unpack_dist_payload(pack_dist_payload(d, p));
            assert_eq!(d, d2);
            assert_eq!(p, p2);
        }
    }

    #[test]
    fn store_resets_between_phases() {
        let m = AtomicF32Min::new(3.0);
        m.fetch_min(2.0);
        assert_eq!(m.load(), 2.0);
        m.store(10.0);
        assert_eq!(m.load(), 10.0);
    }
}
