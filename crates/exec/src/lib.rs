//! Kokkos-like execution spaces for the `emst` workspace.
//!
//! The paper implements its algorithm on top of Kokkos, whose
//! `parallel_for` / `parallel_reduce` / `parallel_scan` patterns map the same
//! kernel source onto Serial, OpenMP, CUDA and HIP backends. This crate is
//! the Rust substitute:
//!
//! - [`Serial`] — plain loops (the paper's sequential results);
//! - [`Threads`] — rayon work-stealing (the paper's multithreaded results);
//! - [`GpuSim`] — executes kernels on the host thread pool (bit-identical
//!   results) while recording [`KernelStats`]; an analytic [`DeviceModel`]
//!   converts the recorded work into a modeled GPU execution time. This is
//!   the documented substitution for the paper's A100/MI250X measurements —
//!   see DESIGN.md §1.
//!
//! Algorithms in this workspace are written strictly in terms of
//! [`ExecSpace`], which forces the bulk-synchronous, kernel-per-phase
//! structure of the paper's implementation: no sequential shortcuts are
//! possible inside a kernel body.
//!
//! The crate also hosts the device-style atomic helpers
//! ([`atomic::AtomicF32Min`], [`atomic::AtomicU64Min`]…), the algorithm
//! instrumentation [`Counters`], and [`PhaseTimings`] used by the figure
//! harnesses.

pub mod atomic;
pub mod chaos;
pub mod counters;
pub mod device;
pub mod shared;
pub mod space;
pub mod timings;

pub use atomic::{AtomicF32Min, AtomicU64Min};
pub use chaos::ChaosSerial;
pub use counters::Counters;
pub use device::{DeviceModel, ModeledTime};
pub use shared::SyncUnsafeSlice;
pub use space::{ExecSpace, GpuSim, KernelStats, Serial, Threads};
pub use timings::PhaseTimings;
