//! A shared mutable slice for disjoint concurrent writes.
//!
//! The fully parallel bottom-up BVH construction (Apetrei 2014) and the
//! paper's `reduceLabels` kernel share a pattern: every thread walks from a
//! leaf toward the root, and an atomic per-node flag guarantees that each
//! array slot is written by exactly one thread before any other thread reads
//! it (the `fetch_add` on the flag provides the acquire/release edge). Rust
//! cannot express "disjoint by algorithm" in the type system, so this small
//! `UnsafeCell` wrapper carries the invariant instead.
//!
//! Safety contract for all unsafe methods: callers must guarantee that no
//! slot is written concurrently with any other access to the same slot, and
//! that cross-thread reads of a slot are ordered after the write by an
//! atomic synchronization (e.g. the construction flag).

use std::cell::UnsafeCell;

/// A `&mut [T]` that can be shared across threads for provably disjoint
/// element access.
pub struct SyncUnsafeSlice<'a, T> {
    cells: &'a [UnsafeCell<T>],
}

// SAFETY: access discipline is delegated to the callers of the unsafe
// methods; the wrapper itself adds no aliasing beyond what they promise.
unsafe impl<T: Send> Send for SyncUnsafeSlice<'_, T> {}
unsafe impl<T: Send> Sync for SyncUnsafeSlice<'_, T> {}

impl<'a, T> SyncUnsafeSlice<'a, T> {
    /// Wraps an exclusive slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `UnsafeCell<T>` has the same layout as `T`, and we hold the
        // unique borrow of `slice` for lifetime `'a`.
        let cells = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        Self { cells }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Writes `value` into slot `i`.
    ///
    /// # Safety
    /// No other thread may access slot `i` concurrently, and readers must be
    /// ordered after this write by an atomic synchronization.
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        *self.cells[i].get() = value;
    }

    /// Reads slot `i`.
    ///
    /// # Safety
    /// The slot must have been fully written, with the write ordered before
    /// this read by an atomic synchronization, and no concurrent writer.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> &T {
        &*self.cells[i].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn disjoint_parallel_writes_land() {
        let mut data = vec![0u64; 10_000];
        {
            let shared = SyncUnsafeSlice::new(&mut data);
            (0..10_000usize).into_par_iter().for_each(|i| {
                // Each index written exactly once: disjoint by construction.
                unsafe { shared.write(i, (i * 3) as u64) };
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == (i * 3) as u64));
    }

    #[test]
    fn flag_synchronised_handoff_reads_complete_values() {
        // Reproduces the BVH construction pattern: pairs of threads meet at
        // a flag; the second arriver reads what the first wrote.
        let n = 1000;
        let mut left = vec![0u64; n];
        let mut right = vec![0u64; n];
        let flags: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let sums: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        {
            let l = SyncUnsafeSlice::new(&mut left);
            let r = SyncUnsafeSlice::new(&mut right);
            (0..2 * n).into_par_iter().for_each(|t| {
                let slot = t / 2;
                if t % 2 == 0 {
                    unsafe { l.write(slot, slot as u64 + 1) };
                } else {
                    unsafe { r.write(slot, 2 * slot as u64 + 1) };
                }
                if flags[slot].fetch_add(1, Ordering::AcqRel) == 1 {
                    // Second arriver: both halves are visible now.
                    let sum = unsafe { *l.get(slot) + *r.get(slot) };
                    sums[slot].store(sum as u32, Ordering::Relaxed);
                }
            });
        }
        for (slot, sum) in sums.iter().enumerate() {
            assert_eq!(
                sum.load(Ordering::Relaxed) as u64,
                (slot as u64 + 1) + (2 * slot as u64 + 1)
            );
        }
    }
}
