//! Algorithm-level work counters.
//!
//! The device model (see [`crate::DeviceModel`]) cannot infer how much work a
//! traversal kernel did from the number of work items alone — two traversals
//! of the same tree can differ by orders of magnitude in visited nodes. The
//! algorithms therefore record their dominant operations here. The counters
//! are also what the ablation benches report (e.g. distance computations
//! saved by the paper's Optimization 1).

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe work counters.
///
/// All increments are `Relaxed`: the counts are statistics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct Counters {
    /// Point-to-point distance evaluations.
    pub distance_computations: AtomicU64,
    /// Internal BVH/kd nodes popped or examined during traversals.
    pub node_visits: AtomicU64,
    /// Escape-pointer follows of the stackless rope traversal (zero for
    /// stack-based walks). A rope hop is one dependent index load; the ratio
    /// `rope_hops / node_visits` measures how often the walker exits a
    /// subtree instead of descending.
    pub rope_hops: AtomicU64,
    /// Leaf nodes tested as nearest-neighbour candidates.
    pub leaf_visits: AtomicU64,
    /// Subtrees skipped by the same-component check (Optimization 1).
    pub subtrees_skipped: AtomicU64,
    /// Traversal queries executed (one per point per Borůvka iteration).
    pub queries: AtomicU64,
    /// Borůvka iterations executed.
    pub iterations: AtomicU64,
    /// Bytes moved by structured global-memory phases (sorts, label passes);
    /// an estimate fed to the device model's bandwidth term.
    pub bytes_accessed: AtomicU64,
    /// Per-thread priority-queue operations (k-NN heaps). Charged separately
    /// by the device model: on a GPU these serialize divergent lanes, which
    /// is the cost the paper blames for the k_pts growth in §4.5.
    pub heap_ops: AtomicU64,
}

impl Counters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn add_distance_computations(&self, n: u64) {
        self.distance_computations.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_node_visits(&self, n: u64) {
        self.node_visits.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_rope_hops(&self, n: u64) {
        self.rope_hops.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_leaf_visits(&self, n: u64) {
        self.leaf_visits.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_subtrees_skipped(&self, n: u64) {
        self.subtrees_skipped.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_queries(&self, n: u64) {
        self.queries.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_iterations(&self, n: u64) {
        self.iterations.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_bytes(&self, n: u64) {
        self.bytes_accessed.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_heap_ops(&self, n: u64) {
        self.heap_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Copies the current values into a plain snapshot.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            distance_computations: self.distance_computations.load(Ordering::Relaxed),
            node_visits: self.node_visits.load(Ordering::Relaxed),
            rope_hops: self.rope_hops.load(Ordering::Relaxed),
            leaf_visits: self.leaf_visits.load(Ordering::Relaxed),
            subtrees_skipped: self.subtrees_skipped.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            iterations: self.iterations.load(Ordering::Relaxed),
            bytes_accessed: self.bytes_accessed.load(Ordering::Relaxed),
            heap_ops: self.heap_ops.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        self.distance_computations.store(0, Ordering::Relaxed);
        self.node_visits.store(0, Ordering::Relaxed);
        self.rope_hops.store(0, Ordering::Relaxed);
        self.leaf_visits.store(0, Ordering::Relaxed);
        self.subtrees_skipped.store(0, Ordering::Relaxed);
        self.queries.store(0, Ordering::Relaxed);
        self.iterations.store(0, Ordering::Relaxed);
        self.bytes_accessed.store(0, Ordering::Relaxed);
        self.heap_ops.store(0, Ordering::Relaxed);
    }
}

/// A plain-old-data copy of [`Counters`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub distance_computations: u64,
    pub node_visits: u64,
    pub rope_hops: u64,
    pub leaf_visits: u64,
    pub subtrees_skipped: u64,
    pub queries: u64,
    pub iterations: u64,
    pub bytes_accessed: u64,
    pub heap_ops: u64,
}

impl CounterSnapshot {
    /// True when every counter is zero — e.g. the build-work report of a
    /// cache-served query that never ran a construction kernel.
    pub fn is_zero(&self) -> bool {
        *self == CounterSnapshot::default()
    }

    /// Every counter as a `(name, value)` pair, in declaration order.
    ///
    /// The destructuring is deliberately exhaustive (no `..`): adding a
    /// field to [`CounterSnapshot`] without extending this list is a
    /// compile error, so downstream consumers that iterate the names —
    /// the serving layer's metrics bridge, the CLI — can never silently
    /// miss a counter.
    pub fn named_fields(&self) -> [(&'static str, u64); 9] {
        let CounterSnapshot {
            distance_computations,
            node_visits,
            rope_hops,
            leaf_visits,
            subtrees_skipped,
            queries,
            iterations,
            bytes_accessed,
            heap_ops,
        } = *self;
        [
            ("distance_computations", distance_computations),
            ("node_visits", node_visits),
            ("rope_hops", rope_hops),
            ("leaf_visits", leaf_visits),
            ("subtrees_skipped", subtrees_skipped),
            ("queries", queries),
            ("iterations", iterations),
            ("bytes_accessed", bytes_accessed),
            ("heap_ops", heap_ops),
        ]
    }

    /// Difference between two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            distance_computations: self.distance_computations - earlier.distance_computations,
            node_visits: self.node_visits - earlier.node_visits,
            rope_hops: self.rope_hops - earlier.rope_hops,
            leaf_visits: self.leaf_visits - earlier.leaf_visits,
            subtrees_skipped: self.subtrees_skipped - earlier.subtrees_skipped,
            queries: self.queries - earlier.queries,
            iterations: self.iterations - earlier.iterations,
            bytes_accessed: self.bytes_accessed - earlier.bytes_accessed,
            heap_ops: self.heap_ops - earlier.heap_ops,
        }
    }
}

/// Field-wise accumulation: aggregating per-shard or per-query work reports
/// is just `a + b` (used by the sharded solver and the serving layer).
impl std::ops::Add for CounterSnapshot {
    type Output = CounterSnapshot;

    fn add(self, rhs: CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            distance_computations: self.distance_computations + rhs.distance_computations,
            node_visits: self.node_visits + rhs.node_visits,
            rope_hops: self.rope_hops + rhs.rope_hops,
            leaf_visits: self.leaf_visits + rhs.leaf_visits,
            subtrees_skipped: self.subtrees_skipped + rhs.subtrees_skipped,
            queries: self.queries + rhs.queries,
            iterations: self.iterations + rhs.iterations,
            bytes_accessed: self.bytes_accessed + rhs.bytes_accessed,
            heap_ops: self.heap_ops + rhs.heap_ops,
        }
    }
}

impl std::ops::AddAssign for CounterSnapshot {
    fn add_assign(&mut self, rhs: CounterSnapshot) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn counters_accumulate_across_threads() {
        let c = Counters::new();
        (0..1000u32).into_par_iter().for_each(|_| {
            c.add_distance_computations(2);
            c.add_node_visits(1);
        });
        let s = c.snapshot();
        assert_eq!(s.distance_computations, 2000);
        assert_eq!(s.node_visits, 1000);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = Counters::new();
        c.add_queries(5);
        c.add_bytes(100);
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn add_accumulates_field_wise_and_is_zero_detects_default() {
        let a = CounterSnapshot { queries: 3, node_visits: 10, ..Default::default() };
        let b = CounterSnapshot { queries: 2, iterations: 1, ..Default::default() };
        let mut c = a + b;
        assert_eq!(c.queries, 5);
        assert_eq!(c.node_visits, 10);
        assert_eq!(c.iterations, 1);
        assert!(!c.is_zero());
        c += CounterSnapshot::default();
        assert_eq!(c, a + b);
        assert!(CounterSnapshot::default().is_zero());
    }

    #[test]
    fn named_fields_cover_every_counter_in_order() {
        let snap = CounterSnapshot {
            distance_computations: 1,
            node_visits: 2,
            rope_hops: 3,
            leaf_visits: 4,
            subtrees_skipped: 5,
            queries: 6,
            iterations: 7,
            bytes_accessed: 8,
            heap_ops: 9,
        };
        let fields = snap.named_fields();
        assert_eq!(fields.len(), 9);
        assert_eq!(fields[0], ("distance_computations", 1));
        assert_eq!(fields[8], ("heap_ops", 9));
        let sum: u64 = fields.iter().map(|&(_, v)| v).sum();
        assert_eq!(sum, 45, "every field value appears exactly once");
    }

    #[test]
    fn since_computes_deltas() {
        let c = Counters::new();
        c.add_leaf_visits(10);
        let before = c.snapshot();
        c.add_leaf_visits(7);
        c.add_iterations(1);
        let after = c.snapshot();
        let delta = after.since(&before);
        assert_eq!(delta.leaf_visits, 7);
        assert_eq!(delta.iterations, 1);
        assert_eq!(delta.distance_computations, 0);
    }
}
