//! The execution-space abstraction and its three backends.

use std::sync::atomic::{AtomicU64, Ordering};

use rayon::prelude::*;

/// A bulk-synchronous execution resource, mirroring Kokkos execution spaces.
///
/// Every parallel pattern launches one *kernel*: a pure function of the work
/// index that may communicate with other indices only through atomics (as on
/// a GPU). All patterns are synchronous — they return only after every work
/// item completed, which models the `Kokkos::fence()` at the end of each
/// phase in the paper's Figure 3.
pub trait ExecSpace: Sync {
    /// Human-readable backend name (used by the figure harnesses).
    fn name(&self) -> &'static str;

    /// Executes `f(i)` for every `i in 0..n`.
    fn parallel_for<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync + Send;

    /// Map-reduce over `0..n`: combines `map(i)` with `combine`, starting
    /// from `identity`. `combine` must be associative and commutative, as on
    /// a device.
    fn parallel_reduce<T, M, C>(&self, n: usize, identity: T, map: M, combine: C) -> T
    where
        T: Send + Sync + Clone,
        M: Fn(usize) -> T + Sync + Send,
        C: Fn(T, T) -> T + Sync + Send;

    /// Exclusive prefix sum in place; returns the total.
    fn parallel_scan_exclusive(&self, data: &mut [usize]) -> usize;

    /// Sorts `(key, index)` pairs by key then index — the Morton-code sort
    /// of the BVH construction. The paper discusses this phase explicitly
    /// (§4.2: `Kokkos::BinSort` was replaced by `std::sort` on the host);
    /// the default is the serial standard sort and parallel backends
    /// override it.
    fn sort_pairs(&self, pairs: &mut [(u64, u32)]) {
        pairs.sort_unstable();
    }

    /// 128-bit variant of [`ExecSpace::sort_pairs`], used when the BVH is
    /// built with the high-resolution Z-curve (the paper's §4.1 proposal
    /// for extremely dense datasets).
    fn sort_pairs_u128(&self, pairs: &mut [(u128, u32)]) {
        pairs.sort_unstable();
    }

    /// Kernel statistics, recorded only by instrumented backends.
    fn kernel_stats(&self) -> Option<&KernelStats> {
        None
    }

    /// True for backends whose reported time should come from the device
    /// model rather than the wall clock.
    fn is_simulated_device(&self) -> bool {
        false
    }
}

/// Work recorded by an instrumented backend: one entry per launched kernel
/// pattern plus the total number of work items.
#[derive(Debug, Default)]
pub struct KernelStats {
    launches: AtomicU64,
    items: AtomicU64,
}

impl KernelStats {
    /// Creates empty stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one kernel launch over `items` work items.
    #[inline]
    pub fn record_launch(&self, items: usize) {
        self.launches.fetch_add(1, Ordering::Relaxed);
        self.items.fetch_add(items as u64, Ordering::Relaxed);
    }

    /// Number of kernels launched so far.
    pub fn launches(&self) -> u64 {
        self.launches.load(Ordering::Relaxed)
    }

    /// Total work items across all launches.
    pub fn items(&self) -> u64 {
        self.items.load(Ordering::Relaxed)
    }

    /// Resets both counters.
    pub fn reset(&self) {
        self.launches.store(0, Ordering::Relaxed);
        self.items.store(0, Ordering::Relaxed);
    }
}

/// Sequential backend: plain loops, no synchronization overhead.
#[derive(Clone, Copy, Debug, Default)]
pub struct Serial;

impl ExecSpace for Serial {
    fn name(&self) -> &'static str {
        "Serial"
    }

    #[inline]
    fn parallel_for<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync + Send,
    {
        for i in 0..n {
            f(i);
        }
    }

    #[inline]
    fn parallel_reduce<T, M, C>(&self, n: usize, identity: T, map: M, combine: C) -> T
    where
        T: Send + Sync + Clone,
        M: Fn(usize) -> T + Sync + Send,
        C: Fn(T, T) -> T + Sync + Send,
    {
        let mut acc = identity;
        for i in 0..n {
            acc = combine(acc, map(i));
        }
        acc
    }

    fn parallel_scan_exclusive(&self, data: &mut [usize]) -> usize {
        scan_exclusive_serial(data)
    }
}

/// Multithreaded backend on the global rayon pool (the paper's OpenMP
/// analogue).
#[derive(Clone, Copy, Debug, Default)]
pub struct Threads;

impl ExecSpace for Threads {
    fn name(&self) -> &'static str {
        "Threads"
    }

    #[inline]
    fn parallel_for<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync + Send,
    {
        (0..n).into_par_iter().for_each(f);
    }

    #[inline]
    fn parallel_reduce<T, M, C>(&self, n: usize, identity: T, map: M, combine: C) -> T
    where
        T: Send + Sync + Clone,
        M: Fn(usize) -> T + Sync + Send,
        C: Fn(T, T) -> T + Sync + Send,
    {
        (0..n).into_par_iter().map(map).reduce(|| identity.clone(), &combine)
    }

    fn parallel_scan_exclusive(&self, data: &mut [usize]) -> usize {
        scan_exclusive_parallel(data)
    }

    fn sort_pairs(&self, pairs: &mut [(u64, u32)]) {
        pairs.par_sort_unstable();
    }

    fn sort_pairs_u128(&self, pairs: &mut [(u128, u32)]) {
        pairs.par_sort_unstable();
    }
}

/// Simulated-device backend.
///
/// Kernels execute for real on the rayon pool (results are bit-identical to
/// [`Threads`] up to atomics races the algorithms already tolerate) while
/// [`KernelStats`] accumulates launches and work items. Together with the
/// algorithm-level [`crate::Counters`], a [`crate::DeviceModel`] converts the
/// recorded work into a modeled GPU time — the substitution for the paper's
/// A100/MI250X hardware.
#[derive(Debug, Default)]
pub struct GpuSim {
    stats: KernelStats,
}

impl GpuSim {
    /// Creates a fresh simulated device with zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Immutable access to the accumulated kernel statistics.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }
}

impl ExecSpace for GpuSim {
    fn name(&self) -> &'static str {
        "GpuSim"
    }

    #[inline]
    fn parallel_for<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync + Send,
    {
        self.stats.record_launch(n);
        (0..n).into_par_iter().for_each(f);
    }

    #[inline]
    fn parallel_reduce<T, M, C>(&self, n: usize, identity: T, map: M, combine: C) -> T
    where
        T: Send + Sync + Clone,
        M: Fn(usize) -> T + Sync + Send,
        C: Fn(T, T) -> T + Sync + Send,
    {
        self.stats.record_launch(n);
        (0..n).into_par_iter().map(map).reduce(|| identity.clone(), &combine)
    }

    fn parallel_scan_exclusive(&self, data: &mut [usize]) -> usize {
        self.stats.record_launch(data.len());
        scan_exclusive_parallel(data)
    }

    fn sort_pairs(&self, pairs: &mut [(u64, u32)]) {
        self.stats.record_launch(pairs.len());
        pairs.par_sort_unstable();
    }

    fn sort_pairs_u128(&self, pairs: &mut [(u128, u32)]) {
        self.stats.record_launch(pairs.len());
        pairs.par_sort_unstable();
    }

    fn kernel_stats(&self) -> Option<&KernelStats> {
        Some(&self.stats)
    }

    fn is_simulated_device(&self) -> bool {
        true
    }
}

/// Serial exclusive scan, shared with the chaos backend.
pub(crate) fn scan_exclusive_serial_for_chaos(data: &mut [usize]) -> usize {
    scan_exclusive_serial(data)
}

fn scan_exclusive_serial(data: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for x in data.iter_mut() {
        let v = *x;
        *x = acc;
        acc += v;
    }
    acc
}

/// Two-pass blocked exclusive scan (the standard device algorithm): block
/// sums, scan of block sums, then per-block local scans with offsets.
fn scan_exclusive_parallel(data: &mut [usize]) -> usize {
    const BLOCK: usize = 1 << 14;
    if data.len() <= BLOCK {
        return scan_exclusive_serial(data);
    }
    let mut block_sums: Vec<usize> =
        data.par_chunks(BLOCK).map(|chunk| chunk.iter().sum()).collect();
    let total = scan_exclusive_serial(&mut block_sums);
    data.par_chunks_mut(BLOCK).zip(block_sums.par_iter()).for_each(|(chunk, &offset)| {
        let mut acc = offset;
        for x in chunk.iter_mut() {
            let v = *x;
            *x = acc;
            acc += v;
        }
    });
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn check_space<S: ExecSpace>(space: &S) {
        // parallel_for touches every index exactly once
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        space.parallel_for(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));

        // reduce computes a sum
        let sum = space.parallel_reduce(n, 0usize, |i| i, |a, b| a + b);
        assert_eq!(sum, n * (n - 1) / 2);

        // reduce with min
        let min = space.parallel_reduce(n, usize::MAX, |i| (i + 7) % n, |a, b| a.min(b));
        assert_eq!(min, 0);

        // scan
        let mut data: Vec<usize> = (0..n).map(|i| i % 5).collect();
        let expect_total: usize = data.iter().sum();
        let mut expected = data.clone();
        let mut acc = 0;
        for x in expected.iter_mut() {
            let v = *x;
            *x = acc;
            acc += v;
        }
        let total = space.parallel_scan_exclusive(&mut data);
        assert_eq!(total, expect_total);
        assert_eq!(data, expected);

        // empty and unit inputs
        space.parallel_for(0, |_| panic!("must not run"));
        assert_eq!(space.parallel_reduce(0, 42usize, |_| 0, |a, b| a + b), 42);
        let mut empty: Vec<usize> = vec![];
        assert_eq!(space.parallel_scan_exclusive(&mut empty), 0);
        let mut one = vec![9usize];
        assert_eq!(space.parallel_scan_exclusive(&mut one), 9);
        assert_eq!(one, vec![0]);
    }

    #[test]
    fn serial_patterns_are_correct() {
        check_space(&Serial);
    }

    #[test]
    fn threads_patterns_are_correct() {
        check_space(&Threads);
    }

    #[test]
    fn gpusim_patterns_are_correct() {
        check_space(&GpuSim::new());
    }

    #[test]
    fn gpusim_records_launches_and_items() {
        let gpu = GpuSim::new();
        gpu.parallel_for(100, |_| {});
        gpu.parallel_reduce(50, 0usize, |_| 1usize, |a, b| a + b);
        let mut data = vec![1usize; 25];
        gpu.parallel_scan_exclusive(&mut data);
        let stats = gpu.kernel_stats().unwrap();
        assert_eq!(stats.launches(), 3);
        assert_eq!(stats.items(), 175);
        stats.reset();
        assert_eq!(stats.launches(), 0);
        assert_eq!(stats.items(), 0);
    }

    #[test]
    fn serial_and_threads_report_no_stats() {
        assert!(Serial.kernel_stats().is_none());
        assert!(Threads.kernel_stats().is_none());
        assert!(!Serial.is_simulated_device());
        assert!(GpuSim::new().is_simulated_device());
    }

    #[test]
    fn large_parallel_scan_crosses_block_boundaries() {
        let n = (1 << 14) * 3 + 17; // force multiple blocks + remainder
        let mut data: Vec<usize> = (0..n).map(|i| (i * 31) % 11).collect();
        let mut expected = data.clone();
        let expect_total = scan_exclusive_serial(&mut expected);
        let total = scan_exclusive_parallel(&mut data);
        assert_eq!(total, expect_total);
        assert_eq!(data, expected);
    }
}
