//! Analytic device-time model.
//!
//! We cannot measure an A100 or an MI250X in this environment, so the GPU
//! results of the paper are reproduced *in shape* by converting counted work
//! (kernel launches, work items, tree-node visits, distance computations,
//! bytes moved) into a modeled execution time with a small linear model:
//!
//! ```text
//! t = launches · t_launch                     (kernel launch latency)
//!   + compute_cycles / (lanes · clock · eff)  (throughput-limited compute)
//!   + bytes / bandwidth                       (bandwidth-limited phases)
//! ```
//!
//! The model intentionally captures the three effects the paper's GPU
//! evaluation hinges on:
//! - **launch-latency domination for small problems** — why RoadNetwork3D
//!   (400k points) underperforms on GPUs (§4.2) and why rates saturate only
//!   near 10⁶ points (§4.3, Fig. 7);
//! - **throughput proportional to counted algorithmic work** — so the
//!   paper's Optimizations 1 & 2, which cut node visits and distance
//!   computations, speed the modeled device up the way they sped up the real
//!   one;
//! - **a fixed divergence efficiency** for irregular traversal kernels,
//!   which is why GPUs reach a few percent of peak on this workload, not
//!   100%.
//!
//! Parameter sets are calibrated against the paper's headline numbers
//! (≈270 MFeatures/s on A100 and ≈0.67× that on one MI250X GCD for the
//! HACC-like dataset); see EXPERIMENTS.md for the calibration notes.

use crate::counters::CounterSnapshot;

/// Hardware parameters of a modeled accelerator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceModel {
    /// Display name used by the figure harnesses.
    pub name: &'static str,
    /// Total scalar FP32 lanes (CUDA cores / stream processors).
    pub lanes: f64,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Fraction of peak throughput achievable by divergent traversal
    /// kernels (branching, uncoalesced reads, per-thread stacks).
    pub traversal_efficiency: f64,
    /// Fixed cost of one kernel launch, in seconds.
    pub launch_overhead_s: f64,
    /// Usable global-memory bandwidth in bytes/second.
    pub mem_bandwidth: f64,
    /// Modeled cycles per BVH node examined.
    pub cycles_per_node_visit: f64,
    /// Modeled cycles per rope hop of the stackless traversal — one
    /// dependent index load, much cheaper than a full node examination
    /// (no bounding-box arithmetic, no stack traffic).
    pub cycles_per_rope_hop: f64,
    /// Modeled cycles per point-to-point distance computation.
    pub cycles_per_distance: f64,
    /// Modeled cycles of fixed per-work-item overhead (load query point,
    /// write result).
    pub cycles_per_item: f64,
    /// Modeled cycles per per-thread priority-queue operation. Much more
    /// expensive than a plain distance: heap maintenance serializes
    /// divergent lanes (the §4.5 k_pts effect).
    pub cycles_per_heap_op: f64,
}

impl DeviceModel {
    /// An NVIDIA A100-like device (SXM4: 108 SMs × 64 FP32 lanes, 1.41 GHz,
    /// ~1.5 TB/s HBM2e).
    pub fn a100_like() -> Self {
        Self {
            name: "GpuSim(A100-like)",
            lanes: 6912.0,
            clock_ghz: 1.41,
            traversal_efficiency: 0.08,
            launch_overhead_s: 4.0e-6,
            mem_bandwidth: 1.3e12,
            cycles_per_node_visit: 14.0,
            cycles_per_rope_hop: 4.0,
            cycles_per_distance: 10.0,
            cycles_per_item: 24.0,
            cycles_per_heap_op: 160.0,
        }
    }

    /// A single GCD of an AMD MI250X-like device (110 CUs × 64 lanes,
    /// 1.7 GHz, ~1.6 TB/s per GCD). The lower traversal efficiency reflects
    /// the paper's observation that its design was tuned on the A100
    /// (§4.2, "performance bias") and the MI250X reached ~0.6–0.7× of it.
    pub fn mi250x_gcd_like() -> Self {
        Self {
            name: "GpuSim(MI250X-GCD-like)",
            lanes: 7040.0,
            clock_ghz: 1.70,
            traversal_efficiency: 0.045,
            launch_overhead_s: 6.0e-6,
            mem_bandwidth: 1.1e12,
            cycles_per_node_visit: 14.0,
            cycles_per_rope_hop: 4.0,
            cycles_per_distance: 10.0,
            cycles_per_item: 24.0,
            cycles_per_heap_op: 200.0,
        }
    }

    /// Effective compute throughput in cycles/second.
    #[inline]
    pub fn effective_cycles_per_second(&self) -> f64 {
        self.lanes * self.clock_ghz * 1e9 * self.traversal_efficiency
    }

    /// Converts counted work into a modeled execution time.
    ///
    /// `launches`/`items` come from [`crate::KernelStats`]; `work` from the
    /// algorithm's [`crate::Counters`] snapshot delta over the measured
    /// region.
    pub fn time(&self, launches: u64, items: u64, work: &CounterSnapshot) -> ModeledTime {
        let launch_s = launches as f64 * self.launch_overhead_s;
        let cycles = work.node_visits as f64 * self.cycles_per_node_visit
            + work.rope_hops as f64 * self.cycles_per_rope_hop
            + work.distance_computations as f64 * self.cycles_per_distance
            + items as f64 * self.cycles_per_item
            + work.heap_ops as f64 * self.cycles_per_heap_op;
        let compute_s = cycles / self.effective_cycles_per_second();
        let memory_s = work.bytes_accessed as f64 / self.mem_bandwidth;
        ModeledTime { launch_s, compute_s, memory_s }
    }
}

/// Breakdown of a modeled device time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ModeledTime {
    /// Time attributed to kernel-launch latency.
    pub launch_s: f64,
    /// Time attributed to throughput-limited compute.
    pub compute_s: f64,
    /// Time attributed to bandwidth-limited memory movement.
    pub memory_s: f64,
}

impl ModeledTime {
    /// Total modeled seconds. Launch latency serializes with the rest;
    /// compute and memory are taken as additive (a pessimistic but simple
    /// non-overlap assumption).
    #[inline]
    pub fn total_s(&self) -> f64 {
        self.launch_s + self.compute_s + self.memory_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(node_visits: u64, distances: u64, bytes: u64) -> CounterSnapshot {
        CounterSnapshot {
            node_visits,
            distance_computations: distances,
            bytes_accessed: bytes,
            ..Default::default()
        }
    }

    #[test]
    fn zero_work_costs_zero() {
        let m = DeviceModel::a100_like();
        assert_eq!(m.time(0, 0, &CounterSnapshot::default()).total_s(), 0.0);
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let m = DeviceModel::a100_like();
        // 100 launches over trivially small work: launch term dominates.
        let t = m.time(100, 1000, &work(1000, 1000, 0));
        assert!(t.launch_s > t.compute_s * 10.0);
    }

    #[test]
    fn compute_scales_linearly_with_work() {
        let m = DeviceModel::a100_like();
        let t1 = m.time(1, 0, &work(1_000_000, 0, 0));
        let t2 = m.time(1, 0, &work(2_000_000, 0, 0));
        let ratio = t2.compute_s / t1.compute_s;
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mi250x_gcd_is_slower_than_a100_on_same_work() {
        // The paper's qualitative result: single GCD of MI250X ≈ 0.6-0.7x A100.
        let a = DeviceModel::a100_like();
        let m = DeviceModel::mi250x_gcd_like();
        let w = work(10_000_000, 10_000_000, 100_000_000);
        let ta = a.time(50, 1_000_000, &w).total_s();
        let tm = m.time(50, 1_000_000, &w).total_s();
        let ratio = ta / tm;
        assert!(ratio > 0.4 && ratio < 0.95, "A100/MI250X time ratio {ratio}");
    }

    #[test]
    fn memory_term_uses_bandwidth() {
        let m = DeviceModel::a100_like();
        let t = m.time(0, 0, &work(0, 0, 1_300_000_000_000));
        assert!((t.memory_s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn saturation_shape_small_problems_are_inefficient() {
        // Rate (items/s) must grow with problem size, then flatten — the
        // Fig. 7 shape. Model per-point work as ~60 node visits each.
        let m = DeviceModel::a100_like();
        let rate = |n: u64| {
            // ~12 Borůvka iterations => ~12 kernels regardless of n.
            let t = m.time(36, n, &work(n * 60, n * 40, n * 64)).total_s();
            n as f64 / t
        };
        let r_small = rate(1_000);
        let r_mid = rate(100_000);
        let r_large = rate(10_000_000);
        let r_huge = rate(100_000_000);
        assert!(r_mid > r_small * 10.0, "rate must climb steeply at small n");
        assert!(r_large > r_mid, "still climbing toward saturation");
        let saturation = r_huge / r_large;
        assert!(saturation < 1.5, "rate must flatten once saturated: {saturation}");
    }
}
