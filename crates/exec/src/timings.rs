//! Phase timing collection for the figure harnesses.
//!
//! The paper reports per-phase breakdowns: `T_tree`/`T_mst` for the
//! single-tree algorithm (Fig. 8b), `T_tree`/`T_wspd`/`T_mst`/`T_mark` for
//! MemoGFK (Fig. 8a) and `T_core`/`T_emst` for the mutual-reachability runs
//! (Fig. 9). Algorithms record named phases here; harnesses read them back.

use std::time::{Duration, Instant};

/// An ordered list of `(phase name, seconds)` records.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimings {
    records: Vec<(&'static str, f64)>,
}

impl PhaseTimings {
    /// Creates an empty record set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `seconds` under `name`, accumulating if the phase was already
    /// recorded (phases that repeat per Borůvka iteration sum up).
    pub fn record(&mut self, name: &'static str, seconds: f64) {
        if let Some(entry) = self.records.iter_mut().find(|(n, _)| *n == name) {
            entry.1 += seconds;
        } else {
            self.records.push((name, seconds));
        }
    }

    /// Times `f` and records its duration under `name`; returns `f`'s value.
    pub fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed().as_secs_f64());
        out
    }

    /// Accumulates every record of `other` into `self` (phase-wise sums,
    /// `other`'s new phases appended in order) — how a caller stitches the
    /// timings of separately-run phases (e.g. a cached build + a fresh
    /// merge) into one report.
    pub fn absorb(&mut self, other: &PhaseTimings) {
        for (name, secs) in other.iter() {
            self.record(name, secs);
        }
    }

    /// Seconds recorded for `name` (0 when absent).
    pub fn get(&self, name: &str) -> f64 {
        self.records.iter().find(|(n, _)| *n == name).map_or(0.0, |(_, s)| *s)
    }

    /// Sum of all recorded phases.
    pub fn total(&self) -> f64 {
        self.records.iter().map(|(_, s)| s).sum()
    }

    /// Iterates over `(name, seconds)` in recording order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.records.iter().copied()
    }

    /// Drops all records.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

/// Convenience wall-clock timer returning `(value, elapsed)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_same_phase() {
        let mut t = PhaseTimings::new();
        t.record("mst", 1.0);
        t.record("tree", 0.5);
        t.record("mst", 2.0);
        assert_eq!(t.get("mst"), 3.0);
        assert_eq!(t.get("tree"), 0.5);
        assert_eq!(t.get("absent"), 0.0);
        assert_eq!(t.total(), 3.5);
    }

    #[test]
    fn time_measures_and_passes_value_through() {
        let mut t = PhaseTimings::new();
        let v = t.time("work", || {
            std::thread::sleep(Duration::from_millis(10));
            42
        });
        assert_eq!(v, 42);
        assert!(t.get("work") >= 0.009);
    }

    #[test]
    fn iter_preserves_recording_order() {
        let mut t = PhaseTimings::new();
        t.record("b", 1.0);
        t.record("a", 2.0);
        let names: Vec<_> = t.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["b", "a"]);
    }

    #[test]
    fn timed_returns_value_and_duration() {
        let (v, d) = timed(|| 7);
        assert_eq!(v, 7);
        assert!(d.as_secs_f64() >= 0.0);
    }
}
