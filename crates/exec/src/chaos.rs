//! A fault-model execution space for tests.
//!
//! On a GPU, work items of one kernel run in an arbitrary, non-deterministic
//! order. A kernel that accidentally depends on iteration order (e.g. a
//! non-commutative atomic update, a read-after-write between work items)
//! will pass on [`crate::Serial`] and fail rarely and unreproducibly on real
//! devices. [`ChaosSerial`] makes that failure mode deterministic and cheap:
//! it executes every `parallel_for` sequentially but in a seeded pseudo-
//! random permutation of the index space, and `parallel_reduce` combines in
//! shuffled order too. Any order dependence becomes a reproducible test
//! failure.

use crate::space::{scan_exclusive_serial_for_chaos, ExecSpace};

/// Sequential backend that shuffles iteration order (see module docs).
#[derive(Clone, Copy, Debug)]
pub struct ChaosSerial {
    seed: u64,
}

impl ChaosSerial {
    /// Creates the backend with an order-determining seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

/// Generates the visit order for `n` items: a permutation produced by a
/// multiplicative-offset walk with a stride coprime to `n`.
fn shuffled_indices(n: usize, seed: u64) -> impl Iterator<Item = usize> {
    // Pick an odd stride near a golden-ratio fraction of n, then make it
    // coprime with n by trial increments (terminates quickly: consecutive
    // odd numbers share no factor with n forever only if n == 0).
    let mut stride =
        ((n as u64).wrapping_mul(0x9E37_79B9).wrapping_add(seed) % n.max(1) as u64) as usize | 1;
    while n > 0 && gcd(stride, n) != 1 {
        stride += 2;
    }
    let offset = (seed as usize).wrapping_mul(31) % n.max(1);
    (0..n).map(move |i| (offset + i * stride) % n)
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl ExecSpace for ChaosSerial {
    fn name(&self) -> &'static str {
        "ChaosSerial"
    }

    fn parallel_for<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync + Send,
    {
        for i in shuffled_indices(n, self.seed) {
            f(i);
        }
    }

    fn parallel_reduce<T, M, C>(&self, n: usize, identity: T, map: M, combine: C) -> T
    where
        T: Send + Sync + Clone,
        M: Fn(usize) -> T + Sync + Send,
        C: Fn(T, T) -> T + Sync + Send,
    {
        let mut acc = identity;
        for i in shuffled_indices(n, self.seed.wrapping_add(1)) {
            acc = combine(acc, map(i));
        }
        acc
    }

    fn parallel_scan_exclusive(&self, data: &mut [usize]) -> usize {
        // A scan is inherently ordered; run it straight.
        scan_exclusive_serial_for_chaos(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn shuffled_indices_is_a_permutation() {
        for n in [1usize, 2, 7, 100, 1024, 999] {
            for seed in 0..5 {
                let mut seen = vec![false; n];
                for i in shuffled_indices(n, seed) {
                    assert!(!seen[i], "n={n} seed={seed} repeated {i}");
                    seen[i] = true;
                }
                assert!(seen.iter().all(|&s| s));
            }
        }
    }

    #[test]
    fn different_seeds_produce_different_orders() {
        let a: Vec<usize> = shuffled_indices(100, 1).collect();
        let b: Vec<usize> = shuffled_indices(100, 2).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn patterns_compute_correct_results_despite_shuffling() {
        let space = ChaosSerial::new(42);
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        space.parallel_for(500, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        let sum = space.parallel_reduce(1000, 0usize, |i| i, |a, b| a + b);
        assert_eq!(sum, 1000 * 999 / 2);
        let mut data = vec![2usize; 10];
        assert_eq!(space.parallel_scan_exclusive(&mut data), 20);
        assert_eq!(data[9], 18);
    }
}
