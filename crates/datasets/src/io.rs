//! Point-cloud I/O.
//!
//! The paper's datasets arrive as CSV-ish text (NGSIM trajectory exports,
//! GeoLife PLT files) or raw particle dumps (HACC). This module reads and
//! writes the two formats a user needs to run this library on their own
//! data:
//!
//! - **CSV** — one point per line, coordinates separated by commas,
//!   optional header line (skipped when non-numeric), extra columns
//!   ignored;
//! - **XYZ** — whitespace-separated, the classic particle-dump layout.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use emst_geometry::Point;

/// Writes points as CSV (no header) with full `f32` round-trip precision.
pub fn save_csv<const D: usize>(path: &Path, points: &[Point<D>]) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    for p in points {
        for d in 0..D {
            if d > 0 {
                out.write_all(b",")?;
            }
            // `{:?}` prints the shortest representation that round-trips.
            write!(out, "{:?}", p[d])?;
        }
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// Reads CSV points: the first `D` numeric columns of every line; a leading
/// non-numeric header line is skipped; blank lines are ignored.
pub fn load_csv<const D: usize>(path: &Path) -> io::Result<Vec<Point<D>>> {
    load_delimited(path, b',')
}

/// Writes points in XYZ layout (space-separated).
pub fn save_xyz<const D: usize>(path: &Path, points: &[Point<D>]) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    for p in points {
        for d in 0..D {
            if d > 0 {
                out.write_all(b" ")?;
            }
            write!(out, "{:?}", p[d])?;
        }
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// Reads XYZ points (whitespace-separated).
pub fn load_xyz<const D: usize>(path: &Path) -> io::Result<Vec<Point<D>>> {
    load_delimited(path, b' ')
}

fn parse_line<const D: usize>(line: &str, delim: u8) -> Option<Point<D>> {
    let mut coords = [0.0f32; D];
    let mut fields = if delim == b',' {
        FieldIter::Comma(line.split(','))
    } else {
        FieldIter::Whitespace(line.split_whitespace())
    };
    for c in coords.iter_mut() {
        let field = fields.next()?;
        *c = field.trim().parse().ok()?;
    }
    Some(Point::new(coords))
}

enum FieldIter<'a> {
    Comma(std::str::Split<'a, char>),
    Whitespace(std::str::SplitWhitespace<'a>),
}

impl<'a> Iterator for FieldIter<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        match self {
            FieldIter::Comma(i) => i.next(),
            FieldIter::Whitespace(i) => i.next(),
        }
    }
}

/// Streams CSV points in fixed-size chunks without ever holding the whole
/// file in memory — the reader behind the out-of-core sharded EMST path.
///
/// Semantics match [`load_csv`] exactly (leading non-numeric header skipped,
/// blank lines ignored, extra columns ignored, malformed data lines are
/// errors). `f` is called with the index of the chunk's first point and the
/// chunk's points (every chunk except the last has exactly `chunk_points`
/// points); an error returned by `f` aborts the read. Returns the total
/// number of points streamed.
pub fn read_points_chunked<const D: usize>(
    path: &Path,
    chunk_points: usize,
    mut f: impl FnMut(usize, &[Point<D>]) -> io::Result<()>,
) -> io::Result<usize> {
    assert!(chunk_points > 0, "chunk size must be positive");
    let mut reader = BufReader::new(File::open(path)?);
    let mut line_buf = String::new();
    let mut chunk: Vec<Point<D>> = Vec::with_capacity(chunk_points);
    let mut line_no = 0usize;
    let mut total = 0usize;
    loop {
        line_buf.clear();
        if reader.read_line(&mut line_buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = line_buf.trim();
        if line.is_empty() {
            continue;
        }
        match parse_line::<D>(line, b',') {
            Some(p) => {
                chunk.push(p);
                if chunk.len() == chunk_points {
                    f(total, &chunk)?;
                    total += chunk.len();
                    chunk.clear();
                }
            }
            None if line_no == 1 => {} // header
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{line_no}: expected {D} numeric fields", path.display()),
                ));
            }
        }
    }
    if !chunk.is_empty() {
        f(total, &chunk)?;
        total += chunk.len();
    }
    Ok(total)
}

// ---------------------------------------------------------------------------
// Checksummed binary blobs
// ---------------------------------------------------------------------------
//
// The serving layer's durable spill format and the shard-artifact blob are
// both built from the same primitive: a magic header followed by tagged
// sections, each carrying its own FNV-1a checksum so corruption is localized
// (a flipped bit in the artifact section must not poison the verified point
// bytes next to it). These helpers are deliberately storage-agnostic — they
// build and parse in-memory byte vectors; durability policy (retry, backoff,
// relocation, fault injection) lives with the caller.

/// FNV-1a 64-bit over a byte slice — the same hash family the serving layer
/// uses for content digests; stable across platforms and fast enough that
/// checksumming never shows up next to the file I/O it guards.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Little-endian primitive encoder for blob payloads.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian primitive decoder; every read is length-checked and returns
/// a typed [`io::Error`] (`InvalidData`) on truncation, never a panic.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn invalid(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

impl<'a> ByteReader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    pub fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| invalid("blob length overflow"))?;
        if end > self.bytes.len() {
            return Err(invalid("blob truncated"));
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f32(&mut self) -> io::Result<f32> {
        Ok(f32::from_bits(u32::from_le_bytes(self.take(4)?.try_into().unwrap())))
    }

    /// Reads a u64 length field and sanity-caps it against `cap` so a lying
    /// header cannot drive a huge allocation.
    pub fn len_capped(&mut self, cap: usize, what: &str) -> io::Result<usize> {
        let v = self.u64()?;
        if v > cap as u64 {
            return Err(invalid(what));
        }
        Ok(v as usize)
    }

    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub fn done(&self) -> io::Result<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(invalid("blob has trailing bytes"))
        }
    }
}

/// Builds a blob: magic, then tagged sections each framed as
/// `tag[4] | len u64 | payload | fnv1a_64(payload) u64`.
pub struct BlobWriter {
    buf: Vec<u8>,
}

impl BlobWriter {
    pub fn new(magic: &[u8; 8]) -> Self {
        Self { buf: magic.to_vec() }
    }

    pub fn section(&mut self, tag: &[u8; 4], payload: &[u8]) {
        self.buf.extend_from_slice(tag);
        self.buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.buf.extend_from_slice(&fnv1a_64(payload).to_le_bytes());
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential reader over a [`BlobWriter`]-framed blob. Section order is part
/// of the format: callers ask for the tag they expect next and get a typed
/// error on mismatch, truncation, or checksum failure.
pub struct BlobReader<'a> {
    inner: ByteReader<'a>,
}

impl<'a> BlobReader<'a> {
    /// Opens the blob, verifying its magic.
    pub fn open(bytes: &'a [u8], magic: &[u8; 8]) -> io::Result<Self> {
        let mut inner = ByteReader::new(bytes);
        if inner.take(8)? != magic {
            return Err(invalid("blob magic mismatch"));
        }
        Ok(Self { inner })
    }

    /// Reads the next section, requiring tag `tag`; verifies the payload
    /// checksum before handing the bytes back.
    pub fn section(&mut self, tag: &[u8; 4]) -> io::Result<&'a [u8]> {
        let got = self.inner.take(4)?;
        if got != tag {
            return Err(invalid("blob section tag mismatch"));
        }
        let len = self.inner.len_capped(self.inner.remaining(), "blob section length")?;
        let payload = self.inner.take(len)?;
        let want = self.inner.u64()?;
        if fnv1a_64(payload) != want {
            return Err(invalid("blob section checksum mismatch"));
        }
        Ok(payload)
    }

    /// Like [`BlobReader::section`] but returns `Ok(None)` when the blob ends
    /// before another section starts — for trailing optional sections.
    pub fn optional_section(&mut self, tag: &[u8; 4]) -> io::Result<Option<&'a [u8]>> {
        if self.inner.remaining() == 0 {
            return Ok(None);
        }
        self.section(tag).map(Some)
    }

    pub fn done(&self) -> io::Result<()> {
        self.inner.done()
    }
}

fn load_delimited<const D: usize>(path: &Path, delim: u8) -> io::Result<Vec<Point<D>>> {
    parse_delimited(&std::fs::read(path)?, delim, &path.display().to_string())
}

/// Parses CSV point bytes — the in-memory core of [`load_csv`], exposed so
/// callers that route the file read itself through fault injection (the
/// serving stack's ingest path) can parse exactly the bytes they read.
/// `origin` names the source in error messages.
pub fn parse_csv<const D: usize>(bytes: &[u8], origin: &str) -> io::Result<Vec<Point<D>>> {
    parse_delimited(bytes, b',', origin)
}

/// Parses XYZ point bytes (whitespace-separated); see [`parse_csv`].
pub fn parse_xyz<const D: usize>(bytes: &[u8], origin: &str) -> io::Result<Vec<Point<D>>> {
    parse_delimited(bytes, b' ', origin)
}

fn parse_delimited<const D: usize>(
    bytes: &[u8],
    delim: u8,
    origin: &str,
) -> io::Result<Vec<Point<D>>> {
    let text = String::from_utf8_lossy(bytes);
    let mut out = vec![];
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        match parse_line::<D>(line, delim) {
            Some(p) => out.push(p),
            None if line_no == 1 => {} // header
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{origin}:{line_no}: expected {D} numeric fields"),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::uniform;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("emst-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn csv_round_trips_exactly() {
        let pts = uniform::<3>(500, 7);
        let path = tmp("roundtrip.csv");
        save_csv(&path, &pts).unwrap();
        let back: Vec<Point<3>> = load_csv(&path).unwrap();
        assert_eq!(pts, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn xyz_round_trips_exactly() {
        let pts = uniform::<2>(300, 9);
        let path = tmp("roundtrip.xyz");
        save_xyz(&path, &pts).unwrap();
        let back: Vec<Point<2>> = load_xyz(&path).unwrap();
        assert_eq!(pts, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_line_is_skipped_and_extra_columns_ignored() {
        let path = tmp("header.csv");
        std::fs::write(&path, "x,y,label\n1.0,2.0,7\n3.5,-4.25,9\n").unwrap();
        let pts: Vec<Point<2>> = load_csv(&path).unwrap();
        assert_eq!(pts, vec![Point::new([1.0, 2.0]), Point::new([3.5, -4.25])]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_data_line_is_an_error() {
        let path = tmp("bad.csv");
        std::fs::write(&path, "1.0,2.0\nnot,numbers\n").unwrap();
        let err = load_csv::<2>(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn blank_lines_and_empty_files_work() {
        let path = tmp("blank.csv");
        std::fs::write(&path, "\n1.0,2.0\n\n\n").unwrap();
        let pts: Vec<Point<2>> = load_csv(&path).unwrap();
        assert_eq!(pts.len(), 1);
        std::fs::write(&path, "").unwrap();
        let pts: Vec<Point<2>> = load_csv(&path).unwrap();
        assert!(pts.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(load_csv::<2>(Path::new("/definitely/not/here.csv")).is_err());
    }

    #[test]
    fn chunked_reader_round_trips_against_whole_file_reader() {
        let pts = uniform::<3>(1003, 11); // deliberately not a chunk multiple
        let path = tmp("chunked.csv");
        save_csv(&path, &pts).unwrap();
        let whole: Vec<Point<3>> = load_csv(&path).unwrap();
        for chunk_points in [1usize, 7, 256, 1003, 5000] {
            let mut streamed: Vec<Point<3>> = vec![];
            let mut starts: Vec<usize> = vec![];
            let total = read_points_chunked::<3>(&path, chunk_points, |start, chunk| {
                assert_eq!(start, streamed.len());
                starts.push(start);
                streamed.extend_from_slice(chunk);
                Ok(())
            })
            .unwrap();
            assert_eq!(total, whole.len(), "chunk={chunk_points}");
            assert_eq!(streamed, whole, "chunk={chunk_points}");
            // Every chunk except the last is exactly chunk_points long.
            for w in starts.windows(2) {
                assert_eq!(w[1] - w[0], chunk_points);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_reader_skips_headers_and_rejects_malformed_lines() {
        let path = tmp("chunked-header.csv");
        std::fs::write(&path, "x,y,label\n1.0,2.0,7\n\n3.5,-4.25,9\n").unwrap();
        let mut got: Vec<Point<2>> = vec![];
        let total = read_points_chunked::<2>(&path, 64, |_, c| {
            got.extend_from_slice(c);
            Ok(())
        })
        .unwrap();
        assert_eq!(total, 2);
        assert_eq!(got, vec![Point::new([1.0, 2.0]), Point::new([3.5, -4.25])]);

        std::fs::write(&path, "1.0,2.0\nnot,numbers\n").unwrap();
        let err = read_points_chunked::<2>(&path, 64, |_, _| Ok(())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn blob_round_trips_and_detects_every_single_byte_flip() {
        const MAGIC: &[u8; 8] = b"EMSTTST1";
        let mut w = ByteWriter::new();
        w.u32(7);
        w.u64(u64::MAX);
        w.f32(-0.0);
        let payload_a = w.into_vec();
        let payload_b = vec![0xAB; 33];
        let mut blob = BlobWriter::new(MAGIC);
        blob.section(b"AAAA", &payload_a);
        blob.section(b"BBBB", &payload_b);
        let bytes = blob.finish();

        let mut r = BlobReader::open(&bytes, MAGIC).unwrap();
        let a = r.section(b"AAAA").unwrap();
        let mut br = ByteReader::new(a);
        assert_eq!(br.u32().unwrap(), 7);
        assert_eq!(br.u64().unwrap(), u64::MAX);
        assert_eq!(br.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        br.done().unwrap();
        assert_eq!(r.section(b"BBBB").unwrap(), &payload_b[..]);
        r.done().unwrap();

        // Flip every byte in turn: each corruption must surface as an error
        // somewhere in the read sequence — never as silently wrong payloads.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            let result = (|| -> io::Result<()> {
                let mut r = BlobReader::open(&bad, MAGIC)?;
                let a2 = r.section(b"AAAA")?;
                let b2 = r.section(b"BBBB")?;
                r.done()?;
                if a2 != payload_a || b2 != payload_b {
                    return Err(invalid("wrong payload escaped the checksum"));
                }
                Ok(())
            })();
            assert!(result.is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn blob_truncation_wrong_tag_and_optional_sections() {
        const MAGIC: &[u8; 8] = b"EMSTTST2";
        let mut blob = BlobWriter::new(MAGIC);
        blob.section(b"ONLY", b"hello");
        let bytes = blob.finish();
        for cut in 0..bytes.len() {
            let mut r = match BlobReader::open(&bytes[..cut], MAGIC) {
                Ok(r) => r,
                Err(_) => continue,
            };
            assert!(r.section(b"ONLY").is_err(), "cut={cut}");
        }
        let mut r = BlobReader::open(&bytes, MAGIC).unwrap();
        assert!(r.section(b"ELSE").is_err());
        // Optional trailing section: absent → None, present → Some.
        let mut r = BlobReader::open(&bytes, MAGIC).unwrap();
        r.section(b"ONLY").unwrap();
        assert_eq!(r.optional_section(b"OPTL").unwrap(), None);
        let mut blob = BlobWriter::new(MAGIC);
        blob.section(b"ONLY", b"hello");
        blob.section(b"OPTL", b"extra");
        let bytes = blob.finish();
        let mut r = BlobReader::open(&bytes, MAGIC).unwrap();
        r.section(b"ONLY").unwrap();
        assert_eq!(r.optional_section(b"OPTL").unwrap(), Some(&b"extra"[..]));
        r.done().unwrap();
    }

    #[test]
    fn chunked_reader_propagates_callback_errors() {
        let path = tmp("chunked-abort.csv");
        let pts = uniform::<2>(100, 3);
        save_csv(&path, &pts).unwrap();
        let err = read_points_chunked::<2>(&path, 10, |start, _| {
            if start >= 20 {
                Err(io::Error::other("stop"))
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "stop");
        std::fs::remove_file(&path).ok();
    }
}
