//! Point-cloud I/O.
//!
//! The paper's datasets arrive as CSV-ish text (NGSIM trajectory exports,
//! GeoLife PLT files) or raw particle dumps (HACC). This module reads and
//! writes the two formats a user needs to run this library on their own
//! data:
//!
//! - **CSV** — one point per line, coordinates separated by commas,
//!   optional header line (skipped when non-numeric), extra columns
//!   ignored;
//! - **XYZ** — whitespace-separated, the classic particle-dump layout.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use emst_geometry::Point;

/// Writes points as CSV (no header) with full `f32` round-trip precision.
pub fn save_csv<const D: usize>(path: &Path, points: &[Point<D>]) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    for p in points {
        for d in 0..D {
            if d > 0 {
                out.write_all(b",")?;
            }
            // `{:?}` prints the shortest representation that round-trips.
            write!(out, "{:?}", p[d])?;
        }
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// Reads CSV points: the first `D` numeric columns of every line; a leading
/// non-numeric header line is skipped; blank lines are ignored.
pub fn load_csv<const D: usize>(path: &Path) -> io::Result<Vec<Point<D>>> {
    load_delimited(path, b',')
}

/// Writes points in XYZ layout (space-separated).
pub fn save_xyz<const D: usize>(path: &Path, points: &[Point<D>]) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    for p in points {
        for d in 0..D {
            if d > 0 {
                out.write_all(b" ")?;
            }
            write!(out, "{:?}", p[d])?;
        }
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// Reads XYZ points (whitespace-separated).
pub fn load_xyz<const D: usize>(path: &Path) -> io::Result<Vec<Point<D>>> {
    load_delimited(path, b' ')
}

fn parse_line<const D: usize>(line: &str, delim: u8) -> Option<Point<D>> {
    let mut coords = [0.0f32; D];
    let mut fields = if delim == b',' {
        FieldIter::Comma(line.split(','))
    } else {
        FieldIter::Whitespace(line.split_whitespace())
    };
    for c in coords.iter_mut() {
        let field = fields.next()?;
        *c = field.trim().parse().ok()?;
    }
    Some(Point::new(coords))
}

enum FieldIter<'a> {
    Comma(std::str::Split<'a, char>),
    Whitespace(std::str::SplitWhitespace<'a>),
}

impl<'a> Iterator for FieldIter<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        match self {
            FieldIter::Comma(i) => i.next(),
            FieldIter::Whitespace(i) => i.next(),
        }
    }
}

fn load_delimited<const D: usize>(path: &Path, delim: u8) -> io::Result<Vec<Point<D>>> {
    let reader = BufReader::new(File::open(path)?);
    let mut out = vec![];
    let mut line_buf = String::new();
    let mut reader = reader;
    let mut line_no = 0usize;
    loop {
        line_buf.clear();
        if reader.read_line(&mut line_buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = line_buf.trim();
        if line.is_empty() {
            continue;
        }
        match parse_line::<D>(line, delim) {
            Some(p) => out.push(p),
            None if line_no == 1 => {} // header
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{line_no}: expected {D} numeric fields", path.display()),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::uniform;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("emst-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn csv_round_trips_exactly() {
        let pts = uniform::<3>(500, 7);
        let path = tmp("roundtrip.csv");
        save_csv(&path, &pts).unwrap();
        let back: Vec<Point<3>> = load_csv(&path).unwrap();
        assert_eq!(pts, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn xyz_round_trips_exactly() {
        let pts = uniform::<2>(300, 9);
        let path = tmp("roundtrip.xyz");
        save_xyz(&path, &pts).unwrap();
        let back: Vec<Point<2>> = load_xyz(&path).unwrap();
        assert_eq!(pts, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_line_is_skipped_and_extra_columns_ignored() {
        let path = tmp("header.csv");
        std::fs::write(&path, "x,y,label\n1.0,2.0,7\n3.5,-4.25,9\n").unwrap();
        let pts: Vec<Point<2>> = load_csv(&path).unwrap();
        assert_eq!(pts, vec![Point::new([1.0, 2.0]), Point::new([3.5, -4.25])]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_data_line_is_an_error() {
        let path = tmp("bad.csv");
        std::fs::write(&path, "1.0,2.0\nnot,numbers\n").unwrap();
        let err = load_csv::<2>(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn blank_lines_and_empty_files_work() {
        let path = tmp("blank.csv");
        std::fs::write(&path, "\n1.0,2.0\n\n\n").unwrap();
        let pts: Vec<Point<2>> = load_csv(&path).unwrap();
        assert_eq!(pts.len(), 1);
        std::fs::write(&path, "").unwrap();
        let pts: Vec<Point<2>> = load_csv(&path).unwrap();
        assert!(pts.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(load_csv::<2>(Path::new("/definitely/not/here.csv")).is_err());
    }
}
