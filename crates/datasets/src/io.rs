//! Point-cloud I/O.
//!
//! The paper's datasets arrive as CSV-ish text (NGSIM trajectory exports,
//! GeoLife PLT files) or raw particle dumps (HACC). This module reads and
//! writes the two formats a user needs to run this library on their own
//! data:
//!
//! - **CSV** — one point per line, coordinates separated by commas,
//!   optional header line (skipped when non-numeric), extra columns
//!   ignored;
//! - **XYZ** — whitespace-separated, the classic particle-dump layout.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use emst_geometry::Point;

/// Writes points as CSV (no header) with full `f32` round-trip precision.
pub fn save_csv<const D: usize>(path: &Path, points: &[Point<D>]) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    for p in points {
        for d in 0..D {
            if d > 0 {
                out.write_all(b",")?;
            }
            // `{:?}` prints the shortest representation that round-trips.
            write!(out, "{:?}", p[d])?;
        }
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// Reads CSV points: the first `D` numeric columns of every line; a leading
/// non-numeric header line is skipped; blank lines are ignored.
pub fn load_csv<const D: usize>(path: &Path) -> io::Result<Vec<Point<D>>> {
    load_delimited(path, b',')
}

/// Writes points in XYZ layout (space-separated).
pub fn save_xyz<const D: usize>(path: &Path, points: &[Point<D>]) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    for p in points {
        for d in 0..D {
            if d > 0 {
                out.write_all(b" ")?;
            }
            write!(out, "{:?}", p[d])?;
        }
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// Reads XYZ points (whitespace-separated).
pub fn load_xyz<const D: usize>(path: &Path) -> io::Result<Vec<Point<D>>> {
    load_delimited(path, b' ')
}

fn parse_line<const D: usize>(line: &str, delim: u8) -> Option<Point<D>> {
    let mut coords = [0.0f32; D];
    let mut fields = if delim == b',' {
        FieldIter::Comma(line.split(','))
    } else {
        FieldIter::Whitespace(line.split_whitespace())
    };
    for c in coords.iter_mut() {
        let field = fields.next()?;
        *c = field.trim().parse().ok()?;
    }
    Some(Point::new(coords))
}

enum FieldIter<'a> {
    Comma(std::str::Split<'a, char>),
    Whitespace(std::str::SplitWhitespace<'a>),
}

impl<'a> Iterator for FieldIter<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        match self {
            FieldIter::Comma(i) => i.next(),
            FieldIter::Whitespace(i) => i.next(),
        }
    }
}

/// Streams CSV points in fixed-size chunks without ever holding the whole
/// file in memory — the reader behind the out-of-core sharded EMST path.
///
/// Semantics match [`load_csv`] exactly (leading non-numeric header skipped,
/// blank lines ignored, extra columns ignored, malformed data lines are
/// errors). `f` is called with the index of the chunk's first point and the
/// chunk's points (every chunk except the last has exactly `chunk_points`
/// points); an error returned by `f` aborts the read. Returns the total
/// number of points streamed.
pub fn read_points_chunked<const D: usize>(
    path: &Path,
    chunk_points: usize,
    mut f: impl FnMut(usize, &[Point<D>]) -> io::Result<()>,
) -> io::Result<usize> {
    assert!(chunk_points > 0, "chunk size must be positive");
    let mut reader = BufReader::new(File::open(path)?);
    let mut line_buf = String::new();
    let mut chunk: Vec<Point<D>> = Vec::with_capacity(chunk_points);
    let mut line_no = 0usize;
    let mut total = 0usize;
    loop {
        line_buf.clear();
        if reader.read_line(&mut line_buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = line_buf.trim();
        if line.is_empty() {
            continue;
        }
        match parse_line::<D>(line, b',') {
            Some(p) => {
                chunk.push(p);
                if chunk.len() == chunk_points {
                    f(total, &chunk)?;
                    total += chunk.len();
                    chunk.clear();
                }
            }
            None if line_no == 1 => {} // header
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{line_no}: expected {D} numeric fields", path.display()),
                ));
            }
        }
    }
    if !chunk.is_empty() {
        f(total, &chunk)?;
        total += chunk.len();
    }
    Ok(total)
}

fn load_delimited<const D: usize>(path: &Path, delim: u8) -> io::Result<Vec<Point<D>>> {
    let reader = BufReader::new(File::open(path)?);
    let mut out = vec![];
    let mut line_buf = String::new();
    let mut reader = reader;
    let mut line_no = 0usize;
    loop {
        line_buf.clear();
        if reader.read_line(&mut line_buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = line_buf.trim();
        if line.is_empty() {
            continue;
        }
        match parse_line::<D>(line, delim) {
            Some(p) => out.push(p),
            None if line_no == 1 => {} // header
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{line_no}: expected {D} numeric fields", path.display()),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::uniform;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("emst-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn csv_round_trips_exactly() {
        let pts = uniform::<3>(500, 7);
        let path = tmp("roundtrip.csv");
        save_csv(&path, &pts).unwrap();
        let back: Vec<Point<3>> = load_csv(&path).unwrap();
        assert_eq!(pts, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn xyz_round_trips_exactly() {
        let pts = uniform::<2>(300, 9);
        let path = tmp("roundtrip.xyz");
        save_xyz(&path, &pts).unwrap();
        let back: Vec<Point<2>> = load_xyz(&path).unwrap();
        assert_eq!(pts, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_line_is_skipped_and_extra_columns_ignored() {
        let path = tmp("header.csv");
        std::fs::write(&path, "x,y,label\n1.0,2.0,7\n3.5,-4.25,9\n").unwrap();
        let pts: Vec<Point<2>> = load_csv(&path).unwrap();
        assert_eq!(pts, vec![Point::new([1.0, 2.0]), Point::new([3.5, -4.25])]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_data_line_is_an_error() {
        let path = tmp("bad.csv");
        std::fs::write(&path, "1.0,2.0\nnot,numbers\n").unwrap();
        let err = load_csv::<2>(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn blank_lines_and_empty_files_work() {
        let path = tmp("blank.csv");
        std::fs::write(&path, "\n1.0,2.0\n\n\n").unwrap();
        let pts: Vec<Point<2>> = load_csv(&path).unwrap();
        assert_eq!(pts.len(), 1);
        std::fs::write(&path, "").unwrap();
        let pts: Vec<Point<2>> = load_csv(&path).unwrap();
        assert!(pts.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(load_csv::<2>(Path::new("/definitely/not/here.csv")).is_err());
    }

    #[test]
    fn chunked_reader_round_trips_against_whole_file_reader() {
        let pts = uniform::<3>(1003, 11); // deliberately not a chunk multiple
        let path = tmp("chunked.csv");
        save_csv(&path, &pts).unwrap();
        let whole: Vec<Point<3>> = load_csv(&path).unwrap();
        for chunk_points in [1usize, 7, 256, 1003, 5000] {
            let mut streamed: Vec<Point<3>> = vec![];
            let mut starts: Vec<usize> = vec![];
            let total = read_points_chunked::<3>(&path, chunk_points, |start, chunk| {
                assert_eq!(start, streamed.len());
                starts.push(start);
                streamed.extend_from_slice(chunk);
                Ok(())
            })
            .unwrap();
            assert_eq!(total, whole.len(), "chunk={chunk_points}");
            assert_eq!(streamed, whole, "chunk={chunk_points}");
            // Every chunk except the last is exactly chunk_points long.
            for w in starts.windows(2) {
                assert_eq!(w[1] - w[0], chunk_points);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_reader_skips_headers_and_rejects_malformed_lines() {
        let path = tmp("chunked-header.csv");
        std::fs::write(&path, "x,y,label\n1.0,2.0,7\n\n3.5,-4.25,9\n").unwrap();
        let mut got: Vec<Point<2>> = vec![];
        let total = read_points_chunked::<2>(&path, 64, |_, c| {
            got.extend_from_slice(c);
            Ok(())
        })
        .unwrap();
        assert_eq!(total, 2);
        assert_eq!(got, vec![Point::new([1.0, 2.0]), Point::new([3.5, -4.25])]);

        std::fs::write(&path, "1.0,2.0\nnot,numbers\n").unwrap();
        let err = read_points_chunked::<2>(&path, 64, |_, _| Ok(())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_reader_propagates_callback_errors() {
        let path = tmp("chunked-abort.csv");
        let pts = uniform::<2>(100, 3);
        save_csv(&path, &pts).unwrap();
        let err = read_points_chunked::<2>(&path, 10, |start, _| {
            if start >= 20 {
                Err(io::Error::other("stop"))
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "stop");
        std::fs::remove_file(&path).ok();
    }
}
