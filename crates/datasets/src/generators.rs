//! The generator implementations.
//!
//! All generators work for `D ∈ {2, 3}` (the paper's scope), take `(n,
//! seed)` and are deterministic. Coordinates stay within moderate ranges so
//! `f32` squared distances remain exact enough for the cross-implementation
//! equality tests.

use emst_geometry::{Point, Scalar};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Uniform points in the unit square/cube centred at the origin
/// (the paper's Uniform100M2 / Uniform100M3).
pub fn uniform<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0001);
    (0..n).map(|_| random_point(&mut rng, -0.5, 0.5)).collect()
}

/// Standard normal points (zero mean, unit deviation per coordinate —
/// Normal100M2 / Normal100M3 / Normal300M2).
pub fn normal<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0002);
    (0..n).map(|_| gaussian_point(&mut rng, 1.0)).collect()
}

/// Gan & Tao (2017) style variable-density clusters (VisualVar10M2D/3D):
/// cluster centres perform a random walk; each cluster's spread varies over
/// orders of magnitude, producing the mixed-density structure DBSCAN-family
/// algorithms find hard.
pub fn visualvar<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0003);
    let clusters = (n as f64).sqrt().ceil() as usize;
    let mut out = Vec::with_capacity(n);
    let mut center = Point::<D>::origin();
    for c in 0..clusters.max(1) {
        // Random-walk step of the cluster centre.
        for d in 0..D {
            center[d] += rng.random_range(-1.0f32..1.0);
        }
        // Density varies over ~3 orders of magnitude.
        let sigma = 10f32.powf(rng.random_range(-3.0f32..-0.5));
        let remaining = n - out.len();
        let this = (n / clusters.max(1)).min(remaining).max(usize::from(remaining > 0));
        for _ in 0..this.min(remaining) {
            let mut p = center;
            let g = gaussian_point::<D>(&mut rng, sigma);
            for d in 0..D {
                p[d] += g[d];
            }
            out.push(p);
        }
        if out.len() >= n {
            break;
        }
        let _ = c;
    }
    // Fill any rounding remainder near the last centre.
    while out.len() < n {
        let mut p = center;
        let g = gaussian_point::<D>(&mut rng, 0.01);
        for d in 0..D {
            p[d] += g[d];
        }
        out.push(p);
    }
    out
}

/// Cosmology-like point cloud (Hacc37M / Hacc497M): dark-matter-halo
/// structure — a power-law mass spectrum of dense clumps with steep radial
/// profiles, connected by a sparse uniform background mimicking filaments
/// and field particles.
pub fn hacc_like<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0004);
    let mut out = Vec::with_capacity(n);
    let background = n / 5; // ~20% field particles
    for _ in 0..background {
        out.push(random_point(&mut rng, 0.0, 1.0));
    }
    let halos = (n / 400).max(1);
    let in_halos = n - background;
    // Power-law halo masses: w ~ u^{-0.8}, normalized to in_halos points.
    let mut weights: Vec<f64> =
        (0..halos).map(|_| rng.random_range(0.02f64..1.0).powf(-0.8)).collect();
    let wsum: f64 = weights.iter().sum();
    for w in weights.iter_mut() {
        *w = *w / wsum * in_halos as f64;
    }
    for w in weights {
        if out.len() >= n {
            break;
        }
        let center = random_point::<D>(&mut rng, 0.05, 0.95);
        let scale = rng.random_range(0.002f32..0.02);
        let members = (w.round() as usize).clamp(1, n - out.len());
        for _ in 0..members {
            // Steep radial profile: r = scale * (u^{-0.6} - 1), truncated.
            let u: f32 = rng.random_range(0.05f32..1.0);
            let r = (scale * (u.powf(-0.6) - 1.0)).min(0.2);
            out.push(offset_on_sphere(&mut rng, &center, r));
        }
    }
    while out.len() < n {
        out.push(random_point(&mut rng, 0.0, 1.0));
    }
    out.truncate(n);
    out
}

/// GeoLife-like extreme skew: a handful of hot spots hold most points at
/// tiny spatial scales (the paper's pathological case for the Z-curve
/// resolution, §4.1), plus a wide sparse remainder.
pub fn geolife_like<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0005);
    let mut out = Vec::with_capacity(n);
    let hotspots = 12usize;
    let centers: Vec<Point<D>> =
        (0..hotspots).map(|_| random_point(&mut rng, 0.0, 100.0)).collect();
    for i in 0..n {
        if rng.random_range(0.0f32..1.0) < 0.9 {
            // Zipf-ish hotspot choice: hotspot k gets ~1/(k+1) share.
            let z: f32 = rng.random_range(0.0f32..1.0);
            let k = ((1.0 / (z + 0.08) - 0.9).floor() as usize).min(hotspots - 1);
            // Hot-spot scale ~4e-7 of the domain: at the 21-bit 3D
            // Z-curve cell size (~5e-7), so dense spots straddle few
            // Morton codes — the exact under-resolution effect the paper
            // reports for GeoLife (§4.1).
            let sigma = 4e-5 * (k as f32 + 1.0);
            out.push(offset_gaussian(&mut rng, &centers[k], sigma));
        } else {
            out.push(random_point(&mut rng, 0.0, 100.0));
        }
        let _ = i;
    }
    out
}

/// NGSIM-like highway trajectories: three long corridors; points are
/// longitudinal positions with lane-quantized lateral offsets and GPS noise.
pub fn ngsim_like<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0006);
    // Three distinct corridors (real NGSIM sites are separate highways):
    // gentle slopes keep them >2 units apart everywhere.
    let highways: [(Scalar, Scalar); 3] = [(0.0, 0.02), (4.0, -0.03), (9.0, 0.01)];
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let (offset, slope) = highways[rng.random_range(0..3)];
        let t: f32 = rng.random_range(0.0f32..30.0);
        let lane = rng.random_range(0u32..5) as f32 * 0.004;
        let noise = rng.random_range(-0.001f32..0.001);
        let mut p = Point::<D>::origin();
        p[0] = t;
        p[1] = offset + slope * t + lane + noise;
        if D == 3 {
            p[2] = rng.random_range(0.0f32..0.01); // near-planar altitude
        }
        out.push(p);
    }
    out
}

/// PortoTaxi-like city trajectories: a jittered grid street network; points
/// are sampled along shortest L-shaped paths between random intersections.
pub fn portotaxi_like<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0007);
    let grid = 24i32;
    let jitter = |rng: &mut StdRng, v: i32| v as f32 + rng.random_range(-0.1f32..0.1);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // One trip: L-shaped path between two intersections.
        let (x0, y0) = (rng.random_range(0..grid), rng.random_range(0..grid));
        let (x1, y1) = (rng.random_range(0..grid), rng.random_range(0..grid));
        let samples = rng.random_range(8usize..40).min(n - out.len());
        let (fx0, fy0) = (jitter(&mut rng, x0), jitter(&mut rng, y0));
        let (fx1, fy1) = (jitter(&mut rng, x1), jitter(&mut rng, y1));
        for s in 0..samples {
            let t = s as f32 / samples.max(1) as f32;
            // First leg horizontal, second vertical.
            let (x, y) = if t < 0.5 {
                (fx0 + (fx1 - fx0) * (2.0 * t), fy0)
            } else {
                (fx1, fy0 + (fy1 - fy0) * (2.0 * t - 1.0))
            };
            let mut p = Point::<D>::origin();
            p[0] = x + rng.random_range(-0.02f32..0.02);
            p[1] = y + rng.random_range(-0.02f32..0.02);
            if D == 3 {
                p[2] = rng.random_range(0.0f32..0.05);
            }
            out.push(p);
        }
    }
    out.truncate(n);
    out
}

/// RoadNetwork-like: vertices of a sparse planar road graph — a perturbed
/// grid with some diagonal shortcuts, points concentrated on the edges.
pub fn roadnetwork_like<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0008);
    let mut out = Vec::with_capacity(n);
    let grid = ((n as f32).sqrt() / 3.0).ceil().max(2.0) as i32;
    while out.len() < n {
        let (x, y) = (rng.random_range(0..grid), rng.random_range(0..grid));
        let along = rng.random_range(0.0f32..1.0);
        let horizontal = rng.random_range(0u32..2) == 0;
        let mut p = Point::<D>::origin();
        if horizontal {
            p[0] = x as f32 + along;
            p[1] = y as f32 + rng.random_range(-0.02f32..0.02);
        } else {
            p[0] = x as f32 + rng.random_range(-0.02f32..0.02);
            p[1] = y as f32 + along;
        }
        if D == 3 {
            p[2] = rng.random_range(0.0f32..0.2);
        }
        out.push(p);
    }
    out
}

/// The paper's §4.3 sampling methodology: a random subset that preserves the
/// parent distribution. Uses a partial Fisher–Yates shuffle, so it is `O(m)`
/// and deterministic in `seed`.
pub fn sample_preserving_distribution<const D: usize>(
    points: &[Point<D>],
    m: usize,
    seed: u64,
) -> Vec<Point<D>> {
    let n = points.len();
    if m >= n {
        return points.to_vec();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0009);
    let mut idx: Vec<u32> = (0..n as u32).collect();
    for i in 0..m {
        let j = rng.random_range(i..n);
        idx.swap(i, j);
    }
    idx[..m].iter().map(|&i| points[i as usize]).collect()
}

fn random_point<const D: usize>(rng: &mut StdRng, lo: Scalar, hi: Scalar) -> Point<D> {
    let mut p = Point::origin();
    for d in 0..D {
        p[d] = rng.random_range(lo..hi);
    }
    p
}

/// Isotropic Gaussian via Box–Muller.
fn gaussian_point<const D: usize>(rng: &mut StdRng, sigma: Scalar) -> Point<D> {
    let mut p = Point::origin();
    let mut d = 0;
    while d < D {
        let u1: f32 = rng.random_range(f32::EPSILON..1.0);
        let u2: f32 = rng.random_range(0.0f32..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        p[d] = r * theta.cos() * sigma;
        d += 1;
        if d < D {
            p[d] = r * theta.sin() * sigma;
            d += 1;
        }
    }
    p
}

fn offset_gaussian<const D: usize>(rng: &mut StdRng, center: &Point<D>, sigma: Scalar) -> Point<D> {
    let g = gaussian_point::<D>(rng, sigma);
    let mut p = *center;
    for d in 0..D {
        p[d] += g[d];
    }
    p
}

/// A point at distance `r` from `center` in a uniformly random direction.
fn offset_on_sphere<const D: usize>(rng: &mut StdRng, center: &Point<D>, r: Scalar) -> Point<D> {
    // Normalize a Gaussian sample for a uniform direction.
    let g = gaussian_point::<D>(rng, 1.0);
    let norm = (0..D).map(|d| g[d] * g[d]).sum::<f32>().sqrt().max(1e-12);
    let mut p = *center;
    for d in 0..D {
        p[d] += g[d] / norm * r;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_geometry::Aabb;

    #[test]
    fn uniform_stays_in_unit_box() {
        let pts = uniform::<2>(2000, 7);
        let bb = Aabb::from_points(&pts);
        assert!(bb.min[0] >= -0.5 && bb.max[0] <= 0.5);
        assert!(bb.min[1] >= -0.5 && bb.max[1] <= 0.5);
        // Reasonably space-filling.
        assert!(bb.longest_extent() > 0.9);
    }

    #[test]
    fn normal_has_zeroish_mean_and_unit_scale() {
        let pts = normal::<2>(20_000, 11);
        let mean: f64 = pts.iter().map(|p| p[0] as f64).sum::<f64>() / pts.len() as f64;
        let var: f64 =
            pts.iter().map(|p| (p[0] as f64 - mean).powi(2)).sum::<f64>() / pts.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn visualvar_has_varying_local_density() {
        let pts = visualvar::<2>(5000, 13);
        assert_eq!(pts.len(), 5000);
        // Nearest-neighbour distances must span orders of magnitude.
        let sample: Vec<f32> = (0..200)
            .map(|i| {
                let p = &pts[i * 25];
                pts.iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i * 25)
                    .map(|(_, q)| p.squared_distance(q))
                    .fold(f32::INFINITY, f32::min)
            })
            .collect();
        let min = sample.iter().copied().fold(f32::INFINITY, f32::min).max(1e-20);
        let max = sample.iter().copied().fold(0.0f32, f32::max);
        assert!(max / min > 1e3, "density ratio {}", max / min);
    }

    #[test]
    fn hacc_like_is_strongly_clustered() {
        let pts = hacc_like::<3>(10_000, 17);
        assert_eq!(pts.len(), 10_000);
        // Clustering proxy: median NN distance far below the uniform
        // expectation (~n^{-1/3} ≈ 0.046 for 10k in a unit cube).
        let mut nn: Vec<f32> = (0..300)
            .map(|i| {
                let p = &pts[i * 33];
                pts.iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i * 33)
                    .map(|(_, q)| p.squared_distance(q))
                    .fold(f32::INFINITY, f32::min)
                    .sqrt()
            })
            .collect();
        nn.sort_by(f32::total_cmp);
        let median = nn[nn.len() / 2];
        assert!(median < 0.02, "median NN distance {median} not clustered");
    }

    #[test]
    fn geolife_like_hotspots_dominate() {
        let pts = geolife_like::<2>(10_000, 19);
        // At least half the points concentrate in tiny neighbourhoods:
        // count points whose NN is extremely close.
        let close = (0..500)
            .filter(|&i| {
                let p = &pts[i * 20];
                pts.iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i * 20)
                    .map(|(_, q)| p.squared_distance(q))
                    .fold(f32::INFINITY, f32::min)
                    < 1e-4
            })
            .count();
        assert!(close > 250, "only {close}/500 sampled points are in hot spots");
    }

    #[test]
    fn trajectory_datasets_are_anisotropic() {
        let pts = ngsim_like::<2>(5000, 23);
        let bb = Aabb::from_points(&pts);
        let e = bb.extents();
        assert!(e[0] / e[1] > 2.0, "highways should be elongated: {e:?}");
    }

    #[test]
    fn portotaxi_covers_a_grid() {
        let pts = portotaxi_like::<2>(5000, 29);
        let bb = Aabb::from_points(&pts);
        assert!(bb.longest_extent() > 10.0);
        assert_eq!(pts.len(), 5000);
    }

    #[test]
    fn sampling_preserves_membership_and_size() {
        let pts = uniform::<2>(1000, 31);
        let s = sample_preserving_distribution(&pts, 100, 1);
        assert_eq!(s.len(), 100);
        for p in &s {
            assert!(pts.contains(p));
        }
        // Deterministic; different seeds differ.
        assert_eq!(s, sample_preserving_distribution(&pts, 100, 1));
        assert_ne!(s, sample_preserving_distribution(&pts, 100, 2));
        // Oversampling returns everything.
        assert_eq!(sample_preserving_distribution(&pts, 5000, 3).len(), 1000);
    }
}
