//! Synthetic dataset generators mirroring the paper's evaluation suite.
//!
//! The paper benchmarks twelve datasets (§4, "Datasets"): real-world
//! trajectory data (NGSIM, PortoTaxi, GeoLife, RoadNetwork), cosmology
//! simulation snapshots (HACC), the Gan & Tao DBSCAN-hardness generator
//! (VisualVar), and uniform/normal random clouds. The real datasets are not
//! redistributable (and far too large for this environment), so this crate
//! provides **seeded generators that reproduce each dataset's distributional
//! traits** — the property the paper itself identifies as what performance
//! depends on ("performance ... is more dependent on the distribution of
//! points", §4.2):
//!
//! | paper dataset | generator | reproduced trait |
//! |---|---|---|
//! | Uniform100M2/3 | [`uniform`] | constant density |
//! | Normal100M2/3, Normal300M2 | [`normal`] | radially decaying density |
//! | VisualVar10M2D/3D | [`visualvar`] | clusters of wildly varying density (Gan & Tao) |
//! | Hacc37M/497M | [`hacc_like`] | halo hierarchy: dense clumps + filaments + background |
//! | GeoLife24M3D | [`geolife_like`] | extreme hot-spot skew (the paper's BVH-quality outlier) |
//! | Ngsim / Ngsimlocation3 | [`ngsim_like`] | points strung along a few highway polylines |
//! | PortoTaxi | [`portotaxi_like`] | points along a dense street network |
//! | RoadNetwork3D | [`roadnetwork_like`] | sparse graph-embedded points (small dataset) |
//!
//! Everything is deterministic in `(kind, n, seed)`. The paper's §4.3
//! scaling methodology ("randomly sampling a large dataset") is
//! [`sample_preserving_distribution`].

// Loops over the const-generic dimension D index several parallel arrays;
// clippy's iterator suggestion does not apply cleanly there.
#![allow(clippy::needless_range_loop)]

pub mod generators;
pub mod io;
pub mod paper;

pub use generators::{
    geolife_like, hacc_like, ngsim_like, normal, portotaxi_like, roadnetwork_like,
    sample_preserving_distribution, uniform, visualvar,
};
pub use io::{load_csv, load_xyz, parse_csv, parse_xyz, save_csv, save_xyz};
pub use paper::{PaperDataset, PointCloud};

use emst_geometry::Point;

/// What to generate; see the module docs for the trait each kind mimics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Uniform in the unit square/cube.
    Uniform,
    /// Standard normal per coordinate.
    Normal,
    /// Gan & Tao-style variable-density clusters.
    VisualVar,
    /// Cosmology-like halo hierarchy.
    HaccLike,
    /// Extreme hot-spot skew.
    GeoLifeLike,
    /// Highway trajectories.
    NgsimLike,
    /// Street-network trajectories.
    PortoTaxiLike,
    /// Sparse road-graph vertices.
    RoadNetworkLike,
}

/// A dataset request: kind, point count and RNG seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Distribution family.
    pub kind: Kind,
    /// Number of points to generate.
    pub n: usize,
    /// RNG seed (same seed ⇒ same points).
    pub seed: u64,
}

impl DatasetSpec {
    /// Uniform spec shorthand.
    pub fn uniform(n: usize, seed: u64) -> Self {
        Self { kind: Kind::Uniform, n, seed }
    }

    /// Normal spec shorthand.
    pub fn normal(n: usize, seed: u64) -> Self {
        Self { kind: Kind::Normal, n, seed }
    }

    /// VisualVar spec shorthand.
    pub fn visualvar(n: usize, seed: u64) -> Self {
        Self { kind: Kind::VisualVar, n, seed }
    }

    /// HACC-like spec shorthand.
    pub fn hacc_like(n: usize, seed: u64) -> Self {
        Self { kind: Kind::HaccLike, n, seed }
    }
}

/// Generates a 2D dataset from a spec.
pub fn generate_2d(spec: &DatasetSpec) -> Vec<Point<2>> {
    dispatch::<2>(spec)
}

/// Generates a 3D dataset from a spec.
pub fn generate_3d(spec: &DatasetSpec) -> Vec<Point<3>> {
    dispatch::<3>(spec)
}

fn dispatch<const D: usize>(spec: &DatasetSpec) -> Vec<Point<D>> {
    paper::dispatch_kind::<D>(spec.kind, spec.n, spec.seed)
}

pub(crate) fn dispatch_pub<const D: usize>(kind: Kind, n: usize, seed: u64) -> Vec<Point<D>> {
    paper::dispatch_kind::<D>(kind, n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_generate_requested_sizes_deterministically() {
        for kind in [
            Kind::Uniform,
            Kind::Normal,
            Kind::VisualVar,
            Kind::HaccLike,
            Kind::GeoLifeLike,
            Kind::NgsimLike,
            Kind::PortoTaxiLike,
            Kind::RoadNetworkLike,
        ] {
            let spec = DatasetSpec { kind, n: 500, seed: 9 };
            let a = generate_2d(&spec);
            let b = generate_2d(&spec);
            assert_eq!(a.len(), 500, "{kind:?}");
            assert_eq!(a, b, "{kind:?} must be deterministic");
            assert!(a.iter().all(Point::is_finite), "{kind:?} produced non-finite points");
            let c = generate_3d(&spec);
            assert_eq!(c.len(), 500);
            assert!(c.iter().all(Point::is_finite));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_2d(&DatasetSpec::uniform(100, 1));
        let b = generate_2d(&DatasetSpec::uniform(100, 2));
        assert_ne!(a, b);
    }
}
