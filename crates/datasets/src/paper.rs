//! The paper's named evaluation datasets, scaled for this environment.
//!
//! Figures 5 and 6 of the paper enumerate twelve datasets. This module maps
//! each name to its generator, native dimension and a point count
//! proportional to the original size (so the relative dataset sizes — and
//! effects like RoadNetwork3D being too small to saturate a device — are
//! preserved at benchmark scale).

use emst_geometry::Point;

use crate::{generators, Kind};

/// A dimension-erased point cloud (the dataset list mixes 2D and 3D).
#[derive(Clone, Debug)]
pub enum PointCloud {
    /// Two-dimensional points.
    D2(Vec<Point<2>>),
    /// Three-dimensional points.
    D3(Vec<Point<3>>),
}

impl PointCloud {
    /// Number of points.
    pub fn len(&self) -> usize {
        match self {
            PointCloud::D2(v) => v.len(),
            PointCloud::D3(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dataset dimension (2 or 3).
    pub fn dim(&self) -> usize {
        match self {
            PointCloud::D2(_) => 2,
            PointCloud::D3(_) => 3,
        }
    }

    /// Features (`n × d`), the numerator of the paper's rate metric.
    pub fn features(&self) -> usize {
        self.len() * self.dim()
    }
}

/// The twelve datasets of the paper's Figures 5–6 (plus the two §4.3
/// scaling parents). Names match the paper, including `RoadNetwork3D`
/// (a 2D dataset despite its name) and `Ngsimlocation3` (highway location
/// #3 of NGSIM — also 2D; the "3" is not a dimension). See §4, "Datasets".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum PaperDataset {
    GeoLife24M3D,
    RoadNetwork3D,
    Ngsim,
    Ngsimlocation3,
    PortoTaxi,
    VisualVar10M2D,
    VisualVar10M3D,
    Normal100M3,
    Normal100M2,
    Uniform100M2,
    Uniform100M3,
    Hacc37M,
    // §4.3 scaling parents:
    Hacc497M,
    Normal300M2,
    Uniform300M3,
}

impl PaperDataset {
    /// The twelve datasets of Figures 5–6, in the paper's plot order.
    pub const FIGURE56: [PaperDataset; 12] = [
        PaperDataset::GeoLife24M3D,
        PaperDataset::RoadNetwork3D,
        PaperDataset::Ngsim,
        PaperDataset::Ngsimlocation3,
        PaperDataset::PortoTaxi,
        PaperDataset::VisualVar10M2D,
        PaperDataset::VisualVar10M3D,
        PaperDataset::Normal100M3,
        PaperDataset::Normal100M2,
        PaperDataset::Uniform100M2,
        PaperDataset::Uniform100M3,
        PaperDataset::Hacc37M,
    ];

    /// The three scaling datasets of Figure 7.
    pub const FIGURE7: [PaperDataset; 3] =
        [PaperDataset::Hacc497M, PaperDataset::Normal300M2, PaperDataset::Uniform300M3];

    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            PaperDataset::GeoLife24M3D => "GeoLife24M3D",
            PaperDataset::RoadNetwork3D => "RoadNetwork3D",
            PaperDataset::Ngsim => "Ngsim",
            PaperDataset::Ngsimlocation3 => "Ngsimlocation3",
            PaperDataset::PortoTaxi => "PortoTaxi",
            PaperDataset::VisualVar10M2D => "VisualVar10M2D",
            PaperDataset::VisualVar10M3D => "VisualVar10M3D",
            PaperDataset::Normal100M3 => "Normal100M3",
            PaperDataset::Normal100M2 => "Normal100M2",
            PaperDataset::Uniform100M2 => "Uniform100M2",
            PaperDataset::Uniform100M3 => "Uniform100M3",
            PaperDataset::Hacc37M => "Hacc37M",
            PaperDataset::Hacc497M => "Hacc497M",
            PaperDataset::Normal300M2 => "Normal300M2",
            PaperDataset::Uniform300M3 => "Uniform300M3",
        }
    }

    /// Native dimension.
    pub fn dim(&self) -> usize {
        match self {
            PaperDataset::GeoLife24M3D
            | PaperDataset::VisualVar10M3D
            | PaperDataset::Normal100M3
            | PaperDataset::Uniform100M3
            | PaperDataset::Hacc37M
            | PaperDataset::Hacc497M
            | PaperDataset::Uniform300M3 => 3,
            _ => 2,
        }
    }

    /// The generator family behind the dataset.
    pub fn kind(&self) -> Kind {
        match self {
            PaperDataset::GeoLife24M3D => Kind::GeoLifeLike,
            PaperDataset::RoadNetwork3D => Kind::RoadNetworkLike,
            PaperDataset::Ngsim | PaperDataset::Ngsimlocation3 => Kind::NgsimLike,
            PaperDataset::PortoTaxi => Kind::PortoTaxiLike,
            PaperDataset::VisualVar10M2D | PaperDataset::VisualVar10M3D => Kind::VisualVar,
            PaperDataset::Normal100M3 | PaperDataset::Normal100M2 | PaperDataset::Normal300M2 => {
                Kind::Normal
            }
            PaperDataset::Uniform100M2
            | PaperDataset::Uniform100M3
            | PaperDataset::Uniform300M3 => Kind::Uniform,
            PaperDataset::Hacc37M | PaperDataset::Hacc497M => Kind::HaccLike,
        }
    }

    /// Original point count in the paper (used to scale benchmark sizes
    /// proportionally).
    pub fn original_size(&self) -> usize {
        match self {
            PaperDataset::GeoLife24M3D => 24_000_000,
            PaperDataset::RoadNetwork3D => 400_000,
            PaperDataset::Ngsim => 12_000_000,
            PaperDataset::Ngsimlocation3 => 4_000_000,
            PaperDataset::PortoTaxi => 81_000_000,
            PaperDataset::VisualVar10M2D | PaperDataset::VisualVar10M3D => 10_000_000,
            PaperDataset::Normal100M3
            | PaperDataset::Normal100M2
            | PaperDataset::Uniform100M2
            | PaperDataset::Uniform100M3 => 100_000_000,
            PaperDataset::Hacc37M => 37_000_000,
            PaperDataset::Hacc497M => 497_000_000,
            PaperDataset::Normal300M2 => 300_000_000,
            PaperDataset::Uniform300M3 => 300_000_000,
        }
    }

    /// Benchmark-scale point count: original sizes compressed to a usable
    /// range with a cube-root law (so a 250× size spread becomes ~6×),
    /// scaled by `scale` (1.0 ≈ 60k–400k points).
    pub fn scaled_size(&self, scale: f64) -> usize {
        let base = (self.original_size() as f64 / 400_000.0).powf(1.0 / 3.0) * 65_000.0;
        ((base * scale) as usize).max(1_000)
    }

    /// Generates the dataset at `n` points.
    pub fn generate(&self, n: usize, seed: u64) -> PointCloud {
        let kind = self.kind();
        if self.dim() == 2 {
            PointCloud::D2(crate::dispatch_pub::<2>(kind, n, seed))
        } else {
            PointCloud::D3(crate::dispatch_pub::<3>(kind, n, seed))
        }
    }
}

impl crate::Kind {
    /// Generates `n` points of this kind in dimension `D`.
    pub fn generate<const D: usize>(&self, n: usize, seed: u64) -> Vec<Point<D>> {
        crate::dispatch_pub::<D>(*self, n, seed)
    }
}

pub(crate) fn dispatch_kind<const D: usize>(kind: Kind, n: usize, seed: u64) -> Vec<Point<D>> {
    match kind {
        Kind::Uniform => generators::uniform(n, seed),
        Kind::Normal => generators::normal(n, seed),
        Kind::VisualVar => generators::visualvar(n, seed),
        Kind::HaccLike => generators::hacc_like(n, seed),
        Kind::GeoLifeLike => generators::geolife_like(n, seed),
        Kind::NgsimLike => generators::ngsim_like(n, seed),
        Kind::PortoTaxiLike => generators::portotaxi_like(n, seed),
        Kind::RoadNetworkLike => generators::roadnetwork_like(n, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figure_datasets_generate() {
        for ds in PaperDataset::FIGURE56 {
            let cloud = ds.generate(2000, 3);
            assert_eq!(cloud.len(), 2000, "{}", ds.name());
            assert_eq!(cloud.dim(), ds.dim(), "{}", ds.name());
            assert_eq!(cloud.features(), 2000 * ds.dim());
        }
    }

    #[test]
    fn scaled_sizes_preserve_ordering() {
        let road = PaperDataset::RoadNetwork3D.scaled_size(1.0);
        let hacc = PaperDataset::Hacc37M.scaled_size(1.0);
        let porto = PaperDataset::PortoTaxi.scaled_size(1.0);
        assert!(road < hacc, "{road} !< {hacc}");
        assert!(hacc < porto, "{hacc} !< {porto}");
        // Compression keeps the suite tractable.
        assert!(porto < 500_000);
        assert!(road >= 50_000);
    }

    #[test]
    fn kind_generate_matches_free_functions() {
        assert_eq!(Kind::Uniform.generate::<2>(50, 7), generators::uniform::<2>(50, 7));
    }
}
