//! `D`-dimensional points with single-precision coordinates.

use core::ops::{Index, IndexMut};

use crate::Scalar;

/// A point in `D`-dimensional Euclidean space.
///
/// `D` is a const generic; the workspace instantiates `Point<2>` and
/// `Point<3>`, matching the paper's 2D/3D evaluation datasets.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point<const D: usize> {
    /// Cartesian coordinates.
    pub coords: [Scalar; D],
}

impl<const D: usize> Point<D> {
    /// Creates a point from its coordinate array.
    #[inline]
    pub const fn new(coords: [Scalar; D]) -> Self {
        Self { coords }
    }

    /// The origin (all coordinates zero).
    #[inline]
    pub const fn origin() -> Self {
        Self { coords: [0.0; D] }
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Preferred over [`Self::distance`] inside hot loops: it avoids the
    /// square root and preserves the ordering of distances, which is all that
    /// nearest-neighbour pruning needs.
    #[inline]
    pub fn squared_distance(&self, other: &Self) -> Scalar {
        let mut acc = 0.0;
        for d in 0..D {
            let diff = self.coords[d] - other.coords[d];
            acc += diff * diff;
        }
        acc
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Self) -> Scalar {
        self.squared_distance(other).sqrt()
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min(&self, other: &Self) -> Self {
        let mut coords = [0.0; D];
        for d in 0..D {
            coords[d] = self.coords[d].min(other.coords[d]);
        }
        Self { coords }
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max(&self, other: &Self) -> Self {
        let mut coords = [0.0; D];
        for d in 0..D {
            coords[d] = self.coords[d].max(other.coords[d]);
        }
        Self { coords }
    }

    /// Returns true when every coordinate is finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.coords.iter().all(|c| c.is_finite())
    }
}

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Self::origin()
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = Scalar;

    #[inline]
    fn index(&self, i: usize) -> &Scalar {
        &self.coords[i]
    }
}

impl<const D: usize> IndexMut<usize> for Point<D> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut Scalar {
        &mut self.coords[i]
    }
}

impl<const D: usize> From<[Scalar; D]> for Point<D> {
    #[inline]
    fn from(coords: [Scalar; D]) -> Self {
        Self { coords }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn squared_distance_matches_hand_computation() {
        let a = Point::new([0.0, 3.0]);
        let b = Point::new([4.0, 0.0]);
        assert_eq!(a.squared_distance(&b), 25.0);
        assert_eq!(a.distance(&b), 5.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new([1.5, -2.5, 3.25]);
        assert_eq!(p.squared_distance(&p), 0.0);
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new([1.0, 5.0]);
        let b = Point::new([3.0, 2.0]);
        assert_eq!(a.min(&b), Point::new([1.0, 2.0]));
        assert_eq!(a.max(&b), Point::new([3.0, 5.0]));
    }

    #[test]
    fn indexing_reads_and_writes() {
        let mut p = Point::new([1.0, 2.0, 3.0]);
        p[1] = 9.0;
        assert_eq!(p[1], 9.0);
        assert_eq!(p[2], 3.0);
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Point::new([0.0, 1.0]).is_finite());
        assert!(!Point::new([f32::NAN, 1.0]).is_finite());
        assert!(!Point::new([f32::INFINITY, 1.0]).is_finite());
    }

    fn arb_point3() -> impl Strategy<Value = Point<3>> {
        prop::array::uniform3(-1e3f32..1e3).prop_map(Point::new)
    }

    proptest! {
        #[test]
        fn distance_is_symmetric(a in arb_point3(), b in arb_point3()) {
            prop_assert_eq!(a.squared_distance(&b), b.squared_distance(&a));
        }

        #[test]
        fn distance_is_nonnegative(a in arb_point3(), b in arb_point3()) {
            prop_assert!(a.squared_distance(&b) >= 0.0);
        }

        #[test]
        fn triangle_inequality_holds_with_tolerance(
            a in arb_point3(), b in arb_point3(), c in arb_point3()
        ) {
            let ab = a.distance(&b) as f64;
            let bc = b.distance(&c) as f64;
            let ac = a.distance(&c) as f64;
            // f32 rounding can violate the exact inequality by a few ulps.
            prop_assert!(ac <= ab + bc + 1e-3);
        }

        #[test]
        fn min_max_bracket_both_inputs(a in arb_point3(), b in arb_point3()) {
            let lo = a.min(&b);
            let hi = a.max(&b);
            for d in 0..3 {
                prop_assert!(lo[d] <= a[d] && lo[d] <= b[d]);
                prop_assert!(hi[d] >= a[d] && hi[d] >= b[d]);
            }
        }
    }
}
