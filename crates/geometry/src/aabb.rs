//! Axis-aligned bounding boxes — the bounding volume of the linear BVH.

use crate::{Point, Scalar};

/// An axis-aligned bounding box in `D` dimensions.
///
/// An *empty* box is represented by `min > max` in every dimension
/// (`min = +inf`, `max = -inf`), so that [`Aabb::expand_point`] and
/// [`Aabb::expand_box`] work without special cases — the same convention
/// ArborX uses for its device-side reductions.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Aabb<const D: usize> {
    /// Lower corner.
    pub min: Point<D>,
    /// Upper corner.
    pub max: Point<D>,
}

impl<const D: usize> Aabb<D> {
    /// The empty box (identity element of [`Aabb::expand_box`]).
    #[inline]
    pub const fn empty() -> Self {
        Self { min: Point::new([Scalar::INFINITY; D]), max: Point::new([Scalar::NEG_INFINITY; D]) }
    }

    /// A degenerate box containing exactly one point.
    #[inline]
    pub const fn from_point(p: Point<D>) -> Self {
        Self { min: p, max: p }
    }

    /// The smallest box containing both corners.
    #[inline]
    pub fn from_corners(a: Point<D>, b: Point<D>) -> Self {
        Self { min: a.min(&b), max: a.max(&b) }
    }

    /// The tight bounding box of a point set (empty box for an empty slice).
    pub fn from_points(points: &[Point<D>]) -> Self {
        let mut b = Self::empty();
        for p in points {
            b.expand_point(p);
        }
        b
    }

    /// True when the box contains no points (`min > max`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        (0..D).any(|d| self.min[d] > self.max[d])
    }

    /// Grows the box to contain `p`.
    #[inline]
    pub fn expand_point(&mut self, p: &Point<D>) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Grows the box to contain `other`.
    #[inline]
    pub fn expand_box(&mut self, other: &Self) {
        self.min = self.min.min(&other.min);
        self.max = self.max.max(&other.max);
    }

    /// Union of two boxes.
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        Self { min: self.min.min(&other.min), max: self.max.max(&other.max) }
    }

    /// True when `p` lies inside the box (boundary inclusive).
    #[inline]
    pub fn contains_point(&self, p: &Point<D>) -> bool {
        (0..D).all(|d| self.min[d] <= p[d] && p[d] <= self.max[d])
    }

    /// True when `other` lies fully inside this box.
    #[inline]
    pub fn contains_box(&self, other: &Self) -> bool {
        other.is_empty()
            || (0..D).all(|d| self.min[d] <= other.min[d] && other.max[d] <= self.max[d])
    }

    /// True when the boxes overlap (boundary inclusive).
    #[inline]
    pub fn intersects(&self, other: &Self) -> bool {
        (0..D).all(|d| self.min[d] <= other.max[d] && other.min[d] <= self.max[d])
    }

    /// The centre of the box.
    #[inline]
    pub fn center(&self) -> Point<D> {
        let mut coords = [0.0; D];
        for d in 0..D {
            coords[d] = 0.5 * (self.min[d] + self.max[d]);
        }
        Point::new(coords)
    }

    /// Edge lengths per dimension.
    #[inline]
    pub fn extents(&self) -> [Scalar; D] {
        let mut e = [0.0; D];
        for d in 0..D {
            e[d] = self.max[d] - self.min[d];
        }
        e
    }

    /// The largest edge length (0 for a degenerate box).
    #[inline]
    pub fn longest_extent(&self) -> Scalar {
        self.extents().into_iter().fold(0.0, Scalar::max)
    }

    /// Index of the dimension with the largest extent.
    #[inline]
    pub fn longest_axis(&self) -> usize {
        let e = self.extents();
        let mut best = 0;
        for d in 1..D {
            if e[d] > e[best] {
                best = d;
            }
        }
        best
    }

    /// Euclidean diameter of the box (corner-to-corner distance).
    #[inline]
    pub fn diameter(&self) -> Scalar {
        if self.is_empty() {
            return 0.0;
        }
        self.min.distance(&self.max)
    }

    /// Squared distance from `p` to the closest point of the box
    /// (0 when `p` is inside).
    ///
    /// This is the pruning bound of the nearest-neighbour traversal
    /// (line 9 of Algorithm 2 in the paper).
    #[inline]
    pub fn squared_distance_to_point(&self, p: &Point<D>) -> Scalar {
        let mut acc = 0.0;
        for d in 0..D {
            let c = p[d].clamp(self.min[d], self.max[d]);
            let diff = p[d] - c;
            acc += diff * diff;
        }
        acc
    }

    /// Squared minimum distance between two boxes (0 when they intersect).
    ///
    /// This is the dual-tree and WSPD lower bound.
    #[inline]
    pub fn squared_distance_to_box(&self, other: &Self) -> Scalar {
        let mut acc = 0.0;
        for d in 0..D {
            let gap = (self.min[d] - other.max[d]).max(other.min[d] - self.max[d]).max(0.0);
            acc += gap * gap;
        }
        acc
    }

    /// Squared maximum distance between any point of `self` and any point of
    /// `other` (the dual-tree upper bound).
    #[inline]
    pub fn squared_max_distance_to_box(&self, other: &Self) -> Scalar {
        let mut acc = 0.0;
        for d in 0..D {
            let hi = (self.max[d] - other.min[d]).abs().max((other.max[d] - self.min[d]).abs());
            acc += hi * hi;
        }
        acc
    }
}

impl<const D: usize> Default for Aabb<D> {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_box_contains_nothing_and_unions_as_identity() {
        let e = Aabb::<2>::empty();
        assert!(e.is_empty());
        assert!(!e.contains_point(&Point::origin()));
        let b = Aabb::from_corners(Point::new([0.0, 0.0]), Point::new([1.0, 1.0]));
        assert_eq!(e.union(&b), b);
        assert_eq!(b.union(&e), b);
    }

    #[test]
    fn from_points_is_tight() {
        let pts = [Point::new([1.0, 5.0]), Point::new([-2.0, 3.0]), Point::new([0.0, 7.0])];
        let b = Aabb::from_points(&pts);
        assert_eq!(b.min, Point::new([-2.0, 3.0]));
        assert_eq!(b.max, Point::new([1.0, 7.0]));
    }

    #[test]
    fn point_distance_zero_inside_positive_outside() {
        let b = Aabb::from_corners(Point::new([0.0, 0.0]), Point::new([2.0, 2.0]));
        assert_eq!(b.squared_distance_to_point(&Point::new([1.0, 1.0])), 0.0);
        assert_eq!(b.squared_distance_to_point(&Point::new([3.0, 1.0])), 1.0);
        assert_eq!(b.squared_distance_to_point(&Point::new([3.0, 3.0])), 2.0);
    }

    #[test]
    fn box_distance_zero_when_overlapping() {
        let a = Aabb::from_corners(Point::new([0.0, 0.0]), Point::new([2.0, 2.0]));
        let b = Aabb::from_corners(Point::new([1.0, 1.0]), Point::new([3.0, 3.0]));
        assert_eq!(a.squared_distance_to_box(&b), 0.0);
        let c = Aabb::from_corners(Point::new([5.0, 0.0]), Point::new([6.0, 2.0]));
        assert_eq!(a.squared_distance_to_box(&c), 9.0);
    }

    #[test]
    fn longest_axis_picks_widest_dimension() {
        let b = Aabb::from_corners(Point::new([0.0, 0.0, 0.0]), Point::new([1.0, 5.0, 3.0]));
        assert_eq!(b.longest_axis(), 1);
        assert_eq!(b.longest_extent(), 5.0);
    }

    #[test]
    fn diameter_of_unit_square_is_sqrt2() {
        let b = Aabb::from_corners(Point::new([0.0, 0.0]), Point::new([1.0, 1.0]));
        assert!((b.diameter() - 2f32.sqrt()).abs() < 1e-6);
    }

    fn arb_point2() -> impl Strategy<Value = Point<2>> {
        prop::array::uniform2(-100.0f32..100.0).prop_map(Point::new)
    }

    proptest! {
        #[test]
        fn union_contains_both(a in arb_point2(), b in arb_point2(),
                               c in arb_point2(), d in arb_point2()) {
            let b1 = Aabb::from_corners(a, b);
            let b2 = Aabb::from_corners(c, d);
            let u = b1.union(&b2);
            prop_assert!(u.contains_box(&b1));
            prop_assert!(u.contains_box(&b2));
        }

        #[test]
        fn point_distance_lower_bounds_member_distance(
            a in arb_point2(), b in arb_point2(), q in arb_point2(),
            t in 0.0f32..1.0, s in 0.0f32..1.0
        ) {
            let bx = Aabb::from_corners(a, b);
            // A point inside the box, by construction.
            let inside = Point::new([
                bx.min[0] + t * (bx.max[0] - bx.min[0]),
                bx.min[1] + s * (bx.max[1] - bx.min[1]),
            ]);
            prop_assert!(bx.contains_point(&inside));
            prop_assert!(
                bx.squared_distance_to_point(&q) <= q.squared_distance(&inside) + 1e-3
            );
        }

        #[test]
        fn box_min_distance_lower_bounds_pointwise(
            a in arb_point2(), b in arb_point2(), c in arb_point2(), d in arb_point2()
        ) {
            let b1 = Aabb::from_corners(a, b);
            let b2 = Aabb::from_corners(c, d);
            // min box distance must lower-bound distance between any corners
            let lb = b1.squared_distance_to_box(&b2);
            for p in [b1.min, b1.max] {
                for q in [b2.min, b2.max] {
                    prop_assert!(lb <= p.squared_distance(&q) + 1e-3);
                }
            }
        }

        #[test]
        fn max_box_distance_upper_bounds_pointwise(
            a in arb_point2(), b in arb_point2(), c in arb_point2(), d in arb_point2()
        ) {
            let b1 = Aabb::from_corners(a, b);
            let b2 = Aabb::from_corners(c, d);
            let ub = b1.squared_max_distance_to_box(&b2);
            for p in [b1.min, b1.max] {
                for q in [b2.min, b2.max] {
                    prop_assert!(ub >= p.squared_distance(&q) - 1e-3);
                }
            }
        }

        #[test]
        fn intersects_iff_min_distance_zero(
            a in arb_point2(), b in arb_point2(), c in arb_point2(), d in arb_point2()
        ) {
            let b1 = Aabb::from_corners(a, b);
            let b2 = Aabb::from_corners(c, d);
            prop_assert_eq!(b1.intersects(&b2), b1.squared_distance_to_box(&b2) == 0.0);
        }
    }
}
