//! Distance metrics.
//!
//! The paper's traversal (Algorithm 2) works for any metric whose value is
//! **greater than or equal to** the Euclidean distance: internal tree nodes
//! are pruned with the Euclidean point-to-box bound, which stays valid for
//! such metrics (§3, "Non-Euclidean metrics"). [`MutualReachability`] — the
//! HDBSCAN* distance of §4.5 — is exactly such a metric.
//!
//! All methods work on **squared** Euclidean quantities so hot paths can skip
//! square roots; a metric maps a squared Euclidean leaf distance to its own
//! squared distance.

use crate::{Point, Scalar};

/// A distance metric compatible with Euclidean lower-bound pruning.
///
/// Implementations must guarantee
/// `metric_sq(u, v, d²(u,v)) >= d²(u,v)` for all `u, v`, which makes pruning
/// internal BVH/kd nodes with the Euclidean box bound correct.
pub trait Metric: Sync {
    /// Squared metric distance between points with indices `u` and `v`,
    /// given their squared Euclidean distance `euclidean_sq`.
    fn squared_distance(&self, u: u32, v: u32, euclidean_sq: Scalar) -> Scalar;

    /// A lower bound on the squared metric distance from point `u` to *any*
    /// point of a subtree, given the squared Euclidean point-to-box bound.
    ///
    /// The default returns the Euclidean bound, which is valid for every
    /// metric satisfying the trait contract; [`MutualReachability`] sharpens
    /// it with the query's core distance.
    #[inline]
    fn squared_bound(&self, _u: u32, euclidean_box_sq: Scalar) -> Scalar {
        euclidean_box_sq
    }
}

/// Plain Euclidean distance.
#[derive(Clone, Copy, Debug, Default)]
pub struct Euclidean;

impl Metric for Euclidean {
    #[inline]
    fn squared_distance(&self, _u: u32, _v: u32, euclidean_sq: Scalar) -> Scalar {
        euclidean_sq
    }
}

/// Mutual reachability distance (HDBSCAN*, Campello et al. 2015):
///
/// `d_mreach(u, v) = max{ d_core(u), d_core(v), ‖u − v‖ }`
///
/// where `d_core(u)` is the distance from `u` to its `k_pts`-th nearest
/// neighbour (including itself). With `k_pts = 1` every core distance is 0
/// and the metric degenerates to Euclidean — a property the tests rely on.
///
/// Stores **squared** core distances so the traversal never leaves squared
/// space.
#[derive(Clone, Debug)]
pub struct MutualReachability<'a> {
    core_sq: &'a [Scalar],
}

impl<'a> MutualReachability<'a> {
    /// Creates the metric from per-point *squared* core distances.
    pub fn new(core_sq: &'a [Scalar]) -> Self {
        Self { core_sq }
    }

    /// The squared core distance of point `u`.
    #[inline]
    pub fn core_sq(&self, u: u32) -> Scalar {
        self.core_sq[u as usize]
    }

    /// Number of points the metric knows about.
    pub fn len(&self) -> usize {
        self.core_sq.len()
    }

    /// True when constructed over an empty point set.
    pub fn is_empty(&self) -> bool {
        self.core_sq.is_empty()
    }
}

impl Metric for MutualReachability<'_> {
    #[inline]
    fn squared_distance(&self, u: u32, v: u32, euclidean_sq: Scalar) -> Scalar {
        euclidean_sq.max(self.core_sq[u as usize]).max(self.core_sq[v as usize])
    }

    /// `d_mreach(u, ·) >= d_core(u)` always, so the box bound can be
    /// tightened to `max(d_core(u)², box²)`.
    #[inline]
    fn squared_bound(&self, u: u32, euclidean_box_sq: Scalar) -> Scalar {
        euclidean_box_sq.max(self.core_sq[u as usize])
    }
}

/// Brute-force squared core distances (reference implementation, O(n²·k));
/// used by tests and small examples. The production path is
/// `emst-hdbscan::core_distances`, which uses the BVH.
pub fn brute_force_core_distances_sq<const D: usize>(
    points: &[Point<D>],
    k_pts: usize,
) -> Vec<Scalar> {
    assert!(k_pts >= 1, "k_pts counts the point itself and must be >= 1");
    let n = points.len();
    let k = k_pts.min(n);
    let mut out = Vec::with_capacity(n);
    let mut dists = Vec::with_capacity(n);
    for p in points {
        dists.clear();
        dists.extend(points.iter().map(|q| p.squared_distance(q)));
        // k-th smallest including self (self contributes the 0 at rank 1).
        dists.sort_by(Scalar::total_cmp);
        out.push(dists[k - 1]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_is_identity_on_squared_distance() {
        assert_eq!(Euclidean.squared_distance(0, 1, 7.25), 7.25);
        assert_eq!(Euclidean.squared_bound(0, 3.0), 3.0);
    }

    #[test]
    fn mutual_reachability_takes_max_of_three() {
        let core_sq = [4.0, 1.0, 9.0];
        let m = MutualReachability::new(&core_sq);
        // euclidean dominates
        assert_eq!(m.squared_distance(0, 1, 16.0), 16.0);
        // core of u dominates
        assert_eq!(m.squared_distance(0, 1, 2.0), 4.0);
        // core of v dominates
        assert_eq!(m.squared_distance(1, 2, 2.0), 9.0);
    }

    #[test]
    fn mutual_reachability_bound_is_at_least_core() {
        let core_sq = [4.0, 0.0];
        let m = MutualReachability::new(&core_sq);
        assert_eq!(m.squared_bound(0, 1.0), 4.0);
        assert_eq!(m.squared_bound(0, 25.0), 25.0);
        assert_eq!(m.squared_bound(1, 1.0), 1.0);
    }

    #[test]
    fn mrd_dominates_euclidean() {
        // Trait contract: metric >= Euclidean.
        let core_sq = [0.5, 2.0, 0.0];
        let m = MutualReachability::new(&core_sq);
        for (u, v, e) in [(0u32, 1u32, 0.1f32), (1, 2, 1.0), (0, 2, 3.0)] {
            assert!(m.squared_distance(u, v, e) >= e);
        }
    }

    #[test]
    fn brute_force_core_distances_k1_is_zero() {
        let pts = vec![Point::new([0.0, 0.0]), Point::new([1.0, 0.0]), Point::new([0.0, 2.0])];
        let core = brute_force_core_distances_sq(&pts, 1);
        assert_eq!(core, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn brute_force_core_distances_k2_is_nearest_neighbor() {
        let pts = vec![Point::new([0.0, 0.0]), Point::new([1.0, 0.0]), Point::new([0.0, 2.0])];
        let core = brute_force_core_distances_sq(&pts, 2);
        assert_eq!(core, vec![1.0, 1.0, 4.0]);
    }

    #[test]
    fn brute_force_core_distances_k_clamped_to_n() {
        let pts = vec![Point::new([0.0, 0.0]), Point::new([3.0, 4.0])];
        let core = brute_force_core_distances_sq(&pts, 10);
        assert_eq!(core, vec![25.0, 25.0]);
    }
}
