//! Geometric primitives shared by every crate in the `emst` workspace.
//!
//! The paper ("A single-tree algorithm to compute the Euclidean minimum
//! spanning tree on GPUs", Prokopenko et al., ICPP 2022) operates on
//! low-dimensional (2D/3D) point clouds stored in single precision
//! (`Kokkos::View<float*>`). This crate mirrors that choice: coordinates are
//! [`f32`], and the dimension is a const generic so 2D and 3D code share one
//! implementation without dynamic dispatch.
//!
//! Contents:
//! - [`Point`] — a `D`-dimensional point;
//! - [`Aabb`] — axis-aligned bounding box (the BVH bounding volume);
//! - [`metric`] — the [`metric::Metric`] abstraction with
//!   [`metric::Euclidean`] and [`metric::MutualReachability`] (the HDBSCAN*
//!   distance of §4.5 of the paper).

// Loops over the const-generic dimension D index several parallel arrays;
// clippy's iterator suggestion does not apply cleanly there.
#![allow(clippy::needless_range_loop)]

pub mod aabb;
pub mod metric;
pub mod point;

pub use aabb::Aabb;
pub use metric::{brute_force_core_distances_sq, Euclidean, Metric, MutualReachability};
pub use point::Point;

/// The scalar type used for coordinates and distances throughout the
/// workspace. Single precision matches the paper's implementation.
pub type Scalar = f32;

/// Total order on non-negative floats via their IEEE-754 bit patterns.
///
/// For non-negative finite floats (and `+inf`), `a <= b` iff
/// `a.to_bits() <= b.to_bits()`, which lets device-style atomics order
/// distances as plain `u32` integers. Squared distances are always
/// non-negative, so this is safe everywhere in the workspace.
#[inline]
pub fn nonneg_f32_to_ordered_bits(x: f32) -> u32 {
    debug_assert!(x >= 0.0 || x.is_nan(), "ordered bits require non-negative input");
    x.to_bits()
}

/// Inverse of [`nonneg_f32_to_ordered_bits`].
#[inline]
pub fn ordered_bits_to_f32(bits: u32) -> f32 {
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_bits_is_monotone_on_nonnegative_floats() {
        let values = [0.0f32, 1e-30, 1e-3, 0.5, 1.0, 2.0, 1e10, f32::INFINITY];
        for w in values.windows(2) {
            assert!(
                nonneg_f32_to_ordered_bits(w[0]) < nonneg_f32_to_ordered_bits(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn ordered_bits_round_trips() {
        for x in [0.0f32, 0.25, 3.5, 1e20] {
            assert_eq!(ordered_bits_to_f32(nonneg_f32_to_ordered_bits(x)), x);
        }
    }
}
