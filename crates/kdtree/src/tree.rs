//! A median-split kd-tree with bucket leaves.
//!
//! Matches the structure MLPACK's EMST uses: recursive splits along the
//! widest dimension at the median, points stored contiguously per leaf so
//! dual-tree base cases scan cache-friendly ranges.

use emst_geometry::{Aabb, Point, Scalar};

/// Maximum number of points in a leaf bucket.
pub const LEAF_SIZE: usize = 24;

/// A node of the kd-tree. Children are indices into [`KdTree::nodes`];
/// leaves hold a range of the permuted point array.
#[derive(Clone, Debug)]
pub struct KdNode<const D: usize> {
    /// Tight bounding box of the node's points.
    pub aabb: Aabb<D>,
    /// Start of the node's range in the permuted point order.
    pub start: u32,
    /// One past the end of the node's range.
    pub end: u32,
    /// Child node indices, or `None` for leaves.
    pub children: Option<(u32, u32)>,
}

impl<const D: usize> KdNode<D> {
    /// Number of points under the node.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// True when the node holds no points (never constructed in practice).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True for bucket leaves.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }
}

/// A kd-tree over a point set.
#[derive(Clone, Debug)]
pub struct KdTree<const D: usize> {
    /// Flat node array; index 0 is the root.
    pub nodes: Vec<KdNode<D>>,
    /// Points permuted into tree order.
    pub points: Vec<Point<D>>,
    /// Permuted position -> original point index.
    pub order: Vec<u32>,
}

impl<const D: usize> KdTree<D> {
    /// Builds the tree by recursive median splits along the widest axis,
    /// with the default bucket size [`LEAF_SIZE`].
    pub fn build(points: &[Point<D>]) -> Self {
        Self::build_with_leaf_size(points, LEAF_SIZE)
    }

    /// Builds the tree with a caller-chosen bucket size. The WSPD baseline
    /// uses `leaf_size == 1` (the decomposition theorem needs splittable
    /// nodes all the way down); the dual-tree baseline uses the default.
    pub fn build_with_leaf_size(points: &[Point<D>], leaf_size: usize) -> Self {
        let n = points.len();
        assert!(n > 0, "cannot build a kd-tree over zero points");
        assert!(leaf_size >= 1);
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::with_capacity(2 * n / leaf_size.max(1) + 4);
        build_node(points, &mut order, 0, n, leaf_size, &mut nodes);
        let permuted: Vec<Point<D>> = order.iter().map(|&i| points[i as usize]).collect();
        Self { nodes, points: permuted, order }
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> &KdNode<D> {
        &self.nodes[0]
    }

    /// Number of points in the tree.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the tree is empty (cannot happen; `build` asserts).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Original index of the point at permuted position `pos`.
    #[inline]
    pub fn original_index(&self, pos: usize) -> u32 {
        self.order[pos]
    }

    /// Nearest neighbour of `query` among points accepted by `filter`
    /// (called with the permuted position). Returns `(position, squared
    /// distance)`.
    pub fn nearest_where<F: FnMut(usize) -> bool>(
        &self,
        query: &Point<D>,
        mut filter: F,
    ) -> Option<(usize, Scalar)> {
        let mut best: Option<(usize, Scalar)> = None;
        let mut radius = Scalar::INFINITY;
        let mut stack: Vec<u32> = vec![0];
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni as usize];
            if node.aabb.squared_distance_to_point(query) > radius {
                continue;
            }
            match node.children {
                None => {
                    for pos in node.start as usize..node.end as usize {
                        if !filter(pos) {
                            continue;
                        }
                        let d = query.squared_distance(&self.points[pos]);
                        let better = match best {
                            None => d <= radius,
                            Some((bp, bd)) => d < bd || (d == bd && pos < bp),
                        };
                        if better && d <= radius {
                            radius = d;
                            best = Some((pos, d));
                        }
                    }
                }
                Some((l, r)) => {
                    let dl = self.nodes[l as usize].aabb.squared_distance_to_point(query);
                    let dr = self.nodes[r as usize].aabb.squared_distance_to_point(query);
                    // Push farther first so the nearer pops first.
                    if dl <= dr {
                        stack.push(r);
                        stack.push(l);
                    } else {
                        stack.push(l);
                        stack.push(r);
                    }
                }
            }
        }
        best
    }
}

fn build_node<const D: usize>(
    points: &[Point<D>],
    order: &mut [u32],
    start: usize,
    end: usize,
    leaf_size: usize,
    nodes: &mut Vec<KdNode<D>>,
) -> u32 {
    let id = nodes.len() as u32;
    let mut aabb = Aabb::empty();
    for &i in &order[start..end] {
        aabb.expand_point(&points[i as usize]);
    }
    nodes.push(KdNode { aabb, start: start as u32, end: end as u32, children: None });
    let len = end - start;
    // Zero-extent (all-duplicate) ranges still split — by index — when the
    // caller wants singleton leaves (the WSPD case); bucket-leaf callers
    // stop there.
    if len <= leaf_size || (aabb.longest_extent() == 0.0 && leaf_size > 1) {
        return id;
    }
    let mid = start + len / 2;
    if aabb.longest_extent() > 0.0 {
        let axis = aabb.longest_axis();
        order[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
            points[a as usize][axis].total_cmp(&points[b as usize][axis]).then(a.cmp(&b))
        });
    }
    let left = build_node(points, order, start, mid, leaf_size, nodes);
    let right = build_node(points, order, mid, end, leaf_size, nodes);
    nodes[id as usize].children = Some((left, right));
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(0.0f32..1.0), rng.random_range(0.0f32..1.0)]))
            .collect()
    }

    fn validate<const D: usize>(tree: &KdTree<D>) {
        // Every node's box contains its points; children partition ranges.
        for node in &tree.nodes {
            for pos in node.start as usize..node.end as usize {
                assert!(node.aabb.contains_point(&tree.points[pos]));
            }
            if let Some((l, r)) = node.children {
                let (ln, rn) = (&tree.nodes[l as usize], &tree.nodes[r as usize]);
                assert_eq!(ln.start, node.start);
                assert_eq!(ln.end, rn.start);
                assert_eq!(rn.end, node.end);
            }
        }
        // Order is a permutation.
        let mut o = tree.order.clone();
        o.sort_unstable();
        assert!(o.iter().enumerate().all(|(i, &v)| i as u32 == v));
    }

    #[test]
    fn builds_and_validates() {
        let pts = random_points(500, 1);
        let tree = KdTree::build(&pts);
        validate(&tree);
        assert_eq!(tree.len(), 500);
        assert_eq!(tree.root().len(), 500);
    }

    #[test]
    fn single_point_tree() {
        let tree = KdTree::build(&[Point::new([1.0f32, 2.0])]);
        validate(&tree);
        assert!(tree.root().is_leaf());
        assert!(!tree.root().is_empty());
    }

    #[test]
    fn duplicate_points_build_without_recursion_blowup() {
        let pts = vec![Point::new([0.5f32, 0.5]); 1000];
        let tree = KdTree::build(&pts);
        validate(&tree);
        // Degenerate extent stops splitting: a single leaf.
        assert!(tree.root().is_leaf());
    }

    #[test]
    fn nearest_where_matches_brute_force() {
        let pts = random_points(300, 7);
        let tree = KdTree::build(&pts);
        let q = Point::new([0.4, 0.6]);
        let (pos, d) = tree.nearest_where(&q, |_| true).unwrap();
        let bd = pts.iter().map(|p| q.squared_distance(p)).fold(f32::INFINITY, f32::min);
        assert_eq!(d, bd);
        assert_eq!(q.squared_distance(&tree.points[pos]), bd);
    }

    #[test]
    fn nearest_where_respects_filter() {
        let pts = vec![Point::new([0.0f32, 0.0]), Point::new([1.0, 0.0]), Point::new([2.0, 0.0])];
        let tree = KdTree::build(&pts);
        let q = Point::new([0.1, 0.0]);
        // Exclude the true nearest (original index 0).
        let (pos, _) = tree.nearest_where(&q, |pos| tree.original_index(pos) != 0).unwrap();
        assert_eq!(tree.original_index(pos), 1);
        // Exclude everything.
        assert!(tree.nearest_where(&q, |_| false).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn trees_validate_and_nn_matches(n in 1usize..300, seed in 0u64..500) {
            let pts = random_points(n, seed);
            let tree = KdTree::build(&pts);
            validate(&tree);
            let q = Point::new([0.5, 0.5]);
            let (_, d) = tree.nearest_where(&q, |_| true).unwrap();
            let bd = pts.iter().map(|p| q.squared_distance(p)).fold(f32::INFINITY, f32::min);
            prop_assert_eq!(d, bd);
        }
    }
}
