//! Single-tree Borůvka EMST over a **k-d tree** — the paper's generality
//! claim made concrete (§3: "the described algorithms are general and are
//! applicable to other tree structures such as k-d tree").
//!
//! Same algorithm as `emst-core`'s BVH version: per-iteration component
//! labels propagated into internal nodes (Optimization 1), per-component
//! upper bounds from tree-order neighbour pairs (Optimization 2), one
//! constrained nearest-neighbour traversal per point, chain merging. The
//! differences are purely structural: bucket leaves instead of singleton
//! leaves, and a recursive node layout instead of the Karras radix tree.
//!
//! Sequential by design — the point of the BVH variant is GPU suitability;
//! this one demonstrates that the algorithm itself is tree-agnostic, and is
//! cross-checked against both the brute-force oracle and the BVH
//! implementation.

use emst_core::Edge;
use emst_exec::PhaseTimings;
use emst_geometry::{nonneg_f32_to_ordered_bits, Point, Scalar};

use crate::tree::KdTree;

const INVALID_COMP: u32 = u32::MAX;

/// Result of the kd-tree single-tree Borůvka run.
#[derive(Clone, Debug)]
pub struct KdSingleTreeResult {
    /// The `n − 1` edges (original indices, `u < v`).
    pub edges: Vec<Edge>,
    /// Sum of edge weights in `f64`.
    pub total_weight: f64,
    /// Borůvka iterations executed.
    pub iterations: u32,
    /// `"tree"` / `"mst"` phases.
    pub timings: PhaseTimings,
    /// Point-distance computations during traversals.
    pub distance_computations: u64,
}

#[derive(Clone, Copy)]
struct Candidate {
    dist_sq: Scalar,
    /// Canonical endpoints in permuted-position space, `a < b`.
    a: u32,
    b: u32,
}

impl Candidate {
    const NONE: Candidate = Candidate { dist_sq: Scalar::INFINITY, a: u32::MAX, b: u32::MAX };

    #[inline]
    fn key(&self) -> (u32, u32, u32) {
        (nonneg_f32_to_ordered_bits(self.dist_sq), self.a, self.b)
    }
}

/// Computes the EMST with the single-tree Borůvka algorithm over a k-d tree.
pub fn kd_single_tree_emst<const D: usize>(points: &[Point<D>]) -> KdSingleTreeResult {
    let n = points.len();
    let mut timings = PhaseTimings::new();
    if n < 2 {
        return KdSingleTreeResult {
            edges: vec![],
            total_weight: 0.0,
            iterations: 0,
            timings,
            distance_computations: 0,
        };
    }
    let tree = timings.time("tree", || KdTree::build(points));
    let mst_start = std::time::Instant::now();

    // Component labels in permuted-position space (position == leaf slot).
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut node_comp = vec![INVALID_COMP; tree.nodes.len()];
    let mut upper = vec![Scalar::INFINITY; n];
    let mut cand: Vec<Candidate> = vec![Candidate::NONE; n];
    let mut next_arr = vec![u32::MAX; n];
    let mut edges = Vec::with_capacity(n - 1);
    let mut num_components = n;
    let mut iterations = 0u32;
    let mut distance_computations = 0u64;

    while num_components > 1 {
        iterations += 1;
        assert!(iterations <= 64, "kd single-tree Borůvka failed to converge");

        // Optimization 1: label internal nodes (children follow parents in
        // the flat array, so reverse order is bottom-up).
        for i in (0..tree.nodes.len()).rev() {
            node_comp[i] = match tree.nodes[i].children {
                None => {
                    let node = &tree.nodes[i];
                    let first = labels[node.start as usize];
                    if (node.start as usize + 1..node.end as usize).all(|p| labels[p] == first) {
                        first
                    } else {
                        INVALID_COMP
                    }
                }
                Some((l, r)) => {
                    let (cl, cr) = (node_comp[l as usize], node_comp[r as usize]);
                    if cl != INVALID_COMP && cl == cr {
                        cl
                    } else {
                        INVALID_COMP
                    }
                }
            };
        }

        // Optimization 2: upper bounds from tree-order neighbour pairs
        // (consecutive positions are spatially close for a kd layout, the
        // same role Z-curve neighbours play for the BVH).
        for u in upper.iter_mut() {
            *u = Scalar::INFINITY;
        }
        for i in 0..n - 1 {
            let (li, lj) = (labels[i], labels[i + 1]);
            if li != lj {
                let d = tree.points[i].squared_distance(&tree.points[i + 1]);
                distance_computations += 1;
                if d < upper[li as usize] {
                    upper[li as usize] = d;
                }
                if d < upper[lj as usize] {
                    upper[lj as usize] = d;
                }
            }
        }

        // Constrained nearest-neighbour per point + component reduction.
        for c in cand.iter_mut() {
            *c = Candidate::NONE;
        }
        for i in 0..n {
            let comp = labels[i];
            let radius = upper[comp as usize];
            if let Some((ngb, d)) = nearest_other_component(
                &tree,
                &labels,
                &node_comp,
                i,
                radius,
                &mut distance_computations,
            ) {
                let c = Candidate { dist_sq: d, a: (i as u32).min(ngb), b: (i as u32).max(ngb) };
                if c.key() < cand[comp as usize].key() {
                    cand[comp as usize] = c;
                }
            }
        }

        // Merge along the chains (same logic as the BVH implementation).
        for i in 0..n {
            next_arr[i] = if labels[i] == i as u32 {
                let e = cand[i];
                debug_assert!(e.a != u32::MAX, "component {i} found no outgoing edge");
                let tgt = if labels[e.a as usize] == i as u32 { e.b } else { e.a };
                labels[tgt as usize]
            } else {
                u32::MAX
            };
        }
        for i in 0..n {
            if labels[i] != i as u32 {
                continue;
            }
            let b = next_arr[i] as usize;
            let mutual = next_arr[b] == i as u32;
            if !(mutual && (b as u32) < i as u32) {
                let e = cand[i];
                edges.push(Edge::new(
                    tree.original_index(e.a as usize),
                    tree.original_index(e.b as usize),
                    e.dist_sq,
                ));
            }
        }
        for i in 0..n {
            let mut c = labels[i];
            loop {
                let nx = next_arr[c as usize];
                if next_arr[nx as usize] == c {
                    labels[i] = c.min(nx);
                    break;
                }
                c = nx;
            }
        }
        num_components = (0..n).filter(|&i| labels[i] == i as u32).count();
    }
    timings.record("mst", mst_start.elapsed().as_secs_f64());

    KdSingleTreeResult {
        total_weight: emst_core::edge::total_weight(&edges),
        edges,
        iterations,
        timings,
        distance_computations,
    }
}

/// Algorithm 2 of the paper over the kd-tree: nearest neighbour of
/// `tree.points[query_pos]` in a different component, at squared distance
/// ≤ `radius`. Ties resolve to the smallest position (required for the
/// Borůvka tie-breaking total order).
fn nearest_other_component<const D: usize>(
    tree: &KdTree<D>,
    labels: &[u32],
    node_comp: &[u32],
    query_pos: usize,
    mut radius: Scalar,
    distance_computations: &mut u64,
) -> Option<(u32, Scalar)> {
    let comp = labels[query_pos];
    let q = &tree.points[query_pos];
    let mut best: Option<(u32, Scalar)> = None;
    // (distance at push time, node id)
    let mut stack: Vec<(Scalar, u32)> = Vec::with_capacity(64);
    stack.push((0.0, 0));
    while let Some((d_node, ni)) = stack.pop() {
        if d_node > radius {
            continue;
        }
        let node = &tree.nodes[ni as usize];
        // Optimization 1: the whole subtree is in the query's component.
        if node_comp[ni as usize] == comp {
            continue;
        }
        match node.children {
            None => {
                for pos in node.start as usize..node.end as usize {
                    if labels[pos] == comp {
                        continue;
                    }
                    let d = q.squared_distance(&tree.points[pos]);
                    *distance_computations += 1;
                    if d > radius {
                        continue;
                    }
                    let better = match best {
                        None => true,
                        Some((bp, bd)) => d < bd || (d == bd && (pos as u32) < bp),
                    };
                    if better {
                        radius = d;
                        best = Some((pos as u32, d));
                    }
                }
            }
            Some((l, r)) => {
                let dl = tree.nodes[l as usize].aabb.squared_distance_to_point(q);
                let dr = tree.nodes[r as usize].aabb.squared_distance_to_point(q);
                // Push farther first so the nearer pops first; keep
                // equality (tie candidates live exactly at the radius).
                let (near, far) = if dl <= dr { ((dl, l), (dr, r)) } else { ((dr, r), (dl, l)) };
                if far.0 <= radius {
                    stack.push(far);
                }
                if near.0 <= radius {
                    stack.push(near);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_core::brute::brute_force_emst;
    use emst_core::edge::{verify_spanning_tree, weight_multiset};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(-1.0f32..1.0), rng.random_range(-1.0f32..1.0)]))
            .collect()
    }

    #[test]
    fn trivial_sizes() {
        assert!(kd_single_tree_emst::<2>(&[]).edges.is_empty());
        assert!(kd_single_tree_emst(&[Point::new([1.0f32, 1.0])]).edges.is_empty());
        let two = [Point::new([0.0f32, 0.0]), Point::new([3.0, 4.0])];
        let r = kd_single_tree_emst(&two);
        assert_eq!(r.edges, vec![Edge::new(0, 1, 25.0)]);
    }

    #[test]
    fn matches_brute_force_on_random_sets() {
        for seed in 0..5 {
            let pts = random_points(300, seed);
            let r = kd_single_tree_emst(&pts);
            verify_spanning_tree(pts.len(), &r.edges).unwrap();
            assert_eq!(
                weight_multiset(&r.edges),
                weight_multiset(&brute_force_emst(&pts)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn grid_ties_and_duplicates() {
        let mut pts: Vec<Point<2>> =
            (0..9).flat_map(|x| (0..9).map(move |y| Point::new([x as f32, y as f32]))).collect();
        pts.extend(std::iter::repeat_n(Point::new([4.0, 4.0]), 12));
        let r = kd_single_tree_emst(&pts);
        verify_spanning_tree(pts.len(), &r.edges).unwrap();
        assert_eq!(weight_multiset(&r.edges), weight_multiset(&brute_force_emst(&pts)));
    }

    #[test]
    fn agrees_with_bvh_single_tree() {
        use emst_core::{EmstConfig, SingleTreeBoruvka};
        use emst_exec::Serial;
        let pts = random_points(800, 33);
        let kd = kd_single_tree_emst(&pts);
        let bvh = SingleTreeBoruvka::new(&pts).run(&Serial, &EmstConfig::default());
        assert_eq!(weight_multiset(&kd.edges), weight_multiset(&bvh.edges));
        assert!((kd.total_weight - bvh.total_weight).abs() < 1e-6 * kd.total_weight);
    }

    #[test]
    fn three_dimensions_match() {
        let mut rng = StdRng::seed_from_u64(44);
        let pts: Vec<Point<3>> = (0..200)
            .map(|_| {
                Point::new([
                    rng.random_range(0.0f32..1.0),
                    rng.random_range(0.0f32..1.0),
                    rng.random_range(0.0f32..1.0),
                ])
            })
            .collect();
        let r = kd_single_tree_emst(&pts);
        verify_spanning_tree(pts.len(), &r.edges).unwrap();
        assert_eq!(weight_multiset(&r.edges), weight_multiset(&brute_force_emst(&pts)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn kd_single_tree_equals_brute_force(n in 2usize..120, seed in 0u64..5000) {
            let pts = random_points(n, seed);
            let r = kd_single_tree_emst(&pts);
            prop_assert!(verify_spanning_tree(n, &r.edges).is_ok());
            prop_assert_eq!(
                weight_multiset(&r.edges),
                weight_multiset(&brute_force_emst(&pts))
            );
        }

        #[test]
        fn kd_single_tree_on_integer_ties(n in 2usize..80, seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let pts: Vec<Point<2>> = (0..n)
                .map(|_| Point::new([
                    rng.random_range(0i32..5) as f32,
                    rng.random_range(0i32..5) as f32,
                ]))
                .collect();
            let r = kd_single_tree_emst(&pts);
            prop_assert!(verify_spanning_tree(n, &r.edges).is_ok());
            prop_assert_eq!(
                weight_multiset(&r.edges),
                weight_multiset(&brute_force_emst(&pts))
            );
        }
    }
}
