//! kd-tree and the **dual-tree Borůvka** EMST baseline.
//!
//! This crate reimplements the comparison algorithm the paper benchmarks as
//! *MLPACK*: the dual-tree Euclidean MST of March, Ram & Gray (KDD 2010).
//! Instead of one nearest-neighbour traversal per point (the single-tree
//! approach of `emst-core`), a dual-tree traversal walks *pairs* of tree
//! nodes, amortizing work across all points of a node and pruning with
//! node-to-node distance bounds and component-membership checks
//! ("fully-connected" nodes, the same idea as the paper's Optimization 1).
//!
//! The paper uses this baseline sequentially (its Fig. 5); so do we — the
//! published dual-tree algorithm is the part that is hard to parallelize on
//! GPUs, which is the paper's motivation for going single-tree.
//!
//! Also included: [`prim::bentley_friedman_emst`], the original single-tree
//! EMST of Bentley & Friedman (1978) that both papers descend from, and
//! [`single_tree::kd_single_tree_emst`] — the paper's own single-tree
//! Borůvka algorithm running over a k-d tree instead of a BVH (its §3
//! generality claim).

// Several loops index multiple parallel arrays by position; clippy's
// enumerate suggestion does not apply cleanly there.
#![allow(clippy::needless_range_loop)]

pub mod dualtree;
pub mod prim;
pub mod single_tree;
pub mod tree;

pub use dualtree::{dual_tree_emst, DualTreeResult};
pub use prim::bentley_friedman_emst;
pub use single_tree::{kd_single_tree_emst, KdSingleTreeResult};
pub use tree::KdTree;
