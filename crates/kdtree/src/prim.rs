//! Bentley–Friedman (1978): Prim's algorithm with kd-tree nearest-neighbour
//! queries — the original single-tree EMST both the paper and the dual-tree
//! work descend from, and the paper's motivating strawman (§1: "a
//! straightforward implementation of this approach performs poorly" because
//! nearest-neighbour queries repeat for the same points).
//!
//! Kept as a reference baseline for the ablation narrative and for tests;
//! not part of the paper's measured comparisons.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use emst_core::Edge;
use emst_geometry::Point;

use crate::tree::KdTree;

/// Heap entry: `(ordered distance bits, source, target)` — min-heap via
/// `Reverse`. Distance bits give a total order on non-negative floats.
type HeapEntry = Reverse<(u32, u32, u32)>;

/// Computes the EMST with Prim + kd-tree nearest-neighbour queries.
///
/// Each in-tree point holds one candidate (its nearest out-of-tree point) in
/// a priority queue; when a stale candidate (target already absorbed) is
/// popped, the query is re-run — the redundant distance computations the
/// paper's introduction calls out.
pub fn bentley_friedman_emst<const D: usize>(points: &[Point<D>]) -> Vec<Edge> {
    let n = points.len();
    if n < 2 {
        return vec![];
    }
    let tree = KdTree::build(points);
    // Permuted-position of each original index, to mark visited in tree order.
    let mut pos_of = vec![0u32; n];
    for (pos, &orig) in tree.order.iter().enumerate() {
        pos_of[orig as usize] = pos as u32;
    }
    let mut in_tree = vec![false; n]; // indexed by permuted position
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
    let mut edges = Vec::with_capacity(n - 1);

    let push_candidate = |heap: &mut BinaryHeap<HeapEntry>, in_tree: &[bool], src_pos: u32| {
        let q = &tree.points[src_pos as usize];
        if let Some((tgt, d)) = tree.nearest_where(q, |p| !in_tree[p]) {
            heap.push(Reverse((emst_geometry::nonneg_f32_to_ordered_bits(d), src_pos, tgt as u32)));
        }
    };

    in_tree[0] = true;
    push_candidate(&mut heap, &in_tree, 0);

    while edges.len() < n - 1 {
        let Reverse((dist_bits, src, tgt)) = heap.pop().expect("graph is complete");
        if in_tree[tgt as usize] {
            // Stale: the target was absorbed meanwhile — requery.
            push_candidate(&mut heap, &in_tree, src);
            continue;
        }
        in_tree[tgt as usize] = true;
        edges.push(Edge::new(
            tree.original_index(src as usize),
            tree.original_index(tgt as usize),
            f32::from_bits(dist_bits),
        ));
        push_candidate(&mut heap, &in_tree, src);
        push_candidate(&mut heap, &in_tree, tgt);
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_core::brute::brute_force_emst;
    use emst_core::edge::{verify_spanning_tree, weight_multiset};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(0.0f32..1.0), rng.random_range(0.0f32..1.0)]))
            .collect()
    }

    #[test]
    fn trivial_sizes() {
        assert!(bentley_friedman_emst::<2>(&[]).is_empty());
        assert!(bentley_friedman_emst(&[Point::new([0.0f32, 0.0])]).is_empty());
    }

    #[test]
    fn matches_brute_force() {
        for seed in 0..5 {
            let pts = random_points(150, seed);
            let edges = bentley_friedman_emst(&pts);
            verify_spanning_tree(pts.len(), &edges).unwrap();
            assert_eq!(
                weight_multiset(&edges),
                weight_multiset(&brute_force_emst(&pts)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn handles_duplicates() {
        let mut pts = random_points(40, 9);
        pts.extend(std::iter::repeat_n(pts[3], 10));
        let edges = bentley_friedman_emst(&pts);
        verify_spanning_tree(pts.len(), &edges).unwrap();
        assert_eq!(weight_multiset(&edges), weight_multiset(&brute_force_emst(&pts)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prim_equals_brute_force(n in 2usize..100, seed in 0u64..2000) {
            let pts = random_points(n, seed);
            let edges = bentley_friedman_emst(&pts);
            prop_assert!(verify_spanning_tree(n, &edges).is_ok());
            prop_assert_eq!(
                weight_multiset(&edges),
                weight_multiset(&brute_force_emst(&pts))
            );
        }
    }
}
