//! Dual-tree Borůvka EMST (March, Ram & Gray 2010) — the MLPACK baseline.
//!
//! Borůvka iterations where each round's shortest-outgoing-edge search is a
//! single **dual-tree traversal**: pairs of kd-tree nodes `(Q, R)` are pruned
//! when (a) both are entirely inside one component ("fully connected", the
//! dual-tree ancestor of the paper's Optimization 1), or (b) the minimum
//! box-to-box distance exceeds `Q`'s *bound* — the largest candidate-edge
//! distance still improvable for any component with points under `Q`
//! (March et al.'s `B(N_q)`).
//!
//! Components are tracked with a union-find; candidate edges are compared
//! under the `(weight, min, max)` total order so the computed tree matches
//! the brute-force Kruskal oracle edge-for-edge.

use emst_core::{Edge, UnionFind};
use emst_exec::PhaseTimings;
use emst_geometry::{Point, Scalar};

use crate::tree::{KdNode, KdTree};

/// Result of the dual-tree EMST computation.
#[derive(Clone, Debug)]
pub struct DualTreeResult {
    /// The `n − 1` tree edges (original indices, `u < v`).
    pub edges: Vec<Edge>,
    /// Sum of edge weights in `f64`.
    pub total_weight: f64,
    /// Borůvka iterations executed.
    pub iterations: u32,
    /// `"tree"` and `"mst"` wall-clock phases.
    pub timings: PhaseTimings,
    /// Point-pair distance computations (for work comparisons).
    pub distance_computations: u64,
}

const INVALID_COMP: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct Candidate {
    dist_sq: Scalar,
    u: u32,
    v: u32,
}

impl Candidate {
    const NONE: Candidate = Candidate { dist_sq: Scalar::INFINITY, u: u32::MAX, v: u32::MAX };

    #[inline]
    fn key(&self) -> (u32, u32, u32) {
        (emst_geometry::nonneg_f32_to_ordered_bits(self.dist_sq), self.u, self.v)
    }
}

struct Traversal<'a, const D: usize> {
    tree: &'a KdTree<D>,
    labels: &'a [u32],
    node_comp: &'a [u32],
    node_bound: &'a mut [Scalar],
    /// Best candidate per component representative (permuted-position id).
    cand: &'a mut [Candidate],
    distance_computations: u64,
}

impl<const D: usize> Traversal<'_, D> {
    fn traverse(&mut self, q: usize, r: usize) {
        let (qn, rn) = (&self.tree.nodes[q], &self.tree.nodes[r]);
        // Prune 1: both subtrees inside one component.
        if self.node_comp[q] != INVALID_COMP && self.node_comp[q] == self.node_comp[r] {
            return;
        }
        // Prune 2: R cannot improve any component under Q.
        if qn.aabb.squared_distance_to_box(&rn.aabb) > self.node_bound[q] {
            return;
        }
        match (qn.children, rn.children) {
            (None, None) => self.base_case(q, r),
            (Some((ql, qr)), None) => {
                self.traverse(ql as usize, r);
                self.traverse(qr as usize, r);
                self.refresh_internal_bound(q, ql, qr);
            }
            (None, Some((rl, rr))) => {
                // Visit the nearer R child first for tighter bounds.
                let (first, second) = self.order_by_distance(q, rl, rr);
                self.traverse(q, first);
                self.traverse(q, second);
            }
            (Some((ql, qr)), Some((rl, rr))) => {
                for qc in [ql as usize, qr as usize] {
                    let (first, second) = self.order_by_distance(qc, rl, rr);
                    self.traverse(qc, first);
                    self.traverse(qc, second);
                }
                self.refresh_internal_bound(q, ql, qr);
            }
        }
    }

    fn order_by_distance(&self, q: usize, rl: u32, rr: u32) -> (usize, usize) {
        let qb = &self.tree.nodes[q].aabb;
        let dl = qb.squared_distance_to_box(&self.tree.nodes[rl as usize].aabb);
        let dr = qb.squared_distance_to_box(&self.tree.nodes[rr as usize].aabb);
        if dl <= dr {
            (rl as usize, rr as usize)
        } else {
            (rr as usize, rl as usize)
        }
    }

    fn refresh_internal_bound(&mut self, q: usize, ql: u32, qr: u32) {
        self.node_bound[q] = self.node_bound[ql as usize].max(self.node_bound[qr as usize]);
    }

    fn base_case(&mut self, q: usize, r: usize) {
        let qn: &KdNode<D> = &self.tree.nodes[q];
        let rn: &KdNode<D> = &self.tree.nodes[r];
        for a in qn.start as usize..qn.end as usize {
            let ca = self.labels[a];
            // Point-level prune: R cannot improve a's component.
            let pa = &self.tree.points[a];
            if rn.aabb.squared_distance_to_point(pa) > self.cand[ca as usize].dist_sq {
                continue;
            }
            let a_orig = self.tree.original_index(a);
            for b in rn.start as usize..rn.end as usize {
                if self.labels[b] == ca {
                    continue;
                }
                let d = pa.squared_distance(&self.tree.points[b]);
                self.distance_computations += 1;
                let b_orig = self.tree.original_index(b);
                let cand = Candidate { dist_sq: d, u: a_orig.min(b_orig), v: a_orig.max(b_orig) };
                if cand.key() < self.cand[ca as usize].key() {
                    self.cand[ca as usize] = cand;
                }
            }
        }
        // Refresh the leaf bound: the worst candidate among components
        // present in this leaf.
        let mut bound: Scalar = 0.0;
        for a in qn.start as usize..qn.end as usize {
            bound = bound.max(self.cand[self.labels[a] as usize].dist_sq);
        }
        self.node_bound[q] = bound;
    }
}

/// Computes the EMST with dual-tree Borůvka. Sequential, as in the paper's
/// use of MLPACK.
pub fn dual_tree_emst<const D: usize>(points: &[Point<D>]) -> DualTreeResult {
    let n = points.len();
    let mut timings = PhaseTimings::new();
    if n < 2 {
        return DualTreeResult {
            edges: vec![],
            total_weight: 0.0,
            iterations: 0,
            timings,
            distance_computations: 0,
        };
    }
    let tree = timings.time("tree", || KdTree::build(points));
    let mst_start = std::time::Instant::now();

    let mut dsu = UnionFind::new(n);
    let mut labels = vec![0u32; n];
    let mut node_comp = vec![INVALID_COMP; tree.nodes.len()];
    let mut node_bound = vec![Scalar::INFINITY; tree.nodes.len()];
    let mut cand = vec![Candidate::NONE; n];
    let mut edges: Vec<Edge> = Vec::with_capacity(n - 1);
    let mut iterations = 0u32;
    let mut distance_computations = 0u64;

    while dsu.num_sets() > 1 {
        iterations += 1;
        assert!(iterations <= 64, "dual-tree Borůvka failed to converge");

        // Refresh per-position labels (DSU representatives).
        for pos in 0..n {
            labels[pos] = dsu.find(tree.original_index(pos) as usize) as u32;
        }
        // Mark fully-connected nodes bottom-up (children follow parents in
        // the flat array, so reverse order visits children first).
        for i in (0..tree.nodes.len()).rev() {
            node_comp[i] = match tree.nodes[i].children {
                None => {
                    let node = &tree.nodes[i];
                    let first = labels[node.start as usize];
                    let uniform =
                        (node.start as usize + 1..node.end as usize).all(|p| labels[p] == first);
                    if uniform {
                        first
                    } else {
                        INVALID_COMP
                    }
                }
                Some((l, r)) => {
                    let (cl, cr) = (node_comp[l as usize], node_comp[r as usize]);
                    if cl != INVALID_COMP && cl == cr {
                        cl
                    } else {
                        INVALID_COMP
                    }
                }
            };
        }
        node_bound.fill(Scalar::INFINITY);
        for c in cand.iter_mut() {
            *c = Candidate::NONE;
        }

        let mut t = Traversal {
            tree: &tree,
            labels: &labels,
            node_comp: &node_comp,
            node_bound: &mut node_bound,
            cand: &mut cand,
            distance_computations: 0,
        };
        t.traverse(0, 0);
        distance_computations += t.distance_computations;

        // Add each component's winning edge; the union-find deduplicates
        // mutual pairs and guards against cycles.
        let mut reps: Vec<u32> = labels.clone();
        reps.sort_unstable();
        reps.dedup();
        // Process candidates in key order so equal-weight races resolve the
        // same way Kruskal does.
        reps.sort_by_key(|&c| cand[c as usize].key());
        for &c in &reps {
            let e = cand[c as usize];
            debug_assert!(e.u != u32::MAX, "component {c} found no outgoing edge");
            if dsu.union(e.u as usize, e.v as usize) {
                edges.push(Edge::new(e.u, e.v, e.dist_sq));
            }
        }
    }
    timings.record("mst", mst_start.elapsed().as_secs_f64());

    DualTreeResult {
        total_weight: emst_core::edge::total_weight(&edges),
        edges,
        iterations,
        timings,
        distance_computations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_core::brute::brute_force_emst;
    use emst_core::edge::{verify_spanning_tree, weight_multiset};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(-1.0f32..1.0), rng.random_range(-1.0f32..1.0)]))
            .collect()
    }

    #[test]
    fn trivial_sizes() {
        assert!(dual_tree_emst::<2>(&[]).edges.is_empty());
        assert!(dual_tree_emst(&[Point::new([1.0f32, 1.0])]).edges.is_empty());
        let two = [Point::new([0.0f32, 0.0]), Point::new([3.0, 4.0])];
        let r = dual_tree_emst(&two);
        assert_eq!(r.edges, vec![Edge::new(0, 1, 25.0)]);
        assert_eq!(r.total_weight, 5.0);
    }

    #[test]
    fn matches_brute_force_on_random_sets() {
        for seed in 0..5 {
            let pts = random_points(250, seed);
            let r = dual_tree_emst(&pts);
            verify_spanning_tree(pts.len(), &r.edges).unwrap();
            let brute = brute_force_emst(&pts);
            assert_eq!(weight_multiset(&r.edges), weight_multiset(&brute), "seed {seed}");
        }
    }

    #[test]
    fn grid_ties_match_brute_force() {
        let pts: Vec<Point<2>> =
            (0..10).flat_map(|x| (0..10).map(move |y| Point::new([x as f32, y as f32]))).collect();
        let r = dual_tree_emst(&pts);
        verify_spanning_tree(100, &r.edges).unwrap();
        assert_eq!(weight_multiset(&r.edges), weight_multiset(&brute_force_emst(&pts)));
    }

    #[test]
    fn duplicates_match_brute_force() {
        let mut pts = random_points(60, 3);
        let d = pts[5];
        pts.extend(std::iter::repeat_n(d, 15));
        let r = dual_tree_emst(&pts);
        verify_spanning_tree(pts.len(), &r.edges).unwrap();
        assert_eq!(weight_multiset(&r.edges), weight_multiset(&brute_force_emst(&pts)));
    }

    #[test]
    fn three_dimensions_match() {
        let mut rng = StdRng::seed_from_u64(11);
        let pts: Vec<Point<3>> = (0..180)
            .map(|_| {
                Point::new([
                    rng.random_range(0.0f32..1.0),
                    rng.random_range(0.0f32..1.0),
                    rng.random_range(0.0f32..1.0),
                ])
            })
            .collect();
        let r = dual_tree_emst(&pts);
        verify_spanning_tree(pts.len(), &r.edges).unwrap();
        assert_eq!(weight_multiset(&r.edges), weight_multiset(&brute_force_emst(&pts)));
    }

    #[test]
    fn pruning_skips_most_distance_computations() {
        let pts = random_points(2000, 21);
        let r = dual_tree_emst(&pts);
        let all_pairs = (2000u64 * 1999) / 2;
        assert!(
            r.distance_computations < all_pairs / 4,
            "dual-tree did {} of {} possible distance computations",
            r.distance_computations,
            all_pairs
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn dual_tree_equals_brute_force(n in 2usize..120, seed in 0u64..5000) {
            let pts = random_points(n, seed);
            let r = dual_tree_emst(&pts);
            prop_assert!(verify_spanning_tree(n, &r.edges).is_ok());
            let brute = brute_force_emst(&pts);
            prop_assert_eq!(weight_multiset(&r.edges), weight_multiset(&brute));
        }

        #[test]
        fn dual_tree_on_integer_ties(n in 2usize..80, seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let pts: Vec<Point<2>> = (0..n)
                .map(|_| Point::new([
                    rng.random_range(0i32..5) as f32,
                    rng.random_range(0i32..5) as f32,
                ]))
                .collect();
            let r = dual_tree_emst(&pts);
            prop_assert!(verify_spanning_tree(n, &r.edges).is_ok());
            prop_assert_eq!(
                weight_multiset(&r.edges),
                weight_multiset(&brute_force_emst(&pts))
            );
        }
    }
}
