//! A leveled structured logger: text or JSON lines, to stderr or a file.
//!
//! The workspace previously reported serve-side diagnostics with ad-hoc
//! `eprintln!` calls, which a JSON-consuming supervisor cannot parse and
//! a quiet deployment cannot silence. This module is the replacement: a
//! process-global logger with
//!
//! - a [`Level`] threshold (`debug` < `info` < `warn` < `error`),
//! - a [`Format`] (`text` for humans, `json` for machines — one JSON
//!   object per line), and
//! - a sink (stderr by default, or an append-opened file).
//!
//! Call sites pass a *target* (the emitting subsystem, e.g.
//! `emst-serve`), a message, and a list of `key = value` fields:
//!
//! ```
//! emst_obs::log::warn("emst-serve", "spill write failed", &[("key", "uniform-1000")]);
//! ```
//!
//! In JSON format the line is `{"ts":…,"level":"warn","target":"…",
//! "msg":"…","key":"uniform-1000"}` — the keys `ts`, `level`, `target`
//! and `msg` are reserved for the envelope, so field keys must avoid
//! them. Level and format live in relaxed atomics (reading them is free)
//! and the sink behind a mutex taken only when a record passes the
//! threshold.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ordered `Debug < Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Verbose diagnostics (per-query chatter).
    Debug = 0,
    /// Lifecycle events (engine start, cache admissions).
    Info = 1,
    /// Degraded but continuing (spill write failed, collision verified).
    Warn = 2,
    /// Operation failed.
    Error = 3,
}

impl Level {
    /// Lower-case name (`"warn"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a lower-case name.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// Output format of the global logger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Human-readable single lines: `[warn emst-serve] msg key="value"`.
    Text = 0,
    /// One JSON object per line.
    Json = 1,
}

impl Format {
    /// Lower-case name (`"json"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Format::Text => "text",
            Format::Json => "json",
        }
    }

    /// Parses a lower-case name (the CLI's `--log-format` values).
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            _ => None,
        }
    }
}

enum Sink {
    Stderr,
    File(File),
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static FORMAT: AtomicU8 = AtomicU8::new(Format::Text as u8);
static SINK: Mutex<Sink> = Mutex::new(Sink::Stderr);

/// Sets the global threshold; records below it are dropped.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global threshold.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Debug,
        1 => Level::Info,
        2 => Level::Warn,
        _ => Level::Error,
    }
}

/// Sets the global output format.
pub fn set_format(format: Format) {
    FORMAT.store(format as u8, Ordering::Relaxed);
}

/// The current global output format.
pub fn format() -> Format {
    if FORMAT.load(Ordering::Relaxed) == Format::Json as u8 {
        Format::Json
    } else {
        Format::Text
    }
}

fn sink() -> std::sync::MutexGuard<'static, Sink> {
    SINK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Routes subsequent records to stderr (the default).
pub fn log_to_stderr() {
    *sink() = Sink::Stderr;
}

/// Routes subsequent records to `path`, opened for append.
pub fn log_to_file(path: &Path) -> std::io::Result<()> {
    let file = OpenOptions::new().create(true).append(true).open(path)?;
    *sink() = Sink::File(file);
    Ok(())
}

/// Whether a record at `level` would currently be emitted.
pub fn enabled(level: Level) -> bool {
    level >= self::level()
}

/// Emits one record if `level` passes the threshold. `fields` are
/// `key = value` annotations appended after the message.
pub fn log(level: Level, target: &str, msg: &str, fields: &[(&str, &str)]) {
    if !enabled(level) {
        return;
    }
    let line = match format() {
        Format::Text => {
            let mut line = format!("[{} {target}] {msg}", level.as_str());
            for (k, v) in fields {
                line.push_str(&format!(" {k}={v:?}"));
            }
            line
        }
        Format::Json => {
            let ts = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs_f64())
                .unwrap_or(0.0);
            let mut line = format!(
                "{{\"ts\":{ts:.3},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
                level.as_str(),
                crate::json_escape(target),
                crate::json_escape(msg)
            );
            for (k, v) in fields {
                line.push_str(&format!(
                    ",\"{}\":\"{}\"",
                    crate::json_escape(k),
                    crate::json_escape(v)
                ));
            }
            line.push('}');
            line
        }
    };
    let mut sink = sink();
    let result = match &mut *sink {
        Sink::Stderr => writeln!(std::io::stderr().lock(), "{line}"),
        Sink::File(f) => writeln!(f, "{line}").and_then(|()| f.flush()),
    };
    // A logger that panics on a full disk would take the server down for
    // the sake of a diagnostic; drop the record instead.
    let _ = result;
}

/// [`log`] at [`Level::Debug`].
pub fn debug(target: &str, msg: &str, fields: &[(&str, &str)]) {
    log(Level::Debug, target, msg, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(target: &str, msg: &str, fields: &[(&str, &str)]) {
    log(Level::Info, target, msg, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(target: &str, msg: &str, fields: &[(&str, &str)]) {
    log(Level::Warn, target, msg, fields);
}

/// [`log`] at [`Level::Error`].
pub fn error(target: &str, msg: &str, fields: &[(&str, &str)]) {
    log(Level::Error, target, msg, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test exercising sink/format/level together: the logger is
    /// process-global, so splitting these into separate `#[test]`s would
    /// let the harness interleave their reconfigurations.
    #[test]
    fn file_sink_formats_and_levels() {
        let path =
            std::env::temp_dir().join(format!("emst_obs_log_test_{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        log_to_file(&path).unwrap();

        set_format(Format::Text);
        set_level(Level::Warn);
        info("test", "dropped below threshold", &[]);
        warn("test", "kept", &[("key", "va l\"ue")]);
        assert!(enabled(Level::Error) && !enabled(Level::Info));

        set_format(Format::Json);
        set_level(Level::Debug);
        debug("test", "json line", &[("k", "v")]);
        error("test", "json \"quoted\"", &[]);

        // Restore defaults before reading back, so a failing assert below
        // cannot leave later compilations of this crate chatty.
        set_format(Format::Text);
        set_level(Level::Info);
        log_to_stderr();

        let contents = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 3, "info below threshold must be dropped: {lines:?}");
        assert_eq!(lines[0], "[warn test] kept key=\"va l\\\"ue\"");
        assert!(lines[1].starts_with("{\"ts\":"));
        assert!(lines[1].contains("\"level\":\"debug\""));
        assert!(lines[1].contains("\"target\":\"test\""));
        assert!(lines[1].contains("\"msg\":\"json line\""));
        assert!(lines[1].contains("\"k\":\"v\""));
        assert!(lines[1].ends_with('}'));
        assert!(lines[2].contains("\"msg\":\"json \\\"quoted\\\"\""));
        for json_line in &lines[1..] {
            assert_eq!(json_line.matches('{').count(), json_line.matches('}').count());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn level_and_format_parse_round_trip() {
        for level in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert_eq!(Level::parse(level.as_str()), Some(level));
        }
        for format in [Format::Text, Format::Json] {
            assert_eq!(Format::parse(format.as_str()), Some(format));
        }
        assert_eq!(Level::parse("loud"), None);
        assert_eq!(Format::parse("yaml"), None);
    }
}
