//! Per-query structured traces in a bounded ring buffer.
//!
//! A [`QueryTrace`] is the phase breakdown of one served query: an
//! ordered list of [`SpanRecord`]s (digest, lease wait, local build,
//! each cross-shard merge round, accel absorb, spill, …), each with a
//! duration and a small set of integer fields (queries answered in a
//! merge round, distance computations, boundary candidates, …). Fields
//! are generic `(&'static str, u64)` pairs so this crate stays free of
//! any dependency on the geometry/traversal crates.
//!
//! The [`TraceRing`] holds the most recent `capacity` traces: pushing
//! beyond capacity drops the oldest, so memory stays bounded no matter
//! how long the engine serves. Readout is newest-first — `trace 5` in
//! the CLI means "the five most recent queries".

use std::collections::VecDeque;
use std::sync::Mutex;

/// One timed phase inside a query.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Phase name (`digest`, `lease.wait`, `merge.round`, `absorb`, …).
    pub name: &'static str,
    /// Wall-clock duration of the phase, seconds.
    pub secs: f64,
    /// Integer annotations (`round`, `queries`, `distances`, …).
    pub fields: Vec<(&'static str, u64)>,
}

impl SpanRecord {
    /// A span with no annotations.
    pub fn new(name: &'static str, secs: f64) -> Self {
        Self { name, secs, fields: vec![] }
    }

    /// The value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<u64> {
        self.fields.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }
}

/// The phase breakdown of one served query.
#[derive(Clone, Debug)]
pub struct QueryTrace {
    /// Monotone sequence number assigned by the ring at push time.
    pub seq: u64,
    /// Operation kind (`emst`, `subset`, `knn`, `hdbscan`).
    pub op: &'static str,
    /// Cache key of the resident the query ran against.
    pub key: String,
    /// Cache outcome (`hit`, `miss`, `reload`, `coalesced`).
    pub outcome: &'static str,
    /// Total wall-clock seconds of the query.
    pub total_s: f64,
    /// Ordered phase spans.
    pub spans: Vec<SpanRecord>,
}

impl QueryTrace {
    /// Renders a human-readable multi-line breakdown (used by the CLI
    /// `trace` command).
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "query #{} op={} key={} outcome={} total={:.6}s\n",
            self.seq, self.op, self.key, self.outcome, self.total_s
        );
        for span in &self.spans {
            let fields = span.fields.iter().map(|(k, v)| format!(" {k}={v}")).collect::<String>();
            out.push_str(&format!("  {:<16} {:>12.6}s{fields}\n", span.name, span.secs));
        }
        out
    }
}

/// A bounded, newest-first ring of recent [`QueryTrace`]s.
///
/// The ring is mutex-guarded rather than lock-free: a push happens once
/// per query (not per phase) and copies a few dozen words, so the lock
/// is held for nanoseconds — contention is negligible next to the work
/// the query itself did.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    traces: VecDeque<QueryTrace>,
    next_seq: u64,
}

impl TraceRing {
    /// A ring holding at most `capacity` traces (capacity 0 is rounded
    /// up to 1 so a push is never silently discarded).
    pub fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), inner: Mutex::new(Inner::default()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Maximum number of retained traces.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained traces (≤ capacity).
    pub fn len(&self) -> usize {
        self.lock().traces.len()
    }

    /// Whether the ring holds no traces yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total traces ever pushed (the next trace's sequence number).
    pub fn pushed(&self) -> u64 {
        self.lock().next_seq
    }

    /// Pushes a trace, stamping its sequence number and evicting the
    /// oldest retained trace if the ring is full. Returns the sequence
    /// number assigned.
    pub fn push(&self, mut trace: QueryTrace) -> u64 {
        let mut inner = self.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        trace.seq = seq;
        if inner.traces.len() == self.capacity {
            inner.traces.pop_front();
        }
        inner.traces.push_back(trace);
        seq
    }

    /// The `n` most recent traces, newest first.
    pub fn recent(&self, n: usize) -> Vec<QueryTrace> {
        let inner = self.lock();
        inner.traces.iter().rev().take(n).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(op: &'static str, total_s: f64) -> QueryTrace {
        QueryTrace {
            seq: 0,
            op,
            key: "k".into(),
            outcome: "hit",
            total_s,
            spans: vec![SpanRecord::new("digest", total_s / 2.0)],
        }
    }

    #[test]
    fn ring_wraparound_keeps_memory_bounded_and_newest_first() {
        // The satellite test: push far past capacity, then check the ring
        // never exceeds its bound and reads back newest-first.
        let ring = TraceRing::new(4);
        for i in 0..100 {
            ring.push(trace("emst", i as f64));
            assert!(ring.len() <= 4, "ring grew past capacity at push {i}");
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.pushed(), 100);
        let recent = ring.recent(10);
        assert_eq!(recent.len(), 4, "recent(n) is capped by retained traces");
        let seqs: Vec<u64> = recent.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![99, 98, 97, 96], "newest first");
        let recent2 = ring.recent(2);
        assert_eq!(recent2.len(), 2);
        assert_eq!(recent2[0].seq, 99);
    }

    #[test]
    fn spans_carry_fields_and_render() {
        let mut t = trace("subset", 0.5);
        t.spans.push(SpanRecord {
            name: "merge.round",
            secs: 0.25,
            fields: vec![("round", 0), ("queries", 42)],
        });
        let seq = TraceRing::new(2).push(t.clone());
        assert_eq!(seq, 0);
        assert_eq!(t.spans[1].field("queries"), Some(42));
        assert_eq!(t.spans[1].field("absent"), None);
        let text = t.render_text();
        assert!(text.contains("op=subset"));
        assert!(text.contains("merge.round"));
        assert!(text.contains("queries=42"));
    }

    #[test]
    fn zero_capacity_is_rounded_up() {
        let ring = TraceRing::new(0);
        ring.push(trace("emst", 1.0));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.capacity(), 1);
    }

    #[test]
    fn concurrent_pushes_never_exceed_capacity() {
        let ring = TraceRing::new(8);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..50 {
                        ring.push(trace("emst", i as f64));
                    }
                });
            }
        });
        assert_eq!(ring.len(), 8);
        assert_eq!(ring.pushed(), 200);
        // Sequence numbers are unique and strictly descending newest-first.
        let seqs: Vec<u64> = ring.recent(8).iter().map(|t| t.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] > w[1]), "{seqs:?}");
    }
}
