//! Observability primitives for the serving stack.
//!
//! The workspace vendors every external dependency, so this crate is
//! deliberately **std-only**: no `tracing`, no `prometheus`, no `serde`.
//! What it provides instead is the minimal surface the serving engine
//! actually needs, built on atomics so the hot path never takes a lock:
//!
//! - [`metrics`] — a registry of named [`metrics::Counter`]s,
//!   [`metrics::Gauge`]s and log₂-bucketed latency
//!   [`metrics::Histogram`]s (p50/p95/p99 readout), with Prometheus-style
//!   text exposition and a JSON document as exporters. Handles are
//!   `Arc`s: registration takes a short registry lock once, recording is
//!   a relaxed atomic add.
//! - [`trace`] — a bounded ring buffer of per-query [`trace::QueryTrace`]
//!   records, each a list of named [`trace::SpanRecord`] phases (digest,
//!   lease wait, merge rounds, …) with integer fields. Memory is bounded
//!   by construction; readout is newest-first.
//! - [`log`] — a leveled structured logger (text or JSON lines, to
//!   stderr or a file) replacing ad-hoc `eprintln!` diagnostics.
//!
//! Everything here is advisory instrumentation: relaxed atomics, no
//! happens-before obligations, and nothing in this crate may influence
//! the bits of an answer. See `docs/observability.md` for the exported
//! metric names and schemas.

pub mod log;
pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use trace::{QueryTrace, SpanRecord, TraceRing};

/// Escapes `s` for embedding in a JSON string literal (shared by the
/// metrics JSON exporter and the JSON log format).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn json_escape_handles_quotes_and_control_chars() {
        assert_eq!(super::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(super::json_escape("\u{1}"), "\\u0001");
        assert_eq!(super::json_escape("plain"), "plain");
    }
}
