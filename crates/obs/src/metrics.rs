//! Lock-free metrics: counters, gauges, log₂-bucketed histograms, and a
//! registry with Prometheus-style and JSON exporters.
//!
//! # Design
//!
//! Recording must be safe from the serving hot path, where queries run
//! concurrently on many threads. Every metric cell is therefore a relaxed
//! `AtomicU64`: recording is wait-free and imposes no ordering on the
//! code it measures. The only lock in this module guards *registration*
//! (name → metric lookup) and *export*; callers are expected to resolve
//! their `Arc` handles once at startup and hold them.
//!
//! # Histograms
//!
//! A [`Histogram`] buckets nanosecond latencies by `⌈log₂⌉`: value `v`
//! lands in bucket `64 − v.leading_zeros()` (bucket 0 holds exact zeros),
//! so bucket `i ≥ 1` covers `[2^(i−1), 2^i)` ns. 64 buckets span zero to
//! ~584 years, which comfortably covers any latency this workspace can
//! produce. Quantiles are read by cumulative scan and reported as the
//! containing bucket's upper bound — the error is bounded by the factor-2
//! bucket width, which is the usual trade for a fixed-size lock-free
//! histogram.
//!
//! # Names and labels
//!
//! Metric names follow Prometheus conventions (`snake_case`, counters end
//! in `_total`, latency histograms in `_seconds`). A name may carry a
//! label clause verbatim, e.g. `emst_serve_op_seconds{op="emst"}`; the
//! exporter splits it so `# TYPE` lines use the bare family name and
//! histogram suffixes merge with the labels
//! (`emst_serve_op_seconds_bucket{op="emst",le="0.25"}`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of log₂ buckets in a [`Histogram`] (bucket 0 = exact zeros).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    cell: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A settable gauge (current size of a pool, number of residents, …).
#[derive(Debug, Default)]
pub struct Gauge {
    cell: AtomicU64,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one, saturating at zero (concurrent decrements may race
    /// a `set`; a gauge is advisory, so saturation beats wrap-around).
    pub fn dec(&self) {
        let _ = self
            .cell
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A lock-free latency histogram over nanoseconds (see module docs).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a nanosecond value: 0 for 0, else `⌈log₂(v+1)⌉`.
fn bucket_index(nanos: u64) -> usize {
    ((u64::BITS - nanos.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Upper bound (inclusive, in seconds) of bucket `idx`: `2^idx − 1` ns.
fn bucket_le_seconds(idx: usize) -> f64 {
    (((1u128 << idx) - 1) as f64) * 1e-9
}

impl Histogram {
    /// Records a latency given in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Records a [`Duration`].
    pub fn record(&self, d: Duration) {
        self.record_nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records a latency given in (non-negative, finite) seconds.
    pub fn record_secs(&self, secs: f64) {
        if secs.is_finite() && secs >= 0.0 {
            self.record_nanos((secs * 1e9).min(u64::MAX as f64) as u64);
        }
    }

    /// A point-in-time copy of the cells. Concurrent recording makes the
    /// copy only approximately consistent (count/sum/buckets may each be
    /// a few events apart) — fine for an advisory readout.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
        }
    }

    /// Convenience: quantile of a fresh snapshot, in seconds.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

/// A point-in-time copy of a [`Histogram`]'s cells.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket event counts (see [`Histogram`] for the bucket bounds).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total events recorded.
    pub count: u64,
    /// Sum of all recorded latencies, in nanoseconds.
    pub sum_nanos: u64,
}

impl HistogramSnapshot {
    /// Sum of all recorded latencies, in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_nanos as f64 * 1e-9
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) in seconds, reported as the upper
    /// bound of the containing bucket (error ≤ one factor-2 bucket).
    /// Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (idx, n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_le_seconds(idx);
            }
        }
        // count said more events than the buckets hold (a racing
        // snapshot); answer with the last non-empty bucket.
        bucket_le_seconds(
            self.buckets.iter().rposition(|&n| n > 0).unwrap_or(HISTOGRAM_BUCKETS - 1),
        )
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named metrics.
///
/// Registration (`counter` / `gauge` / `histogram`) takes the registry
/// lock and returns an `Arc` handle; recording through the handle is
/// lock-free. Asking for an existing name returns the existing metric;
/// asking for an existing name *as a different kind* panics — that is a
/// programming error, not a runtime condition.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// Swallow mutex poisoning: metrics are advisory, and a panic on some
/// other thread must not cascade into every thread that records.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<M>(
        &self,
        name: &str,
        wrap: impl Fn(Arc<M>) -> Metric,
        unwrap: impl Fn(&Metric) -> Option<Arc<M>>,
    ) -> Arc<M>
    where
        M: Default,
    {
        let mut metrics = lock(&self.metrics);
        if let Some(existing) = metrics.get(name) {
            return unwrap(existing).unwrap_or_else(|| {
                panic!("metric {name:?} already registered as a {}", existing.kind())
            });
        }
        let handle = Arc::new(M::default());
        metrics.insert(name.to_string(), wrap(Arc::clone(&handle)));
        handle
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.get_or_insert(name, Metric::Counter, |m| match m {
            Metric::Counter(c) => Some(Arc::clone(c)),
            _ => None,
        })
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.get_or_insert(name, Metric::Gauge, |m| match m {
            Metric::Gauge(g) => Some(Arc::clone(g)),
            _ => None,
        })
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.get_or_insert(name, Metric::Histogram, |m| match m {
            Metric::Histogram(h) => Some(Arc::clone(h)),
            _ => None,
        })
    }

    /// Prometheus-style text exposition of every registered metric,
    /// sorted by name. Histograms render the conventional
    /// `_bucket{le=…}` / `_sum` / `_count` family (only non-empty buckets
    /// are listed — cumulative counts stay correct) plus gauge lines
    /// `_p50` / `_p95` / `_p99` for direct quantile readout.
    pub fn render_prometheus(&self) -> String {
        let metrics = lock(&self.metrics);
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<String> = Default::default();
        let mut type_line = |out: &mut String, family: &str, kind: &str| {
            if typed.insert(family.to_string()) {
                out.push_str(&format!("# TYPE {family} {kind}\n"));
            }
        };
        for (name, metric) in metrics.iter() {
            let (family, labels) = split_labels(name);
            match metric {
                Metric::Counter(c) => {
                    type_line(&mut out, family, "counter");
                    out.push_str(&format!("{name} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    type_line(&mut out, family, "gauge");
                    out.push_str(&format!("{name} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    type_line(&mut out, family, "histogram");
                    let mut cumulative = 0u64;
                    for (idx, n) in snap.buckets.iter().enumerate() {
                        if *n == 0 {
                            continue;
                        }
                        cumulative += n;
                        let le = format!("{:.9}", bucket_le_seconds(idx));
                        out.push_str(&format!(
                            "{family}_bucket{{{}le=\"{le}\"}} {cumulative}\n",
                            label_prefix(labels)
                        ));
                    }
                    out.push_str(&format!(
                        "{family}_bucket{{{}le=\"+Inf\"}} {}\n",
                        label_prefix(labels),
                        snap.count
                    ));
                    out.push_str(&format!(
                        "{family}_sum{} {:.9}\n",
                        labels_suffix(labels),
                        snap.sum_seconds()
                    ));
                    out.push_str(&format!(
                        "{family}_count{} {}\n",
                        labels_suffix(labels),
                        snap.count
                    ));
                    for (suffix, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                        type_line(&mut out, &format!("{family}_{suffix}"), "gauge");
                        out.push_str(&format!(
                            "{family}_{suffix}{} {:.9}\n",
                            labels_suffix(labels),
                            snap.quantile(q)
                        ));
                    }
                }
            }
        }
        out
    }

    /// JSON document of every registered metric (keys are the full
    /// registered names, label clause included), sorted by name.
    pub fn render_json(&self) -> String {
        let metrics = lock(&self.metrics);
        let mut counters = vec![];
        let mut gauges = vec![];
        let mut histograms = vec![];
        for (name, metric) in metrics.iter() {
            let key = crate::json_escape(name);
            match metric {
                Metric::Counter(c) => counters.push(format!("\"{key}\": {}", c.get())),
                Metric::Gauge(g) => gauges.push(format!("\"{key}\": {}", g.get())),
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    histograms.push(format!(
                        "\"{key}\": {{ \"count\": {}, \"sum_s\": {:.9}, \"p50_s\": {:.9}, \
                         \"p95_s\": {:.9}, \"p99_s\": {:.9} }}",
                        snap.count,
                        snap.sum_seconds(),
                        snap.quantile(0.50),
                        snap.quantile(0.95),
                        snap.quantile(0.99),
                    ));
                }
            }
        }
        format!(
            "{{\n  \"counters\": {{ {} }},\n  \"gauges\": {{ {} }},\n  \"histograms\": {{ {} }}\n}}\n",
            counters.join(", "),
            gauges.join(", "),
            histograms.join(", ")
        )
    }
}

/// Splits `emst_x{op="emst"}` into (`emst_x`, `op="emst"`); the label
/// part is empty for unlabelled names.
fn split_labels(name: &str) -> (&str, &str) {
    match name.split_once('{') {
        Some((family, rest)) => (family, rest.strip_suffix('}').unwrap_or(rest)),
        None => (name, ""),
    }
}

/// Labels followed by a comma, ready to precede `le="…"`.
fn label_prefix(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{labels},")
    }
}

/// Labels wrapped back in braces, or nothing.
fn labels_suffix(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let mut prev = 0;
        for shift in 0..63 {
            let idx = bucket_index(1u64 << shift);
            assert!(idx >= prev);
            prev = idx;
        }
    }

    #[test]
    fn quantiles_of_known_distribution_respect_bucket_error() {
        let h = Histogram::default();
        // 1000 events at 1µs, 1000 at 1ms: p50 must land within the 1µs
        // bucket's factor-2 bound, p99 within the 1ms bucket's.
        for _ in 0..1000 {
            h.record_nanos(1_000);
        }
        for _ in 0..1000 {
            h.record_nanos(1_000_000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 2000);
        assert_eq!(snap.sum_nanos, 1000 * 1_000 + 1000 * 1_000_000);
        let p50 = snap.quantile(0.50);
        assert!((1.0e-6..=2.1e-6).contains(&p50), "p50 = {p50}");
        let p99 = snap.quantile(0.99);
        assert!((1.0e-3..=2.1e-3).contains(&p99), "p99 = {p99}");
        assert_eq!(snap.quantile(0.0), snap.quantile(1.0 / 2000.0));
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.snapshot().sum_seconds(), 0.0);
    }

    #[test]
    fn eight_threads_hammering_one_histogram_keep_exact_totals() {
        // The satellite test: 8 threads × 10k records against a single
        // histogram. Totals must be exact (every fetch_add lands) and
        // quantiles within the bucket-boundary error of the true values.
        let h = Histogram::default();
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        // Latencies cycle 1µs..=1000µs, identical per
                        // thread, so the merged distribution is known.
                        let micros = (t + i) % 1000 + 1;
                        h.record_nanos(micros * 1_000);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 8 * per_thread);
        // Per thread the cycle covers 1..=1000 µs exactly 10 times.
        let cycle_sum: u64 = (1..=1000u64).map(|m| m * 1_000).sum();
        assert_eq!(snap.sum_nanos, 8 * 10 * cycle_sum);
        // True p50 = 500µs, p95 = 950µs, p99 = 990µs; buckets are
        // factor-2, so accept [true/2, 2·true].
        for (q, truth) in [(0.50, 500e-6), (0.95, 950e-6), (0.99, 990e-6)] {
            let got = snap.quantile(q);
            assert!((truth / 2.0..=truth * 2.1).contains(&got), "q{q}: got {got}, true {truth}");
        }
    }

    #[test]
    fn registry_returns_shared_handles_and_renders_both_formats() {
        let reg = Registry::new();
        reg.counter("emst_test_events_total{event=\"hit\"}").add(3);
        reg.counter("emst_test_events_total{event=\"hit\"}").inc();
        reg.counter("emst_test_events_total{event=\"miss\"}").inc();
        reg.gauge("emst_test_pool_size").set(7);
        let h = reg.histogram("emst_test_op_seconds{op=\"emst\"}");
        h.record_secs(0.5);
        h.record_secs(0.25);

        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE emst_test_events_total counter"));
        assert!(text.contains("emst_test_events_total{event=\"hit\"} 4"));
        assert!(text.contains("emst_test_events_total{event=\"miss\"} 1"));
        assert!(text.contains("emst_test_pool_size 7"));
        assert!(text.contains("emst_test_op_seconds_bucket{op=\"emst\",le=\"+Inf\"} 2"));
        assert!(text.contains("emst_test_op_seconds_count{op=\"emst\"} 2"));
        assert!(text.contains("emst_test_op_seconds_p50{op=\"emst\"}"));
        assert!(text.contains("emst_test_op_seconds_p99{op=\"emst\"}"));
        // One TYPE line per family even with two labelled children.
        assert_eq!(text.matches("# TYPE emst_test_events_total counter").count(), 1);

        let json = reg.render_json();
        assert!(json.contains("\"emst_test_events_total{event=\\\"hit\\\"}\": 4"));
        assert!(json.contains("\"emst_test_pool_size\": 7"));
        assert!(json.contains("\"count\": 2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn gauge_dec_saturates_at_zero() {
        let g = Gauge::default();
        g.dec();
        assert_eq!(g.get(), 0);
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registering_the_same_name_as_a_different_kind_panics() {
        let reg = Registry::new();
        reg.counter("emst_test_clash");
        reg.gauge("emst_test_clash");
    }
}
