//! The condensed tree and excess-of-mass cluster extraction
//! (Campello et al. 2015; McInnes & Healy 2017).
//!
//! The single-linkage hierarchy is *condensed* by a minimum cluster size:
//! walking top-down, a split is real only when both sides hold at least
//! `min_cluster_size` points — otherwise the small side's points simply
//! "fall out" of the current cluster at that level's density
//! `λ = 1/distance`. Each surviving cluster accumulates a *stability*
//! `Σ_p (λ_exit(p) − λ_birth)`, and the flat clustering selects the
//! antichain of clusters maximizing total stability (excess of mass).

use crate::dendrogram::Dendrogram;

/// Label of points not assigned to any cluster.
pub const NOISE: i32 = -1;

/// λ for a merge distance, finite even for zero-distance (duplicate) merges.
#[inline]
fn lambda(distance: f32) -> f64 {
    1.0 / (distance as f64).max(1e-12)
}

#[derive(Clone, Debug)]
struct Cluster {
    parent: Option<u32>,
    birth_lambda: f64,
    stability: f64,
    children: Vec<u32>,
}

/// The condensed cluster tree.
#[derive(Clone, Debug)]
pub struct CondensedTree {
    clusters: Vec<Cluster>,
    /// Per point: the condensed cluster it fell out of (u32::MAX = never,
    /// possible only for n == 0 cases) — used for labeling.
    point_exit_cluster: Vec<u32>,
    /// Per point: the density level λ at which it fell out.
    point_exit_lambda: Vec<f64>,
}

impl CondensedTree {
    /// Condenses `dendro` under `min_cluster_size`.
    pub fn build(dendro: &Dendrogram, min_cluster_size: usize) -> Self {
        assert!(min_cluster_size >= 2);
        let n = dendro.n;
        let mut clusters =
            vec![Cluster { parent: None, birth_lambda: 0.0, stability: 0.0, children: vec![] }];
        let mut point_exit_cluster = vec![0u32; n];
        let mut point_exit_lambda = vec![0.0f64; n];

        let Some(root) = dendro.root() else {
            // 0 or 1 point: everything (if anything) exits the root at λ=0.
            return Self { clusters, point_exit_cluster, point_exit_lambda };
        };

        // Stack of (hierarchy node, condensed cluster it belongs to).
        let mut stack: Vec<(u32, u32)> = vec![(root, 0)];
        while let Some((node, cluster)) = stack.pop() {
            if dendro.is_point(node) {
                // A bare point inside a cluster (can only happen for the
                // root of a 2-point hierarchy, or small-side handling below
                // which bypasses this branch).
                point_exit_cluster[node as usize] = cluster;
                point_exit_lambda[node as usize] = clusters[cluster as usize].birth_lambda;
                continue;
            }
            let m = dendro.merge_of(node);
            let lam = lambda(m.distance);
            let (sl, sr) = (dendro.size(m.left) as usize, dendro.size(m.right) as usize);
            let big_l = sl >= min_cluster_size;
            let big_r = sr >= min_cluster_size;
            match (big_l, big_r) {
                (true, true) => {
                    // True split: both sides become new clusters; every
                    // point of the parent leaves it here.
                    clusters[cluster as usize].stability +=
                        (sl + sr) as f64 * (lam - clusters[cluster as usize].birth_lambda);
                    for child_node in [m.left, m.right] {
                        let id = clusters.len() as u32;
                        clusters.push(Cluster {
                            parent: Some(cluster),
                            birth_lambda: lam,
                            stability: 0.0,
                            children: vec![],
                        });
                        clusters[cluster as usize].children.push(id);
                        stack.push((child_node, id));
                    }
                }
                (true, false) => {
                    Self::fall_out(
                        dendro,
                        m.right,
                        lam,
                        cluster,
                        &mut clusters,
                        &mut point_exit_cluster,
                        &mut point_exit_lambda,
                    );
                    stack.push((m.left, cluster));
                }
                (false, true) => {
                    Self::fall_out(
                        dendro,
                        m.left,
                        lam,
                        cluster,
                        &mut clusters,
                        &mut point_exit_cluster,
                        &mut point_exit_lambda,
                    );
                    stack.push((m.right, cluster));
                }
                (false, false) => {
                    // The cluster dissolves entirely at this level.
                    Self::fall_out(
                        dendro,
                        m.left,
                        lam,
                        cluster,
                        &mut clusters,
                        &mut point_exit_cluster,
                        &mut point_exit_lambda,
                    );
                    Self::fall_out(
                        dendro,
                        m.right,
                        lam,
                        cluster,
                        &mut clusters,
                        &mut point_exit_cluster,
                        &mut point_exit_lambda,
                    );
                }
            }
        }
        Self { clusters, point_exit_cluster, point_exit_lambda }
    }

    fn fall_out(
        dendro: &Dendrogram,
        subtree: u32,
        lam: f64,
        cluster: u32,
        clusters: &mut [Cluster],
        point_exit_cluster: &mut [u32],
        point_exit_lambda: &mut [f64],
    ) {
        let members = dendro.members(subtree);
        clusters[cluster as usize].stability +=
            members.len() as f64 * (lam - clusters[cluster as usize].birth_lambda);
        for p in members {
            point_exit_cluster[p as usize] = cluster;
            point_exit_lambda[p as usize] = lam;
        }
    }

    /// Number of condensed clusters (including the never-selected root).
    pub fn num_condensed(&self) -> usize {
        self.clusters.len()
    }

    /// The density level λ at which each point left its cluster.
    pub fn point_exit_lambdas(&self) -> &[f64] {
        &self.point_exit_lambda
    }

    /// Membership strength of every point in its assigned cluster
    /// (McInnes & Healy 2017): `λ_exit(p) / λ_max(cluster)`, clamped to
    /// `[0, 1]`; 0 for noise. Points that persist to the densest level of
    /// their cluster score 1; points that fall out immediately after the
    /// cluster is born score near 0.
    pub fn membership_probabilities(&self, labels: &[i32]) -> Vec<f32> {
        debug_assert_eq!(labels.len(), self.point_exit_cluster.len());
        // λ_max per *label* (max exit λ over the points carrying it).
        let num_labels = labels.iter().copied().max().map_or(0, |m| (m + 1) as usize);
        let mut lambda_max = vec![0.0f64; num_labels];
        for (i, &l) in labels.iter().enumerate() {
            if l != NOISE {
                let lam = self.point_exit_lambda[i];
                if lam.is_finite() {
                    let slot = &mut lambda_max[l as usize];
                    if lam > *slot {
                        *slot = lam;
                    }
                }
            }
        }
        labels
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                if l == NOISE {
                    return 0.0;
                }
                let lmax = lambda_max[l as usize];
                if lmax <= 0.0 {
                    return 1.0;
                }
                ((self.point_exit_lambda[i] / lmax).clamp(0.0, 1.0)) as f32
            })
            .collect()
    }

    /// GLOSH outlier scores (Campello et al. 2015): for each point,
    /// `1 − λ_exit(p) / λ_max(subtree of the cluster it exits)`, in
    /// `[0, 1]`. Dense-core points score ~0; points that detach at far
    /// lower density than their region supports score toward 1.
    pub fn outlier_scores(&self) -> Vec<f32> {
        let k = self.clusters.len();
        // λ_max of each cluster's subtree: max point-exit λ below it.
        let mut lambda_max = vec![0.0f64; k];
        for (i, &c) in self.point_exit_cluster.iter().enumerate() {
            let lam = self.point_exit_lambda[i];
            if lam.is_finite() && lam > lambda_max[c as usize] {
                lambda_max[c as usize] = lam;
            }
        }
        // Propagate child maxima upward (children have larger ids).
        for c in (1..k).rev() {
            if let Some(p) = self.clusters[c].parent {
                if lambda_max[c] > lambda_max[p as usize] {
                    lambda_max[p as usize] = lambda_max[c];
                }
            }
        }
        self.point_exit_cluster
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let lmax = lambda_max[c as usize];
                if lmax <= 0.0 {
                    return 0.0;
                }
                (1.0 - (self.point_exit_lambda[i] / lmax).clamp(0.0, 1.0)) as f32
            })
            .collect()
    }

    /// Stability of a condensed cluster (test hook).
    pub fn stability(&self, id: usize) -> f64 {
        self.clusters[id].stability
    }

    /// Excess-of-mass extraction: returns `(labels, num_clusters)` with
    /// labels in `0..num_clusters` and [`NOISE`] for unclustered points. The
    /// root is never selected (no single-cluster solutions, matching the
    /// reference HDBSCAN* default).
    pub fn extract_clusters(&self) -> (Vec<i32>, usize) {
        let k = self.clusters.len();
        let mut selected = vec![false; k];
        let mut propagated = vec![0.0f64; k];
        // Children always have larger ids: reverse order is bottom-up.
        for c in (0..k).rev() {
            let cl = &self.clusters[c];
            if cl.children.is_empty() {
                propagated[c] = cl.stability;
                selected[c] = c != 0;
                continue;
            }
            let child_sum: f64 = cl.children.iter().map(|&ch| propagated[ch as usize]).sum();
            if c != 0 && cl.stability >= child_sum {
                selected[c] = true;
                propagated[c] = cl.stability;
            } else {
                propagated[c] = child_sum;
            }
        }
        // Top-down: a selected ancestor shadows its descendants.
        for c in 1..k {
            let mut a = self.clusters[c].parent;
            while let Some(p) = a {
                if selected[p as usize] {
                    selected[c] = false;
                    break;
                }
                a = self.clusters[p as usize].parent;
            }
        }
        // Number the selected clusters.
        let mut label_of = vec![NOISE; k];
        let mut next = 0i32;
        for c in 0..k {
            if selected[c] {
                label_of[c] = next;
                next += 1;
            }
        }
        // A point belongs to the nearest selected ancestor of its exit
        // cluster (inclusive); otherwise it is noise.
        let labels = self
            .point_exit_cluster
            .iter()
            .map(|&exit| {
                let mut c = Some(exit);
                while let Some(cur) = c {
                    if selected[cur as usize] {
                        return label_of[cur as usize];
                    }
                    c = self.clusters[cur as usize].parent;
                }
                NOISE
            })
            .collect();
        (labels, next as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_core::Edge;

    /// Two tight triples bridged by a long edge.
    fn two_cluster_dendrogram() -> Dendrogram {
        let edges = vec![
            Edge::new(0, 1, 1.0),
            Edge::new(1, 2, 1.0),
            Edge::new(3, 4, 1.0),
            Edge::new(4, 5, 1.0),
            Edge::new(2, 3, 10_000.0),
        ];
        Dendrogram::from_mst_edges(6, &edges)
    }

    #[test]
    fn two_tight_groups_give_two_clusters() {
        let d = two_cluster_dendrogram();
        let t = CondensedTree::build(&d, 2);
        let (labels, k) = t.extract_clusters();
        assert_eq!(k, 2, "labels {labels:?}");
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn min_cluster_size_larger_than_groups_gives_noise() {
        let d = two_cluster_dendrogram();
        let t = CondensedTree::build(&d, 5);
        let (labels, k) = t.extract_clusters();
        // No side ever reaches 5 points below the root: everything falls
        // out of the (never selected) root.
        assert_eq!(k, 0);
        assert!(labels.iter().all(|&l| l == NOISE));
    }

    #[test]
    fn stability_prefers_long_lived_clusters() {
        let d = two_cluster_dendrogram();
        let t = CondensedTree::build(&d, 2);
        // Root (0) plus two children.
        assert_eq!(t.num_condensed(), 3);
        assert!(t.stability(1) > 0.0);
        assert!(t.stability(2) > 0.0);
    }

    #[test]
    fn straggler_is_noise() {
        // Tight pair + far straggler.
        let edges = vec![
            Edge::new(0, 1, 1.0),
            Edge::new(1, 2, 1.0),
            Edge::new(3, 4, 1.0),
            Edge::new(4, 5, 1.0),
            Edge::new(2, 3, 10_000.0),
            Edge::new(5, 6, 1_000_000.0),
        ];
        let d = Dendrogram::from_mst_edges(7, &edges);
        let t = CondensedTree::build(&d, 3);
        let (labels, k) = t.extract_clusters();
        assert_eq!(k, 2);
        assert_eq!(labels[6], NOISE);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let d = Dendrogram::from_mst_edges(0, &[]);
        let t = CondensedTree::build(&d, 2);
        let (labels, k) = t.extract_clusters();
        assert!(labels.is_empty());
        assert_eq!(k, 0);

        let d = Dendrogram::from_mst_edges(1, &[]);
        let t = CondensedTree::build(&d, 2);
        let (labels, k) = t.extract_clusters();
        assert_eq!(labels, vec![NOISE]);
        assert_eq!(k, 0);
    }

    #[test]
    fn membership_probabilities_are_unit_range_and_zero_for_noise() {
        let edges = vec![
            Edge::new(0, 1, 1.0),
            Edge::new(1, 2, 1.0),
            Edge::new(3, 4, 1.0),
            Edge::new(4, 5, 1.0),
            Edge::new(2, 3, 10_000.0),
            Edge::new(5, 6, 1_000_000.0),
        ];
        let d = Dendrogram::from_mst_edges(7, &edges);
        let t = CondensedTree::build(&d, 3);
        let (labels, _) = t.extract_clusters();
        let probs = t.membership_probabilities(&labels);
        assert_eq!(probs.len(), 7);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert_eq!(probs[6], 0.0, "noise has zero membership");
        assert!(probs[0] > 0.0);
    }

    #[test]
    fn outlier_scores_flag_the_straggler() {
        let edges = vec![
            Edge::new(0, 1, 1.0),
            Edge::new(1, 2, 1.0),
            Edge::new(3, 4, 1.0),
            Edge::new(4, 5, 1.0),
            Edge::new(2, 3, 10_000.0),
            Edge::new(5, 6, 1_000_000.0),
        ];
        let d = Dendrogram::from_mst_edges(7, &edges);
        let t = CondensedTree::build(&d, 3);
        let scores = t.outlier_scores();
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
        // The straggler (6) must out-score every in-cluster point.
        for i in 0..6 {
            assert!(
                scores[6] > scores[i],
                "straggler score {} vs point {i} score {}",
                scores[6],
                scores[i]
            );
        }
    }

    #[test]
    fn duplicate_merges_do_not_produce_nan() {
        let edges = vec![Edge::new(0, 1, 0.0), Edge::new(1, 2, 0.0), Edge::new(2, 3, 1.0)];
        let d = Dendrogram::from_mst_edges(4, &edges);
        let t = CondensedTree::build(&d, 2);
        for c in 0..t.num_condensed() {
            assert!(t.stability(c).is_finite());
        }
    }
}
