//! Core distances: per-point k-th-nearest-neighbour distances.
//!
//! The `T_core` phase of the paper's Fig. 9. One k-NN query per point over
//! the shared BVH, each maintaining a bounded per-thread max-heap — the
//! structure whose thread divergence the paper blames for the GPU cost
//! growth with `k_pts` (§4.5).

use emst_bvh::Bvh;
use emst_exec::{ExecSpace, SyncUnsafeSlice};
use emst_geometry::{Point, Scalar};

/// Builds a BVH and computes squared core distances (original index order).
pub fn core_distances_sq<S: ExecSpace, const D: usize>(
    space: &S,
    points: &[Point<D>],
    k_pts: usize,
) -> Vec<Scalar> {
    if points.is_empty() {
        return vec![];
    }
    let bvh = Bvh::build(space, points);
    core_distances_sq_on(space, &bvh, k_pts)
}

/// Computes squared core distances over an existing BVH (original index
/// order). `k_pts` counts the point itself; it is clamped to `n`.
pub fn core_distances_sq_on<S: ExecSpace, const D: usize>(
    space: &S,
    bvh: &Bvh<D>,
    k_pts: usize,
) -> Vec<Scalar> {
    core_distances_sq_instrumented(space, bvh, k_pts, &emst_exec::Counters::new())
}

/// [`core_distances_sq_on`] recording its work into `counters`, including a
/// per-candidate heap-maintenance charge (`⌈log₂(k+1)⌉` sift steps per
/// offer) — the per-thread priority-queue cost the paper identifies as the
/// dominant GPU term of `T_core` (§4.5).
pub fn core_distances_sq_instrumented<S: ExecSpace, const D: usize>(
    space: &S,
    bvh: &Bvh<D>,
    k_pts: usize,
    counters: &emst_exec::Counters,
) -> Vec<Scalar> {
    assert!(k_pts >= 1, "k_pts includes the point itself and must be >= 1");
    let n = bvh.num_leaves();
    let k = k_pts.min(n);
    let mut out = vec![0.0; n];
    if k == 1 {
        // The nearest neighbour of a point including itself is itself.
        return out;
    }
    let heap_depth = (usize::BITS - k.leading_zeros()) as u64;
    {
        let out_s = SyncUnsafeSlice::new(&mut out);
        let stats = space.parallel_reduce(
            n,
            emst_bvh::TraversalStats::default(),
            |rank| {
                let mut st = emst_bvh::TraversalStats::default();
                let neighbors = bvh.k_nearest_with_stats(bvh.leaf_point(rank as u32), k, &mut st);
                let core = neighbors.last().expect("k >= 1").1;
                let orig = bvh.point_index(rank as u32) as usize;
                // SAFETY: `orig` is a permutation of 0..n — one writer per slot.
                unsafe { out_s.write(orig, core) };
                st
            },
            emst_bvh::TraversalStats::merged,
        );
        counters.add_queries(n as u64);
        counters.add_node_visits(stats.nodes);
        counters.add_rope_hops(stats.rope_hops);
        counters.add_leaf_visits(stats.leaves);
        counters.add_distance_computations(stats.distances);
        // Every candidate offer costs up to one heap sift.
        counters.add_heap_ops(stats.leaves * heap_depth);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_exec::{Serial, Threads};
    use emst_geometry::brute_force_core_distances_sq;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.random_range(0.0f32..1.0), rng.random_range(0.0f32..1.0)]))
            .collect()
    }

    #[test]
    fn matches_brute_force_for_various_k() {
        let pts = random_points(200, 3);
        for k in [1usize, 2, 3, 8, 50, 200, 500] {
            let got = core_distances_sq(&Serial, &pts, k);
            let expect = brute_force_core_distances_sq(&pts, k);
            assert_eq!(got, expect, "k={k}");
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let pts = random_points(500, 9);
        assert_eq!(core_distances_sq(&Serial, &pts, 6), core_distances_sq(&Threads, &pts, 6));
    }

    #[test]
    fn duplicates_have_zero_core_distance_for_small_k() {
        let mut pts = vec![Point::new([0.5f32, 0.5]); 4];
        pts.push(Point::new([2.0, 2.0]));
        let core = core_distances_sq(&Serial, &pts, 3);
        // The four duplicates have >= 3 coincident points.
        for c in &core[..4] {
            assert_eq!(*c, 0.0);
        }
        assert!(core[4] > 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn core_distances_match_brute_force(
            n in 1usize..120, seed in 0u64..500, k in 1usize..10
        ) {
            let pts = random_points(n, seed);
            prop_assert_eq!(
                core_distances_sq(&Serial, &pts, k),
                brute_force_core_distances_sq(&pts, k)
            );
        }
    }
}
