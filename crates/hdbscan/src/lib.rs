//! HDBSCAN* on top of the single-tree EMST (paper §4.5).
//!
//! HDBSCAN* (Campello et al. 2015) is the flagship application of the
//! mutual-reachability MST the paper evaluates in its Fig. 9: the clustering
//! is read off the minimum spanning tree of the complete graph under
//!
//! ```text
//! d_mreach(u, v) = max{ d_core(u), d_core(v), ‖u − v‖ }
//! ```
//!
//! where `d_core(u)` is the distance to `u`'s `k_pts`-th nearest neighbour.
//! The pipeline is:
//!
//! 1. [`core_distances`] — k-NN on the shared BVH (the paper's `T_core`);
//! 2. the MRD MST through `emst-core` (the `T_emst` phase; only the
//!    traversal cutoff changes — §3 "Non-Euclidean metrics");
//! 3. [`dendrogram`] — the single-linkage hierarchy from the sorted MST;
//! 4. [`condensed`] — the condensed tree, cluster stabilities, and the
//!    excess-of-mass cluster extraction.
//!
//! [`Hdbscan::fit`] runs all four stages and reports the paper's phase
//! timings.

pub mod condensed;
pub mod core_distances;
pub mod dendrogram;

pub use condensed::{CondensedTree, NOISE};
pub use core_distances::{core_distances_sq, core_distances_sq_instrumented, core_distances_sq_on};
pub use dendrogram::{Dendrogram, Merge};

use emst_bvh::Bvh;
use emst_core::boruvka::run_boruvka_scratch;
use emst_core::{BoruvkaScratch, Edge, EmstConfig};
use emst_exec::{Counters, ExecSpace, PhaseTimings};
use emst_geometry::{MutualReachability, Point};

/// HDBSCAN* parameters.
#[derive(Clone, Copy, Debug)]
pub struct Hdbscan {
    /// `k_pts`: the neighbour count defining the core distance (the point
    /// itself included, as in the paper). `1` degenerates to Euclidean.
    pub k_pts: usize,
    /// Minimum cluster size for the condensed tree.
    pub min_cluster_size: usize,
}

impl Default for Hdbscan {
    fn default() -> Self {
        Self { k_pts: 5, min_cluster_size: 5 }
    }
}

/// Full clustering output.
#[derive(Clone, Debug)]
pub struct HdbscanResult {
    /// Cluster id per point, or [`NOISE`].
    pub labels: Vec<i32>,
    /// Number of extracted clusters.
    pub num_clusters: usize,
    /// Squared core distances per point.
    pub core_distances_sq: Vec<f32>,
    /// The mutual-reachability MST edges.
    pub mst: Vec<Edge>,
    /// Per-point membership strength in its cluster (0 for noise).
    pub probabilities: Vec<f32>,
    /// Per-point GLOSH outlier scores (toward 1 = more outlying).
    pub outlier_scores: Vec<f32>,
    /// Phase timings: `"core"`, `"emst"` (Fig. 9's T_core / T_emst) plus
    /// `"tree"`, `"extract"`.
    pub timings: PhaseTimings,
}

impl Hdbscan {
    /// Runs the full pipeline on `points` using execution space `space`.
    pub fn fit<S: ExecSpace, const D: usize>(
        &self,
        space: &S,
        points: &[Point<D>],
    ) -> HdbscanResult {
        self.fit_scratch(space, points, &mut BoruvkaScratch::new())
    }

    /// [`Self::fit`] drawing the EMST pass's working arrays from a
    /// caller-held [`BoruvkaScratch`], so repeated clusterings (parameter
    /// sweeps, serving) stop paying per-call allocation.
    pub fn fit_scratch<S: ExecSpace, const D: usize>(
        &self,
        space: &S,
        points: &[Point<D>],
        scratch: &mut BoruvkaScratch,
    ) -> HdbscanResult {
        assert!(self.k_pts >= 1);
        assert!(self.min_cluster_size >= 2);
        let n = points.len();
        let mut timings = PhaseTimings::new();
        if n == 0 {
            return HdbscanResult {
                labels: vec![],
                num_clusters: 0,
                core_distances_sq: vec![],
                mst: vec![],
                probabilities: vec![],
                outlier_scores: vec![],
                timings,
            };
        }

        // One BVH shared by the k-NN and the Borůvka loop — the same tree
        // reuse ArborX does.
        let bvh = timings.time("tree", || Bvh::build(space, points));
        let core_sq = timings.time("core", || core_distances_sq_on(space, &bvh, self.k_pts));

        let mst = if n >= 2 {
            let metric = MutualReachability::new(&core_sq);
            let counters = Counters::new();
            let emst_start = std::time::Instant::now();
            let (edges, _iters) = run_boruvka_scratch(
                space,
                &bvh,
                &metric,
                &EmstConfig::default(),
                &counters,
                &mut timings,
                scratch,
            );
            timings.record("emst", emst_start.elapsed().as_secs_f64());
            edges
        } else {
            vec![]
        };

        let (labels, num_clusters, probabilities, outlier_scores) = timings.time("extract", || {
            let dendro = Dendrogram::from_mst_edges(n, &mst);
            let tree = CondensedTree::build(&dendro, self.min_cluster_size);
            let (labels, num_clusters) = tree.extract_clusters();
            let probabilities = tree.membership_probabilities(&labels);
            let outlier_scores = tree.outlier_scores();
            (labels, num_clusters, probabilities, outlier_scores)
        });

        HdbscanResult {
            labels,
            num_clusters,
            core_distances_sq: core_sq,
            mst,
            probabilities,
            outlier_scores,
            timings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_exec::{Serial, Threads};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn blob(rng: &mut StdRng, center: [f32; 2], sigma: f32, n: usize, out: &mut Vec<Point<2>>) {
        for _ in 0..n {
            out.push(Point::new([
                center[0] + rng.random_range(-sigma..sigma),
                center[1] + rng.random_range(-sigma..sigma),
            ]));
        }
    }

    #[test]
    fn two_blobs_yield_two_clusters() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut pts = vec![];
        blob(&mut rng, [0.0, 0.0], 0.1, 60, &mut pts);
        blob(&mut rng, [10.0, 10.0], 0.1, 60, &mut pts);
        let r = Hdbscan { k_pts: 5, min_cluster_size: 10 }.fit(&Serial, &pts);
        assert_eq!(r.num_clusters, 2, "labels: {:?}", r.labels);
        // Points within one blob share a label; across blobs differ.
        assert_eq!(r.labels[0], r.labels[30]);
        assert_eq!(r.labels[60], r.labels[100]);
        assert_ne!(r.labels[0], r.labels[60]);
        assert!(r.labels[..60].iter().all(|&l| l == r.labels[0]));
    }

    #[test]
    fn noise_points_are_labeled_noise() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut pts = vec![];
        blob(&mut rng, [0.0, 0.0], 0.1, 50, &mut pts);
        blob(&mut rng, [20.0, 0.0], 0.1, 50, &mut pts);
        // Isolated stragglers far from both blobs.
        pts.push(Point::new([10.0, 40.0]));
        pts.push(Point::new([-15.0, -30.0]));
        let r = Hdbscan { k_pts: 4, min_cluster_size: 10 }.fit(&Serial, &pts);
        assert_eq!(r.num_clusters, 2);
        assert_eq!(r.labels[100], NOISE);
        assert_eq!(r.labels[101], NOISE);
    }

    #[test]
    fn three_nested_density_clusters() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut pts = vec![];
        blob(&mut rng, [0.0, 0.0], 0.05, 80, &mut pts);
        blob(&mut rng, [1.5, 0.0], 0.05, 80, &mut pts);
        blob(&mut rng, [50.0, 50.0], 0.05, 80, &mut pts);
        let r = Hdbscan { k_pts: 5, min_cluster_size: 15 }.fit(&Threads, &pts);
        assert_eq!(r.num_clusters, 3, "labels: {:?}", &r.labels[..10]);
        let (a, b, c) = (r.labels[0], r.labels[80], r.labels[160]);
        assert!(a != b && b != c && a != c);
    }

    #[test]
    fn trivial_inputs() {
        let r = Hdbscan::default().fit::<_, 2>(&Serial, &[]);
        assert!(r.labels.is_empty());
        let one = [Point::new([0.0f32, 0.0])];
        let r = Hdbscan::default().fit(&Serial, &one);
        assert_eq!(r.labels, vec![NOISE]);
        assert_eq!(r.num_clusters, 0);
    }

    #[test]
    fn all_points_one_blob_yields_one_or_zero_clusters() {
        // The named property holds exactly for a *perfectly* homogeneous
        // blob: on a regular grid no true split survives condensation
        // (every peeled-off side is < min_cluster_size), the root is never
        // selected, and extraction returns zero clusters. Deterministic, no
        // RNG involved.
        let mut pts = vec![];
        for i in 0..10 {
            for j in 0..10 {
                pts.push(Point::new([i as f32 * 0.04, j as f32 * 0.04]));
            }
        }
        let r = Hdbscan { k_pts: 5, min_cluster_size: 10 }.fit(&Serial, &pts);
        assert!(r.num_clusters <= 1, "grid: {}", r.num_clusters);
        assert!(r.labels.iter().all(|&l| l == NOISE || l == 0));

        // A *sampled* uniform blob is only statistically homogeneous: its
        // density fluctuations let excess-of-mass selection legitimately
        // return 2-4 clusters depending on the draw (the reference
        // implementation behaves the same way), so this part pins one
        // representative draw. Seed re-pinned 5 -> 0 when the workspace
        // switched to the vendored deterministic StdRng, whose stream
        // differs from upstream rand's.
        let mut rng = StdRng::seed_from_u64(0);
        let mut pts = vec![];
        blob(&mut rng, [0.0, 0.0], 0.2, 100, &mut pts);
        let r = Hdbscan { k_pts: 5, min_cluster_size: 10 }.fit(&Serial, &pts);
        // At most the root's two immediate children survive on this draw.
        assert!(r.num_clusters <= 2, "sampled blob: {}", r.num_clusters);
    }

    #[test]
    fn timings_report_paper_phases() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut pts = vec![];
        blob(&mut rng, [0.0, 0.0], 1.0, 300, &mut pts);
        let r = Hdbscan::default().fit(&Serial, &pts);
        assert!(r.timings.get("core") > 0.0);
        assert!(r.timings.get("emst") > 0.0);
        assert!(r.mst.len() == 299);
    }

    #[test]
    fn k1_reduces_core_distances_to_zero() {
        let pts = vec![
            Point::new([0.0f32, 0.0]),
            Point::new([1.0, 0.0]),
            Point::new([2.0, 0.0]),
            Point::new([3.0, 0.0]),
        ];
        let r = Hdbscan { k_pts: 1, min_cluster_size: 2 }.fit(&Serial, &pts);
        assert!(r.core_distances_sq.iter().all(|&c| c == 0.0));
    }
}
